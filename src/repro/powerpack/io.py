"""Profile persistence: CSV for spreadsheets, JSON for round-trips."""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.errors import MeasurementError
from repro.powerpack.profile import ComponentSeries, PowerProfile


def profile_to_csv(profile: PowerProfile, path: str | Path) -> None:
    """Write the sampled traces as long-form CSV: time,node,component,watts."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "node", "component", "watts"])
        for s in profile.series:
            for t, w in zip(s.times, s.watts):
                writer.writerow([f"{t:.6f}", s.node, s.component, f"{w:.4f}"])


def profile_to_json(profile: PowerProfile, path: str | Path) -> None:
    """Write a lossless JSON representation (including exact energies)."""
    path = Path(path)
    doc = {
        "label": profile.label,
        "duration": profile.duration,
        "exact_component_energy": profile.exact_component_energy,
        "phase_marks": [[t, name] for t, name in profile.phase_marks],
        "series": [
            {
                "node": s.node,
                "component": s.component,
                "times": s.times.tolist(),
                "watts": s.watts.tolist(),
            }
            for s in profile.series
        ],
    }
    path.write_text(json.dumps(doc))


def profile_from_json(path: str | Path) -> PowerProfile:
    """Load a profile written by :func:`profile_to_json`."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MeasurementError(f"cannot load profile from {path}: {exc}") from exc
    series = [
        ComponentSeries(
            node=int(s["node"]),
            component=s["component"],
            times=np.asarray(s["times"], dtype=float),
            watts=np.asarray(s["watts"], dtype=float),
        )
        for s in doc["series"]
    ]
    return PowerProfile(
        duration=float(doc["duration"]),
        series=series,
        exact_component_energy={
            k: float(v) for k, v in doc["exact_component_energy"].items()
        },
        phase_marks=[(float(t), str(n)) for t, n in doc["phase_marks"]],
        label=doc.get("label", ""),
    )

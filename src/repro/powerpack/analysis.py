"""Energy analysis of power profiles — the Figure-10 decomposition.

Figure 10 of the paper shades each component's power trace into a lower
idle-state area (``α·T·(P_idle)``) and an upper active area
(``W·t·ΔP``).  :func:`figure10_decomposition` computes both areas per
component from a profile, which is exactly the decomposition Eq. (9) sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.errors import MeasurementError
from repro.powerpack.profile import COMPONENTS, PowerProfile
from repro.simmpi.engine import SimResult


@dataclass(frozen=True)
class Figure10Decomposition:
    """Idle vs. active energy areas per component (joules)."""

    idle: dict[str, float]
    active: dict[str, float]

    @property
    def total_idle(self) -> float:
        return sum(self.idle.values())

    @property
    def total_active(self) -> float:
        return sum(self.active.values())

    @property
    def total(self) -> float:
        return self.total_idle + self.total_active

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, idle J, active J) in Fig.-10 legend order."""
        return [(c, self.idle.get(c, 0.0), self.active.get(c, 0.0)) for c in COMPONENTS]


def figure10_decomposition(
    profile: PowerProfile, cluster: Cluster, result: SimResult
) -> Figure10Decomposition:
    """Split each component's measured energy into idle and active areas.

    The idle area is ``duration × Σ P_idle`` over used nodes (the region
    below the dashed idle line in Fig. 10); the active area is the exact
    component energy minus that floor (the shaded region above it).
    """
    nodes_used = sorted({s.node for s in result.segments})
    if not nodes_used:
        raise MeasurementError("run produced no activity segments")
    idle: dict[str, float] = {c: 0.0 for c in COMPONENTS}
    for node in nodes_used:
        pw = cluster.nodes[node].power
        idle["cpu"] += pw.cpu.p_idle * profile.duration
        idle["memory"] += pw.memory.p_idle * profile.duration
        idle["io"] += pw.io.p_idle * profile.duration
        idle["motherboard"] += pw.others * profile.duration
    active = {
        c: max(profile.exact_component_energy.get(c, 0.0) - idle[c], 0.0)
        for c in COMPONENTS
    }
    return Figure10Decomposition(idle=idle, active=active)


def component_energy_breakdown(profile: PowerProfile) -> dict[str, float]:
    """Exact energy per component plus the total (joules)."""
    out = dict(profile.exact_component_energy)
    out["total"] = profile.exact_energy
    return out


def average_power(profile: PowerProfile) -> float:
    """Mean system power over the run (watts)."""
    if profile.duration <= 0:
        raise MeasurementError("profile has zero duration")
    return profile.exact_energy / profile.duration


def energy_delay_product(profile: PowerProfile) -> float:
    """EDP = E·T, a common HPC energy-performance figure of merit."""
    return profile.exact_energy * profile.duration


def peak_power(profile: PowerProfile) -> float:
    """Maximum sampled whole-system power (watts).

    The quantity a facility breaker or rack PDU actually enforces —
    power-cap planning (repro.core.powercap) bounds *average* power, so
    comparing the two shows the headroom bursty codes need.
    """
    _, watts = profile.total_power_series()
    return float(watts.max())


def power_headroom_ratio(profile: PowerProfile) -> float:
    """Peak over average power: 1.0 = perfectly flat draw.

    Facilities provision for peak; energy bills follow average.  High
    ratios mean capping to average would throttle the bursts.
    """
    avg = average_power(profile)
    if avg <= 0:
        raise MeasurementError("average power is zero")
    return peak_power(profile) / avg


def sustained_power_above(profile: PowerProfile, threshold: float) -> float:
    """Seconds the system power exceeds ``threshold`` watts.

    Used by power-cap validation: a configuration chosen for a cap
    should spend ~no time above it.
    """
    if threshold < 0:
        raise MeasurementError("threshold must be >= 0")
    times, watts = profile.total_power_series()
    if len(times) < 2:
        raise MeasurementError("need at least two samples")
    total = 0.0
    for i in range(len(times) - 1):
        if watts[i] > threshold:
            total += times[i + 1] - times[i]
    return total

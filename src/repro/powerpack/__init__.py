"""PowerPack analog: component-level power profiling of simulated runs.

PowerPack (Ge et al., IEEE TPDS 2009) pairs direct hardware power
measurement with software that "automatically collects, processes and
synchronizes power data with system load".  This subpackage does the same
for the discrete-event simulator: it converts a run's activity timeline
into per-node, per-component power traces (cpu / memory / io /
motherboard), integrates them into energies, and decomposes them into the
idle-state and active-state areas shaded in the paper's Figure 10.
"""

from repro.powerpack.profile import ComponentSeries, PowerProfile
from repro.powerpack.profiler import PowerProfiler
from repro.powerpack.analysis import (
    Figure10Decomposition,
    component_energy_breakdown,
    figure10_decomposition,
)
from repro.powerpack.io import profile_from_json, profile_to_csv, profile_to_json

__all__ = [
    "ComponentSeries",
    "PowerProfile",
    "PowerProfiler",
    "Figure10Decomposition",
    "component_energy_breakdown",
    "figure10_decomposition",
    "profile_from_json",
    "profile_to_csv",
    "profile_to_json",
]

"""PowerProfile: the time-synchronized power record of one run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeasurementError

#: Component names in reporting order (matches Fig. 10's legend).
COMPONENTS = ("cpu", "memory", "io", "motherboard")


@dataclass
class ComponentSeries:
    """Sampled power of one component on one node."""

    node: int
    component: str
    times: np.ndarray  # seconds, shared grid
    watts: np.ndarray

    def __post_init__(self) -> None:
        if self.component not in COMPONENTS:
            raise MeasurementError(
                f"unknown component {self.component!r}; expected {COMPONENTS}"
            )
        if self.times.shape != self.watts.shape:
            raise MeasurementError("times and watts must align")
        if len(self.times) and np.any(np.diff(self.times) < 0):
            raise MeasurementError("sample times must be non-decreasing")

    def energy(self) -> float:
        """Trapezoidal energy of the sampled series (joules)."""
        if len(self.times) < 2:
            raise MeasurementError("need at least two samples to integrate")
        return float(np.trapezoid(self.watts, self.times))


@dataclass
class PowerProfile:
    """All component series of a run plus exact (unsampled) energies.

    ``exact_energy`` integrates the activity timeline analytically and is
    what validation experiments treat as "measured energy" — sampling can
    then be as coarse as a real meter without biasing validation.
    """

    duration: float
    series: list[ComponentSeries]
    exact_component_energy: dict[str, float]
    phase_marks: list[tuple[float, str]] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise MeasurementError("duration must be >= 0")
        for name in self.exact_component_energy:
            if name not in COMPONENTS:
                raise MeasurementError(f"unknown component {name!r}")

    # -- energies ---------------------------------------------------------------

    @property
    def exact_energy(self) -> float:
        """Total measured energy (joules), exact integration."""
        return sum(self.exact_component_energy.values())

    def sampled_energy(self, component: str | None = None) -> float:
        """Energy from the sampled traces (what a physical meter reports)."""
        total = 0.0
        found = False
        for s in self.series:
            if component is None or s.component == component:
                total += s.energy()
                found = True
        if not found:
            raise MeasurementError(f"no series for component {component!r}")
        return total

    # -- views -------------------------------------------------------------------

    def nodes(self) -> list[int]:
        return sorted({s.node for s in self.series})

    def node_series(self, node: int, component: str) -> ComponentSeries:
        for s in self.series:
            if s.node == node and s.component == component:
                return s
        raise MeasurementError(f"no series for node {node} / {component!r}")

    def system_series(self, component: str) -> ComponentSeries:
        """Component power summed over all nodes, on the shared grid."""
        parts = [s for s in self.series if s.component == component]
        if not parts:
            raise MeasurementError(f"no series for component {component!r}")
        watts = np.sum([s.watts for s in parts], axis=0)
        return ComponentSeries(
            node=-1, component=component, times=parts[0].times, watts=watts
        )

    def total_power_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, watts) of whole-system power — the PDU's view."""
        times = self.series[0].times
        watts = np.zeros_like(times)
        for s in self.series:
            watts = watts + s.watts
        return times, watts

"""Convert a simulated run's activity timeline into power traces.

The attribution rule mirrors the energy model's Eq. (9): every used node
draws its component idle powers for the whole run; a segment with
``cpu_active`` active-seconds adds ``cpu_active · ΔPc_share`` joules of CPU
energy, smeared uniformly over the segment's wall interval (which is how a
physical meter sees overlapped work).  ``ΔP_share`` divides a node's
component ΔP among the ranks placed on it, so co-located ranks cannot
double-count the package power.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import MeasurementError
from repro.powerpack.profile import COMPONENTS, ComponentSeries, PowerProfile
from repro.simmpi.engine import SimResult


class PowerProfiler:
    """Attach PowerPack-style measurement to simulated runs.

    Parameters
    ----------
    cluster:
        The cluster the run executed on (provides component power levels).
    sample_period:
        Meter sampling period in seconds.  PowerPack samples at tens of Hz;
        the default 0.05 s ≈ 20 Hz.
    meter_sigma:
        Relative gaussian noise on sampled readings (instrument error).
        Exact energies are never noised — they represent the ground truth
        the instrument approximates.
    seed:
        Seed for the instrument-noise stream.
    """

    def __init__(
        self,
        cluster: Cluster,
        sample_period: float = 0.05,
        meter_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if sample_period <= 0:
            raise MeasurementError("sample_period must be positive")
        if meter_sigma < 0:
            raise MeasurementError("meter_sigma must be >= 0")
        self.cluster = cluster
        self.sample_period = sample_period
        self.meter_sigma = meter_sigma
        self._rng = np.random.default_rng(seed)

    # -----------------------------------------------------------------------------

    def profile(self, result: SimResult, label: str = "") -> PowerProfile:
        """Measure a finished run: exact energies + sampled traces."""
        duration = result.total_time
        if duration <= 0:
            raise MeasurementError("cannot profile a zero-length run")
        nodes_used = sorted({s.node for s in result.segments}) or [0]
        ppn = result.config.procs_per_node

        # --- exact per-component energies ------------------------------------
        exact = self.exact_component_energies(result)

        # --- sampled traces ----------------------------------------------------
        n_samples = max(2, int(np.ceil(duration / self.sample_period)) + 1)
        times = np.linspace(0.0, duration, n_samples)
        series: list[ComponentSeries] = []
        for node in nodes_used:
            pw = self.cluster.nodes[node].power
            grids = {
                "cpu": np.full(n_samples, pw.cpu.p_idle),
                "memory": np.full(n_samples, pw.memory.p_idle),
                "io": np.full(n_samples, pw.io.p_idle),
                "motherboard": np.full(n_samples, pw.others),
            }
            for seg in result.segments:
                if seg.node != node or seg.duration <= 0:
                    continue
                # index range of samples inside [t0, t1) — O(log n) per segment
                lo = int(np.searchsorted(times, seg.t0, side="left"))
                hi = int(np.searchsorted(times, seg.t1, side="left"))
                if hi <= lo:
                    continue
                d = seg.duration
                grids["cpu"][lo:hi] += seg.cpu_active / d * pw.cpu.delta_p / ppn
                grids["memory"][lo:hi] += seg.mem_active / d * pw.memory.delta_p / ppn
                grids["io"][lo:hi] += seg.io_active / d * pw.io.delta_p / ppn
            for comp, watts in grids.items():
                if self.meter_sigma > 0:
                    watts = watts * (
                        1.0 + self._rng.normal(0.0, self.meter_sigma, n_samples)
                    )
                    watts = np.maximum(watts, 0.0)
                series.append(
                    ComponentSeries(
                        node=node, component=comp, times=times, watts=watts
                    )
                )

        phase_marks = _phase_marks(result)
        return PowerProfile(
            duration=duration,
            series=series,
            exact_component_energy=exact,
            phase_marks=phase_marks,
            label=label,
        )

    def measure_energy(self, result: SimResult) -> float:
        """Exact measured energy (joules) of a run, skipping trace sampling."""
        return sum(self.exact_component_energies(result).values())

    def exact_component_energies(self, result: SimResult) -> dict[str, float]:
        """Exact per-component energies without building sampled traces."""
        duration = result.total_time
        if duration <= 0:
            raise MeasurementError("cannot profile a zero-length run")
        nodes_used = sorted({s.node for s in result.segments}) or [0]
        ppn = result.config.procs_per_node
        exact = {c: 0.0 for c in COMPONENTS}
        for node in nodes_used:
            pw = self.cluster.nodes[node].power
            exact["cpu"] += pw.cpu.p_idle * duration
            exact["memory"] += pw.memory.p_idle * duration
            exact["io"] += pw.io.p_idle * duration
            exact["motherboard"] += pw.others * duration
        for seg in result.segments:
            pw = self.cluster.nodes[seg.node].power
            exact["cpu"] += seg.cpu_active * pw.cpu.delta_p / ppn
            exact["memory"] += seg.mem_active * pw.memory.delta_p / ppn
            exact["io"] += seg.io_active * pw.io.delta_p / ppn
        return exact


def _phase_marks(result: SimResult) -> list[tuple[float, str]]:
    """First entry time of each phase on rank 0 (annotation for plots)."""
    marks: list[tuple[float, str]] = []
    seen: set[str] = set()
    for seg in sorted(result.segments, key=lambda s: s.t0):
        if seg.rank == 0 and seg.phase and seg.phase not in seen:
            seen.add(seg.phase)
            marks.append((seg.t0, seg.phase))
    return marks

"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
applications can catch the whole family with one ``except`` clause while
tests can assert on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A hardware or model description is inconsistent or out of range."""


class ParameterError(ReproError):
    """A model parameter vector (Θ1/Θ2) fails validation."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """All ranks are blocked and no event can make progress."""


class RankError(SimulationError):
    """A rank program raised or misused the communication API."""


class InfeasibleJobsError(ParameterError):
    """Specific jobs cannot run under the given power envelope.

    ``jobs`` names the offenders — ``(job name, cheapest draw in watts)``
    pairs — so schedulers, the HTTP error payload, and operators can see
    exactly which queue entries to drop or re-budget instead of guessing
    from an aggregate message.
    """

    def __init__(self, message: str, jobs: tuple[tuple[str, float], ...]) -> None:
        super().__init__(message)
        self.jobs = jobs


class WireError(ReproError):
    """A JSON wire payload violates the API schema (version, fields, types)."""


class MeasurementError(ReproError):
    """A measurement tool (powerpack / microbench) could not produce data."""


class CalibrationError(ReproError):
    """Parameter fitting failed to converge or had insufficient samples."""

"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
applications can catch the whole family with one ``except`` clause while
tests can assert on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A hardware or model description is inconsistent or out of range."""


class ParameterError(ReproError):
    """A model parameter vector (Θ1/Θ2) fails validation."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """All ranks are blocked and no event can make progress."""


class RankError(SimulationError):
    """A rank program raised or misused the communication API."""


class WireError(ReproError):
    """A JSON wire payload violates the API schema (version, fields, types)."""


class MeasurementError(ReproError):
    """A measurement tool (powerpack / microbench) could not produce data."""


class CalibrationError(ReproError):
    """Parameter fitting failed to converge or had insufficient samples."""

"""Pre-forked multi-worker serving: N processes, one port, one grid plane.

``repro serve --workers N`` runs this module instead of a bare
:func:`repro.api.server.serve`.  The parent binds the listening
socket(s), creates the cross-process grid plane
(:class:`~repro.optimize.shm.SharedGridPlane`) and a stats board
(:class:`~repro.optimize.shm.PoolBoard`), then forks N workers that each
run the existing asyncio serve loop unchanged.  Two accept strategies:

* **SO_REUSEPORT** (Linux, modern BSD/macOS): every worker gets its own
  listening socket bound to the same address, and the kernel load-
  balances accepts across them — no accept mutex, no thundering herd.
* **Inherited socket** (fallback, or ``reuse_port=False``): the parent
  binds once and every forked worker polls the same fd; the kernel
  wakes one on each connection.

Either way the bind happens *before* the fork, so the port is accepting
(connections queue) the moment :meth:`WorkerPool.start` returns.

Lifecycle: the parent supervises — a worker that dies is reaped and a
replacement forked into the same slot; ``SIGTERM``/``SIGINT`` to the
parent fans out as SIGTERM to the workers, each of which stops
accepting, drains in-flight connections, and exits; the parent then
unlinks the shm segments (plane + board) so ``/dev/shm`` is left clean.

Observability: each worker publishes its own counters (requests, errors,
shared-plane traffic) to its board slot; ``/healthz`` answers from *any*
worker with a ``pool`` block listing every member by pid, and
``/metrics`` exports per-pid ``repro_pool_worker_*`` gauges — so the
PR-6/8 dashboards see the whole pool, not one process.
"""

from __future__ import annotations

import errno
import os
import signal
import socket
import threading
import time
import traceback
from contextlib import suppress
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.optimize.engine import default_store
from repro.optimize.shm import (
    DEFAULT_MAX_BYTES,
    HAVE_SHARED_MEMORY,
    PoolBoard,
    SharedGridPlane,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080

#: seconds a worker gets to drain in-flight connections after SIGTERM
#: before the parent escalates to SIGKILL.
DEFAULT_GRACE_S = 5.0

_LISTEN_BACKLOG = 1024

#: how many workers a single pool may run — a sanity bound, not a tuning
#: knob (each worker is a full process with its own interpreter).
MAX_WORKERS = 64

#: per-pool shm namespace uniquifier so sequential pools in one process
#: (tests) never collide on plane/board segment names.
_POOL_SEQ = 0


# ---------------------------------------------------------------------------
# Worker-side runtime: what a forked worker knows about its pool.
# ---------------------------------------------------------------------------


@dataclass
class PoolRuntime:
    """The pool context a worker process carries (None outside pools)."""

    board: PoolBoard
    plane: SharedGridPlane
    slot: int
    workers: int
    so_reuseport: bool
    started: float


#: set inside each forked worker by :meth:`WorkerPool._worker_main`;
#: stays None in single-process serves and in the supervisor parent.
_RUNTIME: PoolRuntime | None = None

_SHARED_EVENTS = ("hits", "superset_hits", "misses", "published")


def _watch_parent(parent_pid: int, poll_every_s: float = 1.0) -> None:
    """Daemon thread: self-SIGTERM when the supervisor disappears.

    A worker whose parent died (crash, SIGKILL) would otherwise serve
    forever as an orphan holding the port and the shm plane open;
    SIGTERM routes it through the normal graceful drain instead.
    """
    while True:
        time.sleep(poll_every_s)
        if os.getppid() != parent_pid:
            os.kill(os.getpid(), signal.SIGTERM)
            return


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _worker_stats() -> dict[str, Any]:
    """This worker's board payload: serving + shared-plane counters."""
    rt = _RUNTIME
    assert rt is not None
    registry = obs_metrics.registry()
    shared = default_store().stats()["shared"]
    now = time.time()
    return {
        "pid": os.getpid(),
        "slot": rt.slot,
        "started": round(rt.started, 3),
        "updated": round(now, 3),
        "uptime_s": round(now - rt.started, 3),
        "requests_total": int(registry.value("repro_http_requests_total")),
        "errors_total": int(registry.value("repro_http_errors_total")),
        "connections_total": int(
            registry.value("repro_http_connections_total")
        ),
        "shared": {event: int(shared[event]) for event in _SHARED_EVENTS},
    }


def publish_worker_stats() -> None:
    """Write this worker's current counters to its board slot."""
    rt = _RUNTIME
    if rt is not None:
        rt.board.write(rt.slot, _worker_stats())


def health_block() -> dict[str, Any] | None:
    """The ``pool`` block of ``/healthz`` — None outside ``--workers``.

    Any worker can answer for the whole pool: it refreshes its own board
    slot, then reads every member's last-published counters.  ``up`` is
    a live kill-0 probe, so a crashed-but-not-yet-respawned sibling
    shows ``up: false`` rather than vanishing.
    """
    rt = _RUNTIME
    if rt is None:
        return None
    publish_worker_stats()
    members: list[dict[str, Any]] = []
    totals = {
        "requests_total": 0,
        "errors_total": 0,
        "shared_hits": 0,
        "shared_superset_hits": 0,
        "shared_misses": 0,
        "shared_published": 0,
    }
    for payload in rt.board.read_all():
        member = dict(payload)
        member["up"] = _pid_alive(int(member.get("pid", 0)))
        members.append(member)
        totals["requests_total"] += int(member.get("requests_total", 0))
        totals["errors_total"] += int(member.get("errors_total", 0))
        shared = member.get("shared", {})
        for event in _SHARED_EVENTS:
            totals[f"shared_{event}"] += int(shared.get(event, 0))
    members.sort(key=lambda m: int(m.get("slot", 0)))
    return {
        "workers": rt.workers,
        "pid": os.getpid(),
        "slot": rt.slot,
        "so_reuseport": rt.so_reuseport,
        "members": members,
        "totals": totals,
    }


# ---------------------------------------------------------------------------
# Worker-side /metrics: per-pid pool gauges, refreshed per render.
# ---------------------------------------------------------------------------

_POOL_FAMILIES: dict[str, Any] | None = None


def _pool_families() -> dict[str, Any]:
    global _POOL_FAMILIES
    if _POOL_FAMILIES is None:
        registry = obs_metrics.registry()
        _POOL_FAMILIES = {
            "workers": registry.gauge(
                "repro_pool_workers",
                "Configured worker count of the serving pool.",
            ),
            "up": registry.gauge(
                "repro_pool_worker_up",
                "1 while a pool worker answers kill-0, by pid and slot.",
                labelnames=("pid", "slot"),
            ),
            "requests": registry.gauge(
                "repro_pool_worker_requests_total",
                "HTTP requests answered by one pool worker.",
                labelnames=("pid",),
            ),
            "errors": registry.gauge(
                "repro_pool_worker_errors_total",
                "HTTP 4xx/5xx responses from one pool worker.",
                labelnames=("pid",),
            ),
            "shared": registry.gauge(
                "repro_pool_worker_grid_shared",
                "Shared-plane grid events in one pool worker, by event.",
                labelnames=("pid", "event"),
            ),
        }
    return _POOL_FAMILIES


def _collect_pool_metrics() -> None:
    """Render hook: mirror the board into per-pid gauges.

    A respawned worker reuses its predecessor's board slot, so dead
    pids drop off the board on their own; this hook then removes their
    now-stale label children so ``/metrics`` doesn't export ghosts.
    """
    rt = _RUNTIME
    if rt is None:
        return
    publish_worker_stats()
    families = _pool_families()
    families["workers"].set(rt.workers)
    live_keys: set[tuple[str, str]] = set()
    live_pids: set[str] = set()
    for member in rt.board.read_all():
        pid = str(member.get("pid", 0))
        slot = str(member.get("slot", 0))
        up = 1.0 if _pid_alive(int(member.get("pid", 0))) else 0.0
        families["up"].labels(pid, slot).set(up)
        families["requests"].labels(pid).set(
            float(member.get("requests_total", 0))
        )
        families["errors"].labels(pid).set(
            float(member.get("errors_total", 0))
        )
        shared = member.get("shared", {})
        for event in _SHARED_EVENTS:
            families["shared"].labels(pid, event).set(
                float(shared.get(event, 0))
            )
        live_keys.add((pid, slot))
        live_pids.add(pid)
    for key, _child in families["up"]._snapshot():
        if key not in live_keys:
            families["up"].remove(*key)
    for name in ("requests", "errors", "shared"):
        for key, _child in families[name]._snapshot():
            if key[0] not in live_pids:
                families[name].remove(*key)


# ---------------------------------------------------------------------------
# The pool itself (parent side).
# ---------------------------------------------------------------------------


class WorkerPool:
    """Pre-fork N serving workers sharing one port and one grid plane.

    The parent process never serves: it binds, forks, supervises
    (respawn on death), and owns shm teardown.  ``reuse_port=None``
    auto-detects ``SO_REUSEPORT``; ``True`` requires it; ``False``
    forces the inherited-socket fallback (useful in tests and on
    platforms where per-socket load balancing misbehaves).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int = 2,
        *,
        max_concurrency: int | None = None,
        sample_every_s: float | None = 5.0,
        shm_max_bytes: int | None = None,
        reuse_port: bool | None = None,
        quiet: bool = False,
        grace_s: float = DEFAULT_GRACE_S,
        worker_setup: Callable[[int], None] | None = None,
    ) -> None:
        if not 1 <= workers <= MAX_WORKERS:
            raise ReproError(
                f"workers must be between 1 and {MAX_WORKERS}, got {workers}"
            )
        if not HAVE_SHARED_MEMORY:
            raise ReproError(
                "multi-worker serving needs POSIX shared memory "
                "(multiprocessing.shared_memory + fcntl), unavailable here"
            )
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ReproError("multi-worker serving requires os.fork")
        self.host = host
        self.port = port  # rewritten to the resolved port by start()
        self.workers = workers
        self.max_concurrency = max_concurrency
        self.sample_every_s = sample_every_s
        self.shm_max_bytes = (
            DEFAULT_MAX_BYTES if shm_max_bytes is None else shm_max_bytes
        )
        self.quiet = quiet
        self.grace_s = grace_s
        self.respawns = 0
        self.so_reuseport = False
        self._reuse_port_req = reuse_port
        self._worker_setup = worker_setup
        self._sockets: list[socket.socket] = []
        self._children: dict[int, int] = {}  # pid -> slot
        self._plane: SharedGridPlane | None = None
        self._board: PoolBoard | None = None
        self._stopping = False
        self._stopped = False
        self._stop_requested = False

    # -- binding ----------------------------------------------------------------

    @staticmethod
    def _listen_socket(
        host: str, port: int, *, reuse_port: bool
    ) -> socket.socket:
        family = socket.AF_INET6 if ":" in host else socket.AF_INET
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.listen(_LISTEN_BACKLOG)
            sock.setblocking(False)
        except OSError as exc:
            sock.close()
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                raise ReproError(
                    f"cannot listen on {host}:{port} — "
                    f"{exc.strerror or 'address already in use'}"
                ) from None
            raise
        return sock

    def _bind_sockets(self) -> None:
        want = self._reuse_port_req
        use = (
            want
            if want is not None
            else hasattr(socket, "SO_REUSEPORT")
        )
        if use and not hasattr(socket, "SO_REUSEPORT"):
            raise ReproError(
                "SO_REUSEPORT is not available on this platform; "
                "pass reuse_port=False for the inherited-socket fallback"
            )
        if use:
            # the first bind resolves port 0; siblings join the result
            first = self._listen_socket(self.host, self.port, reuse_port=True)
            port = first.getsockname()[1]
            sockets = [first]
            try:
                for _ in range(self.workers - 1):
                    sockets.append(
                        self._listen_socket(self.host, port, reuse_port=True)
                    )
            except BaseException:
                for sock in sockets:
                    sock.close()
                raise
            self._sockets, self.port, self.so_reuseport = sockets, port, True
            return
        sock = self._listen_socket(self.host, self.port, reuse_port=False)
        self._sockets = [sock]
        self.port = sock.getsockname()[1]
        self.so_reuseport = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Bind, create the shm plane/board, and fork every worker."""
        global _POOL_SEQ
        if self._sockets:
            raise ReproError("pool already started")
        _POOL_SEQ += 1
        self._bind_sockets()
        name = f"{os.getpid():x}p{_POOL_SEQ}"
        try:
            self._plane = SharedGridPlane(
                name, create=True, max_bytes=self.shm_max_bytes
            )
            self._board = PoolBoard(name, self.workers, create=True)
        except BaseException:
            self.stop()
            raise
        for slot in range(self.workers):
            self._spawn(slot)
        if not self.quiet:
            mode = (
                "SO_REUSEPORT" if self.so_reuseport else "inherited socket"
            )
            print(
                f"repro api pool: {self.workers} worker(s) on "
                f"http://{self.host}:{self.port} ({mode}, "
                f"shared grid plane {name!r})",
                flush=True,
            )

    def _spawn(self, slot: int) -> int:
        pid = os.fork()
        if pid > 0:
            self._children[pid] = slot
            return pid
        # -- child: run the serve loop, then leave WITHOUT unwinding the
        # parent's stack (atexit/pytest hooks belong to the parent)
        code = 70
        try:
            code = self._worker_main(slot)
        except BaseException:  # noqa: BLE001 - the child must never return
            traceback.print_exc()
        finally:
            os._exit(code)
        return 0  # unreachable

    def _worker_main(self, slot: int) -> int:
        global _RUNTIME
        # Ctrl-C goes to the whole foreground group: the parent turns it
        # into per-worker SIGTERM, which the serve loop drains on — a
        # raw KeyboardInterrupt here would skip the drain.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        threading.Thread(
            target=_watch_parent, args=(os.getppid(),), daemon=True
        ).start()
        assert self._plane is not None and self._board is not None
        sock = (
            self._sockets[slot] if self.so_reuseport else self._sockets[0]
        )
        for other in self._sockets:
            if other is not sock:
                other.close()
        default_store().attach_plane(self._plane)
        _RUNTIME = PoolRuntime(
            board=self._board,
            plane=self._plane,
            slot=slot,
            workers=self.workers,
            so_reuseport=self.so_reuseport,
            started=time.time(),
        )
        # register the gauge families eagerly: render() snapshots the
        # family list *before* running collectors, so families created
        # lazily inside the hook would miss their first exposition
        _pool_families()
        obs_metrics.registry().register_collector(_collect_pool_metrics)
        publish_worker_stats()
        if self._worker_setup is not None:
            self._worker_setup(slot)
        from repro.api.server import serve

        return serve(
            self.host,
            self.port,
            max_concurrency=self.max_concurrency,
            sample_every_s=self.sample_every_s,
            sock=sock,
            handle_sigterm=True,
            quiet=True,  # the parent prints the pool banner
            drain_grace_s=self.grace_s,
        )

    # -- supervision ------------------------------------------------------------

    @property
    def pids(self) -> list[int]:
        return sorted(self._children)

    def request_stop(self) -> None:
        """Ask :meth:`wait` to return (signal-handler safe)."""
        self._stop_requested = True

    def poll(self) -> None:
        """Reap exited workers; respawn them unless the pool is stopping."""
        for pid in list(self._children):
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                done = pid
            if done == 0:
                continue
            slot = self._children.pop(pid)
            if not self._stopping and not self._stop_requested:
                self.respawns += 1
                self._spawn(slot)

    def wait(self, poll_every_s: float = 0.1) -> None:
        """Supervise until :meth:`request_stop` (then tear down)."""
        try:
            while self._children and not self._stop_requested:
                self.poll()
                time.sleep(poll_every_s)
        finally:
            self.stop()

    def stop(self) -> None:
        """SIGTERM-drain every worker, escalate, and unlink all shm."""
        if self._stopped:
            return
        self._stopping = True
        for pid in list(self._children):
            with suppress(ProcessLookupError):
                os.kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + self.grace_s + 2.0
        while self._children and time.monotonic() < deadline:
            self._reap()
            if self._children:
                time.sleep(0.05)
        for pid in list(self._children):  # drain took too long: escalate
            with suppress(ProcessLookupError):
                os.kill(pid, signal.SIGKILL)
        while self._children:
            pid = next(iter(self._children))
            with suppress(ChildProcessError):
                os.waitpid(pid, 0)
            self._children.pop(pid, None)
        for sock in self._sockets:
            sock.close()
        self._sockets = []
        if self._board is not None:
            self._board.destroy()
            self._board = None
        if self._plane is not None:
            self._plane.destroy()
            self._plane = None
        self._stopped = True

    def _reap(self) -> None:
        for pid in list(self._children):
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover
                done = pid
            if done:
                self._children.pop(pid, None)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_pool(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 2,
    *,
    max_concurrency: int | None = None,
    sample_every_s: float | None = 5.0,
    shm_max_bytes: int | None = None,
    reuse_port: bool | None = None,
    quiet: bool = False,
    grace_s: float = DEFAULT_GRACE_S,
    ready=None,
) -> int:
    """Run a supervised worker pool until SIGTERM/SIGINT (CLI entry).

    Mirrors :func:`repro.api.server.serve`: ``ready`` (an Event-alike)
    gets ``.address`` and is set once the port is bound and accepting.
    """
    pool = WorkerPool(
        host,
        port,
        workers,
        max_concurrency=max_concurrency,
        sample_every_s=sample_every_s,
        shm_max_bytes=shm_max_bytes,
        reuse_port=reuse_port,
        quiet=quiet,
        grace_s=grace_s,
    )
    pool.start()
    if ready is not None:
        ready.address = (pool.host, pool.port)
        ready.pool = pool  # embedding hook: callers drive request_stop()
        ready.set()
    previous = {}
    if threading.current_thread() is threading.main_thread():
        # embedded supervisors (tests) drive request_stop() themselves;
        # installing handlers off the main thread is a ValueError
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: pool.request_stop()
            )
    try:
        pool.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        pool.stop()
    if not quiet:
        print("repro api pool: shut down cleanly", flush=True)
    return 0

"""The operation registry: wire op names → request/response types.

One place binds the wire surface together, so the HTTP server, the CLI,
and tests all resolve payloads through the same table.  Registering a new
operation means adding its request/response pair here — nothing else in
the serving stack changes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.types import (
    API_VERSION,
    AlertsRequest,
    AlertsResponse,
    BatchRequest,
    BatchResponse,
    BudgetQuery,
    BudgetResponse,
    DeadlineQuery,
    DeadlineResponse,
    EvaluateRequest,
    EvaluateResponse,
    FederateRequest,
    FederateResponse,
    HeteroRequest,
    HeteroResponse,
    IsoEEQuery,
    IsoEEResponse,
    MetricsRequest,
    MetricsResponse,
    ParetoQuery,
    ParetoResponse,
    Response,
    ScheduleRequest,
    ScheduleResponse,
    SimulateRequest,
    SimulateResponse,
    SurfaceRequest,
    SurfaceResponse,
    SweepRequest,
    SweepResponse,
    TimeSeriesRequest,
    TimeSeriesResponse,
    TraceRequest,
    TraceResponse,
    ValidateRequest,
    ValidateResponse,
    WireRecord,
)
from repro.errors import WireError

#: wire op name → request type, in serving-surface order.
REQUEST_TYPES: dict[str, type[WireRecord]] = {
    cls.op: cls
    for cls in (
        EvaluateRequest,
        SweepRequest,
        SurfaceRequest,
        ValidateRequest,
        BudgetQuery,
        DeadlineQuery,
        IsoEEQuery,
        ParetoQuery,
        ScheduleRequest,
        FederateRequest,
        HeteroRequest,
        SimulateRequest,
        BatchRequest,
        MetricsRequest,
        TraceRequest,
        TimeSeriesRequest,
        AlertsRequest,
    )
}

#: wire op name → response type (same keys as :data:`REQUEST_TYPES`).
RESPONSE_TYPES: dict[str, type[Response]] = {
    cls.op: cls
    for cls in (
        EvaluateResponse,
        SweepResponse,
        SurfaceResponse,
        ValidateResponse,
        BudgetResponse,
        DeadlineResponse,
        IsoEEResponse,
        ParetoResponse,
        ScheduleResponse,
        FederateResponse,
        HeteroResponse,
        SimulateResponse,
        BatchResponse,
        MetricsResponse,
        TraceResponse,
        TimeSeriesResponse,
        AlertsResponse,
    )
}

assert set(REQUEST_TYPES) == set(RESPONSE_TYPES)


def operations() -> tuple[str, ...]:
    """Every wire op name this build serves."""
    return tuple(REQUEST_TYPES)


def _resolve(payload: Mapping[str, Any], table: Mapping[str, type]) -> type:
    if not isinstance(payload, Mapping):
        raise WireError(
            f"wire payload must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op is None:
        raise WireError(
            f"payload carries no 'op'; known operations: {sorted(table)}"
        )
    try:
        return table[op]
    except KeyError:
        raise WireError(
            f"unknown operation {op!r}; known operations: {sorted(table)}"
        ) from None


def request_from_dict(payload: Mapping[str, Any]) -> WireRecord:
    """Parse any request payload via its ``op`` tag."""
    return _resolve(payload, REQUEST_TYPES).from_dict(payload)


def response_from_dict(payload: Mapping[str, Any]) -> Response:
    """Parse any response payload via its ``op`` tag."""
    cls = _resolve(payload, RESPONSE_TYPES)
    response = cls.from_dict(payload)
    assert isinstance(response, Response)
    return response


__all__ = [
    "API_VERSION",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "operations",
    "request_from_dict",
    "response_from_dict",
]

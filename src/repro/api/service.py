"""The single dispatch facade: one typed request in, one response out.

``dispatch()`` is the only entry point consumers need: it resolves the
cluster preset and paper model once per distinct selector (memoised), and
routes each request type to the engine that answers it — the scalar
evaluator, the vectorized grid, the contour tracer, the budget solvers,
the validation harness, or the cluster scheduler.

Responses are memoised per request value (every request is a frozen,
hashable dataclass and every engine is deterministic, so budget queries
and friends are pure functions of their request).  ``validate`` runs a
full discrete-event simulation; its determinism comes from the seeded
noise model, so it caches soundly too.
"""

from __future__ import annotations

import time
from functools import lru_cache

from repro.analysis.surface import surface_from_grid
from repro.api.types import (
    API_VERSION,
    AlertsRequest,
    AlertsResponse,
    BatchError,
    BatchItem,
    BatchRequest,
    BatchResponse,
    BudgetQuery,
    BudgetResponse,
    DeadlineQuery,
    DeadlineResponse,
    EvaluateRequest,
    EvaluateResponse,
    FederateRequest,
    FederateResponse,
    HeteroRequest,
    HeteroResponse,
    IsoEEQuery,
    IsoEEResponse,
    MetricsRequest,
    MetricsResponse,
    ModelRequest,
    ParetoQuery,
    ParetoResponse,
    Response,
    ScheduleRequest,
    ScheduleResponse,
    SimulateRequest,
    SimulateResponse,
    SurfaceRequest,
    SurfaceResponse,
    SweepRequest,
    SweepResponse,
    TimeSeriesRequest,
    TimeSeriesResponse,
    TraceRequest,
    TraceResponse,
    ValidateRequest,
    ValidateResponse,
    WireRecord,
)
from repro.cluster.presets import cluster_preset
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError, ReproError, WireError
from repro.federation.registry import default_registry
from repro.federation.router import route_jobs
from repro.hetero import solve as hetero_solve
from repro.hetero.space import HeteroSpace, PoolSpec
from repro.obs import metrics as obs_metrics
from repro.obs import slo as obs_slo
from repro.obs import store as obs_store
from repro.obs.trace import span
from repro.optimize import (
    default_store,
    grid_for,
    iso_ee_curve,
    max_speedup_under_power,
    max_speedup_under_power_many,
    min_energy_under_deadline,
    min_energy_under_deadline_many,
    pareto_frontier,
    schedule_jobs,
)
from repro.paperdata import paper_model
from repro.sim.site import run_scenario
from repro.units import GHZ

#: memoised responses kept per process (stateless queries re-serve free).
RESPONSE_CACHE_SIZE = 512

#: hard ceiling on batch fan-out — a backstop against accidental
#: megabatches, far above any sane single round trip.
MAX_BATCH_ITEMS = 1_000

# ---------------------------------------------------------------------------
# Instrumentation: per-op dispatch latency/count/error-kind, batch item
# outcomes, and a render-time re-export of every memo layer's census so
# the registry is the one view ``/metrics``, ``/healthz``, and the CLI
# all read.
# ---------------------------------------------------------------------------

_DISPATCH_TOTAL = obs_metrics.registry().counter(
    "repro_dispatch_total",
    "Requests answered by the dispatch facade, by operation.",
    labelnames=("op",),
)
_DISPATCH_ERRORS = obs_metrics.registry().counter(
    "repro_dispatch_errors_total",
    "Dispatch failures by operation and error kind.",
    labelnames=("op", "kind"),
)
_DISPATCH_LATENCY = obs_metrics.registry().histogram(
    "repro_dispatch_latency_seconds",
    "Dispatch facade latency by operation (cache hits included).",
    labelnames=("op",),
)
_BATCH_ITEMS = obs_metrics.registry().counter(
    "repro_batch_items_total",
    "Batch item outcomes by sub-operation and status.",
    labelnames=("op", "status"),
)

_CACHE_HITS = obs_metrics.registry().gauge(
    "repro_cache_hits_total",
    "Cumulative hits of the serving-side memo layers.",
    labelnames=("cache",),
)
_CACHE_MISSES = obs_metrics.registry().gauge(
    "repro_cache_misses_total",
    "Cumulative misses of the serving-side memo layers.",
    labelnames=("cache",),
)
_CACHE_ENTRIES = obs_metrics.registry().gauge(
    "repro_cache_entries",
    "Resident entries per serving-side memo layer.",
    labelnames=("cache",),
)
_GRID_STORE_EVENTS = obs_metrics.registry().gauge(
    "repro_grid_store_events_total",
    "Cumulative grid-store events (incl. the hetero side-cache).",
    labelnames=("event",),
)
_GRID_STORE_BYTES = obs_metrics.registry().gauge(
    "repro_grid_store_bytes",
    "Resident bytes of cached grids.",
    labelnames=("kind",),
)

# build identity as a constant-1 gauge with informative labels — the
# Prometheus idiom for exposing versions (joinable against any series).
# Populated lazily by the collector: repro/__init__ imports this module,
# so __version__ does not exist yet at our own import time.
_BUILD_INFO = obs_metrics.registry().gauge(
    "repro_build_info",
    "Build identity: package version and the wire version this build speaks.",
    labelnames=("version", "api"),
)


def _collect_build_info() -> None:
    import repro

    _BUILD_INFO.labels(
        getattr(repro, "__version__", "unknown"), f"v{API_VERSION}"
    ).set(1)


obs_metrics.registry().register_collector(_collect_build_info)


def _collect_cache_metrics() -> None:
    """Refresh the cache gauges from the live memo layers (render hook)."""
    info = cache_info()
    for cache in ("responses", "models", "spaces"):
        record = info[cache]
        _CACHE_HITS.labels(cache).set(record.hits)
        _CACHE_MISSES.labels(cache).set(record.misses)
        _CACHE_ENTRIES.labels(cache).set(record.currsize)
    store = info["grid_store"]
    for event in (
        "hits", "superset_hits", "misses", "evictions",
        "pair_batches", "pair_points",
        "hetero_hits", "hetero_misses", "hetero_evictions",
    ):
        _GRID_STORE_EVENTS.labels(event).set(store[event])
    _CACHE_ENTRIES.labels("grid_store").set(store["entries"])
    _CACHE_ENTRIES.labels("grid_store_hetero").set(store["hetero_entries"])
    _GRID_STORE_BYTES.labels("homogeneous").set(store["bytes"])
    _GRID_STORE_BYTES.labels("hetero").set(store["hetero_bytes"])
    # cross-process plane traffic (all zeros outside --workers mode)
    shared = store["shared"]
    for event in ("hits", "superset_hits", "misses", "published", "evicted"):
        _GRID_STORE_EVENTS.labels(f"shared_{event}").set(shared[event])
    _GRID_STORE_BYTES.labels("shared").set(shared["shared_bytes"])
    _GRID_STORE_BYTES.labels("shared_segments").set(shared["segment_bytes"])
    _CACHE_ENTRIES.labels("grid_store_shared").set(shared["attached_segments"])


obs_metrics.registry().register_collector(_collect_cache_metrics)


@lru_cache(maxsize=64)
def _resolved_model(
    benchmark: str,
    klass: str,
    cluster: str,
    niter: int | None,
    nodes: int,
) -> tuple[IsoEnergyModel, float]:
    """(model, class n) with the preset sized for the largest requested p.

    Presets clamp to the testbed's physical size, so asking for p beyond
    it still resolves (the analytic model itself is machine-vector-, not
    node-count-, dependent; sizing matters to schedulers and future
    occupancy checks).
    """
    machine_room = cluster_preset(cluster, nodes)
    return paper_model(
        benchmark.upper(),
        klass.upper(),
        cluster=machine_room,
        niter=niter,
        name=f"{benchmark.upper()}.{klass.upper()} on {machine_room.name}",
    )


def _model_for(request: ModelRequest, nodes: int) -> tuple[IsoEnergyModel, float]:
    return _resolved_model(
        request.benchmark, request.klass, request.cluster, request.niter,
        max(int(nodes), 1),
    )


def _ghz(values: tuple[float, ...]) -> list[float]:
    return [f * GHZ for f in values]


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


def _evaluate(req: EvaluateRequest) -> EvaluateResponse:
    model, n = _model_for(req, req.p)
    f = req.freq_ghz * GHZ if req.freq_ghz is not None else None
    return EvaluateResponse(
        model=model.name, point=model.evaluate(n=n, p=req.p, f=f)
    )


def _sweep(req: SweepRequest) -> SweepResponse:
    if not req.p_values:
        raise ParameterError("sweep needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    grid = grid_for(model, p_values=req.p_values, n_values=[n])
    return SweepResponse(
        model=model.name,
        points=tuple(
            grid.point(ip, 0, 0) for ip in range(len(req.p_values))
        ),
    )


def _surface(req: SurfaceRequest) -> SurfaceResponse:
    if not req.p_values:
        raise ParameterError("surface needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    n = n * req.n_factor
    if req.axis == "f":
        grid = grid_for(
            model, p_values=req.p_values, f_values=_ghz(req.f_values_ghz),
            n_values=[n],
        )
        surf = surface_from_grid(grid, metric="ee", axis="f")
    elif req.axis == "n":
        grid = grid_for(
            model, p_values=req.p_values, f_values=None,
            n_values=[n * x for x in req.n_factors],
        )
        surf = surface_from_grid(grid, metric="ee", axis="n")
    else:
        raise ParameterError(f"axis must be 'f' or 'n', got {req.axis!r}")
    return SurfaceResponse(
        model=model.name,
        axis=req.axis,
        x=tuple(int(p) for p in surf.x),
        y=tuple(float(v) for v in surf.y),
        values=tuple(tuple(float(v) for v in row) for row in surf.values),
    )


def _validate(req: ValidateRequest) -> ValidateResponse:
    from repro.validation.harness import validate

    machine_room = cluster_preset(req.cluster, max(req.p, 1))
    result = validate(
        machine_room, req.benchmark.upper(), klass=req.klass.upper(),
        p=req.p, niter=req.niter, seed=req.seed,
    )
    return ValidateResponse(
        benchmark=result.benchmark,
        cluster=machine_room.name,
        n=result.n,
        p=result.p,
        predicted_j=result.predicted_j,
        measured_j=result.measured_j,
        abs_error_pct=result.abs_error_pct,
        sim_seconds=result.sim_seconds,
        model_seconds=result.model_seconds,
        messages=result.messages,
        bytes=result.bytes,
    )


def _budget(req: BudgetQuery) -> BudgetResponse:
    if not req.p_values:
        raise ParameterError("budget query needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    rec = max_speedup_under_power(
        model, n=n * req.n_factor, budget_w=req.budget_w,
        p_values=req.p_values, f_values=_ghz(req.f_values_ghz),
    )
    return BudgetResponse(model=model.name, recommendation=rec)


def _deadline(req: DeadlineQuery) -> DeadlineResponse:
    if not req.p_values:
        raise ParameterError("deadline query needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    rec = min_energy_under_deadline(
        model, n=n * req.n_factor, t_max=req.deadline_s,
        p_values=req.p_values, f_values=_ghz(req.f_values_ghz),
    )
    return DeadlineResponse(model=model.name, recommendation=rec)


def _isoee(req: IsoEEQuery) -> IsoEEResponse:
    if not req.p_values:
        raise ParameterError("iso-EE query needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    curve = iso_ee_curve(
        model, target_ee=req.target_ee, p_values=req.p_values,
        n_seed=n * req.n_factor,
    )
    return IsoEEResponse(
        model=model.name, target_ee=req.target_ee, points=tuple(curve)
    )


def _pareto(req: ParetoQuery) -> ParetoResponse:
    if not req.p_values:
        raise ParameterError("Pareto query needs at least one p value")
    model, n = _model_for(req, max(req.p_values))
    frontier = pareto_frontier(
        model, n=n * req.n_factor, p_values=req.p_values,
        f_values=_ghz(req.f_values_ghz),
    )
    return ParetoResponse(model=model.name, points=tuple(frontier))


def _schedule(req: ScheduleRequest) -> ScheduleResponse:
    schedule = schedule_jobs(
        req.jobs,
        cluster=req.cluster,
        power_budget=req.power_budget_w,
        nodes=req.nodes,
        max_nodes=req.max_nodes,
        policy=req.policy,
        ee_floor=req.ee_floor,
    )
    return ScheduleResponse(
        cluster=schedule.cluster,
        power_budget_w=schedule.power_budget,
        policy=schedule.policy,
        assignments=schedule.assignments,
        total_power_w=schedule.total_power,
        headroom_w=schedule.headroom_w,
        makespan_s=schedule.makespan,
        total_energy_j=schedule.total_energy,
    )


@lru_cache(maxsize=64)
def _resolved_space(
    benchmark: str,
    klass: str,
    niter: int | None,
    pools: tuple[PoolSpec, ...],
    policies: tuple[str, ...],
    n_factor: float,
) -> HeteroSpace:
    """The resolved mixed-pool space, memoised per distinct selector.

    Memoisation is what makes repeated and batched hetero queries share
    one grid: the same selector always yields the same space *object*,
    and the store's group-aware cache keys on that identity.  Pool
    machine names resolve through the process-wide federation registry,
    so the registry-mutation hook below must drop this cache too.
    """
    return hetero_solve.space_for(
        benchmark, klass, niter, pools=pools, policies=policies,
        n_factor=n_factor,
    )


def _hetero(req: HeteroRequest) -> HeteroResponse:
    wants_any = (
        req.budget_w is not None
        or req.deadline_s is not None
        or req.pareto
        or req.policy_gap
    )
    if not wants_any:
        raise ParameterError(
            "nothing to solve: set budget_w, deadline_s, pareto, "
            "and/or policy_gap"
        )
    space = _resolved_space(
        req.benchmark.upper(), req.klass.upper(), req.niter, req.pools,
        req.policies, req.n_factor,
    )
    budget = (
        hetero_solve.max_speedup_under_power(space, budget_w=req.budget_w)
        if req.budget_w is not None
        else None
    )
    deadline = (
        hetero_solve.min_energy_under_deadline(space, t_max=req.deadline_s)
        if req.deadline_s is not None
        else None
    )
    frontier = (
        tuple(hetero_solve.pareto_frontier(space)) if req.pareto else ()
    )
    gap = hetero_solve.policy_gap(space) if req.policy_gap else None
    return HeteroResponse(
        model=space.label,
        allocations=space.size,
        budget=budget,
        deadline=deadline,
        pareto=frontier,
        policy_gap=gap,
    )


def _federate(req: FederateRequest) -> FederateResponse:
    shards = default_registry().build_site(req.shards)
    fed = route_jobs(
        shards,
        req.jobs,
        budget_w=req.budget_w,
        strategy=req.strategy,
        metric=req.metric,
    )
    return FederateResponse(
        budget_w=fed.budget_w,
        strategy=fed.strategy,
        metric=fed.metric,
        allocations=fed.partition.allocations,
        plans=fed.plans,
        total_allocated_w=fed.total_allocated_w,
        total_power_w=fed.total_power_w,
        site_headroom_w=fed.site_headroom_w,
        makespan_s=fed.makespan_s,
        total_energy_j=fed.total_energy_j,
    )


def _simulate(req: SimulateRequest) -> SimulateResponse:
    """One scenario end to end: arrivals, online placement, KPI report.

    Deterministic per request value (seeded demand, (time, seq)-ordered
    dispatch), so identical payloads may serve from the dispatch cache —
    like ``validate``, whose determinism also comes from a seed.  Shard
    cluster names resolve through the process-wide registry; the
    registry-mutation hook clears the cache when that changes.
    """
    result = run_scenario(req.scenario)
    return SimulateResponse(
        report=result.report,
        events=result.events if req.include_events else (),
    )


def _metrics(req: MetricsRequest) -> MetricsResponse:
    """The registry snapshot — never memoised (it changes per call)."""
    return MetricsResponse(
        text=obs_metrics.registry().render(
            prefix=req.filter if req.filter else None
        )
    )


def _trace(req: TraceRequest) -> TraceResponse:
    """One retained span tree — never memoised (rings churn)."""
    if not req.trace_id:
        raise ParameterError("trace query needs a trace_id")
    record = obs_store.trace_store().get(req.trace_id)
    if record is None:
        known = obs_store.trace_store().stats()
        raise ParameterError(
            f"trace {req.trace_id!r} is not retained "
            f"({known['recent_traces']} recent / {known['slow_traces']} "
            f"slow traces in the store)"
        )
    return TraceResponse(
        trace_id=record.trace_id,
        slow=record.slow,
        dropped=record.dropped,
        duration_s=record.duration_s,
        spans=record.spans,
    )


def _timeseries(req: TimeSeriesRequest) -> TimeSeriesResponse:
    """Window rollups — never memoised; forces one fresh sample so
    in-process callers (the CLI without a serving ticker) always have a
    current point to roll up against."""
    if req.window_s <= 0.0:
        raise ParameterError(
            f"window_s must be positive, got {req.window_s!r}"
        )
    rec = obs_store.recorder()
    rec.sample()
    rollup = rec.rollup(req.window_s, prefix=req.prefix)
    return TimeSeriesResponse(
        window_s=rollup.window_s,
        samples=rollup.samples,
        span_s=rollup.span_s,
        series=rollup.series,
    )


def _alerts(req: AlertsRequest) -> AlertsResponse:
    """SLO rule evaluation — never memoised; samples first so rules see
    the registry as of now even without a serving ticker."""
    obs_store.recorder().sample()
    states = obs_slo.engine().evaluate()
    return AlertsResponse(
        firing=sum(1 for s in states if s.state == "firing"),
        pending=sum(1 for s in states if s.state == "pending"),
        alerts=states,
    )


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


def _error_item(exc: ReproError) -> BatchItem:
    return BatchItem(
        ok=False, error=BatchError(type=type(exc).__name__, message=str(exc))
    )


def _run_item(item: WireRecord) -> BatchItem:
    """One non-grouped batch item through the ordinary dispatch path.

    The per-item span nests under the batch's ``dispatch.batch`` span
    (same trace id), so a batch renders as one waterfall with a child
    per slot instead of disconnected fragments.
    """
    try:
        with span(f"batch.{item.op}"):
            if type(item) in _UNCACHED:
                return BatchItem(
                    ok=True, response=_HANDLERS[type(item)](item)
                )
            return BatchItem(ok=True, response=_dispatch_cached(item))
    except ReproError as exc:
        return _error_item(exc)


def _constraint_group_key(item: BudgetQuery | DeadlineQuery) -> tuple:
    """Everything that determines the grid a budget/deadline item needs.

    Items differing only in their threshold (``budget_w`` /
    ``deadline_s``) land in one group and are answered by a single
    ``*_many`` pass over one shared grid.
    """
    return (
        type(item),
        item.benchmark,
        item.klass,
        item.cluster,
        item.niter,
        item.p_values,
        item.f_values_ghz,
        item.n_factor,
    )


def _solve_constraint_group(
    items: list[BudgetQuery] | list[DeadlineQuery],
) -> list[BatchItem]:
    """Answer one group of same-grid budget/deadline items in bulk."""
    first = items[0]
    is_budget = isinstance(first, BudgetQuery)
    kind = "budget" if is_budget else "deadline"
    try:
        if not first.p_values:
            raise ParameterError(f"{kind} query needs at least one p value")
        model, n = _model_for(first, max(first.p_values))
        if is_budget:
            solved = max_speedup_under_power_many(
                model,
                n=n * first.n_factor,
                budgets=[item.budget_w for item in items],
                p_values=first.p_values,
                f_values=_ghz(first.f_values_ghz),
            )
        else:
            solved = min_energy_under_deadline_many(
                model,
                n=n * first.n_factor,
                deadlines=[item.deadline_s for item in items],
                p_values=first.p_values,
                f_values=_ghz(first.f_values_ghz),
            )
    except ReproError as exc:
        # a selector/grid failure hits every item of the group the same
        # way a single dispatch of each would
        return [_error_item(exc)] * len(items)
    wrap = BudgetResponse if is_budget else DeadlineResponse
    return [
        _error_item(rec)
        if isinstance(rec, ReproError)
        else BatchItem(
            ok=True, response=wrap(model=model.name, recommendation=rec)
        )
        for rec in solved
    ]


def _batch(req: BatchRequest) -> BatchResponse:
    """Fan one payload across its sub-queries, grids shared per signature.

    Budget/deadline items sharing a grid signature are solved by one
    vectorized ``*_many`` pass; every other item flows through the
    ordinary dispatch path — which itself rides the shared
    :class:`~repro.optimize.engine.GridStore`, so overlapping surface /
    Pareto / schedule items within the batch reuse evaluations too.
    Item answers (including error slots) are value-identical to what the
    equivalent single dispatches would return.
    """
    if not req.items:
        raise ParameterError("a batch needs at least one item")
    if len(req.items) > MAX_BATCH_ITEMS:
        raise ParameterError(
            f"batch carries {len(req.items)} items; "
            f"the ceiling is {MAX_BATCH_ITEMS}"
        )
    results: list[BatchItem | None] = [None] * len(req.items)
    groups: dict[tuple, list[int]] = {}
    for i, item in enumerate(req.items):
        if isinstance(item, (BudgetQuery, DeadlineQuery)):
            groups.setdefault(_constraint_group_key(item), []).append(i)
        else:
            results[i] = _run_item(item)
    for indices in groups.values():
        group = [req.items[i] for i in indices]
        with span(f"batch.{group[0].op}"):
            answers = _solve_constraint_group(group)
        for i, answer in zip(indices, answers):
            results[i] = answer
    for item, result in zip(req.items, results):
        _BATCH_ITEMS.labels(item.op, "ok" if result.ok else "error").inc()
    return BatchResponse(items=tuple(results))


_HANDLERS = {
    EvaluateRequest: _evaluate,
    SweepRequest: _sweep,
    SurfaceRequest: _surface,
    ValidateRequest: _validate,
    BudgetQuery: _budget,
    DeadlineQuery: _deadline,
    IsoEEQuery: _isoee,
    ParetoQuery: _pareto,
    ScheduleRequest: _schedule,
    FederateRequest: _federate,
    HeteroRequest: _hetero,
    SimulateRequest: _simulate,
    BatchRequest: _batch,
    MetricsRequest: _metrics,
    TraceRequest: _trace,
    TimeSeriesRequest: _timeseries,
    AlertsRequest: _alerts,
}

#: request types whose answers change over time — never memoised.
_UNCACHED = frozenset(
    {MetricsRequest, TraceRequest, TimeSeriesRequest, AlertsRequest}
)


@lru_cache(maxsize=RESPONSE_CACHE_SIZE)
def _dispatch_cached(request: WireRecord) -> Response:
    return _HANDLERS[type(request)](request)


# federate responses depend on the process-wide shard registry, not just
# the request value: rebinding a machine name must drop every memoised
# response or identical payloads would serve schedules for the old
# hardware definition.  The grid store is cleared alongside — its old
# entries are keyed by the now-unreachable model objects and would only
# pin dead hardware definitions in memory.
def _on_registry_mutation() -> None:
    _dispatch_cached.cache_clear()
    _resolved_space.cache_clear()  # pool machine names resolve there too
    default_store().clear()


default_registry().on_mutation(_on_registry_mutation)


def dispatch(request: WireRecord) -> Response:
    """Answer one typed request through the matching engine, memoised.

    The single stable entry point the CLI, the HTTP server, and any
    embedding application share.  Raises
    :class:`~repro.errors.ReproError` subclasses on invalid requests;
    anything non-request raises :class:`~repro.errors.WireError`.
    """
    if type(request) not in _HANDLERS:
        raise WireError(
            f"dispatch() takes a request type, got {type(request).__name__}"
        )
    t0 = time.perf_counter()
    try:
        # the dispatch span is every trace's root: when a trace id is
        # active (HTTP request, CLI invocation), engine spans underneath
        # (grid.evaluate, sim.run, batch.*) nest under it in the store
        with span(f"dispatch.{request.op}"):
            if type(request) in _UNCACHED:
                return _HANDLERS[type(request)](request)
            return _dispatch_cached(request)
    except Exception as exc:
        _DISPATCH_ERRORS.labels(request.op, type(exc).__name__).inc()
        raise
    finally:
        _DISPATCH_TOTAL.labels(request.op).inc()
        _DISPATCH_LATENCY.labels(request.op).observe(time.perf_counter() - t0)


def cache_info() -> dict[str, object]:
    """Hit/miss statistics of every serving-side memo layer.

    ``responses``, ``models``, and ``spaces`` (resolved mixed-pool
    search spaces) are ``functools`` ``CacheInfo`` records;
    ``grid_store`` is the shared :class:`~repro.optimize.engine.GridStore`
    census (exact hits, superset slices, misses, resident bytes, contour
    pair traffic, and the hetero-grid hit/miss counters) — the numbers
    an operator watches to see batch amortization working.
    """
    return {
        "responses": _dispatch_cached.cache_info(),
        "models": _resolved_model.cache_info(),
        "spaces": _resolved_space.cache_info(),
        "grid_store": default_store().stats(),
    }


def cache_stats_payload() -> dict[str, dict[str, int]]:
    """:func:`cache_info` as plain JSON-ready mappings.

    The shape ``/healthz`` embeds under ``"caches"`` and
    ``repro cache-stats --json`` prints.
    """
    info = cache_info()
    recorder = obs_store.recorder()
    return {
        "responses": dict(info["responses"]._asdict()),
        "models": dict(info["models"]._asdict()),
        "spaces": dict(info["spaces"]._asdict()),
        "grid_store": dict(info["grid_store"]),
        "trace_store": obs_store.trace_store().stats(),
        "timeseries": {
            "samples": len(recorder),
            "capacity": recorder.capacity,
        },
    }


def clear_caches() -> None:
    """Drop every memoised response, resolved model/space, and cached grid."""
    _dispatch_cached.cache_clear()
    _resolved_model.cache_clear()
    _resolved_space.cache_clear()
    default_store().clear()

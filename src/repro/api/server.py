"""A stdlib-only asyncio HTTP/JSON front end for the dispatch facade.

``repro serve`` binds this server; each operation is exposed at
``POST /v1/<op>`` with the request's ``to_dict()`` JSON as the body
(the ``op``/``v`` envelope fields may be omitted — the path names the
operation and the version defaults to current).  ``GET /healthz``
answers liveness probes with the build and wire versions.

Design notes:

* HTTP/1.1 parsing is deliberately minimal (request line, headers,
  ``Content-Length`` body) — the protocol surface a JSON decision
  service needs, with zero dependencies.
* Connections are **persistent** by HTTP/1.1 default: a client may
  pipeline many requests over one socket, and the server answers each
  with ``Connection: keep-alive`` until the client asks to close (or
  speaks HTTP/1.0 without ``keep-alive``).  Error replies always close —
  after a framing error the byte stream cannot be trusted.
* ``max_concurrency`` bounds in-flight connections with a semaphore;
  excess connections receive an immediate structured ``503`` instead of
  queueing without bound — saturation is a load-balancer signal, not a
  hidden latency cliff.
* Engine work runs in a thread-pool executor so a slow ``validate``
  simulation never blocks health checks or concurrent queries; repeat
  queries are answered straight from the dispatch cache.
* Every :class:`~repro.errors.ReproError` maps to a structured
  ``{"error": {"type", "message"}}`` payload — the same family the
  library raises, so HTTP consumers and Python consumers see one error
  taxonomy.
"""

from __future__ import annotations

import asyncio
import errno
import json
from typing import Any

from repro.api.schemas import API_VERSION, operations, request_from_dict
from repro.api.service import cache_stats_payload, dispatch
from repro.errors import ReproError, WireError

#: default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080

_MAX_BODY_BYTES = 4 * 1024 * 1024

#: how long the server waits for one *complete* request — idle gap
#: before the request line, headers, and body included.  Without this
#: cap, ``max_concurrency`` slots could be held forever by clients that
#: stop sending mid-request (or never send) — a trivial starvation
#: vector the close-per-request server never had.
KEEPALIVE_IDLE_S = 30.0
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpReply(Exception):
    """Internal control flow: unwind to a ready-to-send JSON reply."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload


class _EndOfStream(Exception):
    """The client closed the connection between keep-alive requests."""


def _error_payload(kind: str, message: str) -> dict[str, Any]:
    return {"error": {"type": kind, "message": message}}


def _health_payload() -> dict[str, Any]:
    from repro import __version__

    return {
        "status": "ok",
        "version": __version__,
        "api_version": API_VERSION,
        "operations": list(operations()),
        # live memo-layer census (responses / models / grid_store) so
        # operators can watch batch amortization from a liveness probe
        "caches": cache_stats_payload(),
    }


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes, bool]:
    """(method, path, body, keep_alive) of one HTTP request.

    Raises ``_EndOfStream`` on a clean close before the request line and
    ``_HttpReply`` on anything the client got wrong.  The caller bounds
    the whole read with ``KEEPALIVE_IDLE_S`` — the timeout must cover
    headers and body too, or a mid-request stall would hold a
    concurrency slot forever.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, ValueError):
        # StreamReader surfaces over-limit lines as ValueError
        raise _HttpReply(400, _error_payload("WireError", "unreadable request"))
    if request_line == b"":
        raise _EndOfStream
    parts = request_line.decode("latin-1").split()
    if len(parts) < 3:
        raise _HttpReply(
            400, _error_payload("WireError", "malformed HTTP request line")
        )
    method, path, version = parts[0].upper(), parts[1], parts[2].upper()
    keep_alive = version != "HTTP/1.0"  # the 1.1 default
    content_length = 0
    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, ValueError):
            raise _HttpReply(
                400, _error_payload("WireError", "unreadable headers")
            )
        if line in (b"", b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = -1
            if content_length < 0:
                raise _HttpReply(
                    400,
                    _error_payload("WireError", "bad Content-Length header"),
                )
        elif name == "connection":
            token = value.strip().lower()
            if token == "close":
                keep_alive = False
            elif token == "keep-alive":
                keep_alive = True
    if content_length > _MAX_BODY_BYTES:
        raise _HttpReply(
            413,
            _error_payload(
                "WireError", f"body exceeds {_MAX_BODY_BYTES} bytes"
            ),
        )
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body, keep_alive


def _parse_body(op: str, body: bytes) -> Any:
    """The typed request for one ``POST /v1/<op>`` body."""
    if body.strip():
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None
    else:
        payload = {}
    if not isinstance(payload, dict):
        raise WireError("request body must be a JSON object")
    payload.setdefault("op", op)
    if payload["op"] != op:
        raise WireError(
            f"body op {payload['op']!r} does not match path op {op!r}"
        )
    return request_from_dict(payload)


def _route(method: str, path: str) -> str:
    """The validated op name, or ``_HttpReply`` for every other route."""
    if path == "/healthz":
        if method != "GET":
            raise _HttpReply(
                405, _error_payload("WireError", "/healthz accepts GET only")
            )
        raise _HttpReply(200, _health_payload())
    if not path.startswith("/v1/"):
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown path {path!r}; operations live at /v1/<op>",
            ),
        )
    if method != "POST":
        raise _HttpReply(
            405, _error_payload("WireError", "operations accept POST only")
        )
    op = path[len("/v1/"):]
    if op not in operations():
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown operation {op!r}; known: {sorted(operations())}",
            ),
        )
    return op


async def _write_reply(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any],
    keep_alive: bool,
) -> None:
    data = json.dumps(payload).encode()
    connection = "keep-alive" if keep_alive else "close"
    writer.write(
        (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        + data
    )
    await writer.drain()


async def _handle_one(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> bool:
    """Serve one request; return True iff the connection should persist."""
    status, payload = 500, _error_payload("InternalError", "unhandled")
    keep_alive = False
    try:
        try:
            method, path, body, keep_alive = await asyncio.wait_for(
                _read_request(reader), timeout=KEEPALIVE_IDLE_S
            )
        except asyncio.TimeoutError:
            # idle or stalled mid-request: reclaim the slot silently
            raise _EndOfStream from None
        op = _route(method, path)  # raises for non-dispatch paths
        request = _parse_body(op, body)
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(None, dispatch, request)
        status, payload = 200, response.to_dict()
    except _HttpReply as reply:
        # /healthz replies flow through here too: 200 keeps the
        # connection, anything else closes it (framing may be suspect)
        status, payload = reply.status, reply.payload
        keep_alive = keep_alive and status == 200
    except ReproError as exc:
        # engine/schema errors leave the byte stream intact — the next
        # pipelined request is still readable, so the connection survives
        status = 400
        payload = _error_payload(type(exc).__name__, str(exc))
    except asyncio.IncompleteReadError:
        status, payload = 400, _error_payload("WireError", "truncated body")
        keep_alive = False
    except _EndOfStream:
        raise  # clean close between requests: nothing to reply to
    except Exception as exc:  # noqa: BLE001 - a serving loop must not die
        status = 500
        payload = _error_payload(type(exc).__name__, str(exc))
        keep_alive = False
    try:
        await _write_reply(writer, status, payload, keep_alive)
    except ConnectionError:  # pragma: no cover - client went away mid-reply
        return False
    return keep_alive


def _make_handler(max_concurrency: int | None):
    """The per-connection coroutine, closing over the saturation gate."""
    semaphore = (
        asyncio.Semaphore(max_concurrency) if max_concurrency else None
    )

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if semaphore is not None and semaphore.locked():
                # every slot busy: shed load *now* with a structured 503
                # rather than queueing the connection invisibly
                try:
                    await _write_reply(
                        writer,
                        503,
                        _error_payload(
                            "Saturated",
                            f"server is at max concurrency "
                            f"({max_concurrency}); retry shortly",
                        ),
                        False,
                    )
                    # the request was never read; closing with bytes
                    # pending in the receive buffer RSTs the socket and
                    # can discard the 503 in flight, so drain briefly
                    try:
                        await asyncio.wait_for(
                            reader.read(_MAX_BODY_BYTES), timeout=0.25
                        )
                    except (asyncio.TimeoutError, ConnectionError):
                        pass
                except ConnectionError:  # pragma: no cover
                    pass
                return
            if semaphore is not None:
                async with semaphore:
                    await _serve_connection(reader, writer)
            else:
                await _serve_connection(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    return handle


async def _serve_connection(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """The keep-alive loop: requests until close is asked or required."""
    while True:
        try:
            if not await _handle_one(reader, writer):
                return
        except _EndOfStream:
            return


async def start_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    max_concurrency: int | None = None,
) -> asyncio.base_events.Server:
    """Bind and return the listening server (caller drives the loop).

    ``max_concurrency`` caps in-flight connections; beyond it new
    arrivals get an immediate 503.  Raises
    :class:`~repro.errors.ReproError` with a clean message when the port
    is already taken.
    """
    if max_concurrency is not None and max_concurrency < 1:
        raise ReproError("max_concurrency must be at least 1")
    try:
        return await asyncio.start_server(
            _make_handler(max_concurrency), host, port
        )
    except OSError as exc:
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            raise ReproError(
                f"cannot listen on {host}:{port} — "
                f"{exc.strerror or 'address already in use'}"
            ) from None
        raise


async def _serve_forever(
    host: str, port: int, ready, max_concurrency: int | None
) -> None:
    server = await start_server(host, port, max_concurrency=max_concurrency)
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    limit = f", max {max_concurrency} in flight" if max_concurrency else ""
    print(
        f"repro api v{API_VERSION} listening on http://{addr[0]}:{addr[1]} "
        f"(POST /v1/<op>, GET /healthz, keep-alive{limit})",
        flush=True,
    )
    if ready is not None:
        ready.address = (addr[0], addr[1])  # port 0 resolves to the real bind
        ready.set()
    async with server:
        await server.serve_forever()


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    ready=None,
    max_concurrency: int | None = None,
) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point).

    ``ready`` (a ``threading.Event``-alike) is set once the socket is
    listening — the hook tests and embedding supervisors use.
    """
    try:
        asyncio.run(_serve_forever(host, port, ready, max_concurrency))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("repro api: shutting down")
    return 0

"""A stdlib-only asyncio HTTP/JSON front end for the dispatch facade.

``repro serve`` binds this server; each operation is exposed at
``POST /v1/<op>`` with the request's ``to_dict()`` JSON as the body
(the ``op``/``v`` envelope fields may be omitted — the path names the
operation and the version defaults to current).  ``GET /healthz``
answers liveness probes with the build and wire versions.

Design notes:

* HTTP/1.1 parsing is deliberately minimal (request line, headers,
  ``Content-Length`` body; one request per connection) — the protocol
  surface a JSON decision service needs, with zero dependencies.
* Engine work runs in a thread-pool executor so a slow ``validate``
  simulation never blocks health checks or concurrent queries; repeat
  queries are answered straight from the dispatch cache.
* Every :class:`~repro.errors.ReproError` maps to a structured
  ``{"error": {"type", "message"}}`` payload — the same family the
  library raises, so HTTP consumers and Python consumers see one error
  taxonomy.
"""

from __future__ import annotations

import asyncio
import errno
import json
from typing import Any

from repro.api.schemas import API_VERSION, operations, request_from_dict
from repro.api.service import dispatch
from repro.errors import ReproError, WireError

#: default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080

_MAX_BODY_BYTES = 4 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpReply(Exception):
    """Internal control flow: unwind to a ready-to-send JSON reply."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload


def _error_payload(kind: str, message: str) -> dict[str, Any]:
    return {"error": {"type": kind, "message": message}}


def _health_payload() -> dict[str, Any]:
    from repro import __version__

    return {
        "status": "ok",
        "version": __version__,
        "api_version": API_VERSION,
        "operations": list(operations()),
    }


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes]:
    """(method, path, body) of one HTTP request, or raise ``_HttpReply``."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, ValueError):
        # StreamReader surfaces over-limit lines as ValueError
        raise _HttpReply(400, _error_payload("WireError", "unreadable request"))
    parts = request_line.decode("latin-1").split()
    if len(parts) < 3:
        raise _HttpReply(
            400, _error_payload("WireError", "malformed HTTP request line")
        )
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, ValueError):
            raise _HttpReply(
                400, _error_payload("WireError", "unreadable headers")
            )
        if line in (b"", b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = -1
            if content_length < 0:
                raise _HttpReply(
                    400,
                    _error_payload("WireError", "bad Content-Length header"),
                )
    if content_length > _MAX_BODY_BYTES:
        raise _HttpReply(
            413,
            _error_payload(
                "WireError", f"body exceeds {_MAX_BODY_BYTES} bytes"
            ),
        )
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


def _parse_body(op: str, body: bytes) -> Any:
    """The typed request for one ``POST /v1/<op>`` body."""
    if body.strip():
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None
    else:
        payload = {}
    if not isinstance(payload, dict):
        raise WireError("request body must be a JSON object")
    payload.setdefault("op", op)
    if payload["op"] != op:
        raise WireError(
            f"body op {payload['op']!r} does not match path op {op!r}"
        )
    return request_from_dict(payload)


def _route(method: str, path: str) -> str:
    """The validated op name, or ``_HttpReply`` for every other route."""
    if path == "/healthz":
        if method != "GET":
            raise _HttpReply(
                405, _error_payload("WireError", "/healthz accepts GET only")
            )
        raise _HttpReply(200, _health_payload())
    if not path.startswith("/v1/"):
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown path {path!r}; operations live at /v1/<op>",
            ),
        )
    if method != "POST":
        raise _HttpReply(
            405, _error_payload("WireError", "operations accept POST only")
        )
    op = path[len("/v1/"):]
    if op not in operations():
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown operation {op!r}; known: {sorted(operations())}",
            ),
        )
    return op


async def _handle(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    status, payload = 500, _error_payload("InternalError", "unhandled")
    try:
        method, path, body = await _read_request(reader)
        op = _route(method, path)  # raises for non-dispatch paths
        request = _parse_body(op, body)
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(None, dispatch, request)
        status, payload = 200, response.to_dict()
    except _HttpReply as reply:
        status, payload = reply.status, reply.payload
    except ReproError as exc:
        status = 400
        payload = _error_payload(type(exc).__name__, str(exc))
    except asyncio.IncompleteReadError:
        status, payload = 400, _error_payload("WireError", "truncated body")
    except Exception as exc:  # noqa: BLE001 - a serving loop must not die
        status = 500
        payload = _error_payload(type(exc).__name__, str(exc))
    try:
        data = json.dumps(payload).encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            + data
        )
        await writer.drain()
    except ConnectionError:  # pragma: no cover - client went away mid-reply
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass


async def start_server(
    host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
) -> asyncio.base_events.Server:
    """Bind and return the listening server (caller drives the loop).

    Raises :class:`~repro.errors.ReproError` with a clean message when
    the port is already taken.
    """
    try:
        return await asyncio.start_server(_handle, host, port)
    except OSError as exc:
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            raise ReproError(
                f"cannot listen on {host}:{port} — "
                f"{exc.strerror or 'address already in use'}"
            ) from None
        raise


async def _serve_forever(host: str, port: int, ready) -> None:
    server = await start_server(host, port)
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    print(
        f"repro api v{API_VERSION} listening on http://{addr[0]}:{addr[1]} "
        f"(POST /v1/<op>, GET /healthz)",
        flush=True,
    )
    if ready is not None:
        ready.address = (addr[0], addr[1])  # port 0 resolves to the real bind
        ready.set()
    async with server:
        await server.serve_forever()


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, ready=None) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point).

    ``ready`` (a ``threading.Event``-alike) is set once the socket is
    listening — the hook tests and embedding supervisors use.
    """
    try:
        asyncio.run(_serve_forever(host, port, ready))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("repro api: shutting down")
    return 0

"""A stdlib-only asyncio HTTP/JSON front end for the dispatch facade.

``repro serve`` binds this server; each operation is exposed at
``POST /v1/<op>`` with the request's ``to_dict()`` JSON as the body
(the ``op``/``v`` envelope fields may be omitted — the path names the
operation and the version defaults to current).  ``GET /healthz``
answers liveness probes with the build and wire versions.

Design notes:

* HTTP/1.1 parsing is deliberately minimal (request line, headers,
  ``Content-Length`` body) — the protocol surface a JSON decision
  service needs, with zero dependencies.
* Connections are **persistent** by HTTP/1.1 default: a client may
  pipeline many requests over one socket, and the server answers each
  with ``Connection: keep-alive`` until the client asks to close (or
  speaks HTTP/1.0 without ``keep-alive``).  Error replies always close —
  after a framing error the byte stream cannot be trusted.
* ``max_concurrency`` bounds in-flight connections with a semaphore;
  excess connections receive an immediate structured ``503`` instead of
  queueing without bound — saturation is a load-balancer signal, not a
  hidden latency cliff.
* Engine work runs in a thread-pool executor so a slow ``validate``
  simulation never blocks health checks or concurrent queries; repeat
  queries are answered straight from the dispatch cache.
* Every :class:`~repro.errors.ReproError` maps to a structured
  ``{"error": {"type", "message"}}`` payload — the same family the
  library raises, so HTTP consumers and Python consumers see one error
  taxonomy.
"""

from __future__ import annotations

import asyncio
import contextvars
import errno
import json
import os
import signal
import socket
import time
from typing import Any

from repro.api.schemas import API_VERSION, operations, request_from_dict
from repro.api.service import cache_stats_payload, dispatch
from repro.api.types import AlertsRequest
from repro.errors import ReproError, WireError
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import slo as obs_slo
from repro.obs import store as obs_store
from repro.obs import trace as obs_trace

#: default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080

_MAX_BODY_BYTES = 4 * 1024 * 1024

#: how long the server waits for one *complete* request — idle gap
#: before the request line, headers, and body included.  Without this
#: cap, ``max_concurrency`` slots could be held forever by clients that
#: stop sending mid-request (or never send) — a trivial starvation
#: vector the close-per-request server never had.
KEEPALIVE_IDLE_S = 30.0
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

# ---------------------------------------------------------------------------
# Instrumentation: request/connection counters, latency, byte traffic.
# All families live in the process-wide obs registry, so ``GET /metrics``
# and the ``metrics`` wire op expose them alongside dispatch and cache
# metrics.
# ---------------------------------------------------------------------------

_HTTP_REQUESTS = obs_metrics.registry().counter(
    "repro_http_requests_total",
    "HTTP requests answered, by method and status code.",
    labelnames=("method", "status"),
)
_HTTP_ERRORS = obs_metrics.registry().counter(
    "repro_http_errors_total",
    "HTTP requests answered with a 4xx/5xx status.",
)
_HTTP_LATENCY = obs_metrics.registry().histogram(
    "repro_http_request_duration_seconds",
    "Wall-clock time from first byte read to reply flushed.",
)
_HTTP_CONNECTIONS = obs_metrics.registry().counter(
    "repro_http_connections_total",
    "TCP connections accepted (shed connections included).",
)
_HTTP_KEEPALIVE_REUSE = obs_metrics.registry().counter(
    "repro_http_keepalive_reuse_total",
    "Requests served on an already-used keep-alive connection.",
)
_HTTP_SHEDS = obs_metrics.registry().counter(
    "repro_http_sheds_total",
    "Connections shed with an immediate 503 at max concurrency.",
)
_HTTP_BYTES_READ = obs_metrics.registry().counter(
    "repro_http_bytes_read_total",
    "Request bytes read (request line, headers, and body).",
)
_HTTP_BYTES_WRITTEN = obs_metrics.registry().counter(
    "repro_http_bytes_written_total",
    "Response bytes written (status line, headers, and body).",
)

#: wall-clock epoch the server (or failing that, the module) came up —
#: the ``uptime_s`` anchor of ``/healthz``.
_STARTED_AT = time.time()


class _HttpReply(Exception):
    """Internal control flow: unwind to a ready-to-send JSON reply."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload


class _EndOfStream(Exception):
    """The client closed the connection between keep-alive requests."""


def _error_payload(kind: str, message: str) -> dict[str, Any]:
    return {"error": {"type": kind, "message": message}}


def _health_payload() -> dict[str, Any]:
    from repro import __version__

    # late import: repro.api.pool imports this module for the serve loop
    from repro.api.pool import health_block

    registry = obs_metrics.registry()
    payload = {
        "status": "ok",
        "version": __version__,
        "api_version": API_VERSION,
        "uptime_s": round(time.time() - _STARTED_AT, 3),
        "pid": os.getpid(),
        # cumulative serving counts pulled from the metrics registry —
        # the same numbers ``GET /metrics`` exposes in full
        "requests_total": int(registry.value("repro_http_requests_total")),
        "errors_total": int(registry.value("repro_http_errors_total")),
        "operations": list(operations()),
        # live memo-layer census (responses / models / grid_store) so
        # operators can watch batch amortization from a liveness probe
        "caches": cache_stats_payload(),
        # simulator gauges: runs executing right now, and the event
        # count of the last completed run (0 before any simulation)
        "sim": {
            "active_runs": int(registry.value("repro_sim_active_runs")),
            "last_run_events": int(
                registry.value("repro_sim_last_run_events")
            ),
        },
    }
    pool = health_block()
    if pool is not None:
        # multi-worker serve: this worker's slot plus a board-aggregated
        # view of every sibling (per-pid counters + pool totals)
        payload["pool"] = pool
    return payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes, bool, str | None]:
    """(method, path, body, keep_alive, request_id) of one HTTP request.

    ``request_id`` is the inbound ``X-Request-Id`` header, if any — the
    caller adopts it as the trace ID so client-chosen IDs survive the
    hop.  Raises ``_EndOfStream`` on a clean close before the request
    line and ``_HttpReply`` on anything the client got wrong.  The
    caller bounds the whole read with ``KEEPALIVE_IDLE_S`` — the timeout
    must cover headers and body too, or a mid-request stall would hold a
    concurrency slot forever.
    """
    bytes_read = 0
    try:
        request_line = await reader.readline()
    except (ConnectionError, ValueError):
        # StreamReader surfaces over-limit lines as ValueError
        raise _HttpReply(400, _error_payload("WireError", "unreadable request"))
    if request_line == b"":
        raise _EndOfStream
    bytes_read += len(request_line)
    parts = request_line.decode("latin-1").split()
    if len(parts) < 3:
        raise _HttpReply(
            400, _error_payload("WireError", "malformed HTTP request line")
        )
    method, path, version = parts[0].upper(), parts[1], parts[2].upper()
    keep_alive = version != "HTTP/1.0"  # the 1.1 default
    content_length = 0
    request_id: str | None = None
    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, ValueError):
            raise _HttpReply(
                400, _error_payload("WireError", "unreadable headers")
            )
        bytes_read += len(line)
        if line in (b"", b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = -1
            if content_length < 0:
                raise _HttpReply(
                    400,
                    _error_payload("WireError", "bad Content-Length header"),
                )
        elif name == "connection":
            token = value.strip().lower()
            if token == "close":
                keep_alive = False
            elif token == "keep-alive":
                keep_alive = True
        elif name == "x-request-id":
            # cap adopted IDs: a log/label field, not a data channel
            request_id = value.strip()[:128] or None
    if content_length > _MAX_BODY_BYTES:
        raise _HttpReply(
            413,
            _error_payload(
                "WireError", f"body exceeds {_MAX_BODY_BYTES} bytes"
            ),
        )
    body = await reader.readexactly(content_length) if content_length else b""
    _HTTP_BYTES_READ.inc(bytes_read + len(body))
    return method, path, body, keep_alive, request_id


def _parse_body(op: str, body: bytes) -> Any:
    """The typed request for one ``POST /v1/<op>`` body."""
    if body.strip():
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None
    else:
        payload = {}
    if not isinstance(payload, dict):
        raise WireError("request body must be a JSON object")
    payload.setdefault("op", op)
    if payload["op"] != op:
        raise WireError(
            f"body op {payload['op']!r} does not match path op {op!r}"
        )
    return request_from_dict(payload)


def _route(method: str, path: str) -> str:
    """The validated op name, or ``_HttpReply`` for every other route."""
    if path == "/healthz":
        if method != "GET":
            raise _HttpReply(
                405, _error_payload("WireError", "/healthz accepts GET only")
            )
        raise _HttpReply(200, _health_payload())
    if not path.startswith("/v1/"):
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown path {path!r}; operations live at /v1/<op>",
            ),
        )
    if method != "POST":
        raise _HttpReply(
            405, _error_payload("WireError", "operations accept POST only")
        )
    op = path[len("/v1/"):]
    if op not in operations():
        raise _HttpReply(
            404,
            _error_payload(
                "WireError",
                f"unknown operation {op!r}; known: {sorted(operations())}",
            ),
        )
    return op


async def _write_raw(
    writer: asyncio.StreamWriter,
    status: int,
    data: bytes,
    content_type: str,
    keep_alive: bool,
    trace_id: str | None,
) -> None:
    connection = "keep-alive" if keep_alive else "close"
    request_id = f"X-Request-Id: {trace_id}\r\n" if trace_id else ""
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"{request_id}"
        f"Connection: {connection}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + data)
    _HTTP_BYTES_WRITTEN.inc(len(head) + len(data))
    await writer.drain()


async def _write_reply(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any],
    keep_alive: bool,
    trace_id: str | None = None,
) -> None:
    await _write_raw(
        writer,
        status,
        json.dumps(payload).encode(),
        "application/json",
        keep_alive,
        trace_id,
    )


async def _handle_one(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> bool:
    """Serve one request; return True iff the connection should persist."""
    status, payload = 500, _error_payload("InternalError", "unhandled")
    keep_alive = False
    # every request gets a trace ID up front so even parse-failure replies
    # carry one; an inbound X-Request-Id overrides it after the read
    trace_id = obs_trace.new_trace_id()
    obs_trace.set_trace_id(trace_id)
    method, path, op = "-", "-", None
    raw: tuple[bytes, str] | None = None
    t0 = time.perf_counter()
    try:
        try:
            (
                method,
                path,
                body,
                keep_alive,
                request_id,
            ) = await asyncio.wait_for(
                _read_request(reader), timeout=KEEPALIVE_IDLE_S
            )
        except asyncio.TimeoutError:
            # idle or stalled mid-request: reclaim the slot silently
            raise _EndOfStream from None
        if request_id:
            trace_id = request_id
            obs_trace.set_trace_id(trace_id)
        if path == "/metrics":
            if method != "GET":
                raise _HttpReply(
                    405,
                    _error_payload("WireError", "/metrics accepts GET only"),
                )
            status = 200
            raw = (
                obs_metrics.registry().render().encode(),
                obs_metrics.CONTENT_TYPE,
            )
        elif path == "/alerts":
            # scraper-friendly GET twin of POST /v1/alerts — the same
            # dispatch path, so the payload is byte-identical
            if method != "GET":
                raise _HttpReply(
                    405,
                    _error_payload("WireError", "/alerts accepts GET only"),
                )
            status, payload = 200, dispatch(AlertsRequest()).to_dict()
        else:
            op = _route(method, path)  # raises for non-dispatch paths
            request = _parse_body(op, body)
            loop = asyncio.get_running_loop()
            # run_in_executor does NOT propagate contextvars — carry the
            # trace context into the worker thread explicitly so spans
            # and logs emitted under dispatch keep this request's ID
            context = contextvars.copy_context()
            response = await loop.run_in_executor(
                None, context.run, dispatch, request
            )
            status, payload = 200, response.to_dict()
    except _HttpReply as reply:
        # /healthz replies flow through here too: 200 keeps the
        # connection, anything else closes it (framing may be suspect)
        status, payload = reply.status, reply.payload
        keep_alive = keep_alive and status == 200
    except ReproError as exc:
        # engine/schema errors leave the byte stream intact — the next
        # pipelined request is still readable, so the connection survives
        status = 400
        payload = _error_payload(type(exc).__name__, str(exc))
    except asyncio.IncompleteReadError:
        status, payload = 400, _error_payload("WireError", "truncated body")
        keep_alive = False
    except _EndOfStream:
        raise  # clean close between requests: nothing to reply to
    except Exception as exc:  # noqa: BLE001 - a serving loop must not die
        status = 500
        payload = _error_payload(type(exc).__name__, str(exc))
        keep_alive = False
        obs_log.server_error(method=method, path=path, exc=exc, op=op)
    if status >= 400:
        # top level, never inside "error": batch item error objects must
        # stay byte-identical to single-POST "error" objects
        payload = dict(payload)
        payload["trace_id"] = trace_id
    duration = time.perf_counter() - t0
    _HTTP_REQUESTS.labels(method, str(status)).inc()
    if status >= 400:
        _HTTP_ERRORS.inc()
    _HTTP_LATENCY.observe(duration)
    obs_log.request_log(
        method=method, path=path, status=status, duration_s=duration, op=op
    )
    try:
        if raw is not None:
            await _write_raw(writer, status, *raw, keep_alive, trace_id)
        else:
            await _write_reply(
                writer, status, payload, keep_alive, trace_id=trace_id
            )
    except ConnectionError:  # pragma: no cover - client went away mid-reply
        return False
    return keep_alive


def _make_handler(max_concurrency: int | None, active: list[int] | None = None):
    """The per-connection coroutine, closing over the saturation gate.

    ``active`` (a one-cell list) tracks live connections for graceful
    drain: on SIGTERM the serve loop closes the listener, then waits for
    this count to reach zero before exiting — ``Server.wait_closed`` on
    3.11 does not wait for handler tasks.
    """
    semaphore = (
        asyncio.Semaphore(max_concurrency) if max_concurrency else None
    )

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        _HTTP_CONNECTIONS.inc()
        if active is not None:
            active[0] += 1
        try:
            if semaphore is not None and semaphore.locked():
                # every slot busy: shed load *now* with a structured 503
                # rather than queueing the connection invisibly
                _HTTP_SHEDS.inc()
                _HTTP_REQUESTS.labels("-", "503").inc()
                _HTTP_ERRORS.inc()
                trace_id = obs_trace.new_trace_id()
                shed_payload = _error_payload(
                    "Saturated",
                    f"server is at max concurrency "
                    f"({max_concurrency}); retry shortly",
                )
                shed_payload["trace_id"] = trace_id
                try:
                    await _write_reply(
                        writer, 503, shed_payload, False, trace_id=trace_id
                    )
                    # the request was never read; closing with bytes
                    # pending in the receive buffer RSTs the socket and
                    # can discard the 503 in flight, so drain briefly
                    try:
                        await asyncio.wait_for(
                            reader.read(_MAX_BODY_BYTES), timeout=0.25
                        )
                    except (asyncio.TimeoutError, ConnectionError):
                        pass
                except ConnectionError:  # pragma: no cover
                    pass
                return
            if semaphore is not None:
                async with semaphore:
                    await _serve_connection(reader, writer)
            else:
                await _serve_connection(reader, writer)
        finally:
            if active is not None:
                active[0] -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    return handle


async def _serve_connection(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """The keep-alive loop: requests until close is asked or required."""
    served = 0
    while True:
        try:
            persist = await _handle_one(reader, writer)
        except _EndOfStream:
            return
        served += 1
        if served > 1:
            _HTTP_KEEPALIVE_REUSE.inc()
        if not persist:
            return


async def start_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    max_concurrency: int | None = None,
    sock: socket.socket | None = None,
    reuse_port: bool = False,
    _active: list[int] | None = None,
) -> asyncio.base_events.Server:
    """Bind and return the listening server (caller drives the loop).

    ``max_concurrency`` caps in-flight connections; beyond it new
    arrivals get an immediate 503.  ``sock`` serves an already-bound
    listening socket (the pool's pre-fork path) instead of binding
    ``host:port``; ``reuse_port`` sets ``SO_REUSEPORT`` on the bind so
    sibling workers can share the port.  Raises
    :class:`~repro.errors.ReproError` with a clean message when the port
    is already taken.
    """
    if max_concurrency is not None and max_concurrency < 1:
        raise ReproError("max_concurrency must be at least 1")
    handler = _make_handler(max_concurrency, _active)
    try:
        if sock is not None:
            return await asyncio.start_server(handler, sock=sock)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise ReproError(
                    "SO_REUSEPORT is not available on this platform; "
                    "use the inherited-socket pool mode instead"
                )
            return await asyncio.start_server(
                handler, host, port, reuse_port=True
            )
        return await asyncio.start_server(handler, host, port)
    except OSError as exc:
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            raise ReproError(
                f"cannot listen on {host}:{port} — "
                f"{exc.strerror or 'address already in use'}"
            ) from None
        raise


async def _sampling_ticker(every_s: float) -> None:
    """Feed the retained time-series ring and keep SLO clocks advancing.

    Evaluating on every tick matters for ``for_s`` rules: a breach can
    only escalate from pending to firing if something keeps checking.
    """
    from repro.api.pool import publish_worker_stats

    while True:
        await asyncio.sleep(every_s)
        obs_store.recorder().sample()
        obs_slo.engine().evaluate()
        # pool workers refresh their board slot on the same cadence so
        # siblings' /healthz aggregation never reads minutes-stale
        # counters (no-op outside --workers mode)
        publish_worker_stats()


async def _serve_forever(
    host: str,
    port: int,
    ready,
    max_concurrency: int | None,
    sample_every_s: float | None = 5.0,
    *,
    sock: socket.socket | None = None,
    handle_sigterm: bool = False,
    quiet: bool = False,
    drain_grace_s: float = 5.0,
) -> None:
    global _STARTED_AT
    active: list[int] = [0]
    server = await start_server(
        host, port, max_concurrency=max_concurrency, sock=sock, _active=active
    )
    _STARTED_AT = time.time()  # /healthz uptime counts from bind, not import
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    limit = f", max {max_concurrency} in flight" if max_concurrency else ""
    if not quiet:
        print(
            f"repro api v{API_VERSION} listening on "
            f"http://{addr[0]}:{addr[1]} "
            f"(POST /v1/<op>, GET /healthz|/metrics|/alerts, "
            f"keep-alive{limit})",
            flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if handle_sigterm:
        # pool workers: SIGTERM means drain, not die mid-reply
        loop.add_signal_handler(signal.SIGTERM, stop.set)
    ticker: asyncio.Task | None = None
    if sample_every_s is not None and sample_every_s > 0.0:
        obs_store.recorder().sample()  # a first point before the first tick
        ticker = asyncio.create_task(_sampling_ticker(sample_every_s))
    if ready is not None:
        ready.address = (addr[0], addr[1])  # port 0 resolves to the real bind
        ready.set()
    serving = asyncio.create_task(server.serve_forever())
    stopping = asyncio.create_task(stop.wait())
    try:
        await asyncio.wait(
            {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
        )
    finally:
        for task in (serving, stopping):
            task.cancel()
        if ticker is not None:
            ticker.cancel()
        # graceful drain: stop accepting, then let in-flight connections
        # finish (bounded — a stuck client cannot hold shutdown hostage)
        server.close()
        try:
            await server.wait_closed()
        except (asyncio.CancelledError, ConnectionError):  # pragma: no cover
            pass
        deadline = loop.time() + max(drain_grace_s, 0.0)
        while active[0] > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    ready=None,
    max_concurrency: int | None = None,
    sample_every_s: float | None = 5.0,
    *,
    sock: socket.socket | None = None,
    handle_sigterm: bool = False,
    quiet: bool = False,
    drain_grace_s: float = 5.0,
) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point).

    ``ready`` (a ``threading.Event``-alike) is set once the socket is
    listening — the hook tests and embedding supervisors use.
    ``sample_every_s`` paces the retained-telemetry ticker (time-series
    samples + SLO evaluation); ``None`` or 0 disables it, which is what
    the deterministic in-loop test servers use.  ``sock`` /
    ``handle_sigterm`` / ``quiet`` are the pool-worker mode: serve an
    inherited pre-bound socket and drain gracefully on SIGTERM.
    """
    try:
        asyncio.run(
            _serve_forever(
                host,
                port,
                ready,
                max_concurrency,
                sample_every_s,
                sock=sock,
                handle_sigterm=handle_sigterm,
                quiet=quiet,
                drain_grace_s=drain_grace_s,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("repro api: shutting down")
    return 0

"""Typed request/response records and their versioned JSON wire format.

Every operation the library can serve is named by a frozen-dataclass
*request* (what to compute) paired with a frozen-dataclass *response*
(what came back).  Both sides carry the same wire contract:

* ``to_dict()`` returns a JSON-ready mapping tagged with the operation
  name (``"op"``) and the wire version (``"v"``);
* ``from_dict(payload)`` rebuilds the record, rejecting unknown fields,
  foreign versions, and mistyped values with :class:`~repro.errors.WireError`
  — the contract the HTTP server, the CLI ``--json`` mode, and any future
  shard router all share.

Requests are *lenient* on missing fields (dataclass defaults apply, so a
hand-written ``curl`` body can be minimal); responses are *strict* (every
field must be present) because they are only ever machine-built.

Frozen-ness is load-bearing: requests are hashable, which is what lets
:func:`repro.api.service.dispatch` memoise stateless queries by request
value.  Nested result rows reuse the engines' own frozen dataclasses
(:class:`~repro.core.model.ModelPoint`,
:class:`~repro.optimize.contour.ContourPoint`,
:class:`~repro.optimize.budget.Recommendation`,
:class:`~repro.optimize.schedule.Job`/``Assignment``) rather than
duplicating them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Mapping

from repro.core.model import ModelPoint
from repro.errors import WireError
from repro.federation.partition import ShardAllocation
from repro.federation.registry import ShardSpec
from repro.federation.router import ShardPlan
from repro.hetero.solve import HeteroRecommendation, PolicyGap
from repro.hetero.space import PoolChoice, PoolSpec
from repro.obs.slo import AlertState
from repro.obs.store import SeriesSummary, SpanNode
from repro.optimize.budget import Recommendation
from repro.optimize.contour import ContourPoint
from repro.optimize.schedule import Assignment, Job
from repro.sim.demand import DemandSpec
from repro.sim.engine import SimEvent
from repro.sim.kpis import ShardLoad, SimReport, SloSpec
from repro.sim.site import ScenarioSpec

#: current wire version; bump on any incompatible field change.
#: v2: the ``federate`` operation, schedule policies (``policy`` /
#: ``ee_floor`` on requests, ``policy`` echoed on responses).
#: v3: the ``batch`` operation — one payload carrying a heterogeneous
#: list of sub-queries, answered item-wise with structured per-item
#: errors (a bad item cannot sink its batch-mates).
#: v4: the ``hetero`` operation — mixed-pool allocation search with
#: nested ``PoolSpec`` pools — and the optional ``pools`` field on
#: federation ``ShardSpec`` (heterogeneous shards).
#: v5: the ``metrics`` operation — the process metrics registry in
#: Prometheus text exposition form (the same body ``GET /metrics``
#: serves) — and the top-level ``trace_id`` field on HTTP error
#: payloads.
#: v6: the ``simulate`` operation — discrete-event site simulation with
#: nested ``ScenarioSpec``/``DemandSpec``/``SloSpec`` on the request and
#: ``SimReport``/``SimEvent`` records on the response.
#: v7: retained telemetry — the ``trace`` operation (a stored span tree
#: as nested ``SpanNode`` records), the ``timeseries`` operation
#: (rolling-window rollups as nested ``SeriesSummary`` records), the
#: ``alerts`` operation (SLO rule evaluations as nested ``AlertState``
#: records, also served at ``GET /alerts``), and the optional
#: ``filter`` field on ``metrics`` requests.
API_VERSION = 7

# ---------------------------------------------------------------------------
# Field coercers — the "typed" in typed facade
# ---------------------------------------------------------------------------

Coercer = Callable[[Any], Any]


def _int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"expected an integer, got {value!r}")
    if float(value) != int(value):
        raise WireError(f"expected an integer, got {value!r}")
    return int(value)


def _float(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"expected a number, got {value!r}")
    return float(value)


def _str(value: Any) -> str:
    if not isinstance(value, str):
        raise WireError(f"expected a string, got {value!r}")
    return value


def _bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise WireError(f"expected a boolean, got {value!r}")
    return value


def _optional(coerce: Coercer) -> Coercer:
    def wrapped(value: Any) -> Any:
        return None if value is None else coerce(value)

    return wrapped


def _tuple_of(coerce: Coercer) -> Coercer:
    def wrapped(value: Any) -> tuple:
        if not isinstance(value, (list, tuple)):
            raise WireError(f"expected a list, got {value!r}")
        return tuple(coerce(v) for v in value)

    return wrapped


def _matrix(value: Any) -> tuple[tuple[float, ...], ...]:
    return _tuple_of(_tuple_of(_float))(value)


def _nested(
    cls: type,
    spec: dict[str, Coercer],
    *,
    defaults: frozenset[str] = frozenset(),
) -> Coercer:
    """Coercer for an engine dataclass carried as a nested JSON object.

    ``defaults`` names fields a payload may omit (the dataclass default
    then applies) — used by request-side nested records so hand-written
    bodies stay minimal; response-side records list no defaults and stay
    strict.
    """

    def wrapped(value: Any) -> Any:
        if isinstance(value, cls):
            return value
        if not isinstance(value, Mapping):
            raise WireError(f"expected a {cls.__name__} object, got {value!r}")
        unknown = set(value) - set(spec)
        if unknown:
            raise WireError(
                f"unknown {cls.__name__} field(s): {sorted(unknown)}"
            )
        missing = set(spec) - set(value) - defaults
        if missing:
            raise WireError(
                f"missing {cls.__name__} field(s): {sorted(missing)}"
            )
        return cls(
            **{name: spec[name](value[name]) for name in spec if name in value}
        )

    return wrapped


_POINT = _nested(
    ModelPoint,
    {
        "p": _int, "f": _float, "n": _float, "t1": _float, "tp": _float,
        "e1": _float, "ep": _float, "eef": _float, "ee": _float,
        "speedup": _float, "perf_efficiency": _float, "bottleneck": _str,
    },
)
_CONTOUR_POINT = _nested(
    ContourPoint,
    {"p": _int, "value": _float, "ee": _float, "axis": _str,
     "converged": _bool},
)
_RECOMMENDATION = _nested(
    Recommendation,
    {
        "objective": _str, "p": _int, "f": _float, "n": _float, "tp": _float,
        "ep": _float, "ee": _float, "avg_power": _float, "speedup": _float,
        "bottleneck": _str, "feasible_count": _int,
    },
)
_JOB = _nested(
    Job,
    {"name": _str, "benchmark": _str, "klass": _str,
     "niter": _optional(_int)},
    defaults=frozenset({"benchmark", "klass", "niter"}),
)
_ASSIGNMENT = _nested(
    Assignment,
    {
        "job": _str, "benchmark": _str, "p": _int, "f": _float, "tp": _float,
        "ep": _float, "ee": _float, "avg_power": _float, "rung": _int,
        "rungs_available": _int,
    },
)
_POOL_SPEC = _nested(
    PoolSpec,
    {
        "name": _str, "cluster": _str, "count_values": _tuple_of(_int),
        "f_values_ghz": _tuple_of(_float),
    },
    defaults=frozenset({"cluster", "count_values", "f_values_ghz"}),
)
_POOL_CHOICE = _nested(
    PoolChoice, {"pool": _str, "count": _int, "f": _float},
)
_HETERO_RECOMMENDATION = _nested(
    HeteroRecommendation,
    {
        "objective": _str, "policy": _str,
        "pools": _tuple_of(_POOL_CHOICE), "total_p": _int, "tp": _float,
        "ep": _float, "ee": _float, "avg_power": _float,
        "feasible_count": _int,
    },
)
_POLICY_GAP = _nested(
    PolicyGap,
    {
        "mixes": _int, "max_gap": _float, "mean_gap": _float,
        "worst": _tuple_of(_POOL_CHOICE), "worst_total_p": _int,
    },
)
_SHARD_SPEC = _nested(
    ShardSpec,
    {
        "name": _str, "cluster": _str, "nodes": _int,
        "power_envelope_w": _float, "policy": _str,
        "ee_floor": _optional(_float),
        "pools": _tuple_of(_POOL_SPEC),
    },
    defaults=frozenset({"cluster", "nodes", "policy", "ee_floor", "pools"}),
)
_SHARD_ALLOCATION = _nested(
    ShardAllocation,
    {"shard": _str, "allocation_w": _float, "utility": _float,
     "floor_w": _float},
)
_SHARD_PLAN = _nested(
    ShardPlan,
    {
        "shard": _str, "cluster": _str, "policy": _str,
        "allocation_w": _float, "assignments": _tuple_of(_ASSIGNMENT),
        "total_power_w": _float, "makespan_s": _float,
        "total_energy_j": _float,
    },
)
_DEMAND_SPEC = _nested(
    DemandSpec,
    {
        "kind": _str, "rate_per_s": _float, "burst_size": _int,
        "burst_every_s": _float, "period_s": _float, "amplitude": _float,
        "phase_s": _float, "trace": _str, "jobs": _tuple_of(_JOB),
    },
    defaults=frozenset({
        "kind", "rate_per_s", "burst_size", "burst_every_s", "period_s",
        "amplitude", "phase_s", "trace", "jobs",
    }),
)
_SLO_SPEC = _nested(
    SloSpec,
    {"deadline_s": _optional(_float), "max_wait_s": _optional(_float)},
    defaults=frozenset({"deadline_s", "max_wait_s"}),
)
_SCENARIO_SPEC = _nested(
    ScenarioSpec,
    {
        "shards": _tuple_of(_SHARD_SPEC), "budget_w": _float,
        "strategy": _str, "metric": _str, "demand": _DEMAND_SPEC,
        "slo": _SLO_SPEC, "horizon_s": _float, "seed": _int,
        "queue": _str, "max_queue_depth": _optional(_int),
    },
    defaults=frozenset({
        "budget_w", "strategy", "metric", "demand", "slo", "horizon_s",
        "seed", "queue", "max_queue_depth",
    }),
)
_SIM_EVENT = _nested(
    SimEvent,
    {
        "time": _float, "seq": _int, "kind": _str, "job": _str,
        "shard": _str, "detail": _str, "watts": _float, "seconds": _float,
        "joules": _float,
    },
)
_SHARD_LOAD = _nested(
    ShardLoad,
    {
        "shard": _str, "allocation_w": _float, "jobs": _int,
        "utilization": _float, "mean_queue_depth": _float,
        "max_queue_depth": _int, "peak_power_w": _float, "energy_j": _float,
    },
)
_SPAN_NODE = _nested(
    SpanNode,
    {
        "span_id": _int, "parent_id": _optional(_int), "name": _str,
        "start_s": _float, "duration_s": _float,
    },
)
_SERIES_SUMMARY = _nested(
    SeriesSummary,
    {
        "name": _str, "kind": _str, "labels": _str, "samples": _int,
        "last": _float, "rate_per_s": _optional(_float),
        "minimum": _optional(_float), "maximum": _optional(_float),
        "mean": _optional(_float), "p50_s": _optional(_float),
        "p95_s": _optional(_float), "p99_s": _optional(_float),
    },
)
_ALERT_STATE = _nested(
    AlertState,
    {
        "rule": _str, "kind": _str, "state": _str, "value": _float,
        "threshold": _float, "window_s": _float, "for_s": _float,
        "breached_for_s": _float, "detail": _str,
    },
)
_SIM_REPORT = _nested(
    SimReport,
    {
        "horizon_s": _float, "duration_s": _float, "arrivals": _int,
        "started": _int, "finished": _int, "rejected": _int,
        "slo_violations": _int, "wait_p50_s": _float, "wait_p95_s": _float,
        "wait_p99_s": _float, "sojourn_p50_s": _float,
        "sojourn_p95_s": _float, "sojourn_p99_s": _float,
        "mean_wait_s": _float, "energy_per_job_j": _float,
        "total_energy_j": _float, "events": _int,
        "shards": _tuple_of(_SHARD_LOAD),
    },
)


def _encode(value: Any) -> Any:
    if isinstance(value, WireRecord):
        # nested wire records (batch sub-queries/sub-responses) carry
        # their own op/version envelope so they decode standalone
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Wire base
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireRecord:
    """Shared ``to_dict``/``from_dict`` machinery for every wire type.

    Subclasses set ``op`` (the operation name, shared by the request and
    response of one operation) and ``coercers`` (field name → coercer).
    """

    op: ClassVar[str] = ""
    #: requests tolerate missing fields (defaults apply); responses do not
    lenient: ClassVar[bool] = True
    coercers: ClassVar[dict[str, Coercer]] = {}

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload: ``{"op": ..., "v": ..., **fields}``."""
        payload: dict[str, Any] = {"op": self.op, "v": API_VERSION}
        for f in fields(self):
            payload[f.name] = _encode(getattr(self, f.name))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WireRecord":
        """Rebuild from a wire payload, validating the schema strictly."""
        if not isinstance(payload, Mapping):
            raise WireError(
                f"{cls.op!r} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        version = payload.get("v", API_VERSION)
        if version != API_VERSION:
            raise WireError(
                f"unsupported wire version {version!r} "
                f"(this build speaks v{API_VERSION})"
            )
        op = payload.get("op", cls.op)
        if op != cls.op:
            raise WireError(
                f"payload op {op!r} does not match {cls.op!r}"
            )
        known = {f.name for f in fields(cls)}
        body = {k: v for k, v in payload.items() if k not in ("op", "v")}
        unknown = set(body) - known
        if unknown:
            raise WireError(
                f"unknown field(s) for {cls.op!r}: {sorted(unknown)}"
            )
        if not cls.lenient:
            missing = known - set(body)
            if missing:
                raise WireError(
                    f"missing field(s) for {cls.op!r}: {sorted(missing)}"
                )
        kwargs = {}
        for name, value in body.items():
            coerce = cls.coercers.get(name)
            if coerce is None:  # pragma: no cover - schema definition bug
                raise WireError(f"field {name!r} of {cls.op!r} has no coercer")
            try:
                kwargs[name] = coerce(value)
            except WireError as exc:
                raise WireError(f"field {name!r} of {cls.op!r}: {exc}") from None
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

#: coercers shared by every model-selecting request
_MODEL_COERCERS: dict[str, Coercer] = {
    "benchmark": _str,
    "klass": _str,
    "cluster": _str,
    "niter": _optional(_int),
}


@dataclass(frozen=True)
class ModelRequest(WireRecord):
    """Base for requests that pick one (benchmark, class, cluster) model."""

    benchmark: str = "FT"
    klass: str = "B"
    cluster: str = "systemg"
    niter: int | None = None


@dataclass(frozen=True)
class EvaluateRequest(ModelRequest):
    """All model outputs at one (p, f) point (``repro evaluate``)."""

    op: ClassVar[str] = "evaluate"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS, "p": _int, "freq_ghz": _optional(_float),
    }

    p: int = 64
    freq_ghz: float | None = None


@dataclass(frozen=True)
class SweepRequest(ModelRequest):
    """The EE-vs-p table of a benchmark (``repro sweep``)."""

    op: ClassVar[str] = "sweep"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS, "p_values": _tuple_of(_int),
    }

    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class SurfaceRequest(ModelRequest):
    """An EE plane over (p × f) or (p × n) (``repro surface``).

    ``axis="f"`` sweeps ``f_values_ghz`` at the class problem size scaled
    by ``n_factor``; ``axis="n"`` sweeps ``n_factors`` × the class size at
    the calibration frequency.
    """

    op: ClassVar[str] = "surface"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS,
        "axis": _str,
        "p_values": _tuple_of(_int),
        "f_values_ghz": _tuple_of(_float),
        "n_factors": _tuple_of(_float),
        "n_factor": _float,
    }

    axis: str = "f"
    p_values: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)
    f_values_ghz: tuple[float, ...] = (1.6, 2.0, 2.4, 2.8)
    n_factors: tuple[float, ...] = (0.25, 1.0, 4.0)
    n_factor: float = 1.0


@dataclass(frozen=True)
class ValidateRequest(ModelRequest):
    """One model-vs-simulated-measurement experiment (``repro validate``)."""

    op: ClassVar[str] = "validate"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS, "p": _int, "seed": _int,
    }

    p: int = 4
    seed: int = 0


@dataclass(frozen=True)
class BudgetQuery(ModelRequest):
    """Fastest (p, f) whose average draw fits a power budget."""

    op: ClassVar[str] = "budget"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS,
        "budget_w": _float,
        "p_values": _tuple_of(_int),
        "f_values_ghz": _tuple_of(_float),
        "n_factor": _float,
    }

    budget_w: float = 0.0
    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    f_values_ghz: tuple[float, ...] = (1.6, 2.0, 2.4, 2.8)
    n_factor: float = 1.0


@dataclass(frozen=True)
class DeadlineQuery(ModelRequest):
    """Greenest (p, f) whose predicted runtime meets a deadline."""

    op: ClassVar[str] = "deadline"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS,
        "deadline_s": _float,
        "p_values": _tuple_of(_int),
        "f_values_ghz": _tuple_of(_float),
        "n_factor": _float,
    }

    deadline_s: float = 0.0
    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    f_values_ghz: tuple[float, ...] = (1.6, 2.0, 2.4, 2.8)
    n_factor: float = 1.0


@dataclass(frozen=True)
class IsoEEQuery(ModelRequest):
    """The iso-EE contour n(p) holding EE at a target value."""

    op: ClassVar[str] = "isoee"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS,
        "target_ee": _float,
        "p_values": _tuple_of(_int),
        "n_factor": _float,
    }

    target_ee: float = 0.8
    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    n_factor: float = 1.0


@dataclass(frozen=True)
class ParetoQuery(ModelRequest):
    """The non-dominated (Tp, Ep) configurations of a workload."""

    op: ClassVar[str] = "pareto"
    coercers: ClassVar[dict[str, Coercer]] = {
        **_MODEL_COERCERS,
        "p_values": _tuple_of(_int),
        "f_values_ghz": _tuple_of(_float),
        "n_factor": _float,
    }

    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    f_values_ghz: tuple[float, ...] = (1.6, 2.0, 2.4, 2.8)
    n_factor: float = 1.0


@dataclass(frozen=True)
class ScheduleRequest(WireRecord):
    """Split a cluster power budget across a queue of NPB jobs.

    ``policy`` selects how headroom is spent
    (:data:`~repro.optimize.schedule.SCHEDULE_POLICIES`);
    ``policy="ee_floor"`` additionally requires ``ee_floor``, the lowest
    acceptable energy efficiency per placement.
    """

    op: ClassVar[str] = "schedule"
    coercers: ClassVar[dict[str, Coercer]] = {
        "cluster": _str,
        "power_budget_w": _float,
        "nodes": _int,
        "max_nodes": _optional(_int),
        "jobs": _tuple_of(_JOB),
        "policy": _str,
        "ee_floor": _optional(_float),
    }

    cluster: str = "systemg"
    power_budget_w: float = 0.0
    nodes: int = 64
    max_nodes: int | None = None
    jobs: tuple[Job, ...] = ()
    policy: str = "makespan"
    ee_floor: float | None = None


@dataclass(frozen=True)
class FederateRequest(WireRecord):
    """Route a job queue across a federated site under one power budget.

    ``shards`` describe the site (cluster names resolve through
    :func:`repro.federation.registry.default_registry`, so embedders may
    pre-register hypothetical machines); ``strategy`` picks the budget
    partitioner and ``metric`` the job-routing score.
    """

    op: ClassVar[str] = "federate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "budget_w": _float,
        "strategy": _str,
        "metric": _str,
        "shards": _tuple_of(_SHARD_SPEC),
        "jobs": _tuple_of(_JOB),
    }

    budget_w: float = 0.0
    strategy: str = "waterfill"
    metric: str = "ee_per_watt"
    shards: tuple[ShardSpec, ...] = ()
    jobs: tuple[Job, ...] = ()


@dataclass(frozen=True)
class HeteroRequest(WireRecord):
    """Search a heterogeneous pool mix for one workload.

    ``pools`` describe the candidate pools (machine names resolve
    through the federation registry, so hypothetical machines work);
    ``policies`` the workload split policies to search.  At least one
    objective must be requested: ``budget_w`` (fastest mix under the
    power budget), ``deadline_s`` (greenest mix meeting the deadline),
    ``pareto`` (the non-dominated menu), and/or ``policy_gap``
    (balanced-vs-uniform energy penalty over the mix space).
    """

    op: ClassVar[str] = "hetero"
    coercers: ClassVar[dict[str, Coercer]] = {
        "benchmark": _str,
        "klass": _str,
        "niter": _optional(_int),
        "pools": _tuple_of(_POOL_SPEC),
        "policies": _tuple_of(_str),
        "n_factor": _float,
        "budget_w": _optional(_float),
        "deadline_s": _optional(_float),
        "pareto": _bool,
        "policy_gap": _bool,
    }

    benchmark: str = "FT"
    klass: str = "B"
    niter: int | None = None
    pools: tuple[PoolSpec, ...] = ()
    policies: tuple[str, ...] = ("balanced",)
    n_factor: float = 1.0
    budget_w: float | None = None
    deadline_s: float | None = None
    pareto: bool = False
    policy_gap: bool = False


@dataclass(frozen=True)
class MetricsRequest(WireRecord):
    """A snapshot of the process metrics registry (``repro metrics``).

    The response's ``text`` is the Prometheus exposition body —
    byte-identical to what ``GET /metrics`` serves from the same
    process at the same instant.  ``filter`` (``--filter`` on the CLI)
    subsets the exposition to families whose name starts with it; the
    empty default returns everything.
    """

    op: ClassVar[str] = "metrics"
    coercers: ClassVar[dict[str, Coercer]] = {"filter": _str}

    filter: str = ""


@dataclass(frozen=True)
class SimulateRequest(WireRecord):
    """Run one discrete-event site simulation (``repro simulate``).

    The nested ``scenario`` carries the whole experiment: the federated
    site (shards + budget + partition strategy + routing metric), the
    demand process, the SLO, the queue discipline, the horizon, and the
    seed.  Identical requests are deterministic end to end, so the
    dispatch cache may serve them.  ``include_events`` additionally
    returns the full event log (reports alone stay small).
    """

    op: ClassVar[str] = "simulate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "scenario": _SCENARIO_SPEC,
        "include_events": _bool,
    }

    scenario: ScenarioSpec = ScenarioSpec()
    include_events: bool = False


@dataclass(frozen=True)
class TraceRequest(WireRecord):
    """Query one retained trace as a span tree (``repro trace <id>``).

    ``trace_id`` is the id stamped on the request's response headers /
    error payloads (or printed by the CLI); the trace must still be in
    the store's recent or slow ring.
    """

    op: ClassVar[str] = "trace"
    coercers: ClassVar[dict[str, Coercer]] = {"trace_id": _str}

    trace_id: str = ""


@dataclass(frozen=True)
class TimeSeriesRequest(WireRecord):
    """Rolling-window rollups of the retained metric time series.

    ``window_s`` bounds how far back the rollup looks; ``prefix``
    subsets the (large) series list by metric-name prefix, mirroring
    ``metrics.filter``.
    """

    op: ClassVar[str] = "timeseries"
    coercers: ClassVar[dict[str, Coercer]] = {
        "window_s": _float, "prefix": _str,
    }

    window_s: float = 60.0
    prefix: str = ""


@dataclass(frozen=True)
class AlertsRequest(WireRecord):
    """Evaluate every SLO rule right now (``repro alerts``)."""

    op: ClassVar[str] = "alerts"
    coercers: ClassVar[dict[str, Coercer]] = {}


def _sub_request(value: Any) -> "WireRecord":
    """One batch item: any non-batch request, op-tagged.

    Accepts already-typed requests (Python-side construction) and raw
    payloads (wire-side), resolving the latter through the operation
    registry.  Batches cannot nest — the executor would otherwise need
    recursion limits and depth-dependent semantics for no expressive
    gain.
    """
    from repro.api.schemas import request_from_dict

    if isinstance(value, WireRecord):
        if isinstance(value, (BatchRequest, Response)):
            raise WireError(
                f"a batch item must be a non-batch request, "
                f"got {type(value).__name__}"
            )
        return value
    if not isinstance(value, Mapping):
        raise WireError(f"expected a request object, got {value!r}")
    if value.get("op") == "batch":
        raise WireError("batch items cannot be nested batches")
    return request_from_dict(value)


@dataclass(frozen=True)
class BatchRequest(WireRecord):
    """A heterogeneous list of sub-queries answered in one round trip.

    Every item is a complete op-tagged request payload (the ``op`` field
    is mandatory per item — there is no path to default it from).  The
    executor groups items that share a grid signature so each distinct
    grid evaluates exactly once per batch, and answers item-wise: a
    failing item yields a structured error in its slot instead of
    failing the whole batch.
    """

    op: ClassVar[str] = "batch"
    coercers: ClassVar[dict[str, Coercer]] = {
        "items": _tuple_of(_sub_request),
    }

    items: tuple[WireRecord, ...] = ()


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Response(WireRecord):
    """Base for responses: strict decoding (every field required)."""

    lenient: ClassVar[bool] = False


@dataclass(frozen=True)
class EvaluateResponse(Response):
    op: ClassVar[str] = "evaluate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "point": _POINT,
    }

    model: str
    point: ModelPoint


@dataclass(frozen=True)
class SweepResponse(Response):
    op: ClassVar[str] = "sweep"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "points": _tuple_of(_POINT),
    }

    model: str
    points: tuple[ModelPoint, ...]


@dataclass(frozen=True)
class SurfaceResponse(Response):
    """An EE plane: ``values[i][j] = EE(x[i], y[j])``.

    ``x`` is always the processor count; ``y`` is a frequency in Hz
    (``axis="f"``) or a problem size (``axis="n"``).
    """

    op: ClassVar[str] = "surface"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str,
        "axis": _str,
        "x": _tuple_of(_int),
        "y": _tuple_of(_float),
        "values": _matrix,
    }

    model: str
    axis: str
    x: tuple[int, ...]
    y: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]


@dataclass(frozen=True)
class ValidateResponse(Response):
    op: ClassVar[str] = "validate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "benchmark": _str, "cluster": _str, "n": _float, "p": _int,
        "predicted_j": _float, "measured_j": _float, "abs_error_pct": _float,
        "sim_seconds": _float, "model_seconds": _float, "messages": _int,
        "bytes": _int,
    }

    benchmark: str
    cluster: str
    n: float
    p: int
    predicted_j: float
    measured_j: float
    abs_error_pct: float
    sim_seconds: float
    model_seconds: float
    messages: int
    bytes: int


@dataclass(frozen=True)
class BudgetResponse(Response):
    op: ClassVar[str] = "budget"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "recommendation": _RECOMMENDATION,
    }

    model: str
    recommendation: Recommendation


@dataclass(frozen=True)
class DeadlineResponse(Response):
    op: ClassVar[str] = "deadline"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "recommendation": _RECOMMENDATION,
    }

    model: str
    recommendation: Recommendation


@dataclass(frozen=True)
class IsoEEResponse(Response):
    op: ClassVar[str] = "isoee"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "target_ee": _float,
        "points": _tuple_of(_CONTOUR_POINT),
    }

    model: str
    target_ee: float
    points: tuple[ContourPoint, ...]


@dataclass(frozen=True)
class ParetoResponse(Response):
    op: ClassVar[str] = "pareto"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str, "points": _tuple_of(_RECOMMENDATION),
    }

    model: str
    points: tuple[Recommendation, ...]


@dataclass(frozen=True)
class ScheduleResponse(Response):
    op: ClassVar[str] = "schedule"
    coercers: ClassVar[dict[str, Coercer]] = {
        "cluster": _str,
        "power_budget_w": _float,
        "policy": _str,
        "assignments": _tuple_of(_ASSIGNMENT),
        "total_power_w": _float,
        "headroom_w": _float,
        "makespan_s": _float,
        "total_energy_j": _float,
    }

    cluster: str
    power_budget_w: float
    policy: str
    assignments: tuple[Assignment, ...]
    total_power_w: float
    headroom_w: float
    makespan_s: float
    total_energy_j: float


@dataclass(frozen=True)
class FederateResponse(Response):
    """The flattened site decision: partition, plans, and aggregates."""

    op: ClassVar[str] = "federate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "budget_w": _float,
        "strategy": _str,
        "metric": _str,
        "allocations": _tuple_of(_SHARD_ALLOCATION),
        "plans": _tuple_of(_SHARD_PLAN),
        "total_allocated_w": _float,
        "total_power_w": _float,
        "site_headroom_w": _float,
        "makespan_s": _float,
        "total_energy_j": _float,
    }

    budget_w: float
    strategy: str
    metric: str
    allocations: tuple[ShardAllocation, ...]
    plans: tuple[ShardPlan, ...]
    total_allocated_w: float
    total_power_w: float
    site_headroom_w: float
    makespan_s: float
    total_energy_j: float


@dataclass(frozen=True)
class HeteroResponse(Response):
    """The answered hetero objectives; unrequested slots are null.

    ``allocations`` is the size of the searched space (mixes × split
    policies); each requested objective fills its slot with a
    :class:`~repro.hetero.solve.HeteroRecommendation` (or the Pareto
    tuple / :class:`~repro.hetero.solve.PolicyGap` record).
    """

    op: ClassVar[str] = "hetero"
    coercers: ClassVar[dict[str, Coercer]] = {
        "model": _str,
        "allocations": _int,
        "budget": _optional(_HETERO_RECOMMENDATION),
        "deadline": _optional(_HETERO_RECOMMENDATION),
        "pareto": _tuple_of(_HETERO_RECOMMENDATION),
        "policy_gap": _optional(_POLICY_GAP),
    }

    model: str
    allocations: int
    budget: HeteroRecommendation | None
    deadline: HeteroRecommendation | None
    pareto: tuple[HeteroRecommendation, ...]
    policy_gap: PolicyGap | None


@dataclass(frozen=True)
class MetricsResponse(Response):
    """The rendered registry: counters, gauges, histograms as text."""

    op: ClassVar[str] = "metrics"
    coercers: ClassVar[dict[str, Coercer]] = {"text": _str}

    text: str


@dataclass(frozen=True)
class SimulateResponse(Response):
    """One finished simulation: the KPI report, optionally the event log.

    ``events`` is empty unless the request set ``include_events`` — the
    report's ``events`` *count* always reflects the full log either way.
    """

    op: ClassVar[str] = "simulate"
    coercers: ClassVar[dict[str, Coercer]] = {
        "report": _SIM_REPORT,
        "events": _tuple_of(_SIM_EVENT),
    }

    report: SimReport
    events: tuple[SimEvent, ...]


@dataclass(frozen=True)
class TraceResponse(Response):
    """One retained span tree, offsets relative to the trace start.

    ``slow`` marks traces pinned by the slow ring; ``dropped`` counts
    spans beyond the per-trace cap; ``duration_s`` is the extent of the
    whole tree (latest span end minus earliest span start).
    """

    op: ClassVar[str] = "trace"
    coercers: ClassVar[dict[str, Coercer]] = {
        "trace_id": _str, "slow": _bool, "dropped": _int,
        "duration_s": _float, "spans": _tuple_of(_SPAN_NODE),
    }

    trace_id: str
    slow: bool
    dropped: int
    duration_s: float
    spans: tuple[SpanNode, ...]


@dataclass(frozen=True)
class TimeSeriesResponse(Response):
    """Window rollups: one :class:`~repro.obs.store.SeriesSummary` per
    metric child, plus how much retained history backed them
    (``samples`` snapshots spanning ``span_s`` seconds)."""

    op: ClassVar[str] = "timeseries"
    coercers: ClassVar[dict[str, Coercer]] = {
        "window_s": _float, "samples": _int, "span_s": _float,
        "series": _tuple_of(_SERIES_SUMMARY),
    }

    window_s: float
    samples: int
    span_s: float
    series: tuple[SeriesSummary, ...]


@dataclass(frozen=True)
class AlertsResponse(Response):
    """Every SLO rule's current state, with firing/pending rollup counts."""

    op: ClassVar[str] = "alerts"
    coercers: ClassVar[dict[str, Coercer]] = {
        "firing": _int, "pending": _int,
        "alerts": _tuple_of(_ALERT_STATE),
    }

    firing: int
    pending: int
    alerts: tuple[AlertState, ...]


@dataclass(frozen=True)
class BatchError:
    """The structured failure of one batch item.

    ``type`` is the :class:`~repro.errors.ReproError` subclass name —
    the same taxonomy the HTTP error payloads carry, so batch consumers
    and single-shot consumers read one error language.
    """

    type: str
    message: str


@dataclass(frozen=True)
class BatchItem:
    """One slot of a batch answer: a response, or a structured error."""

    ok: bool
    response: Response | None = None
    error: BatchError | None = None


def _sub_response(value: Any) -> Response:
    """One answered batch slot (non-batch responses only)."""
    from repro.api.schemas import response_from_dict

    if isinstance(value, Response):
        if isinstance(value, BatchResponse):
            raise WireError("batch responses cannot nest")
        return value
    if not isinstance(value, Mapping):
        raise WireError(f"expected a response object, got {value!r}")
    if value.get("op") == "batch":
        raise WireError("batch responses cannot nest")
    return response_from_dict(value)


_BATCH_ERROR = _nested(BatchError, {"type": _str, "message": _str})
_BATCH_ITEM = _nested(
    BatchItem,
    {
        "ok": _bool,
        "response": _optional(_sub_response),
        "error": _optional(_BATCH_ERROR),
    },
)


@dataclass(frozen=True)
class BatchResponse(Response):
    """Item-wise answers to a :class:`BatchRequest`, same order.

    ``items[k].ok`` tells whether slot ``k`` carries a ``response``
    (itself a full op-tagged payload, byte-identical to what the
    equivalent single ``POST /v1/<op>`` would have returned) or a
    structured ``error``.
    """

    op: ClassVar[str] = "batch"
    coercers: ClassVar[dict[str, Coercer]] = {
        "items": _tuple_of(_BATCH_ITEM),
    }

    items: tuple[BatchItem, ...]

"""``repro.api`` — the typed query/response facade and its serving layer.

The iso-energy-efficiency model is a decision service: "given a power
budget or a deadline, which (p, f, n) should I run?".  This package gives
that service one stable, serializable surface:

* :mod:`repro.api.types` — frozen-dataclass requests and responses with
  versioned ``to_dict``/``from_dict`` JSON round-tripping;
* :mod:`repro.api.schemas` — the op-name registry binding the two sides;
* :mod:`repro.api.service` — ``dispatch(request) -> response``, the
  memoised facade over every engine;
* :mod:`repro.api.server` — a stdlib asyncio HTTP/JSON front end
  (``repro serve``) exposing ``POST /v1/<op>`` + ``GET /healthz``.

Quick start::

    from repro.api import BudgetQuery, dispatch
    resp = dispatch(BudgetQuery(benchmark="FT", budget_w=3000.0))
    print(resp.recommendation.p, resp.recommendation.f)

Wire format stability: within one ``API_VERSION``, fields are only ever
*added* (decoding rejects unknown fields, so additions bump the version).
"""

from repro.api.schemas import (
    API_VERSION,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    operations,
    request_from_dict,
    response_from_dict,
)
from repro.api.service import (
    cache_info,
    cache_stats_payload,
    clear_caches,
    dispatch,
)
from repro.api.types import (
    BatchError,
    BatchItem,
    BatchRequest,
    BatchResponse,
    BudgetQuery,
    BudgetResponse,
    DeadlineQuery,
    DeadlineResponse,
    EvaluateRequest,
    EvaluateResponse,
    FederateRequest,
    FederateResponse,
    HeteroRequest,
    HeteroResponse,
    IsoEEQuery,
    IsoEEResponse,
    MetricsRequest,
    MetricsResponse,
    ParetoQuery,
    ParetoResponse,
    Response,
    ScheduleRequest,
    ScheduleResponse,
    SurfaceRequest,
    SurfaceResponse,
    SweepRequest,
    SweepResponse,
    ValidateRequest,
    ValidateResponse,
    WireRecord,
)
from repro.api.server import serve, start_server

__all__ = [
    "API_VERSION",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "operations",
    "request_from_dict",
    "response_from_dict",
    "dispatch",
    "cache_info",
    "cache_stats_payload",
    "clear_caches",
    "BatchRequest",
    "BatchResponse",
    "BatchItem",
    "BatchError",
    "serve",
    "start_server",
    "WireRecord",
    "Response",
    "EvaluateRequest",
    "EvaluateResponse",
    "SweepRequest",
    "SweepResponse",
    "SurfaceRequest",
    "SurfaceResponse",
    "ValidateRequest",
    "ValidateResponse",
    "BudgetQuery",
    "BudgetResponse",
    "DeadlineQuery",
    "DeadlineResponse",
    "IsoEEQuery",
    "IsoEEResponse",
    "ParetoQuery",
    "ParetoResponse",
    "ScheduleRequest",
    "ScheduleResponse",
    "FederateRequest",
    "FederateResponse",
    "HeteroRequest",
    "HeteroResponse",
    "MetricsRequest",
    "MetricsResponse",
]

"""Scalability-analysis tooling: sweeps, EE surfaces, terminal reports."""

from repro.analysis.surface import EESurface, ee_surface, surface_from_grid
from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.sweep import frequency_slice, parallelism_sweep, problem_size_slice

__all__ = [
    "EESurface",
    "ee_surface",
    "surface_from_grid",
    "ascii_heatmap",
    "ascii_table",
    "format_si",
    "frequency_slice",
    "parallelism_sweep",
    "problem_size_slice",
]

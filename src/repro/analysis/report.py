"""Terminal rendering: aligned tables and heatmaps for figures' data."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError

#: shading ramp for heatmaps, light to dark
_RAMP = " .:-=+*#%@"


def format_si(value: float, unit: str = "") -> str:
    """Human-readable engineering notation: 3.36e7 → '33.6M'."""
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    for factor, suffix in [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]:
        if magnitude >= factor:
            return f"{value / factor:.3g}{suffix}{unit}"
    if magnitude >= 1:
        return f"{value:.3g}{unit}"
    for factor, suffix in [(1e-3, "m"), (1e-6, "µ"), (1e-9, "n")]:
        if magnitude >= factor:
            return f"{value / factor:.3g}{suffix}{unit}"
    return f"{value:.3g}{unit}"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned, pipe-separated table."""
    if not headers:
        raise ParameterError("a table needs headers")
    str_rows = [[_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ParameterError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(list(headers)), sep]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


def ascii_heatmap(
    values: np.ndarray,
    x_labels: Sequence,
    y_labels: Sequence,
    title: str = "",
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Shade a 2-D array as a character heatmap (rows = x, cols = y).

    The terminal stand-in for the paper's 3-D surface plots: darker cells
    are higher EE.
    """
    values = np.asarray(values, dtype=float)
    if values.shape != (len(x_labels), len(y_labels)):
        raise ParameterError("value shape must match label counts")
    vmin = float(values.min()) if lo is None else lo
    vmax = float(values.max()) if hi is None else hi
    span = max(vmax - vmin, 1e-12)
    label_w = max(len(str(x)) for x in x_labels)
    lines = []
    if title:
        lines.append(title)
    header = " " * (label_w + 1) + " ".join(f"{str(y):>5}" for y in y_labels)
    lines.append(header)
    for i, xl in enumerate(x_labels):
        cells = []
        for j in range(len(y_labels)):
            frac = (values[i, j] - vmin) / span
            idx = min(len(_RAMP) - 1, max(0, int(frac * (len(_RAMP) - 1) + 0.5)))
            cells.append(f"{_RAMP[idx] * 3:>5}")
        lines.append(f"{str(xl):>{label_w}} " + " ".join(cells))
    lines.append(f"scale: '{_RAMP[0]}'={vmin:.3f} .. '{_RAMP[-1]}'={vmax:.3f}")
    return "\n".join(lines)


def _cell(c) -> str:
    if isinstance(c, float):
        return f"{c:.4g}"
    return str(c)

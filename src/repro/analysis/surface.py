"""EE surfaces: the data behind the paper's 3-D plots (Figs. 5–9).

An :class:`EESurface` evaluates EE over a 2-D grid — (p, f) at fixed n,
or (p, n) at fixed f — and exposes the series row-by-row for printing,
regression-testing, and rendering as a terminal heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError


@dataclass(frozen=True)
class EESurface:
    """EE evaluated over a grid of two axes.

    ``x`` is the first axis (always p in the paper's figures), ``y`` the
    second (f or n); ``values[i, j] = EE(x=x[i], y=y[j])``.
    """

    x_name: str
    y_name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    values: np.ndarray
    fixed: dict[str, float]
    label: str = ""

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.x), len(self.y)):
            raise ParameterError(
                f"values shape {self.values.shape} does not match axes "
                f"({len(self.x)}, {len(self.y)})"
            )

    def at(self, xv: float, yv: float) -> float:
        i = self.x.index(xv)
        j = self.y.index(yv)
        return float(self.values[i, j])

    def rows(self) -> list[tuple]:
        """One row per x value: (x, EE(y0), EE(y1), ...)."""
        return [
            (self.x[i], *[round(float(v), 4) for v in self.values[i]])
            for i in range(len(self.x))
        ]

    def column(self, yv: float) -> list[tuple[float, float]]:
        """The (x, EE) series at one fixed y — a slice of the surface."""
        j = self.y.index(yv)
        return [(self.x[i], float(self.values[i, j])) for i in range(len(self.x))]

    # -- shape diagnostics used by regression tests ------------------------------

    def monotone_along_x(self, increasing: bool) -> bool:
        """True if every y-column is monotone along x in the given direction."""
        diffs = np.diff(self.values, axis=0)
        return bool(np.all(diffs >= -1e-12)) if increasing else bool(
            np.all(diffs <= 1e-12)
        )

    def monotone_along_y(self, increasing: bool) -> bool:
        diffs = np.diff(self.values, axis=1)
        return bool(np.all(diffs >= -1e-12)) if increasing else bool(
            np.all(diffs <= 1e-12)
        )

    def spread_along_y(self) -> float:
        """Max over x of (max−min) across y — the frequency-sensitivity."""
        return float(np.max(self.values.max(axis=1) - self.values.min(axis=1)))

    def spread_along_x(self) -> float:
        return float(np.max(self.values.max(axis=0) - self.values.min(axis=0)))


def surface_from_grid(
    grid,
    *,
    metric: str = "ee",
    axis: str = "f",
    index: int = 0,
    label: str = "",
) -> EESurface:
    """An :class:`EESurface` view of a vectorized grid result.

    Bridges :class:`repro.optimize.grid.GridResult` into the analysis
    layer: ``axis="f"`` takes the (p × f) plane at n index ``index``,
    ``axis="n"`` the (p × n) plane at f index ``index``.  The slice
    feeds :func:`repro.analysis.report.ascii_heatmap` and the shape
    diagnostics exactly like a scalar-built surface.
    """
    if axis == "f":
        values = grid.slice_pf(metric, kn=index)
        ys = grid.f_values
        fixed = {"n": float(grid.n_values[index])}
    elif axis == "n":
        values = grid.slice_pn(metric, jf=index)
        ys = grid.n_values
        fixed = {"f": float(grid.f_values[index])}
    else:
        raise ParameterError(f"axis must be 'f' or 'n', got {axis!r}")
    return EESurface(
        x_name="p",
        y_name=axis,
        x=tuple(float(p) for p in grid.p_values),
        y=tuple(float(y) for y in ys),
        values=values,
        fixed=fixed,
        label=label or f"{grid.label} [{metric}]",
    )


def ee_surface(
    model: IsoEnergyModel,
    *,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
    n_values: Sequence[float] | None = None,
    n: float | None = None,
    f: float | None = None,
    label: str = "",
) -> EESurface:
    """Evaluate EE over (p × f) at fixed n, or (p × n) at fixed f."""
    if (f_values is None) == (n_values is None):
        raise ParameterError("sweep exactly one of f_values or n_values")
    if f_values is not None:
        if n is None:
            raise ParameterError("fix n when sweeping frequency")
        y_name, ys = "f", [float(v) for v in f_values]
        values = np.array(
            [[model.ee(n=n, p=p, f=fv) for fv in ys] for p in p_values]
        )
        fixed = {"n": float(n)}
    else:
        assert n_values is not None
        y_name, ys = "n", [float(v) for v in n_values]
        values = np.array(
            [[model.ee(n=nv, p=p, f=f) for nv in ys] for p in p_values]
        )
        fixed = {"f": float(f if f is not None else model.machine.f)}
    return EESurface(
        x_name="p",
        y_name=y_name,
        x=tuple(float(p) for p in p_values),
        y=tuple(ys),
        values=values,
        fixed=fixed,
        label=label or model.name,
    )

"""Metric comparison: EE against the related-work metrics (§II).

The paper positions iso-energy-efficiency against three families:
performance isoefficiency (blind to energy), the ERE-style ratios
(flag inefficiency but "do not identify causal relationships"), and
power-aware speedup (captures DVFS effects but "provides little insight
to the root cause").  :func:`metric_comparison` evaluates all of them
side by side across p, and — the point of the exercise — shows that
only EEF comes with an attribution column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.baselines import (
    ere_metric,
    grama_isoefficiency_overhead,
    performance_efficiency,
)
from repro.core.efficiency import dominant_overhead, eef
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError


@dataclass(frozen=True)
class MetricRow:
    """All §II metrics at one parallelism level."""

    p: int
    perf_efficiency: float  # Grama
    overhead_seconds: float  # Grama's To
    ere: float  # Jiang-style ratio
    eef: float  # this paper
    ee: float  # this paper
    attribution: str  # only EEF provides this

    def as_tuple(self) -> tuple:
        return (
            self.p,
            round(self.perf_efficiency, 4),
            round(self.overhead_seconds, 4),
            round(self.ere, 3),
            round(self.eef, 4),
            round(self.ee, 4),
            self.attribution,
        )


def metric_comparison(
    model: IsoEnergyModel,
    *,
    n: float,
    p_values: Sequence[int],
    f: float | None = None,
) -> list[MetricRow]:
    """Evaluate every §II metric at each p."""
    if not p_values:
        raise ParameterError("no p values supplied")
    machine = model.machine_at(f)
    rows = []
    for p in p_values:
        app = model.app_params(n, p)
        rows.append(
            MetricRow(
                p=p,
                perf_efficiency=performance_efficiency(machine, app, p),
                overhead_seconds=grama_isoefficiency_overhead(machine, app, p),
                ere=ere_metric(machine, app, p),
                eef=eef(machine, app, p),
                ee=1.0 / (1.0 + eef(machine, app, p)),
                attribution="none" if p == 1 else dominant_overhead(machine, app, p),
            )
        )
    return rows


def divergence_point(
    rows: Sequence[MetricRow], tolerance: float = 0.05
) -> int | None:
    """Smallest p where energy and performance efficiency part ways.

    Performance isoefficiency alone would treat these as one curve; the
    first p where |EE − perf-eff| exceeds ``tolerance`` is where an
    energy-blind analysis starts giving wrong answers.  Returns None if
    they never diverge over the evaluated range.
    """
    if tolerance <= 0:
        raise ParameterError("tolerance must be positive")
    for row in rows:
        if abs(row.ee - row.perf_efficiency) > tolerance:
            return row.p
    return None

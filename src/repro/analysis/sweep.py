"""One-dimensional model sweeps with printed-row output."""

from __future__ import annotations

from typing import Sequence

from repro.core.model import IsoEnergyModel, ModelPoint
from repro.errors import ParameterError


def parallelism_sweep(
    model: IsoEnergyModel,
    *,
    n: float,
    p_values: Sequence[int],
    f: float | None = None,
) -> list[ModelPoint]:
    """Evaluate the model across processor counts at fixed (n, f)."""
    if not p_values:
        raise ParameterError("no p values supplied")
    return [model.evaluate(n=n, p=int(p), f=f) for p in p_values]


def frequency_slice(
    model: IsoEnergyModel,
    *,
    n: float,
    p: int,
    f_values: Sequence[float],
) -> list[ModelPoint]:
    """Evaluate the model across DVFS frequencies at fixed (n, p)."""
    if not f_values:
        raise ParameterError("no frequencies supplied")
    return [model.evaluate(n=n, p=p, f=f) for f in f_values]


def problem_size_slice(
    model: IsoEnergyModel,
    *,
    p: int,
    n_values: Sequence[float],
    f: float | None = None,
) -> list[ModelPoint]:
    """Evaluate the model across problem sizes at fixed (p, f)."""
    if not n_values:
        raise ParameterError("no problem sizes supplied")
    return [model.evaluate(n=n, p=p, f=f) for n in n_values]


def points_table(points: list[ModelPoint]) -> list[tuple]:
    """Rows (p, f_GHz, n, T1, Tp, E1, Ep, EEF, EE, speedup, bottleneck)."""
    return [
        (
            pt.p,
            round(pt.f / 1e9, 3),
            pt.n,
            round(pt.t1, 3),
            round(pt.tp, 3),
            round(pt.e1, 1),
            round(pt.ep, 1),
            round(pt.eef, 4),
            round(pt.ee, 4),
            round(pt.speedup, 2),
            pt.bottleneck,
        )
        for pt in points
    ]

"""A seeded, deterministic discrete-event engine.

The engine is deliberately tiny: a binary heap of pending callbacks
keyed on ``(time, seq)`` — the monotone sequence number breaks
simultaneous-event ties in scheduling order, so two runs of the same
scenario dispatch events in exactly the same order — plus an
append-only :class:`EventLog` every handler writes observable facts
into.  KPIs (:mod:`repro.sim.kpis`) are computed *only* from the log,
never from handler-local state, which keeps the report reproducible
from the event stream alone (the same property real cluster traces
have).

Handlers are process-style: a handler runs at its scheduled time,
mutates whatever state it closes over, appends events, and schedules
follow-up handlers.  There is no wall-clock anywhere — simulated time
only advances by scheduling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import SimulationError
from repro.obs.metrics import registry
from repro.obs.trace import span

_EVENTS_TOTAL = registry().counter(
    "repro_sim_events_total",
    "Simulation events appended to event logs, by kind.",
    labelnames=("kind",),
)

#: hard ceiling on events one run may dispatch — a runaway-scenario
#: backstop (an unbounded feedback loop of handlers re-scheduling each
#: other would otherwise hang the serving process).
MAX_DISPATCHED_EVENTS = 5_000_000


@dataclass(frozen=True)
class SimEvent:
    """One observable fact, as recorded in the event log.

    ``(time, seq)`` totally orders the log (``seq`` is the append
    index).  ``kind`` is the event vocabulary of the producing
    simulation (the site simulator uses ``arrival`` / ``enqueue`` /
    ``start`` / ``finish`` / ``reject``); the remaining fields carry
    the payload — unused ones stay at their zero values so every event
    serialises with one fixed schema.
    """

    time: float
    seq: int
    kind: str
    job: str = ""
    shard: str = ""
    detail: str = ""
    watts: float = 0.0
    seconds: float = 0.0
    joules: float = 0.0


class EventLog:
    """An append-only, totally ordered record of simulation events."""

    def __init__(self) -> None:
        self._events: list[SimEvent] = []

    def append(
        self,
        time: float,
        kind: str,
        *,
        job: str = "",
        shard: str = "",
        detail: str = "",
        watts: float = 0.0,
        seconds: float = 0.0,
        joules: float = 0.0,
    ) -> SimEvent:
        """Record one event; ``seq`` is assigned from the append order."""
        event = SimEvent(
            time=time,
            seq=len(self._events),
            kind=kind,
            job=job,
            shard=shard,
            detail=detail,
            watts=watts,
            seconds=seconds,
            joules=joules,
        )
        self._events.append(event)
        _EVENTS_TOTAL.labels(kind).inc()
        return event

    @property
    def events(self) -> tuple[SimEvent, ...]:
        return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """Events per kind, first-seen order — the log's quick summary."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)


class Simulator:
    """The event loop: schedule handlers, run them in (time, seq) order."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._next_seq = 0
        self.dispatched = 0
        self.log = EventLog()

    def schedule(self, delay: float, handler: Callable, *args) -> None:
        """Run ``handler(*args)`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay:g} s into the past"
            )
        self.schedule_at(self.now + delay, handler, *args)

    def schedule_at(self, time: float, handler: Callable, *args) -> None:
        """Run ``handler(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:g} s; clock is at {self.now:g} s"
            )
        heapq.heappush(self._heap, (time, self._next_seq, handler, args))
        self._next_seq += 1

    def run(self) -> int:
        """Drain the heap; returns the number of handlers dispatched."""
        dispatched_before = self.dispatched
        with span("sim.run"):
            while self._heap:
                time, _, handler, args = heapq.heappop(self._heap)
                self.now = time
                self.dispatched += 1
                if self.dispatched > MAX_DISPATCHED_EVENTS:
                    raise SimulationError(
                        f"simulation exceeded {MAX_DISPATCHED_EVENTS} "
                        "dispatched events; the scenario does not terminate"
                    )
                handler(*args)
        return self.dispatched - dispatched_before

"""Discrete-event simulation of a power-capped federated site.

Everything else in the repo answers *static* questions — one batch of
jobs, one budget, one placement.  This package animates the same
models over time: jobs arrive under a configurable demand process
(:mod:`repro.sim.demand`), queue at federation shards, and are placed
online by the existing routing/scheduling policies acting as an online
scheduler (:mod:`repro.sim.site`), all on a seeded, deterministic
event engine (:mod:`repro.sim.engine`).  KPIs — latency percentiles,
energy per job, queue depth, utilization, SLO violations — are
computed from the append-only event log (:mod:`repro.sim.kpis`).

The same scenario runs identically in-process, through the wire-v6
``simulate`` op, via ``POST /v1/simulate``, and via ``repro simulate``:
one seed, one event log, byte-identical reports.
"""

from repro.sim.demand import (
    DEMAND_KINDS,
    Arrival,
    DemandSpec,
    format_trace,
    generate_arrivals,
    parse_trace,
)
from repro.sim.engine import EventLog, SimEvent, Simulator
from repro.sim.kpis import ShardLoad, SimReport, SloSpec, compute_kpis
from repro.sim.site import (
    QUEUE_DISCIPLINES,
    ScenarioSpec,
    SimResult,
    run_scenario,
)

__all__ = [
    "DEMAND_KINDS",
    "QUEUE_DISCIPLINES",
    "Arrival",
    "DemandSpec",
    "EventLog",
    "ScenarioSpec",
    "ShardLoad",
    "SimEvent",
    "SimReport",
    "SimResult",
    "Simulator",
    "SloSpec",
    "compute_kpis",
    "format_trace",
    "generate_arrivals",
    "parse_trace",
    "run_scenario",
]

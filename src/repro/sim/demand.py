"""Configurable demand processes: who arrives, and when.

Four arrival-process kinds feed the site simulator:

* ``"poisson"`` — memoryless arrivals at ``rate_per_s`` (exponential
  inter-arrival gaps), the M/·/· baseline of queueing studies;
* ``"burst"`` — ``burst_size`` simultaneous arrivals every
  ``burst_every_s`` seconds, the adversarial batch-drop pattern;
* ``"diurnal"`` — a non-homogeneous Poisson process whose rate follows
  a day-shaped sinusoid ``rate·(1 + amplitude·sin(2π(t−phase)/period))``,
  sampled exactly by Lewis–Shedler thinning;
* ``"trace"`` — replay of a recorded arrival trace (JSON lines), for
  validating energy claims against real workload dynamics.

Every generator draws from one ``random.Random(seed)`` stream, so a
scenario's arrival sequence — times, workloads, and names — is a pure
function of ``(spec, horizon, seed)``: same seed, identical arrivals,
byte-identical downstream reports.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.optimize.schedule import Job

#: demand-process kinds understood by :func:`generate_arrivals`.
DEMAND_KINDS = ("poisson", "burst", "diurnal", "trace")

#: refuse to materialise more arrivals than this per scenario.
MAX_ARRIVALS = 200_000

#: the workload arrivals carry when a spec names no templates.
DEFAULT_TEMPLATE = Job("job", "FT", "B")


@dataclass(frozen=True)
class DemandSpec:
    """The wire-expressible description of one demand process.

    Only the fields its ``kind`` reads matter: ``rate_per_s`` drives
    ``poisson`` and ``diurnal``; ``burst_size``/``burst_every_s`` drive
    ``burst``; ``period_s``/``amplitude``/``phase_s`` shape the
    ``diurnal`` sinusoid; ``trace`` holds the JSON-lines text a
    ``trace`` spec replays.  ``jobs`` are the workload templates
    arrivals sample from (uniformly, from the seeded stream); empty
    means one default FT.B template.
    """

    kind: str = "poisson"
    rate_per_s: float = 0.1
    burst_size: int = 8
    burst_every_s: float = 120.0
    period_s: float = 86400.0
    amplitude: float = 0.5
    phase_s: float = 0.0
    trace: str = ""
    jobs: tuple[Job, ...] = ()


@dataclass(frozen=True)
class Arrival:
    """One job arriving at one simulated time."""

    time: float
    job: Job


def validate_demand(spec: DemandSpec) -> None:
    """Reject demand specs the generators cannot honour."""
    if spec.kind not in DEMAND_KINDS:
        raise ParameterError(
            f"unknown demand kind {spec.kind!r}; choose from {DEMAND_KINDS}"
        )
    if spec.kind in ("poisson", "diurnal") and spec.rate_per_s <= 0:
        raise ParameterError(
            f"demand rate must be positive, got {spec.rate_per_s!r}"
        )
    if spec.kind == "burst":
        if spec.burst_size < 1:
            raise ParameterError(
                f"burst size must be at least 1, got {spec.burst_size!r}"
            )
        if spec.burst_every_s <= 0:
            raise ParameterError(
                f"burst period must be positive, got {spec.burst_every_s!r}"
            )
    if spec.kind == "diurnal":
        if spec.period_s <= 0:
            raise ParameterError(
                f"diurnal period must be positive, got {spec.period_s!r}"
            )
        if not 0.0 <= spec.amplitude <= 1.0:
            raise ParameterError(
                f"diurnal amplitude must be in [0, 1], got {spec.amplitude!r}"
            )
    if spec.kind == "trace" and not spec.trace.strip():
        raise ParameterError("a trace demand spec needs non-empty trace text")


def _templates(spec: DemandSpec) -> tuple[Job, ...]:
    return spec.jobs if spec.jobs else (DEFAULT_TEMPLATE,)


def _named(template: Job, index: int) -> Job:
    """A concrete arrival job: the template with a unique instance name."""
    return Job(
        name=f"{template.name}-{index:05d}",
        benchmark=template.benchmark,
        klass=template.klass,
        niter=template.niter,
    )


def _check_count(count: int) -> None:
    if count >= MAX_ARRIVALS:
        raise ParameterError(
            f"demand spec generates more than {MAX_ARRIVALS} arrivals; "
            "lower the rate or shorten the horizon"
        )


def _poisson_times(
    rng: random.Random, rate: float, horizon_s: float
) -> list[float]:
    times = []
    t = rng.expovariate(rate)
    while t < horizon_s:
        _check_count(len(times))
        times.append(t)
        t += rng.expovariate(rate)
    return times


def _burst_times(spec: DemandSpec, horizon_s: float) -> list[float]:
    times: list[float] = []
    t = 0.0
    while t < horizon_s:
        for _ in range(spec.burst_size):
            _check_count(len(times))
            times.append(t)
        t += spec.burst_every_s
    return times


def diurnal_rate(spec: DemandSpec, t: float) -> float:
    """The instantaneous arrival rate of a diurnal spec at time ``t``."""
    phase = 2.0 * math.pi * (t - spec.phase_s) / spec.period_s
    return spec.rate_per_s * (1.0 + spec.amplitude * math.sin(phase))


def _diurnal_times(
    rng: random.Random, spec: DemandSpec, horizon_s: float
) -> list[float]:
    # Lewis–Shedler thinning: draw a homogeneous process at the peak
    # rate, keep each point with probability rate(t)/peak — an exact
    # sampler for the non-homogeneous process, and still one rng stream.
    peak = spec.rate_per_s * (1.0 + spec.amplitude)
    times: list[float] = []
    t = rng.expovariate(peak)
    while t < horizon_s:
        if rng.random() * peak <= diurnal_rate(spec, t):
            _check_count(len(times))
            times.append(t)
        t += rng.expovariate(peak)
    return times


def parse_trace(text: str) -> list[Arrival]:
    """Arrivals from JSON-lines trace text, sorted by time (stable).

    Each non-blank line is an object with ``t`` (seconds) and optional
    ``name``/``benchmark``/``klass``/``niter`` workload fields.  Raises
    :class:`ParameterError` naming the offending line on malformed
    input.
    """
    arrivals: list[Arrival] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ParameterError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(record, dict) or "t" not in record:
            raise ParameterError(
                f"trace line {lineno} must be an object with a 't' field"
            )
        unknown = set(record) - {"t", "name", "benchmark", "klass", "niter"}
        if unknown:
            raise ParameterError(
                f"trace line {lineno} has unknown field(s) "
                f"{sorted(unknown)}"
            )
        t = record["t"]
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            raise ParameterError(
                f"trace line {lineno}: 't' must be a non-negative number"
            )
        niter = record.get("niter")
        if niter is not None and not isinstance(niter, int):
            raise ParameterError(
                f"trace line {lineno}: 'niter' must be an integer or null"
            )
        arrivals.append(
            Arrival(
                time=float(t),
                job=Job(
                    name=str(record.get("name", f"trace-{lineno:05d}")),
                    benchmark=str(record.get("benchmark", "FT")),
                    klass=str(record.get("klass", "B")),
                    niter=niter,
                ),
            )
        )
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def format_trace(arrivals: list[Arrival]) -> str:
    """JSON-lines text that :func:`parse_trace` reads back identically."""
    lines = [
        json.dumps(
            {
                "t": a.time,
                "name": a.job.name,
                "benchmark": a.job.benchmark,
                "klass": a.job.klass,
                "niter": a.job.niter,
            },
            sort_keys=True,
        )
        for a in arrivals
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def generate_arrivals(
    spec: DemandSpec, *, horizon_s: float, seed: int
) -> list[Arrival]:
    """The full arrival sequence of one scenario, seeded and sorted.

    A pure function of its arguments: the same ``(spec, horizon, seed)``
    always yields the identical list.  Arrivals strictly before
    ``horizon_s`` are generated; workloads are drawn uniformly from the
    spec's templates and named ``<template>-<index>`` in arrival order.
    """
    validate_demand(spec)
    if horizon_s <= 0:
        raise ParameterError(
            f"simulation horizon must be positive, got {horizon_s!r}"
        )
    if spec.kind == "trace":
        arrivals = [a for a in parse_trace(spec.trace) if a.time < horizon_s]
        _check_count(len(arrivals) - 1 if arrivals else 0)
        return arrivals
    rng = random.Random(seed)
    if spec.kind == "poisson":
        times = _poisson_times(rng, spec.rate_per_s, horizon_s)
    elif spec.kind == "burst":
        times = _burst_times(spec, horizon_s)
    else:
        times = _diurnal_times(rng, spec, horizon_s)
    templates = _templates(spec)
    return [
        Arrival(time=t, job=_named(templates[rng.randrange(len(templates))], i))
        for i, t in enumerate(times)
    ]

"""KPIs computed from a simulation's event log.

Every number here is derived from the append-only event stream plus
the scenario's static facts (allocations, horizon, SLO) — never from
simulator-internal state — so a report is reproducible from the log
alone, and two byte-identical logs always yield byte-identical
reports.

Percentiles use the nearest-rank definition (deterministic, no
interpolation).  Utilization is the shard's power-time integral over
``allocation × duration`` — the fraction of its allocated watt-seconds
actually spent running jobs.  Energy counts the model's per-job Ep;
idle draw of unallocated capacity is out of scope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError, SimulationError
from repro.sim.engine import SimEvent


@dataclass(frozen=True)
class SloSpec:
    """The service-level objective a run is judged against.

    ``deadline_s`` bounds a job's sojourn (arrival → finish);
    ``max_wait_s`` bounds its wait (arrival → start).  ``None`` leaves
    that bound unenforced.  SLOs never change placement — they only
    count violations in the report.
    """

    deadline_s: float | None = None
    max_wait_s: float | None = None

    def validate(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ParameterError(
                f"SLO deadline must be positive, got {self.deadline_s!r}"
            )
        if self.max_wait_s is not None and self.max_wait_s <= 0:
            raise ParameterError(
                f"SLO max wait must be positive, got {self.max_wait_s!r}"
            )


@dataclass(frozen=True)
class ShardLoad:
    """One shard's load summary over the whole run."""

    shard: str
    allocation_w: float
    jobs: int
    utilization: float
    mean_queue_depth: float
    max_queue_depth: int
    peak_power_w: float
    energy_j: float


@dataclass(frozen=True)
class SimReport:
    """The KPI report of one simulation run."""

    horizon_s: float
    duration_s: float
    arrivals: int
    started: int
    finished: int
    rejected: int
    slo_violations: int
    wait_p50_s: float
    wait_p95_s: float
    wait_p99_s: float
    sojourn_p50_s: float
    sojourn_p95_s: float
    sojourn_p99_s: float
    mean_wait_s: float
    energy_per_job_j: float
    total_energy_j: float
    events: int
    shards: tuple[ShardLoad, ...]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 on an empty input)."""
    if not values:
        return 0.0
    if not 0 < q <= 100:
        raise SimulationError(f"percentile rank must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[rank - 1])


class _ShardTrack:
    """Running power/queue integrals for one shard."""

    __slots__ = (
        "power_w", "depth", "last_t", "power_integral", "depth_integral",
        "peak_power_w", "max_depth", "jobs", "energy_j",
    )

    def __init__(self) -> None:
        self.power_w = 0.0
        self.depth = 0
        self.last_t = 0.0
        self.power_integral = 0.0
        self.depth_integral = 0.0
        self.peak_power_w = 0.0
        self.max_depth = 0
        self.jobs = 0
        self.energy_j = 0.0

    def advance(self, t: float) -> None:
        dt = t - self.last_t
        if dt > 0:
            self.power_integral += self.power_w * dt
            self.depth_integral += self.depth * dt
            self.last_t = t


def compute_kpis(
    events: Sequence[SimEvent],
    *,
    allocations: Sequence[tuple[str, float]],
    horizon_s: float,
    slo: SloSpec,
) -> SimReport:
    """The KPI report of one event log (see module docstring).

    ``allocations`` is the partition's ``(shard, watts)`` list in site
    order — the report's shard rows keep that order.  ``horizon_s`` is
    the demand horizon; the run may outlive it while queues drain, so
    ``duration_s`` (the integration window) is the later of the two.
    """
    tracks = {name: _ShardTrack() for name, _ in allocations}
    arrival_t: dict[str, float] = {}
    queued_on: dict[str, str] = {}
    waits: list[float] = []
    sojourns: list[float] = []
    arrivals = started = finished = rejected = violations = 0

    for event in events:
        track = tracks.get(event.shard)
        if track is not None:
            track.advance(event.time)
        if event.kind == "arrival":
            arrivals += 1
            arrival_t[event.job] = event.time
        elif event.kind == "enqueue":
            track.depth += 1
            track.max_depth = max(track.max_depth, track.depth)
            queued_on[event.job] = event.shard
        elif event.kind == "start":
            started += 1
            if queued_on.pop(event.job, None) is not None:
                track.depth -= 1
            track.power_w += event.watts
            track.peak_power_w = max(track.peak_power_w, track.power_w)
            waits.append(event.time - arrival_t[event.job])
        elif event.kind == "finish":
            finished += 1
            track.power_w -= event.watts
            track.jobs += 1
            track.energy_j += event.joules
            sojourn = event.time - arrival_t[event.job]
            sojourns.append(sojourn)
            wait = sojourn - event.seconds if event.seconds else None
            late = (
                slo.deadline_s is not None and sojourn > slo.deadline_s
            ) or (
                slo.max_wait_s is not None
                and wait is not None
                and wait > slo.max_wait_s
            )
            if late:
                violations += 1
        elif event.kind == "reject":
            rejected += 1

    duration_s = max(
        horizon_s, max((e.time for e in events), default=0.0)
    )
    shard_rows = []
    for name, alloc_w in allocations:
        track = tracks[name]
        track.advance(duration_s)
        capacity = alloc_w * duration_s
        shard_rows.append(
            ShardLoad(
                shard=name,
                allocation_w=alloc_w,
                jobs=track.jobs,
                utilization=(
                    track.power_integral / capacity if capacity > 0 else 0.0
                ),
                mean_queue_depth=(
                    track.depth_integral / duration_s if duration_s > 0 else 0.0
                ),
                max_queue_depth=track.max_depth,
                peak_power_w=track.peak_power_w,
                energy_j=track.energy_j,
            )
        )

    total_energy = sum(row.energy_j for row in shard_rows)
    return SimReport(
        horizon_s=horizon_s,
        duration_s=duration_s,
        arrivals=arrivals,
        started=started,
        finished=finished,
        rejected=rejected,
        slo_violations=violations,
        wait_p50_s=percentile(waits, 50),
        wait_p95_s=percentile(waits, 95),
        wait_p99_s=percentile(waits, 99),
        sojourn_p50_s=percentile(sojourns, 50),
        sojourn_p95_s=percentile(sojourns, 95),
        sojourn_p99_s=percentile(sojourns, 99),
        mean_wait_s=(sum(waits) / len(waits)) if waits else 0.0,
        energy_per_job_j=(total_energy / finished) if finished else 0.0,
        total_energy_j=total_energy,
        events=len(events),
        shards=tuple(shard_rows),
    )

"""The online site scheduler: arriving jobs placed on federation shards.

One scenario = a federated site (shards + budget + partition strategy),
a demand process, queue disciplines, and an SLO.  The run reuses every
static decision layer unchanged:

1. the site budget is partitioned **once** across shards by
   :func:`repro.federation.partition.partition_budget`, profiled over
   the demand's distinct workloads as the reference mix;
2. each (shard, workload) power ladder is built **once** via the same
   :func:`~repro.federation.partition.mix_ladders` table the offline
   router uses (policy/EE-floor filtered per shard), so heterogeneous
   shards and hypothetical machines work unmodified;
3. every arriving job is steered to a shard by the router's
   :func:`~repro.federation.router.routing_score` metric and placed on
   the rung its shard's policy picks
   (:func:`~repro.optimize.schedule.select_rung`) under the shard's
   *remaining* allocation.

A job that fits no shard right now but fits some shard's full
allocation waits in that shard's queue (``fifo`` strictly preserves
arrival order; ``priority`` is shortest-job-first on the workload's
cheapest-rung runtime).  An arriving job never overtakes a non-empty
queue.  A job that can *never* fit — its power floor exceeds every
shard's allocation, or no shard's placement rules admit it — becomes a
structured ``reject`` event with the same per-job reason
:class:`~repro.errors.InfeasibleJobsError` would carry offline, and
the run continues.

Everything is deterministic: one seeded arrival stream, one
``(time, seq)``-ordered event heap, no wall clock — the same scenario
yields a byte-identical event log and report on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.federation.partition import (
    mix_ladders,
    partition_budget,
    shard_profiles,
)
from repro.federation.registry import Shard, ShardRegistry, ShardSpec, default_registry
from repro.federation.router import ROUTING_METRICS, routing_score
from repro.obs.metrics import registry as obs_registry
from repro.obs.trace import span
from repro.optimize.schedule import Job, Rung, eligible_rungs, select_rung
from repro.sim.demand import DemandSpec, _templates, generate_arrivals
from repro.sim.engine import SimEvent, Simulator
from repro.sim.kpis import SimReport, SloSpec, compute_kpis

#: queue disciplines understood by :func:`run_scenario`.
QUEUE_DISCIPLINES = ("fifo", "priority")

_PLACEMENTS_TOTAL = obs_registry().counter(
    "repro_sim_placements_total",
    "Online placement decisions, by outcome.",
    labelnames=("outcome",),
)
_ACTIVE_RUNS = obs_registry().gauge(
    "repro_sim_active_runs",
    "Simulation runs currently executing in this process.",
)
_LAST_RUN_EVENTS = obs_registry().gauge(
    "repro_sim_last_run_events",
    "Events in the most recently completed simulation run.",
)
_LAST_RUN_SLO_VIOLATIONS = obs_registry().gauge(
    "repro_sim_last_run_slo_violations",
    "SLO violations counted by the most recently completed run.",
)
_LAST_RUN_REJECTED = obs_registry().gauge(
    "repro_sim_last_run_rejected",
    "Arrivals rejected by the most recently completed run.",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """The wire-expressible description of one simulation scenario."""

    shards: tuple[ShardSpec, ...] = ()
    budget_w: float = 0.0
    strategy: str = "waterfill"
    metric: str = "ee_per_watt"
    demand: DemandSpec = DemandSpec()
    slo: SloSpec = SloSpec()
    horizon_s: float = 600.0
    seed: int = 0
    queue: str = "fifo"
    max_queue_depth: int | None = None


@dataclass(frozen=True)
class SimResult:
    """One finished run: the scenario, its report, and its event log."""

    scenario: ScenarioSpec
    report: SimReport
    events: tuple[SimEvent, ...]


def _validate(scenario: ScenarioSpec) -> None:
    if scenario.metric not in ROUTING_METRICS:
        raise ParameterError(
            f"unknown routing metric {scenario.metric!r}; "
            f"choose from {ROUTING_METRICS}"
        )
    if scenario.queue not in QUEUE_DISCIPLINES:
        raise ParameterError(
            f"unknown queue discipline {scenario.queue!r}; "
            f"choose from {QUEUE_DISCIPLINES}"
        )
    if scenario.max_queue_depth is not None and scenario.max_queue_depth < 1:
        raise ParameterError(
            f"max queue depth must be at least 1, "
            f"got {scenario.max_queue_depth!r}"
        )
    scenario.slo.validate()


def _workload_key(job: Job) -> tuple[str, str, int | None]:
    return (job.benchmark.upper(), job.klass.upper(), job.niter)


class _ShardState:
    """One shard's live state during a run."""

    __slots__ = ("shard", "allocation_w", "committed_w", "queue", "ladders")

    def __init__(
        self,
        shard: Shard,
        allocation_w: float,
        ladders: dict[tuple, list[Rung]],
    ) -> None:
        self.shard = shard
        self.allocation_w = allocation_w
        self.committed_w = 0.0
        #: waiting entries: (enqueue seq, priority key, job, ladder)
        self.queue: list[tuple[int, float, Job, list[Rung]]] = []
        self.ladders = ladders

    @property
    def headroom_w(self) -> float:
        return self.allocation_w - self.committed_w


class _SiteSim:
    """The handler closure-state of one scenario run."""

    def __init__(
        self, scenario: ScenarioSpec, states: list[_ShardState]
    ) -> None:
        self.scenario = scenario
        self.states = states
        self.sim = Simulator()
        self._enqueue_seq = 0

    # -- event handlers ----------------------------------------------------------

    def on_arrival(self, job: Job) -> None:
        self.sim.log.append(
            self.sim.now,
            "arrival",
            job=job.name,
            detail=f"{job.benchmark.upper()}.{job.klass.upper()}",
        )
        with span("sim.place"):
            self._place(job)

    def _place(self, job: Job) -> None:
        key = _workload_key(job)
        metric = self.scenario.metric
        best_now: tuple[float, int] | None = None  # (score, shard index)
        best_later: tuple[float, int] | None = None
        cheapest_floor = float("inf")
        for i, state in enumerate(self.states):
            ladder = state.ladders.get(key)
            if not ladder:
                continue  # no rung meets this shard's placement rules
            floor = ladder[0].avg_power
            cheapest_floor = min(cheapest_floor, floor)
            if floor <= state.allocation_w:
                scored = routing_score(ladder, state.allocation_w, metric)
                if scored is not None and (
                    best_later is None or scored[0] > best_later[0]
                ):
                    best_later = (scored[0], i)
            # an arrival never overtakes jobs already waiting there
            if state.queue:
                continue
            scored = routing_score(ladder, state.headroom_w, metric)
            if scored is not None and (
                best_now is None or scored[0] > best_now[0]
            ):
                best_now = (scored[0], i)
        if best_now is not None:
            self._start(self.states[best_now[1]], job)
            _PLACEMENTS_TOTAL.labels("placed").inc()
            return
        if best_later is not None:
            self._enqueue(self.states[best_later[1]], job)
            return
        # reuse the offline router's per-job infeasibility wording
        reason = (
            f"needs {cheapest_floor:.0f} W on its cheapest eligible shard"
            if cheapest_floor != float("inf")
            else "meets no shard's placement rules"
        )
        self.sim.log.append(
            self.sim.now, "reject", job=job.name, detail=reason
        )
        _PLACEMENTS_TOTAL.labels("rejected").inc()

    def _enqueue(self, state: _ShardState, job: Job) -> None:
        depth_cap = self.scenario.max_queue_depth
        if depth_cap is not None and len(state.queue) >= depth_cap:
            self.sim.log.append(
                self.sim.now,
                "reject",
                job=job.name,
                shard=state.shard.name,
                detail=(
                    f"queue full on shard {state.shard.name} "
                    f"(depth {len(state.queue)})"
                ),
            )
            _PLACEMENTS_TOTAL.labels("rejected").inc()
            return
        ladder = state.ladders[_workload_key(job)]
        # priority key: the workload's cheapest-rung runtime (SJF);
        # fifo ignores it and drains strictly in enqueue order
        state.queue.append((self._enqueue_seq, ladder[0].tp, job, ladder))
        self._enqueue_seq += 1
        self.sim.log.append(
            self.sim.now,
            "enqueue",
            job=job.name,
            shard=state.shard.name,
            detail=f"depth={len(state.queue)}",
        )
        _PLACEMENTS_TOTAL.labels("queued").inc()

    def _start(self, state: _ShardState, job: Job) -> None:
        ladder = state.ladders[_workload_key(job)]
        idx = select_rung(
            ladder, state.headroom_w, policy=state.shard.policy
        )
        rung = ladder[idx]
        state.committed_w += rung.avg_power
        self.sim.log.append(
            self.sim.now,
            "start",
            job=job.name,
            shard=state.shard.name,
            detail=f"p={rung.p} f={rung.f / 1e9:.2f}GHz rung={idx}",
            watts=rung.avg_power,
            seconds=rung.tp,
        )
        self.sim.schedule(rung.tp, self.on_finish, state, job, rung)

    def on_finish(self, state: _ShardState, job: Job, rung: Rung) -> None:
        state.committed_w -= rung.avg_power
        self.sim.log.append(
            self.sim.now,
            "finish",
            job=job.name,
            shard=state.shard.name,
            watts=rung.avg_power,
            seconds=rung.tp,
            joules=rung.ep,
        )
        self._drain(state)

    def _drain(self, state: _ShardState) -> None:
        """Start waiting jobs freed headroom now admits (head only).

        Both disciplines are strictly head-of-line: the queue's next
        candidate either starts or keeps waiting — later entries never
        jump a blocked head, which guarantees every queued job
        eventually runs (its floor fits the allocation by construction,
        and the shard fully empties in finite time).
        """
        while state.queue:
            if self.scenario.queue == "priority":
                head = min(state.queue, key=lambda e: (e[1], e[0]))
            else:
                head = min(state.queue, key=lambda e: e[0])
            _, _, job, ladder = head
            if select_rung(
                ladder, state.headroom_w, policy=state.shard.policy
            ) is None:
                return
            state.queue.remove(head)
            self._start(state, job)


def run_scenario(
    scenario: ScenarioSpec, *, registry: ShardRegistry | None = None
) -> SimResult:
    """Run one scenario to completion (see module docstring).

    Arrivals stop at the scenario's horizon; the run continues until
    every accepted job finishes, so the report never truncates queue
    drain.  Raises :class:`ParameterError` on an invalid scenario —
    individual infeasible *jobs* never abort the run, they are rejected
    in-stream.
    """
    _validate(scenario)
    reg = registry if registry is not None else default_registry()
    shards = reg.build_site(scenario.shards)
    arrivals = generate_arrivals(
        scenario.demand, horizon_s=scenario.horizon_s, seed=scenario.seed
    )

    # one representative Job per distinct workload: the reference mix
    # for partitioning, and the key set of the shared ladder tables
    reps: list[Job] = []
    seen: set[tuple] = set()
    for arrival in arrivals:
        key = _workload_key(arrival.job)
        if key not in seen:
            seen.add(key)
            reps.append(arrival.job)
    if not reps:
        # no arrivals in the horizon: profile over the spec's templates
        # so the partition (and the report's allocations) still exist
        reps = list(_templates(scenario.demand))

    raw_tables = [mix_ladders(shard, reps) for shard in shards]
    profiles = shard_profiles(shards, reps, ladders_by_shard=raw_tables)
    partition = partition_budget(
        shards,
        scenario.budget_w,
        jobs=reps,
        strategy=scenario.strategy,
        profiles=profiles,
    )

    states = []
    for shard, ladders, alloc in zip(
        shards, raw_tables, partition.allocations
    ):
        table: dict[tuple, list[Rung]] = {}
        for job, ladder in zip(reps, ladders):
            table[_workload_key(job)] = eligible_rungs(
                ladder,
                shard.ee_floor if shard.policy == "ee_floor" else None,
            )
        states.append(_ShardState(shard, alloc.allocation_w, table))

    site = _SiteSim(scenario, states)
    _ACTIVE_RUNS.inc()
    try:
        for arrival in arrivals:
            site.sim.schedule_at(arrival.time, site.on_arrival, arrival.job)
        site.sim.run()
    finally:
        _ACTIVE_RUNS.dec()
    events = site.sim.log.events
    _LAST_RUN_EVENTS.set(len(events))
    report = compute_kpis(
        events,
        allocations=[
            (a.shard, a.allocation_w) for a in partition.allocations
        ],
        horizon_s=scenario.horizon_s,
        slo=scenario.slo,
    )
    _LAST_RUN_SLO_VIOLATIONS.set(report.slo_violations)
    _LAST_RUN_REJECTED.set(report.rejected)
    return SimResult(scenario=scenario, report=report, events=events)

"""repro — iso-energy-efficiency modeling for power-constrained parallel computation.

A full reproduction of Song, Su, Ge, Vishnu & Cameron, *"Iso-energy-
efficiency: An approach to power-constrained parallel computation"*
(IPDPS 2011): the analytical energy-performance model (EEF / EE), the
power-aware cluster and MPI substrates it was validated on, the
PowerPack-style measurement stack, the NAS Parallel Benchmark workloads,
and the calibration + validation pipeline.

Quick start::

    from repro import paper_model
    model, n = paper_model("FT", klass="B")
    print(model.ee(n=n, p=64))              # iso-energy-efficiency
    print(model.evaluate(n=n, p=64).bottleneck)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
scripts regenerating every figure and table of the paper.
"""

from repro.api import (
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    FederateRequest,
    HeteroRequest,
    IsoEEQuery,
    ParetoQuery,
    ScheduleRequest,
    SurfaceRequest,
    SweepRequest,
    ValidateRequest,
    dispatch,
)
from repro.hetero import (
    HeteroSpace,
    PoolSpec,
    hetero_grid,
    pool_from_machine,
)
from repro.federation import (
    ShardRegistry,
    ShardSpec,
    default_registry,
    partition_budget,
    route_jobs,
)
from repro.core import (
    AppParams,
    IsoEnergyModel,
    MachineParams,
    ModelPoint,
    eef,
    energy_efficiency,
    parallel_energy,
    sequential_energy,
)
from repro.cluster import Cluster, dori, system_g
from repro.npb import ProblemClass, benchmark_for
from repro.optimize import (
    GridResult,
    GridStore,
    default_store,
    evaluate_grid,
    grid_for,
    iso_ee_curve,
    max_speedup_under_power,
    max_speedup_under_power_many,
    min_energy_under_deadline,
    min_energy_under_deadline_many,
    pareto_frontier,
    schedule_jobs,
)
from repro.paperdata import paper_machine, paper_model
from repro.validation import validate, validate_suite

__version__ = "1.0.0"

__all__ = [
    "dispatch",
    "EvaluateRequest",
    "SweepRequest",
    "SurfaceRequest",
    "ValidateRequest",
    "BudgetQuery",
    "DeadlineQuery",
    "IsoEEQuery",
    "ParetoQuery",
    "ScheduleRequest",
    "FederateRequest",
    "HeteroRequest",
    "HeteroSpace",
    "PoolSpec",
    "hetero_grid",
    "pool_from_machine",
    "ShardRegistry",
    "ShardSpec",
    "default_registry",
    "partition_budget",
    "route_jobs",
    "AppParams",
    "IsoEnergyModel",
    "MachineParams",
    "ModelPoint",
    "eef",
    "energy_efficiency",
    "parallel_energy",
    "sequential_energy",
    "Cluster",
    "dori",
    "system_g",
    "ProblemClass",
    "benchmark_for",
    "GridResult",
    "GridStore",
    "default_store",
    "evaluate_grid",
    "grid_for",
    "iso_ee_curve",
    "max_speedup_under_power",
    "max_speedup_under_power_many",
    "min_energy_under_deadline",
    "min_energy_under_deadline_many",
    "pareto_frontier",
    "schedule_jobs",
    "paper_machine",
    "paper_model",
    "validate",
    "validate_suite",
    "__version__",
]

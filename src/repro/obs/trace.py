"""Request tracing and profiling spans.

One *trace ID* is minted per unit of work (an HTTP request, a CLI
invocation) and carried through the stack in a :mod:`contextvars`
variable, so everything a request touches — dispatch, solvers, logs,
error payloads — can stamp the same ID without threading it through
every signature.  Inbound ``X-Request-Id`` headers are honored, so IDs
survive proxy hops and clients can correlate their own logs.

:func:`span` is the profiling primitive: a reusable context manager
timing one named region of the hot path and feeding a per-span duration
histogram (``repro_span_duration_seconds{span=...}``).  It is built to
be near-free — two ``perf_counter`` calls, one histogram observation —
because it wraps regions the grid benchmark holds to <3% overhead.
Spans longer than the configured *slow threshold* additionally emit one
structured WARNING through :mod:`repro.obs.log` (the slow-query log),
carrying the span name, duration, and current trace ID.
"""

from __future__ import annotations

import contextvars
import itertools
import time
import uuid

from repro.obs import metrics

#: every span duration lands here, labelled by span name.
SPAN_HISTOGRAM = metrics.registry().histogram(
    "repro_span_duration_seconds",
    "Duration of instrumented hot-path regions.",
    labelnames=("span",),
)

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)

#: the span id the *current* context is inside — children read it as
#: their parent, so nested spans form a tree without any registration.
_PARENT_SPAN: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_parent_span", default=None
)

_SPAN_IDS = itertools.count(1)

# the TraceStore is imported lazily (repro.obs.store imports metrics,
# which sits beside this module) and cached so the recording path pays
# one global read, not an import, per span exit.
_trace_store = None


def _store():
    global _trace_store
    if _trace_store is None:
        from repro.obs.store import trace_store

        _trace_store = trace_store()
    return _trace_store

#: slow-span threshold in seconds; ``None`` disables the slow log.
_slow_threshold_s: float | None = None


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (collision-safe per process fleet)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID of the active context, or None outside any trace."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: str | None) -> contextvars.Token:
    """Bind ``trace_id`` to the current context; returns the reset token."""
    return _TRACE_ID.set(trace_id)


def reset_trace_id(token: contextvars.Token) -> None:
    _TRACE_ID.reset(token)


def ensure_trace_id() -> str:
    """The current trace ID, minting and binding one if absent."""
    trace_id = _TRACE_ID.get()
    if trace_id is None:
        trace_id = new_trace_id()
        _TRACE_ID.set(trace_id)
    return trace_id


class trace_context:
    """``with trace_context("abc123"):`` — scope a trace ID to a block."""

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()

    def __enter__(self) -> str:
        self._token = _TRACE_ID.set(self.trace_id)
        return self.trace_id

    def __exit__(self, *exc) -> None:
        _TRACE_ID.reset(self._token)


def set_slow_threshold_ms(threshold_ms: float | None) -> None:
    """Spans beyond this emit a WARNING slow-log line; None disables."""
    global _slow_threshold_s
    _slow_threshold_s = (
        None if threshold_ms is None else float(threshold_ms) / 1000.0
    )


def slow_threshold_ms() -> float | None:
    return None if _slow_threshold_s is None else _slow_threshold_s * 1000.0


class span:
    """``with span("grid.evaluate"):`` — time one hot-path region.

    The instance is a plain context manager (no generator machinery);
    outside a trace the only hot-path work is two clock reads, one
    contextvar read, and one histogram observation.  Inside a trace
    (an HTTP request, a CLI invocation) the span additionally links
    itself under the enclosing span and records into the
    :class:`~repro.obs.store.TraceStore` on exit, so the request is
    queryable as a waterfall afterwards.  Exceptions propagate
    untouched — the duration is recorded either way, so error
    latencies stay visible.
    """

    __slots__ = ("name", "_child", "_t0", "_span_id", "_parent_id", "_token")

    def __init__(self, name: str) -> None:
        self.name = name
        self._child = SPAN_HISTOGRAM.labels(name)

    def __enter__(self) -> "span":
        if _TRACE_ID.get() is None:
            self._token = None
        else:
            self._parent_id = _PARENT_SPAN.get()
            self._span_id = next(_SPAN_IDS)
            self._token = _PARENT_SPAN.set(self._span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._t0
        self._child.observe(duration)
        threshold = _slow_threshold_s
        slow = threshold is not None and duration >= threshold
        token = self._token
        if token is not None:
            _PARENT_SPAN.reset(token)
            trace_id = _TRACE_ID.get()
            if trace_id is not None:
                _store().record(
                    trace_id, self._span_id, self._parent_id,
                    self.name, self._t0, duration, slow,
                )
        if slow:
            from repro.obs.log import slow_span

            slow_span(self.name, duration)

"""A dependency-free, thread-safe metrics registry.

The serving stack needs three instrument kinds — monotonically growing
:class:`Counter` families, settable :class:`Gauge` families, and
fixed-bucket :class:`Histogram` families — all labelled, all process-wide,
all renderable in the Prometheus text exposition format (v0.0.4) that
``GET /metrics`` serves and any scraper understands.

Design constraints, in order:

* **Near-free on the hot path.**  A counter increment or histogram
  observation is one short critical section on a per-family lock —
  no string formatting, no allocation beyond the first sighting of a
  label set.  Rendering (cold path) does all the formatting.
* **No dependencies.**  The whole layer is stdlib; the exposition
  format is simple enough that emitting it directly beats carrying a
  client library.
* **One registry, many views.**  ``/metrics``, the ``metrics`` wire op,
  the ``repro metrics`` CLI, and the ``/healthz`` summary counts all
  read the same :class:`Registry`.  External caches (the grid store,
  the dispatch memo layers) are pulled in at render time through
  *collector callbacks* so their numbers appear as first-class metrics
  without the caches knowing about this module.

Label values are positional: a family declares ``labelnames`` once and
every ``labels(...)`` call supplies values in that order (keyword form
also accepted).  Children are interned per value tuple, so steady-state
instrumentation never allocates.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, NamedTuple, Sequence

from repro.errors import ParameterError

#: default latency buckets (seconds) — tuned for a sub-millisecond-to-
#: seconds decision service: dense where dispatch latencies live.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-style number: integers bare, floats repr-round-tripped."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and (value != value):  # NaN
        return "NaN"
    as_int = int(value)
    if float(as_int) == float(value):
        return str(as_int)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _label_suffix(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + inner + "}"


def label_string(labelnames: Sequence[str], values: Sequence[str]) -> str:
    """The exposition-style label suffix (``{a="x",b="y"}`` or ``""``).

    The display form the retained time-series layer uses to name one
    child, so a series in ``repro timeseries`` output matches the line
    a scrape of ``/metrics`` would show.
    """
    return _label_suffix(labelnames, values)


class Sample(NamedTuple):
    """One child's state at one instant (see :meth:`Registry.snapshot`).

    ``value`` is the counter/gauge value; for histograms it is the
    observation *count*, with ``sum``/``counts``/``buckets`` carrying
    the distribution (per-bucket, non-cumulative — observations above
    the top bucket appear only in ``value``).
    """

    kind: str
    labelnames: tuple[str, ...]
    labels: tuple[str, ...]
    value: float
    sum: float
    counts: tuple[int, ...]
    buckets: tuple[float, ...]


def histogram_quantile(
    buckets: Sequence[float],
    counts: Sequence[int],
    total: int,
    q: float,
) -> float:
    """Estimate the ``q``-quantile from per-bucket (delta) counts.

    The Prometheus ``histogram_quantile`` estimator: find the bucket the
    target rank lands in and interpolate linearly inside it (from the
    previous bucket's upper bound).  ``counts`` are non-cumulative and
    may be a *delta* between two snapshots — that is the whole point:
    percentiles over a rolling window come from subtracting ring
    samples, never from retaining raw observations.  Ranks beyond the
    top finite bucket clamp to its bound.  Returns 0.0 when ``total``
    is not positive.
    """
    if not 0.0 < q < 1.0:
        raise ParameterError(f"quantile must be in (0, 1), got {q!r}")
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    prev_bound = 0.0
    for bound, count in zip(buckets, counts):
        if count > 0:
            cumulative += count
            if cumulative >= target:
                inside = target - (cumulative - count)
                return prev_bound + (bound - prev_bound) * inside / count
        prev_bound = bound
    return float(buckets[-1])


class _Child:
    """One (metric family, label values) time series."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        super().__init__()
        self.buckets = buckets
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # linear scan beats bisect for the ~16-bucket families used here
        i = 0
        buckets = self.buckets
        n = len(buckets)
        while i < n and value > buckets[i]:
            i += 1
        with self._lock:
            if i < n:
                self.counts[i] += 1
            self.sum += value
            self.count += 1


class _Family:
    """Shared machinery: a named, labelled family of children."""

    kind = ""
    child_cls: type[_Child] = _Child

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.labelnames:
            # label-less families expose their single child's methods
            self._default = self._make_child()
            self._children[()] = self._default

    def _make_child(self) -> _Child:
        return self.child_cls()

    def labels(self, *values, **kw) -> _Child:
        """The child for one label-value tuple (interned, thread-safe)."""
        if kw:
            if values:
                raise ParameterError(
                    "pass label values positionally or by name, not both"
                )
            try:
                values = tuple(str(kw[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ParameterError(
                    f"metric {self.name!r} has no label {exc.args[0]!r}"
                ) from None
            if len(kw) != len(self.labelnames):
                raise ParameterError(
                    f"metric {self.name!r} takes labels "
                    f"{list(self.labelnames)}, got {sorted(kw)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ParameterError(
                f"metric {self.name!r} takes {len(self.labelnames)} "
                f"label value(s), got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._make_child())
        return child

    def remove(self, *values) -> None:
        """Forget one labelled child (no-op when absent).

        Collectors that mirror external membership — e.g. the pool's
        per-``pid`` worker gauges — use this so series for departed
        members stop being exported instead of flatlining forever.
        """
        key = tuple(str(v) for v in values)
        with self._lock:
            self._children.pop(key, None)

    def _snapshot(self) -> list[tuple[tuple[str, ...], _Child]]:
        with self._lock:
            return list(self._children.items())


class Counter(_Family):
    """A monotonically increasing metric family."""

    kind = "counter"
    child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def total(self) -> float:
        """The sum over every label combination (feeds ``/healthz``)."""
        return sum(child.value for _, child in self._snapshot())

    def render(self) -> Iterable[str]:
        for values, child in sorted(self._snapshot()):
            yield (
                f"{self.name}{_label_suffix(self.labelnames, values)} "
                f"{_format_value(child.value)}"
            )


class Gauge(_Family):
    """A settable metric family (level, size, timestamp...)."""

    kind = "gauge"
    child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def total(self) -> float:
        return sum(child.value for _, child in self._snapshot())

    def render(self) -> Iterable[str]:
        for values, child in sorted(self._snapshot()):
            yield (
                f"{self.name}{_label_suffix(self.labelnames, values)} "
                f"{_format_value(child.value)}"
            )


class Histogram(_Family):
    """A fixed-bucket distribution family.

    ``le`` buckets are cumulative in the exposition (Prometheus
    contract) while children count per-bucket internally — one add on
    the hot path, the cumulative sum paid at render time.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ParameterError("a histogram needs at least one bucket")
        if len(set(buckets)) != len(buckets):
            raise ParameterError("histogram buckets must be distinct")
        self.buckets = buckets
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def render(self) -> Iterable[str]:
        for values, child in sorted(self._snapshot()):
            with child._lock:
                counts = list(child.counts)
                total = child.count
                vsum = child.sum
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                labels = _label_suffix(
                    (*self.labelnames, "le"),
                    (*values, _format_value(bound)),
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _label_suffix(
                (*self.labelnames, "le"), (*values, "+Inf")
            )
            yield f"{self.name}_bucket{labels} {total}"
            suffix = _label_suffix(self.labelnames, values)
            yield f"{self.name}_sum{suffix} {_format_value(vsum)}"
            yield f"{self.name}_count{suffix} {total}"


#: content type of the rendered exposition, for HTTP servers.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class Registry:
    """A named collection of metric families plus collector callbacks.

    Collectors run just before rendering — the hook external cache
    layers (grid store, dispatch memos) use to refresh their gauge
    re-exports without being written against this module's hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- family constructors ------------------------------------------------------

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family) or (
                    existing.labelnames != family.labelnames
                ):
                    raise ParameterError(
                        f"metric {family.name!r} re-registered with a "
                        f"different type or label set"
                    )
                return existing
            self._families[family.name] = family
        return family

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))  # type: ignore[return-value]

    # -- collectors ---------------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` before every render (idempotent per function)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    # -- reading ------------------------------------------------------------------

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """One family's total, or one child's value when ``labels`` given.

        Counters and gauges only; absent families/children read 0 so
        ``/healthz`` can report counts before the first request.
        """
        family = self.get(name)
        if family is None:
            return 0.0
        if labels is None:
            return family.total()  # type: ignore[union-attr]
        child = family._children.get(
            tuple(str(labels[n]) for n in family.labelnames)
        )
        return 0.0 if child is None else child.value  # type: ignore[union-attr]

    def render(self, *, prefix: str | None = None) -> str:
        """The Prometheus text exposition of every family.

        ``prefix`` subsets the output to families whose name starts with
        it (``repro metrics --filter``) — collectors still run, so the
        filtered view stays as fresh as the full one.
        """
        with self._lock:
            collectors = list(self._collectors)
            families = sorted(self._families.values(), key=lambda f: f.name)
        for fn in collectors:
            fn()
        lines: list[str] = []
        for family in families:
            if prefix is not None and not family.name.startswith(prefix):
                continue
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render())  # type: ignore[union-attr]
        return "\n".join(lines) + "\n"

    def snapshot(self, *, run_collectors: bool = True) -> dict[
        tuple[str, tuple[str, ...]], Sample
    ]:
        """Every child's state right now, keyed ``(name, label values)``.

        The snapshot-delta primitive behind the retained time-series
        layer: a :class:`~repro.obs.store.TimeSeriesRecorder` stores
        one of these per tick, and rolling-window rates / percentiles
        come from subtracting two of them (see
        :func:`histogram_quantile`).  Collectors run first by default so
        re-exported gauges (grid store, dispatch caches) are current.
        """
        with self._lock:
            collectors = list(self._collectors)
            families = list(self._families.values())
        if run_collectors:
            for fn in collectors:
                fn()
        out: dict[tuple[str, tuple[str, ...]], Sample] = {}
        for family in families:
            for values, child in family._snapshot():
                if isinstance(child, _HistogramChild):
                    with child._lock:
                        counts = tuple(child.counts)
                        total = child.count
                        vsum = child.sum
                    sample = Sample(
                        family.kind, family.labelnames, values,
                        float(total), vsum, counts, family.buckets,  # type: ignore[attr-defined]
                    )
                else:
                    sample = Sample(
                        family.kind, family.labelnames, values,
                        float(child.value), 0.0, (), (),  # type: ignore[union-attr]
                    )
                out[(family.name, values)] = sample
        return out

    def reset(self) -> None:
        """Drop every family and collector (test isolation only)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-wide registry every instrumented layer shares."""
    return _REGISTRY

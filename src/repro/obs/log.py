"""Structured logging for the serving stack.

Everything logs through stdlib :mod:`logging` under the ``repro``
namespace, carrying structured fields (trace ID, op, duration, HTTP
status) in ``record.__dict__`` so both renderers can see them:

* the default **text** formatter prints one scannable line per event;
* :class:`JsonFormatter` (``repro serve --log-json``) prints one JSON
  object per line — the shape log shippers ingest directly.

The library never configures handlers on import (embedders own their
logging); :func:`configure` is called by ``repro serve``.  Unconfigured,
stdlib's last-resort handler still prints WARNING+ to stderr — which is
exactly the set of events (unexpected 500s, slow spans) that must never
be silent.
"""

from __future__ import annotations

import json
import logging
import time
import traceback
from typing import Any

from repro.obs import trace

#: every serving-stack event logs under this namespace.
LOGGER_NAME = "repro"

#: structured fields lifted out of ``record.__dict__`` by both formatters.
_STRUCTURED_FIELDS = (
    "trace_id", "op", "duration_ms", "status", "span", "method", "path",
    "error_type",
)


def get_logger(suffix: str = "") -> logging.Logger:
    """The ``repro`` logger, or a dotted child (``get_logger("http")``)."""
    return logging.getLogger(
        f"{LOGGER_NAME}.{suffix}" if suffix else LOGGER_NAME
    )


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, event, structured fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for field in _STRUCTURED_FIELDS:
            value = record.__dict__.get(field)
            if value is not None:
                payload[field] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["traceback"] = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
        return json.dumps(payload)


class TextFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL event key=value ...`` — the human default."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        parts = [stamp, record.levelname, record.getMessage()]
        for field in _STRUCTURED_FIELDS:
            value = record.__dict__.get(field)
            if value is not None:
                parts.append(f"{field}={value}")
        line = " ".join(str(p) for p in parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
        return line


def configure(
    *, json_lines: bool = False, level: int = logging.INFO
) -> logging.Logger:
    """Install one stderr handler on the ``repro`` logger (idempotent).

    Called by ``repro serve`` (``--log-json`` selects the JSON
    renderer).  Replaces any handler a previous ``configure`` installed,
    so tests can flip formats freely.
    """
    logger = get_logger()
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(JsonFormatter() if json_lines else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def _fields(**kw: Any) -> dict[str, Any]:
    extra = {k: v for k, v in kw.items() if v is not None}
    extra.setdefault("trace_id", trace.current_trace_id())
    return {k: v for k, v in extra.items() if v is not None}


def request_log(
    *,
    method: str,
    path: str,
    status: int,
    duration_s: float,
    op: str | None = None,
) -> None:
    """One INFO line per served HTTP request."""
    get_logger("http").info(
        "request",
        extra=_fields(
            method=method,
            path=path,
            status=status,
            op=op,
            duration_ms=round(duration_s * 1e3, 3),
        ),
    )


def server_error(
    *, method: str, path: str, exc: BaseException, op: str | None = None
) -> None:
    """One ERROR line (with traceback) per unexpected 500."""
    get_logger("http").error(
        "unhandled server error",
        exc_info=(type(exc), exc, exc.__traceback__),
        extra=_fields(
            method=method, path=path, op=op, status=500,
            error_type=type(exc).__name__,
        ),
    )


def slow_span(name: str, duration_s: float) -> None:
    """One WARNING line per span beyond the slow threshold."""
    get_logger("slow").warning(
        "slow span",
        extra=_fields(span=name, duration_ms=round(duration_s * 1e3, 3)),
    )

"""``repro.obs`` — observability for the serving stack.

The paper's methodology is *measurement* (PowerPack profiling feeding
the iso-energy-efficiency model); this package applies the same
discipline to the reproduction's own serving path.  Three dependency-free
layers, one registry:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms with
  labels, rendered in the Prometheus text exposition format
  (``GET /metrics``, the ``metrics`` wire op, ``repro metrics``);
* :mod:`repro.obs.trace` — per-request trace IDs propagated via
  contextvars, plus :func:`~repro.obs.trace.span` profiling spans around
  the hot paths (grid evaluation, contour bisection, federation scoring,
  hetero enumeration) feeding per-span duration histograms and an
  optional slow-query log;
* :mod:`repro.obs.log` — structured stdlib logging (JSON lines under
  ``repro serve --log-json``) carrying trace_id/op/duration/status;
* :mod:`repro.obs.store` — *retained* telemetry: a bounded span-tree
  :class:`~repro.obs.store.TraceStore` (``repro trace <id>`` renders a
  waterfall) and a :class:`~repro.obs.store.TimeSeriesRecorder` ring of
  registry snapshots with rolling-window rollups (``repro timeseries``);
* :mod:`repro.obs.slo` — declarative SLO rules (latency ceilings,
  error-rate, multiwindow burn-rate, sim-KPI gauges) evaluated into
  ok/pending/firing alert states (``repro alerts``, ``GET /alerts``).

Instrumentation is near-free by construction:
``benchmarks/bench_obs_overhead.py`` holds the span+metrics overhead on
the vectorized grid hot path under 3%, floor-enforced in CI.
"""

from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    Registry,
    histogram_quantile,
    registry,
)
from repro.obs.trace import (
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    set_slow_threshold_ms,
    span,
    trace_context,
)
from repro.obs.store import (
    SpanNode,
    TimeSeriesRecorder,
    TraceRecord,
    TraceStore,
    recorder,
    render_waterfall,
    trace_store,
)
from repro.obs.slo import AlertState, SloEngine, SloRule, default_rules, engine
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "histogram_quantile",
    "registry",
    "current_trace_id",
    "ensure_trace_id",
    "new_trace_id",
    "set_slow_threshold_ms",
    "span",
    "trace_context",
    "SpanNode",
    "TimeSeriesRecorder",
    "TraceRecord",
    "TraceStore",
    "recorder",
    "render_waterfall",
    "trace_store",
    "AlertState",
    "SloEngine",
    "SloRule",
    "default_rules",
    "engine",
]

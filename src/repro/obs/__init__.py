"""``repro.obs`` — observability for the serving stack.

The paper's methodology is *measurement* (PowerPack profiling feeding
the iso-energy-efficiency model); this package applies the same
discipline to the reproduction's own serving path.  Three dependency-free
layers, one registry:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms with
  labels, rendered in the Prometheus text exposition format
  (``GET /metrics``, the ``metrics`` wire op, ``repro metrics``);
* :mod:`repro.obs.trace` — per-request trace IDs propagated via
  contextvars, plus :func:`~repro.obs.trace.span` profiling spans around
  the hot paths (grid evaluation, contour bisection, federation scoring,
  hetero enumeration) feeding per-span duration histograms and an
  optional slow-query log;
* :mod:`repro.obs.log` — structured stdlib logging (JSON lines under
  ``repro serve --log-json``) carrying trace_id/op/duration/status.

Instrumentation is near-free by construction:
``benchmarks/bench_obs_overhead.py`` holds the span+metrics overhead on
the vectorized grid hot path under 3%, floor-enforced in CI.
"""

from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    Registry,
    registry,
)
from repro.obs.trace import (
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    set_slow_threshold_ms,
    span,
    trace_context,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "registry",
    "current_trace_id",
    "ensure_trace_id",
    "new_trace_id",
    "set_slow_threshold_ms",
    "span",
    "trace_context",
    "configure_logging",
    "get_logger",
]

"""Declarative SLO rules evaluated against the retained time series.

An :class:`SloRule` names a metric, a rule kind, and a threshold; the
:class:`SloEngine` evaluates every rule against the
:class:`~repro.obs.store.TimeSeriesRecorder` ring into one
:class:`AlertState` each — ``ok``, ``pending`` (breached but not yet
sustained for ``for_s``), or ``firing``.  Four rule kinds cover the
serving stack's SLOs:

* ``latency`` — a percentile of a histogram's *window delta* (p99 of
  the last 5 min, not of all time) against a ceiling in seconds;
* ``error_rate`` — Δnumerator / Δdenominator over the window (0.0 when
  there was no traffic: an idle service is not failing);
* ``burn_rate`` — the Google SRE multiwindow form: the error ratio
  divided by the error budget ``1 - objective``, taken over a short
  *and* a long window, alerting on the minimum of the two burns so a
  brief blip (fails the long window) and a slow bleed (fails the short
  window) are both filtered;
* ``gauge`` — the newest sampled value of a gauge against a ceiling
  (e.g. SLO violations counted by the last ``repro.sim`` run).

Everything is computed from registry snapshots already retained by the
recorder — evaluation allocates nothing per observation and needs no
extra sampling beyond the serving ticker.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.obs.metrics import histogram_quantile
from repro.obs.store import TimeSeriesRecorder, recorder as _default_recorder

__all__ = [
    "RULE_KINDS",
    "SloRule",
    "AlertState",
    "SloEngine",
    "default_rules",
    "engine",
]

RULE_KINDS = ("latency", "error_rate", "burn_rate", "gauge")


@dataclass(frozen=True, slots=True)
class SloRule:
    """One declarative SLO: *metric, condition, how long to tolerate it*.

    ``labels`` filters metric children by ``(name, value)`` pairs (a
    child matches when every pair is present).  ``denominator`` names
    the traffic metric for ratio kinds.  ``for_s`` is the sustain
    duration before a breach escalates from ``pending`` to ``firing``
    (0 fires immediately).
    """

    name: str
    kind: str
    metric: str
    threshold: float
    denominator: str = ""
    labels: tuple[tuple[str, str], ...] = ()
    percentile: float = 0.99
    window_s: float = 300.0
    long_window_s: float = 3600.0
    objective: float = 0.999
    for_s: float = 0.0

    def validate(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ParameterError(
                f"rule {self.name!r}: kind must be one of {RULE_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.metric:
            raise ParameterError(f"rule {self.name!r}: metric is required")
        if self.kind in ("error_rate", "burn_rate") and not self.denominator:
            raise ParameterError(
                f"rule {self.name!r}: {self.kind} needs a denominator metric"
            )
        if self.kind == "latency" and not 0.0 < self.percentile < 1.0:
            raise ParameterError(
                f"rule {self.name!r}: percentile must be in (0, 1)"
            )
        if self.kind == "burn_rate" and not 0.0 < self.objective < 1.0:
            raise ParameterError(
                f"rule {self.name!r}: objective must be in (0, 1)"
            )
        if self.window_s <= 0.0 or self.for_s < 0.0:
            raise ParameterError(
                f"rule {self.name!r}: window_s must be > 0 and for_s >= 0"
            )


@dataclass(frozen=True, slots=True)
class AlertState:
    """One rule's evaluation: where it stands and for how long."""

    rule: str
    kind: str
    state: str  # "ok" | "pending" | "firing"
    value: float
    threshold: float
    window_s: float
    for_s: float
    breached_for_s: float
    detail: str


def _matches(rule_labels, labelnames, labelvalues) -> bool:
    if not rule_labels:
        return True
    pairs = dict(zip(labelnames, labelvalues))
    return all(pairs.get(k) == v for k, v in rule_labels)


class SloEngine:
    """Evaluates a rule set against the recorder ring, with memory.

    The only mutable state is when each rule's current breach *started*
    (for the pending→firing escalation); everything else is recomputed
    from retained snapshots on every :meth:`evaluate`.
    """

    def __init__(
        self,
        recorder: TimeSeriesRecorder | None = None,
        rules: tuple[SloRule, ...] | None = None,
    ) -> None:
        self._recorder = (
            recorder if recorder is not None else _default_recorder()
        )
        self.rules = tuple(rules) if rules is not None else default_rules()
        for rule in self.rules:
            rule.validate()
        self._lock = threading.Lock()
        self._since: dict[str, float] = {}

    # -- window aggregation ------------------------------------------------------

    def _window_delta(
        self, metric: str, labels, window_s: float, now: float
    ):
        """Δvalue, Δsum, Δcounts, buckets across matching children.

        Sums over every child of ``metric`` passing the label filter,
        subtracting the window's oldest snapshot from its newest (a
        child absent from the oldest contributes its full value — it
        was born inside the window).
        """
        window = self._recorder.samples_in(window_s, now=now)
        if not window:
            return 0.0, 0.0, (), ()
        _, first = window[0]
        _, last = window[-1]
        dvalue = 0.0
        dsum = 0.0
        dcounts: list[float] = []
        buckets: tuple[float, ...] = ()
        for key, cur in last.items():
            name, _ = key
            if name != metric:
                continue
            if not _matches(labels, cur.labelnames, cur.labels):
                continue
            old = first.get(key)
            dvalue += cur.value - (old.value if old else 0.0)
            dsum += cur.sum - (old.sum if old else 0.0)
            if cur.counts:
                buckets = cur.buckets
                oc = old.counts if old is not None and old.counts else (
                    (0,) * len(cur.counts)
                )
                if not dcounts:
                    dcounts = [0.0] * len(cur.counts)
                for i, (c, o) in enumerate(zip(cur.counts, oc)):
                    dcounts[i] += c - o
        return dvalue, dsum, tuple(dcounts), buckets

    def _error_ratio(self, rule: SloRule, window_s: float, now: float) -> float:
        derr, _, _, _ = self._window_delta(
            rule.metric, rule.labels, window_s, now
        )
        dtotal, _, _, _ = self._window_delta(
            rule.denominator, (), window_s, now
        )
        if dtotal <= 0.0:
            return 0.0
        return max(0.0, derr) / dtotal

    # -- evaluation --------------------------------------------------------------

    def _value(self, rule: SloRule, now: float) -> tuple[float, str]:
        if rule.kind == "latency":
            dcount, _, dcounts, buckets = self._window_delta(
                rule.metric, rule.labels, rule.window_s, now
            )
            if dcount <= 0 or not buckets:
                return 0.0, "no observations in window"
            in_buckets = int(sum(dcounts))
            if in_buckets <= 0:
                value = float(buckets[-1])
            else:
                value = histogram_quantile(
                    buckets, dcounts, in_buckets, rule.percentile
                )
            return value, (
                f"p{rule.percentile * 100:g} of {int(dcount)} obs "
                f"over {rule.window_s:g}s"
            )
        if rule.kind == "error_rate":
            ratio = self._error_ratio(rule, rule.window_s, now)
            return ratio, f"error ratio over {rule.window_s:g}s"
        if rule.kind == "burn_rate":
            budget = 1.0 - rule.objective
            short = self._error_ratio(rule, rule.window_s, now) / budget
            long_ = self._error_ratio(rule, rule.long_window_s, now) / budget
            return min(short, long_), (
                f"min burn over {rule.window_s:g}s/{rule.long_window_s:g}s "
                f"(objective {rule.objective:g})"
            )
        # gauge
        latest = None
        window = self._recorder.samples_in(rule.window_s, now=now)
        if window:
            _, snap = window[-1]
            total = 0.0
            seen = False
            for key, cur in snap.items():
                if key[0] != rule.metric:
                    continue
                if not _matches(rule.labels, cur.labelnames, cur.labels):
                    continue
                total += cur.value
                seen = True
            if seen:
                latest = total
        if latest is None:
            return 0.0, "gauge not sampled in window"
        return latest, "latest sampled value"

    def evaluate(self, now: float | None = None) -> tuple[AlertState, ...]:
        """Every rule's current state, in declaration order."""
        ts = time.monotonic() if now is None else float(now)
        states: list[AlertState] = []
        for rule in self.rules:
            value, detail = self._value(rule, ts)
            breached = value > rule.threshold
            with self._lock:
                if breached:
                    since = self._since.setdefault(rule.name, ts)
                    breached_for = ts - since
                    state = (
                        "firing" if breached_for >= rule.for_s else "pending"
                    )
                else:
                    self._since.pop(rule.name, None)
                    breached_for = 0.0
                    state = "ok"
            states.append(
                AlertState(
                    rule.name, rule.kind, state, value, rule.threshold,
                    rule.window_s, rule.for_s, breached_for, detail,
                )
            )
        return tuple(states)

    def reset(self) -> None:
        """Forget breach start times (test isolation)."""
        with self._lock:
            self._since.clear()


def default_rules() -> tuple[SloRule, ...]:
    """The serving stack's built-in SLOs.

    The sim rule is the acceptance hinge: a seeded ``repro.sim`` run
    with an impossible SLO sets ``repro_sim_last_run_slo_violations``
    above 0 and the alert fires on the next evaluation.
    """
    return (
        SloRule(
            name="http-latency-p99",
            kind="latency",
            metric="repro_http_request_duration_seconds",
            percentile=0.99,
            threshold=2.5,
            window_s=300.0,
        ),
        SloRule(
            name="http-error-rate",
            kind="error_rate",
            metric="repro_http_errors_total",
            denominator="repro_http_requests_total",
            threshold=0.05,
            window_s=300.0,
            for_s=60.0,
        ),
        SloRule(
            name="http-availability-burn",
            kind="burn_rate",
            metric="repro_http_errors_total",
            denominator="repro_http_requests_total",
            objective=0.999,
            threshold=14.4,
            window_s=300.0,
            long_window_s=3600.0,
            for_s=60.0,
        ),
        SloRule(
            name="sim-slo-violations",
            kind="gauge",
            metric="repro_sim_last_run_slo_violations",
            threshold=0.0,
            window_s=3600.0,
            for_s=0.0,
        ),
    )


_ENGINE: SloEngine | None = None
_ENGINE_LOCK = threading.Lock()


def engine() -> SloEngine:
    """The process-wide engine over the default recorder and rules."""
    global _ENGINE
    if _ENGINE is None:
        with _ENGINE_LOCK:
            if _ENGINE is None:
                _ENGINE = SloEngine()
    return _ENGINE

"""Retained telemetry: span-tree traces and metric time-series rings.

PR 6's observability is point-in-time — a scrape shows totals, a slow
request's span breakdown is gone the moment it logs.  This module keeps
a bounded, queryable history of both, dependency-free and thread-safe:

* :class:`TraceStore` — every :func:`repro.obs.trace.span` that closes
  inside an active trace records one :class:`SpanNode` (with its parent
  span id, so a trace is a *tree*).  The store keeps a FIFO ring of the
  last N traces plus a separate ring of *slow* traces (any span beyond
  the ``--slow-ms`` threshold pins its whole trace), each bounded, with
  a per-trace span cap so one runaway request cannot eat the process.
  :func:`render_waterfall` turns a retained trace into the ASCII
  waterfall ``repro trace <id>`` prints.
* :class:`TimeSeriesRecorder` — samples the metrics registry
  (:meth:`repro.obs.metrics.Registry.snapshot`) on a ticker into a
  fixed-size ring, and computes rolling-window rollups purely from
  snapshot *deltas*: counter rates, gauge min/max/mean, histogram
  p50/p95/p99 via :func:`repro.obs.metrics.histogram_quantile`.  Raw
  observations are never retained — memory is O(children × capacity).

Both stores export their own occupancy as gauges (ring sizes, span
counts, sample counts) so the retention layer is itself observable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.obs import metrics
from repro.obs.metrics import Sample, histogram_quantile, label_string

__all__ = [
    "SpanNode",
    "TraceRecord",
    "TraceStore",
    "SeriesSummary",
    "RollupResult",
    "TimeSeriesRecorder",
    "render_waterfall",
    "trace_store",
    "recorder",
]


# ---------------------------------------------------------------------------
# trace store
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SpanNode:
    """One closed span inside a retained trace.

    ``start_s`` is the offset from the trace's earliest span start (not
    wall time), so a stored trace is self-contained and reproducible in
    JSON.  ``parent_id`` is ``None`` for root spans.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A queryable span tree: what ``repro trace <id>`` renders."""

    trace_id: str
    slow: bool
    dropped: int
    duration_s: float
    spans: tuple[SpanNode, ...]


class _Entry:
    """Mutable per-trace accumulator (raw perf_counter timestamps)."""

    __slots__ = ("spans", "dropped", "slow")

    def __init__(self) -> None:
        # (span_id, parent_id, name, t0, duration_s)
        self.spans: list[tuple[int, int | None, str, float, float]] = []
        self.dropped = 0
        self.slow = False


class TraceStore:
    """Bounded, thread-safe retention of span trees per trace id.

    Two FIFO rings: ``recent`` holds the last ``max_traces`` traces of
    any kind; ``slow`` pins up to ``max_slow`` traces that contained at
    least one slow span (promotion moves the whole entry, so a slow
    trace survives recent-ring churn).  Per-trace spans are capped at
    ``max_spans``; excess spans increment ``dropped`` instead of
    growing without bound.
    """

    def __init__(
        self,
        max_traces: int = 256,
        max_slow: int = 64,
        max_spans: int = 512,
    ) -> None:
        self.max_traces = int(max_traces)
        self.max_slow = int(max_slow)
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._recent: OrderedDict[str, _Entry] = OrderedDict()
        self._slow: OrderedDict[str, _Entry] = OrderedDict()

    # -- hot path -----------------------------------------------------------------

    def record(
        self,
        trace_id: str,
        span_id: int,
        parent_id: int | None,
        name: str,
        t0: float,
        duration_s: float,
        slow: bool,
    ) -> None:
        """Retain one closed span (called from ``span.__exit__``)."""
        with self._lock:
            entry = self._slow.get(trace_id)
            if entry is None:
                entry = self._recent.get(trace_id)
                if entry is None:
                    entry = _Entry()
                    self._recent[trace_id] = entry
                    while len(self._recent) > self.max_traces:
                        self._recent.popitem(last=False)
            if len(entry.spans) >= self.max_spans:
                entry.dropped += 1
            else:
                entry.spans.append((span_id, parent_id, name, t0, duration_s))
            if slow and not entry.slow:
                entry.slow = True
                self._recent.pop(trace_id, None)
                self._slow[trace_id] = entry
                while len(self._slow) > self.max_slow:
                    self._slow.popitem(last=False)

    # -- queries ------------------------------------------------------------------

    def get(self, trace_id: str) -> TraceRecord | None:
        """The retained trace as an offset-based span tree, or None."""
        with self._lock:
            entry = self._slow.get(trace_id) or self._recent.get(trace_id)
            if entry is None:
                return None
            raw = list(entry.spans)
            dropped = entry.dropped
            slow = entry.slow
        if not raw:
            return TraceRecord(trace_id, slow, dropped, 0.0, ())
        base = min(t0 for _, _, _, t0, _ in raw)
        spans = tuple(
            sorted(
                (
                    SpanNode(sid, pid, name, t0 - base, dur)
                    for sid, pid, name, t0, dur in raw
                ),
                key=lambda s: (s.start_s, s.span_id),
            )
        )
        duration = max(s.start_s + s.duration_s for s in spans)
        return TraceRecord(trace_id, slow, dropped, duration, spans)

    def trace_ids(self) -> tuple[str, ...]:
        """Retained ids, slow ring first, each oldest-to-newest."""
        with self._lock:
            return tuple(self._slow) + tuple(self._recent)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "recent_traces": len(self._recent),
                "slow_traces": len(self._slow),
                "recent_spans": sum(
                    len(e.spans) for e in self._recent.values()
                ),
                "slow_spans": sum(len(e.spans) for e in self._slow.values()),
                "max_traces": self.max_traces,
                "max_slow": self.max_slow,
                "max_spans": self.max_spans,
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()


# ---------------------------------------------------------------------------
# time-series recorder
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """One child's rolling-window rollup (a row of ``repro timeseries``).

    ``labels`` is the exposition-style suffix (``{op="budget"}``) so a
    row matches the line a scrape of ``/metrics`` would show.  Fields
    that need two samples (``rate_per_s``) or in-window histogram
    observations (``mean``/percentiles) are ``None`` when undefined.
    A dataclass (not a tuple) so the wire encoder emits JSON objects.
    """

    name: str
    kind: str
    labels: str
    samples: int
    last: float
    rate_per_s: float | None
    minimum: float | None
    maximum: float | None
    mean: float | None
    p50_s: float | None
    p95_s: float | None
    p99_s: float | None


class RollupResult(NamedTuple):
    """A window rollup: how much history backed it, plus the rows."""

    window_s: float
    samples: int
    span_s: float
    series: tuple[SeriesSummary, ...]


class TimeSeriesRecorder:
    """Fixed-size ring of registry snapshots with window rollups.

    ``sample()`` is called by the serving ticker (``repro serve
    --sample-every``) and forced once by the ``timeseries``/``alerts``
    ops so in-process CLI calls always have at least one point.
    """

    def __init__(
        self,
        registry: metrics.Registry | None = None,
        capacity: int = 512,
    ) -> None:
        self._registry = registry if registry is not None else metrics.registry()
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque[
            tuple[float, dict[tuple[str, tuple[str, ...]], Sample]]
        ] = deque(maxlen=self.capacity)

    def sample(self, now: float | None = None) -> float:
        """Snapshot the registry into the ring; returns the timestamp."""
        ts = time.monotonic() if now is None else float(now)
        snap = self._registry.snapshot()
        with self._lock:
            self._ring.append((ts, snap))
        return ts

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def samples_in(
        self, window_s: float, now: float | None = None
    ) -> list[tuple[float, dict[tuple[str, tuple[str, ...]], Sample]]]:
        """The retained (ts, snapshot) pairs within the window, oldest first."""
        with self._lock:
            items = list(self._ring)
        if not items:
            return []
        end = (time.monotonic() if now is None else float(now))
        cutoff = end - float(window_s)
        return [item for item in items if item[0] >= cutoff]

    def rollup(
        self,
        window_s: float,
        prefix: str = "",
        now: float | None = None,
    ) -> RollupResult:
        """Rolling-window rollups from snapshot deltas (no raw samples).

        Counters report ``rate_per_s`` = Δvalue / Δt across the window's
        oldest and newest snapshots; gauges report min/max/mean of the
        retained points; histograms report a window observation rate,
        mean, and p50/p95/p99 interpolated from the bucket-count delta.
        """
        window = self.samples_in(window_s, now=now)
        if not window:
            return RollupResult(float(window_s), 0, 0.0, ())
        first_ts, first = window[0]
        last_ts, last = window[-1]
        span_s = last_ts - first_ts
        n = len(window)
        rows: list[SeriesSummary] = []
        for key in sorted(last):
            name, values = key
            if prefix and not name.startswith(prefix):
                continue
            cur = last[key]
            old = first.get(key)
            labels = label_string(cur.labelnames, cur.labels)
            rate: float | None = None
            minimum: float | None = None
            maximum: float | None = None
            mean: float | None = None
            p50 = p95 = p99 = None
            if cur.kind == "histogram":
                dcount = cur.value - (old.value if old else 0.0)
                dsum = cur.sum - (old.sum if old else 0.0)
                if old is not None and old.counts:
                    dcounts = tuple(
                        c - o for c, o in zip(cur.counts, old.counts)
                    )
                else:
                    dcounts = cur.counts
                if n >= 2 and span_s > 0.0:
                    rate = dcount / span_s
                if dcount > 0:
                    mean = dsum / dcount
                    in_buckets = sum(dcounts)
                    p50 = histogram_quantile(
                        cur.buckets, dcounts, in_buckets, 0.50
                    ) if in_buckets > 0 else float(cur.buckets[-1])
                    p95 = histogram_quantile(
                        cur.buckets, dcounts, in_buckets, 0.95
                    ) if in_buckets > 0 else float(cur.buckets[-1])
                    p99 = histogram_quantile(
                        cur.buckets, dcounts, in_buckets, 0.99
                    ) if in_buckets > 0 else float(cur.buckets[-1])
            else:
                points = [
                    snap[key].value for _, snap in window if key in snap
                ]
                minimum = min(points)
                maximum = max(points)
                mean = sum(points) / len(points)
                if cur.kind == "counter" and n >= 2 and span_s > 0.0:
                    rate = (cur.value - (old.value if old else 0.0)) / span_s
            rows.append(
                SeriesSummary(
                    name, cur.kind, labels, n, cur.value,
                    rate, minimum, maximum, mean, p50, p95, p99,
                )
            )
        return RollupResult(float(window_s), n, span_s, tuple(rows))

    def latest(
        self, name: str, labels: tuple[str, ...] = ()
    ) -> Sample | None:
        """The newest retained sample of one child (SLO gauge rules)."""
        with self._lock:
            if not self._ring:
                return None
            _, snap = self._ring[-1]
        return snap.get((name, labels))


# ---------------------------------------------------------------------------
# waterfall rendering
# ---------------------------------------------------------------------------


def render_waterfall(record: TraceRecord, width: int = 48) -> str:
    """The ASCII span-tree waterfall ``repro trace <id>`` prints.

    Children indent under their parent; each bar is positioned by the
    span's offset within the trace and scaled to its duration.  Spans
    whose parent was evicted (or capped) render as roots.
    """
    header = (
        f"trace {record.trace_id}  "
        f"({len(record.spans)} spans, {record.duration_s * 1000.0:.2f} ms"
    )
    if record.slow:
        header += ", slow"
    if record.dropped:
        header += f", {record.dropped} spans dropped"
    header += ")"
    if not record.spans:
        return header + "\n  (no spans retained)"
    ids = {s.span_id for s in record.spans}
    children: dict[int | None, list[SpanNode]] = {}
    roots: list[SpanNode] = []
    for node in record.spans:  # already (start, id)-sorted
        if node.parent_id is None or node.parent_id not in ids:
            roots.append(node)
        else:
            children.setdefault(node.parent_id, []).append(node)

    ordered: list[tuple[int, SpanNode]] = []

    def _walk(node: SpanNode, depth: int) -> None:
        ordered.append((depth, node))
        for child in children.get(node.span_id, ()):
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)

    name_w = max(
        (len(f"{'  ' * d}{s.name}") for d, s in ordered), default=0
    )
    name_w = max(name_w, 12)
    total = record.duration_s
    lines = [header]
    for depth, node in ordered:
        label = f"{'  ' * depth}{node.name}"
        if total > 0.0:
            lo = int(node.start_s / total * width)
            hi = int((node.start_s + node.duration_s) / total * width)
            lo = min(lo, width - 1)
            hi = min(max(hi, lo + 1), width)
        else:
            lo, hi = 0, width
        bar = "·" * lo + "█" * (hi - lo) + "·" * (width - hi)
        lines.append(
            f"{label:<{name_w}}  |{bar}|  {node.duration_s * 1000.0:>9.3f} ms"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# process-wide singletons + occupancy gauges
# ---------------------------------------------------------------------------


_TRACE_STORE = TraceStore()
_RECORDER = TimeSeriesRecorder()


def trace_store() -> TraceStore:
    """The process-wide trace store ``span()`` records into."""
    return _TRACE_STORE


def recorder() -> TimeSeriesRecorder:
    """The process-wide time-series recorder the ticker samples into."""
    return _RECORDER


def _collect_occupancy() -> None:
    """Export ring occupancy so the retention layer observes itself."""
    reg = metrics.registry()
    stats = _TRACE_STORE.stats()
    traces = reg.gauge(
        "repro_trace_store_traces",
        "Retained traces per ring of the span-tree store.",
        labelnames=("ring",),
    )
    spans_g = reg.gauge(
        "repro_trace_store_spans",
        "Retained spans per ring of the span-tree store.",
        labelnames=("ring",),
    )
    traces.labels("recent").set(stats["recent_traces"])
    traces.labels("slow").set(stats["slow_traces"])
    spans_g.labels("recent").set(stats["recent_spans"])
    spans_g.labels("slow").set(stats["slow_spans"])
    reg.gauge(
        "repro_timeseries_samples",
        "Registry snapshots retained in the time-series ring.",
    ).set(len(_RECORDER))
    reg.gauge(
        "repro_timeseries_capacity",
        "Capacity of the time-series snapshot ring.",
    ).set(_RECORDER.capacity)


metrics.registry().register_collector(_collect_occupancy)

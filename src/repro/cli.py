"""Command-line interface: ``python -m repro <command>``.

Five commands cover the everyday workflows:

* ``evaluate``  — EE/EEF/energy at one (benchmark, cluster, p, f, class)
* ``sweep``     — the EE-vs-p table for a benchmark
* ``validate``  — one model-vs-measurement experiment
* ``surface``   — a terminal heatmap of EE over (p × f) or (p × n)
* ``optimize``  — invert the model: best (p, f) under a power budget or
  deadline, iso-EE contours, and the (Tp, Ep) Pareto frontier

All output is plain text suitable for piping; exit status is nonzero on
configuration errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.surface import ee_surface
from repro.cluster.presets import cluster_preset
from repro.core.model import IsoEnergyModel
from repro.errors import ReproError
from repro.npb.workloads import benchmark_names
from repro.paperdata import paper_model
from repro.units import GHZ


def _num_list(text: str, kind, flag: str) -> list:
    """Parse a comma-separated numeric option into a clean error on typos."""
    try:
        values = [kind(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise ReproError(
            f"{flag} expects comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise ReproError(f"{flag} is empty")
    return values


def _model(args) -> tuple[IsoEnergyModel, float]:
    cluster = cluster_preset(args.cluster, args.p if hasattr(args, "p") else 1)
    return paper_model(
        args.benchmark,
        args.klass,
        cluster=cluster,
        niter=getattr(args, "niter", None),
        name=f"{args.benchmark.upper()}.{args.klass} on {cluster.name}",
    )


def cmd_evaluate(args) -> int:
    model, n = _model(args)
    f = args.freq * GHZ if args.freq else None
    pt = model.evaluate(n=n, p=args.p, f=f)
    rows = [
        ("model", model.name),
        ("n", format_si(pt.n)),
        ("p", pt.p),
        ("f", f"{pt.f / GHZ:.2f} GHz"),
        ("T1", f"{pt.t1:.3f} s"),
        ("Tp", f"{pt.tp:.3f} s"),
        ("speedup", f"{pt.speedup:.2f}"),
        ("E1", f"{pt.e1:.1f} J"),
        ("Ep", f"{pt.ep:.1f} J"),
        ("EEF", f"{pt.eef:.4f}"),
        ("EE", f"{pt.ee:.4f}"),
        ("bottleneck", pt.bottleneck),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_sweep(args) -> int:
    model, n = _model(args)
    ps = _num_list(args.p_values, int, "--p-values")
    rows = []
    for p in ps:
        pt = model.evaluate(n=n, p=p)
        rows.append(
            (p, round(pt.ee, 4), round(pt.perf_efficiency, 4),
             round(pt.tp, 3), round(pt.ep, 1), pt.bottleneck)
        )
    print(ascii_table(["p", "EE", "perf-eff", "Tp (s)", "Ep (J)", "bottleneck"], rows))
    return 0


def cmd_validate(args) -> int:
    from repro.validation.harness import validate

    cluster = cluster_preset(args.cluster, args.p)
    result = validate(
        cluster, args.benchmark, klass=args.klass, p=args.p,
        niter=args.niter, seed=args.seed,
    )
    rows = [
        ("benchmark", result.benchmark),
        ("p", result.p),
        ("measured", f"{result.measured_j:.1f} J"),
        ("predicted", f"{result.predicted_j:.1f} J"),
        ("|error|", f"{result.abs_error_pct:.2f} %"),
        ("sim time", f"{result.sim_seconds:.2f} s"),
        ("messages", result.messages),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_optimize(args) -> int:
    from repro.analysis.surface import surface_from_grid
    from repro.optimize import (
        evaluate_grid,
        iso_ee_curve,
        max_speedup_under_power,
        min_energy_under_deadline,
        pareto_frontier,
    )

    model, n = _model(args)
    ps = _num_list(args.p_values, int, "--p-values")
    fs = [f * GHZ for f in _num_list(args.f_values, float, "--f-values")]
    if args.n_factor != 1.0:
        n *= args.n_factor
    did_something = False

    def show_recommendation(rec) -> None:
        rows = [
            ("objective", rec.objective),
            ("model", model.name),
            ("n", format_si(rec.n)),
            ("p", rec.p),
            ("f", f"{rec.f / GHZ:.2f} GHz"),
            ("Tp", f"{rec.tp:.3f} s"),
            ("Ep", f"{rec.ep:.1f} J"),
            ("EE", f"{rec.ee:.4f}"),
            ("avg power", f"{rec.avg_power:.0f} W"),
            ("speedup", f"{rec.speedup:.2f}"),
            ("bottleneck", rec.bottleneck),
            ("feasible configs", rec.feasible_count),
        ]
        print(ascii_table(["quantity", "value"], rows))

    if args.power_budget is not None:
        rec = max_speedup_under_power(
            model, n=n, budget_w=args.power_budget, p_values=ps, f_values=fs
        )
        show_recommendation(rec)
        did_something = True
    if args.deadline is not None:
        if did_something:
            print()
        rec = min_energy_under_deadline(
            model, n=n, t_max=args.deadline, p_values=ps, f_values=fs
        )
        show_recommendation(rec)
        did_something = True
    if args.target_ee is not None:
        if did_something:
            print()
        curve = iso_ee_curve(
            model, target_ee=args.target_ee, p_values=ps, n_seed=n
        )
        print(f"iso-EE contour n(p) holding EE = {args.target_ee} — {model.name}")
        print(ascii_table(
            ["p", "n", "EE", "converged"],
            [(c.p, format_si(c.value), round(c.ee, 4), c.converged)
             for c in curve],
        ))
        did_something = True
    if args.pareto:
        if did_something:
            print()
        frontier = pareto_frontier(model, n=n, p_values=ps, f_values=fs)
        print(f"(Tp, Ep) Pareto frontier — {model.name}")
        print(ascii_table(
            ["p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
            [(r.p, round(r.f / GHZ, 2), round(r.tp, 3), round(r.ep, 1),
              round(r.ee, 4), round(r.avg_power, 0)) for r in frontier],
        ))
        did_something = True
    if args.show_grid:
        if did_something:
            print()
        grid = evaluate_grid(model, p_values=ps, f_values=fs, n_values=[n])
        surf = surface_from_grid(grid, metric="ee", axis="f")
        print(ascii_heatmap(
            surf.values, [int(p) for p in surf.x],
            [f"{f / GHZ:.1f}" for f in surf.y],
            title=f"EE grid — {grid.label}", lo=0.0, hi=1.0,
        ))
        did_something = True
    if not did_something:
        raise ReproError(
            "nothing to optimize: pass --power-budget, --deadline, "
            "--target-ee, --pareto, and/or --show-grid"
        )
    return 0


def cmd_surface(args) -> int:
    model, n = _model(args)
    ps = _num_list(args.p_values, int, "--p-values")
    if args.axis == "f":
        fs = [f * GHZ for f in _num_list(args.f_values, float, "--f-values")]
        surf = ee_surface(model, p_values=ps, f_values=fs, n=n)
        labels = [f"{f / GHZ:.1f}" for f in surf.y]
    else:
        n_values = [n * x for x in _num_list(args.n_factors, float, "--n-factors")]
        surf = ee_surface(model, p_values=ps, n_values=n_values)
        labels = [format_si(v) for v in surf.y]
    print(
        ascii_heatmap(
            surf.values, [int(p) for p in surf.x], labels,
            title=f"EE surface — {model.name}", lo=0.0, hi=1.0,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iso-energy-efficiency model (Song et al., IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--benchmark", default="FT", type=str.upper,
                       choices=list(benchmark_names()))
        p.add_argument("--cluster", default="systemg")
        p.add_argument("--klass", default="B", help="NPB class (S/W/A/B/C/D)")
        p.add_argument("--niter", type=int, default=None,
                       help="iteration override (time sampling)")

    p_eval = sub.add_parser("evaluate", help="model outputs at one point")
    common(p_eval)
    p_eval.add_argument("--p", type=int, default=64)
    p_eval.add_argument("--freq", type=float, default=None, help="GHz")
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser("sweep", help="EE table across p")
    common(p_sweep)
    p_sweep.add_argument("--p-values", default="1,2,4,8,16,32,64,128")
    p_sweep.set_defaults(func=cmd_sweep)

    p_val = sub.add_parser("validate", help="model vs simulated measurement")
    common(p_val)
    p_val.add_argument("--p", type=int, default=4)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(func=cmd_validate)

    p_opt = sub.add_parser(
        "optimize", help="solve for the best (p, f) under constraints"
    )
    common(p_opt)
    p_opt.add_argument("--power-budget", type=float, default=None,
                       help="site power cap in watts (max speedup under it)")
    p_opt.add_argument("--deadline", type=float, default=None,
                       help="runtime SLA in seconds (min energy meeting it)")
    p_opt.add_argument("--target-ee", type=float, default=None,
                       help="trace the iso-EE contour n(p) at this EE")
    p_opt.add_argument("--pareto", action="store_true",
                       help="print the (Tp, Ep) Pareto frontier")
    p_opt.add_argument("--show-grid", action="store_true",
                       help="print the EE heatmap of the searched grid")
    p_opt.add_argument("--p-values", default="1,2,4,8,16,32,64,128")
    p_opt.add_argument("--f-values", default="1.6,2.0,2.4,2.8", help="GHz list")
    p_opt.add_argument("--n-factor", type=float, default=1.0,
                       help="scale the class problem size by this factor")
    p_opt.set_defaults(func=cmd_optimize)

    p_surf = sub.add_parser("surface", help="EE heatmap over (p × f) or (p × n)")
    common(p_surf)
    p_surf.add_argument("--axis", choices=["f", "n"], default="f")
    p_surf.add_argument("--p-values", default="1,4,16,64,256,1024")
    p_surf.add_argument("--f-values", default="1.6,2.0,2.4,2.8", help="GHz list")
    p_surf.add_argument("--n-factors", default="0.25,1,4", help="×class-size list")
    p_surf.set_defaults(func=cmd_surface)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

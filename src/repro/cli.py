"""Command-line interface: ``python -m repro <command>``.

Four commands cover the everyday workflows:

* ``evaluate``  — EE/EEF/energy at one (benchmark, cluster, p, f, class)
* ``sweep``     — the EE-vs-p table for a benchmark
* ``validate``  — one model-vs-measurement experiment
* ``surface``   — a terminal heatmap of EE over (p × f) or (p × n)

All output is plain text suitable for piping; exit status is nonzero on
configuration errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.surface import ee_surface
from repro.cluster import dori, system_g
from repro.core.model import IsoEnergyModel
from repro.errors import ReproError
from repro.npb.workloads import benchmark_for, benchmark_names
from repro.units import GHZ
from repro.validation.calibration import derive_machine_params


def _cluster(name: str, nodes: int):
    if name.lower() == "systemg":
        return system_g(nodes)
    if name.lower() == "dori":
        return dori(min(nodes, 8))
    raise ReproError(f"unknown cluster {name!r}; choose systemg or dori")


def _model(args) -> tuple[IsoEnergyModel, float]:
    cluster = _cluster(args.cluster, max(args.p if hasattr(args, "p") else 1, 1))
    bench, n = benchmark_for(args.benchmark, args.klass, getattr(args, "niter", None))
    machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
    return (
        IsoEnergyModel(
            machine, bench.workload, name=f"{bench.name}.{args.klass} on {cluster.name}"
        ),
        n,
    )


def cmd_evaluate(args) -> int:
    model, n = _model(args)
    f = args.freq * GHZ if args.freq else None
    pt = model.evaluate(n=n, p=args.p, f=f)
    rows = [
        ("model", model.name),
        ("n", format_si(pt.n)),
        ("p", pt.p),
        ("f", f"{pt.f / GHZ:.2f} GHz"),
        ("T1", f"{pt.t1:.3f} s"),
        ("Tp", f"{pt.tp:.3f} s"),
        ("speedup", f"{pt.speedup:.2f}"),
        ("E1", f"{pt.e1:.1f} J"),
        ("Ep", f"{pt.ep:.1f} J"),
        ("EEF", f"{pt.eef:.4f}"),
        ("EE", f"{pt.ee:.4f}"),
        ("bottleneck", pt.bottleneck),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_sweep(args) -> int:
    model, n = _model(args)
    ps = [int(x) for x in args.p_values.split(",")]
    rows = []
    for p in ps:
        pt = model.evaluate(n=n, p=p)
        rows.append(
            (p, round(pt.ee, 4), round(pt.perf_efficiency, 4),
             round(pt.tp, 3), round(pt.ep, 1), pt.bottleneck)
        )
    print(ascii_table(["p", "EE", "perf-eff", "Tp (s)", "Ep (J)", "bottleneck"], rows))
    return 0


def cmd_validate(args) -> int:
    from repro.validation.harness import validate

    cluster = _cluster(args.cluster, args.p)
    result = validate(
        cluster, args.benchmark, klass=args.klass, p=args.p,
        niter=args.niter, seed=args.seed,
    )
    rows = [
        ("benchmark", result.benchmark),
        ("p", result.p),
        ("measured", f"{result.measured_j:.1f} J"),
        ("predicted", f"{result.predicted_j:.1f} J"),
        ("|error|", f"{result.abs_error_pct:.2f} %"),
        ("sim time", f"{result.sim_seconds:.2f} s"),
        ("messages", result.messages),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_surface(args) -> int:
    model, n = _model(args)
    ps = [int(x) for x in args.p_values.split(",")]
    if args.axis == "f":
        fs = [float(x) * GHZ for x in args.f_values.split(",")]
        surf = ee_surface(model, p_values=ps, f_values=fs, n=n)
        labels = [f"{f / GHZ:.1f}" for f in surf.y]
    else:
        n_values = [n * float(x) for x in args.n_factors.split(",")]
        surf = ee_surface(model, p_values=ps, n_values=n_values)
        labels = [format_si(v) for v in surf.y]
    print(
        ascii_heatmap(
            surf.values, [int(p) for p in surf.x], labels,
            title=f"EE surface — {model.name}", lo=0.0, hi=1.0,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iso-energy-efficiency model (Song et al., IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--benchmark", default="FT", choices=list(benchmark_names()))
        p.add_argument("--cluster", default="systemg")
        p.add_argument("--klass", default="B", help="NPB class (S/W/A/B/C/D)")
        p.add_argument("--niter", type=int, default=None,
                       help="iteration override (time sampling)")

    p_eval = sub.add_parser("evaluate", help="model outputs at one point")
    common(p_eval)
    p_eval.add_argument("--p", type=int, default=64)
    p_eval.add_argument("--freq", type=float, default=None, help="GHz")
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser("sweep", help="EE table across p")
    common(p_sweep)
    p_sweep.add_argument("--p-values", default="1,2,4,8,16,32,64,128")
    p_sweep.set_defaults(func=cmd_sweep)

    p_val = sub.add_parser("validate", help="model vs simulated measurement")
    common(p_val)
    p_val.add_argument("--p", type=int, default=4)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(func=cmd_validate)

    p_surf = sub.add_parser("surface", help="EE heatmap over (p × f) or (p × n)")
    common(p_surf)
    p_surf.add_argument("--axis", choices=["f", "n"], default="f")
    p_surf.add_argument("--p-values", default="1,4,16,64,256,1024")
    p_surf.add_argument("--f-values", default="1.6,2.0,2.4,2.8", help="GHz list")
    p_surf.add_argument("--n-factors", default="0.25,1,4", help="×class-size list")
    p_surf.set_defaults(func=cmd_surface)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Fifteen commands cover the everyday workflows:

* ``evaluate``  — EE/EEF/energy at one (benchmark, cluster, p, f, class)
* ``sweep``     — the EE-vs-p table for a benchmark
* ``validate``  — one model-vs-measurement experiment
* ``surface``   — a terminal heatmap of EE over (p × f) or (p × n)
* ``optimize``  — invert the model: best (p, f) under a power budget or
  deadline, iso-EE contours, and the (Tp, Ep) Pareto frontier
* ``hetero``    — the same questions over *mixed* processor pools:
  fastest/greenest pool allocation, Pareto menu of mixes, and the
  balanced-vs-uniform split penalty
* ``federate``  — split a site power budget across shards and route a
  job queue by EE-per-watt
* ``simulate``  — discrete-event site simulation: seeded arrivals queue
  at federation shards and are placed online by the existing policies
* ``batch``     — fan one JSON payload of heterogeneous sub-queries
  through the batch executor (grids shared per signature)
* ``cache-stats`` — the serving-side memo-layer census (responses,
  models, grid store)
* ``metrics``   — the process-wide observability registry in Prometheus
  text exposition (``--json`` wraps it in the ``metrics`` op payload;
  ``--filter`` subsets by metric-name prefix)
* ``trace``     — one retained request trace as an ASCII span waterfall
* ``timeseries`` — rolling-window rollups (rates, percentiles) of the
  retained metric time series
* ``alerts``    — the SLO rules evaluated into ok/pending/firing states
* ``serve``     — the asyncio HTTP/JSON API over the same operations

Every query command builds a typed :mod:`repro.api` request, routes it
through :func:`repro.api.service.dispatch`, and renders the response —
so the text output, the ``--json`` output, and the HTTP server all
answer from one facade.  Plain text is the default and suits piping;
``--json`` emits exactly the payload ``POST /v1/<op>`` would return.
Exit status is nonzero on configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.api.service import cache_info, cache_stats_payload, dispatch
from repro.api.types import (
    AlertsRequest,
    BatchRequest,
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    FederateRequest,
    IsoEEQuery,
    MetricsRequest,
    ParetoQuery,
    Response,
    SimulateRequest,
    SurfaceRequest,
    SweepRequest,
    TimeSeriesRequest,
    TraceRequest,
    ValidateRequest,
)
from repro.api.types import HeteroRequest
from repro.errors import ReproError
from repro.federation.partition import PARTITION_STRATEGIES
from repro.federation.registry import ShardSpec
from repro.federation.router import ROUTING_METRICS
from repro.hetero.space import POLICIES, PoolSpec
from repro.npb.workloads import benchmark_names
from repro.optimize.schedule import SCHEDULE_POLICIES, Job
from repro.sim import DEMAND_KINDS, QUEUE_DISCIPLINES, DemandSpec, ScenarioSpec, SloSpec
from repro.units import GHZ


def _version() -> str:
    """The installed distribution version, or the source tree's fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-isoee")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _num_list(text: str, kind, flag: str) -> list:
    """Parse a comma-separated numeric option into a clean error on typos."""
    try:
        values = [kind(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise ReproError(
            f"{flag} expects comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise ReproError(f"{flag} is empty")
    return values


def _emit_json(responses: list[Response]) -> int:
    """``--json`` mode: the exact HTTP payload(s), one or a list."""
    payloads = [r.to_dict() for r in responses]
    print(json.dumps(payloads[0] if len(payloads) == 1 else payloads, indent=2))
    return 0


def _model_kwargs(args) -> dict:
    return {
        "benchmark": args.benchmark,
        "klass": args.klass,
        "cluster": args.cluster,
        "niter": args.niter,
    }


def cmd_evaluate(args) -> int:
    req = EvaluateRequest(
        **_model_kwargs(args),
        p=args.p,
        freq_ghz=args.freq if args.freq else None,
    )
    resp = dispatch(req)
    if args.json:
        return _emit_json([resp])
    pt = resp.point
    rows = [
        ("model", resp.model),
        ("n", format_si(pt.n)),
        ("p", pt.p),
        ("f", f"{pt.f / GHZ:.2f} GHz"),
        ("T1", f"{pt.t1:.3f} s"),
        ("Tp", f"{pt.tp:.3f} s"),
        ("speedup", f"{pt.speedup:.2f}"),
        ("E1", f"{pt.e1:.1f} J"),
        ("Ep", f"{pt.ep:.1f} J"),
        ("EEF", f"{pt.eef:.4f}"),
        ("EE", f"{pt.ee:.4f}"),
        ("bottleneck", pt.bottleneck),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_sweep(args) -> int:
    ps = _num_list(args.p_values, int, "--p-values")
    resp = dispatch(SweepRequest(**_model_kwargs(args), p_values=tuple(ps)))
    if args.json:
        return _emit_json([resp])
    rows = [
        (pt.p, round(pt.ee, 4), round(pt.perf_efficiency, 4),
         round(pt.tp, 3), round(pt.ep, 1), pt.bottleneck)
        for pt in resp.points
    ]
    print(ascii_table(["p", "EE", "perf-eff", "Tp (s)", "Ep (J)", "bottleneck"], rows))
    return 0


def cmd_validate(args) -> int:
    resp = dispatch(
        ValidateRequest(**_model_kwargs(args), p=args.p, seed=args.seed)
    )
    if args.json:
        return _emit_json([resp])
    rows = [
        ("benchmark", resp.benchmark),
        ("p", resp.p),
        ("measured", f"{resp.measured_j:.1f} J"),
        ("predicted", f"{resp.predicted_j:.1f} J"),
        ("|error|", f"{resp.abs_error_pct:.2f} %"),
        ("sim time", f"{resp.sim_seconds:.2f} s"),
        ("messages", resp.messages),
    ]
    print(ascii_table(["quantity", "value"], rows))
    return 0


def cmd_optimize(args) -> int:
    ps = tuple(_num_list(args.p_values, int, "--p-values"))
    fs = tuple(_num_list(args.f_values, float, "--f-values"))
    base = _model_kwargs(args)
    sections: list[tuple[str, Response]] = []

    if args.power_budget is not None:
        sections.append((
            "recommendation",
            dispatch(BudgetQuery(
                **base, budget_w=args.power_budget, p_values=ps,
                f_values_ghz=fs, n_factor=args.n_factor,
            )),
        ))
    if args.deadline is not None:
        sections.append((
            "recommendation",
            dispatch(DeadlineQuery(
                **base, deadline_s=args.deadline, p_values=ps,
                f_values_ghz=fs, n_factor=args.n_factor,
            )),
        ))
    if args.target_ee is not None:
        sections.append((
            "contour",
            dispatch(IsoEEQuery(
                **base, target_ee=args.target_ee, p_values=ps,
                n_factor=args.n_factor,
            )),
        ))
    if args.pareto:
        sections.append((
            "pareto",
            dispatch(ParetoQuery(
                **base, p_values=ps, f_values_ghz=fs, n_factor=args.n_factor,
            )),
        ))
    if args.show_grid:
        sections.append((
            "grid",
            dispatch(SurfaceRequest(
                **base, axis="f", p_values=ps, f_values_ghz=fs,
                n_factor=args.n_factor,
            )),
        ))
    if not sections:
        raise ReproError(
            "nothing to optimize: pass --power-budget, --deadline, "
            "--target-ee, --pareto, and/or --show-grid"
        )
    if args.json:
        return _emit_json([resp for _, resp in sections])

    for i, (kind, resp) in enumerate(sections):
        if i:
            print()
        if kind == "recommendation":
            rec = resp.recommendation
            rows = [
                ("objective", rec.objective),
                ("model", resp.model),
                ("n", format_si(rec.n)),
                ("p", rec.p),
                ("f", f"{rec.f / GHZ:.2f} GHz"),
                ("Tp", f"{rec.tp:.3f} s"),
                ("Ep", f"{rec.ep:.1f} J"),
                ("EE", f"{rec.ee:.4f}"),
                ("avg power", f"{rec.avg_power:.0f} W"),
                ("speedup", f"{rec.speedup:.2f}"),
                ("bottleneck", rec.bottleneck),
                ("feasible configs", rec.feasible_count),
            ]
            print(ascii_table(["quantity", "value"], rows))
        elif kind == "contour":
            print(
                f"iso-EE contour n(p) holding EE = {resp.target_ee} "
                f"— {resp.model}"
            )
            print(ascii_table(
                ["p", "n", "EE", "converged"],
                [(c.p, format_si(c.value), round(c.ee, 4), c.converged)
                 for c in resp.points],
            ))
        elif kind == "pareto":
            print(f"(Tp, Ep) Pareto frontier — {resp.model}")
            print(ascii_table(
                ["p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
                [(r.p, round(r.f / GHZ, 2), round(r.tp, 3), round(r.ep, 1),
                  round(r.ee, 4), round(r.avg_power, 0)) for r in resp.points],
            ))
        else:
            print(ascii_heatmap(
                np.array(resp.values), list(resp.x),
                [f"{f / GHZ:.1f}" for f in resp.y],
                title=f"EE grid — {resp.model}", lo=0.0, hi=1.0,
            ))
    return 0


def cmd_surface(args) -> int:
    ps = tuple(_num_list(args.p_values, int, "--p-values"))
    if args.axis == "f":
        req = SurfaceRequest(
            **_model_kwargs(args), axis="f", p_values=ps,
            f_values_ghz=tuple(_num_list(args.f_values, float, "--f-values")),
        )
    else:
        req = SurfaceRequest(
            **_model_kwargs(args), axis="n", p_values=ps,
            n_factors=tuple(_num_list(args.n_factors, float, "--n-factors")),
        )
    resp = dispatch(req)
    if args.json:
        return _emit_json([resp])
    if args.axis == "f":
        labels = [f"{f / GHZ:.1f}" for f in resp.y]
    else:
        labels = [format_si(v) for v in resp.y]
    print(
        ascii_heatmap(
            np.array(resp.values), list(resp.x), labels,
            title=f"EE surface — {resp.model}", lo=0.0, hi=1.0,
        )
    )
    return 0


def _parse_shard(text: str) -> ShardSpec:
    """``name:cluster:nodes:envelope[:policy[:ee_floor]]`` → ShardSpec."""
    parts = text.split(":")
    if not (4 <= len(parts) <= 6):
        raise ReproError(
            f"--shard expects name:cluster:nodes:envelope[:policy[:ee_floor]], "
            f"got {text!r}"
        )
    try:
        nodes = int(parts[2])
        envelope = float(parts[3])
        ee_floor = float(parts[5]) if len(parts) == 6 else None
    except ValueError:
        raise ReproError(f"--shard has a non-numeric field in {text!r}") from None
    return ShardSpec(
        name=parts[0],
        cluster=parts[1],
        nodes=nodes,
        power_envelope_w=envelope,
        policy=parts[4] if len(parts) >= 5 else "makespan",
        ee_floor=ee_floor,
    )


def _parse_job(text: str) -> Job:
    """``name:benchmark:class[:niter]`` → Job."""
    parts = text.split(":")
    if not (3 <= len(parts) <= 4):
        raise ReproError(
            f"--job expects name:benchmark:class[:niter], got {text!r}"
        )
    niter = None
    if len(parts) == 4:
        try:
            niter = int(parts[3])
        except ValueError:
            raise ReproError(f"--job niter must be an integer in {text!r}") from None
    return Job(name=parts[0], benchmark=parts[1].upper(),
               klass=parts[2].upper(), niter=niter)


def cmd_federate(args) -> int:
    if not args.shard:
        raise ReproError("federate needs at least one --shard")
    if not args.job:
        raise ReproError("federate needs at least one --job")
    resp = dispatch(FederateRequest(
        budget_w=args.budget,
        strategy=args.strategy,
        metric=args.metric,
        shards=tuple(_parse_shard(s) for s in args.shard),
        jobs=tuple(_parse_job(j) for j in args.job),
    ))
    if args.json:
        return _emit_json([resp])
    print(
        f"site budget {resp.budget_w:,.0f} W split by {resp.strategy!r}, "
        f"jobs routed by {resp.metric!r}:"
    )
    print(ascii_table(
        ["shard", "allocation (W)", "floor (W)", "utility"],
        [(a.shard, round(a.allocation_w, 0), round(a.floor_w, 0),
          round(a.utility, 3)) for a in resp.allocations],
    ))
    for plan in resp.plans:
        print()
        if not plan.assignments:
            print(f"{plan.shard} ({plan.cluster}, {plan.policy}): idle "
                  f"at {plan.allocation_w:,.0f} W allocated")
            continue
        print(
            f"{plan.shard} ({plan.cluster}, {plan.policy}): "
            f"{plan.total_power_w:,.0f} W of {plan.allocation_w:,.0f} W "
            f"allocated, makespan {plan.makespan_s:.2f} s"
        )
        print(ascii_table(
            ["job", "bench", "p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
            [(a.job, a.benchmark, a.p, round(a.f / GHZ, 2), round(a.tp, 2),
              round(a.ep, 1), round(a.ee, 4), round(a.avg_power, 0))
             for a in plan.assignments],
        ))
    print(
        f"\nsite draw {resp.total_power_w:,.0f} W "
        f"(headroom {resp.site_headroom_w:,.0f} W), "
        f"makespan {resp.makespan_s:.2f} s, "
        f"total energy {resp.total_energy_j / 1000:.1f} kJ"
    )
    return 0


def _parse_pool(text: str) -> PoolSpec:
    """``name:cluster:counts[:freqs]`` → PoolSpec (counts/freqs |-separated)."""
    parts = text.split(":")
    if not (3 <= len(parts) <= 4):
        raise ReproError(
            f"--pool expects name:cluster:counts[:freqs] with |-separated "
            f"counts and GHz freqs, got {text!r}"
        )
    try:
        counts = tuple(int(x) for x in parts[2].split("|") if x.strip())
        freqs = (
            tuple(float(x) for x in parts[3].split("|") if x.strip())
            if len(parts) == 4
            else ()
        )
    except ValueError:
        raise ReproError(f"--pool has a non-numeric field in {text!r}") from None
    return PoolSpec(
        name=parts[0], cluster=parts[1], count_values=counts,
        f_values_ghz=freqs,
    )


def _mix_label(pools) -> str:
    """``fast×8 @2.80GHz + slow×4 @1.80GHz`` for a choice tuple."""
    return " + ".join(
        f"{c.pool}x{c.count} @{c.f / GHZ:.2f}GHz" for c in pools
    )


def _hetero_rec_rows(rec) -> list[tuple]:
    return [
        ("objective", rec.objective),
        ("policy", rec.policy),
        ("mix", _mix_label(rec.pools)),
        ("total p", rec.total_p),
        ("Tp", f"{rec.tp:.3f} s"),
        ("Ep", f"{rec.ep:.1f} J"),
        ("EE", f"{rec.ee:.4f}"),
        ("avg power", f"{rec.avg_power:.0f} W"),
        ("feasible allocations", rec.feasible_count),
    ]


def cmd_hetero(args) -> int:
    if not args.pool:
        raise ReproError("hetero needs at least one --pool")
    req = HeteroRequest(
        benchmark=args.benchmark,
        klass=args.klass,
        niter=args.niter,
        pools=tuple(_parse_pool(p) for p in args.pool),
        policies=tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        ),
        n_factor=args.n_factor,
        budget_w=args.power_budget,
        deadline_s=args.deadline,
        pareto=args.pareto,
        policy_gap=args.policy_gap,
    )
    resp = dispatch(req)
    if args.json:
        return _emit_json([resp])
    print(f"{resp.model}: {resp.allocations} candidate allocations")
    for rec in (resp.budget, resp.deadline):
        if rec is None:
            continue
        print()
        print(ascii_table(["quantity", "value"], _hetero_rec_rows(rec)))
    if resp.pareto:
        print()
        print(f"(Tp, Ep) Pareto frontier over pool mixes — {resp.model}")
        print(ascii_table(
            ["mix", "policy", "total p", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
            [(_mix_label(r.pools), r.policy, r.total_p, round(r.tp, 3),
              round(r.ep, 1), round(r.ee, 4), round(r.avg_power, 0))
             for r in resp.pareto],
        ))
    if resp.policy_gap is not None:
        gap = resp.policy_gap
        print()
        print(ascii_table(
            ["quantity", "value"],
            [
                ("pool mixes compared", gap.mixes),
                ("max uniform-vs-balanced penalty", f"{gap.max_gap * 100:.1f} %"),
                ("mean penalty", f"{gap.mean_gap * 100:.1f} %"),
                ("worst mix", _mix_label(gap.worst)),
                ("worst mix total p", gap.worst_total_p),
            ],
        ))
    return 0


def _item_brief(resp: Response) -> str:
    """One-line gist of a batch item's answer for the text table."""
    rec = getattr(resp, "recommendation", None)
    if rec is not None:
        return (
            f"p={rec.p} f={rec.f / GHZ:.2f}GHz Tp={rec.tp:.3g}s "
            f"{rec.avg_power:.0f}W"
        )
    points = getattr(resp, "points", None)
    if points is not None:
        return f"{len(points)} points"
    point = getattr(resp, "point", None)
    if point is not None:
        return f"EE={point.ee:.4f} {point.bottleneck}"
    values = getattr(resp, "values", None)
    if values is not None:
        return f"{len(values)}x{len(values[0]) if values else 0} plane"
    assignments = getattr(resp, "assignments", None)
    if assignments is not None:
        return f"{len(assignments)} jobs placed"
    plans = getattr(resp, "plans", None)
    if plans is not None:
        return f"{len(plans)} shard plans"
    return resp.op


def _simulate_request_from_file(path: str, include_events: bool) -> SimulateRequest:
    if path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ReproError(f"cannot read {path!r}: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"scenario payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ReproError("scenario payload must be a JSON object")
    if payload.get("op") == "simulate":
        return SimulateRequest.from_dict(payload)
    # convenience: a bare ScenarioSpec object is the common hand-written shape
    return SimulateRequest.from_dict(
        {"op": "simulate", "scenario": payload, "include_events": include_events}
    )


def cmd_simulate(args) -> int:
    if args.file is not None:
        req = _simulate_request_from_file(args.file, args.include_events)
    else:
        if not args.shard:
            raise ReproError("simulate needs --shard specs or --file SCENARIO")
        if args.budget is None:
            raise ReproError("simulate needs --budget with inline --shard specs")
        demand = DemandSpec(
            kind=args.demand,
            rate_per_s=args.rate,
            burst_size=args.burst_size,
            burst_every_s=args.burst_every,
            period_s=args.period,
            amplitude=args.amplitude,
            jobs=tuple(_parse_job(j) for j in args.job),
        )
        scenario = ScenarioSpec(
            shards=tuple(_parse_shard(s) for s in args.shard),
            budget_w=args.budget,
            strategy=args.strategy,
            metric=args.metric,
            demand=demand,
            slo=SloSpec(deadline_s=args.slo_deadline,
                        max_wait_s=args.slo_max_wait),
            horizon_s=args.horizon,
            seed=args.seed,
            queue=args.queue,
            max_queue_depth=args.max_queue_depth,
        )
        req = SimulateRequest(scenario=scenario,
                              include_events=args.include_events)
    resp = dispatch(req)
    if args.json:
        return _emit_json([resp])
    rep = resp.report
    print(
        f"simulated {rep.arrivals} arrivals over {rep.horizon_s:g} s "
        f"(drained at {rep.duration_s:.1f} s, {rep.events} events)"
    )
    rows = [
        ("started / finished", f"{rep.started} / {rep.finished}"),
        ("rejected", rep.rejected),
        ("SLO violations", rep.slo_violations),
        ("wait p50/p95/p99 (s)",
         f"{rep.wait_p50_s:.2f} / {rep.wait_p95_s:.2f} / {rep.wait_p99_s:.2f}"),
        ("sojourn p50/p95/p99 (s)",
         f"{rep.sojourn_p50_s:.2f} / {rep.sojourn_p95_s:.2f} / "
         f"{rep.sojourn_p99_s:.2f}"),
        ("mean wait (s)", f"{rep.mean_wait_s:.2f}"),
        ("energy per job (J)", f"{rep.energy_per_job_j:.1f}"),
        ("total energy (kJ)", f"{rep.total_energy_j / 1000:.2f}"),
    ]
    print(ascii_table(["quantity", "value"], rows))
    if rep.shards:
        print()
        print(ascii_table(
            ["shard", "alloc (W)", "jobs", "util", "mean q", "max q",
             "peak (W)", "energy (kJ)"],
            [(s.shard, round(s.allocation_w, 0), s.jobs,
              round(s.utilization, 3), round(s.mean_queue_depth, 2),
              s.max_queue_depth, round(s.peak_power_w, 0),
              round(s.energy_j / 1000, 2)) for s in rep.shards],
        ))
    if resp.events:
        print()
        print(ascii_table(
            ["t (s)", "kind", "job", "shard", "detail"],
            [(f"{e.time:.2f}", e.kind, e.job, e.shard, e.detail)
             for e in resp.events],
        ))
    return 0


def cmd_batch(args) -> int:
    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ReproError(f"cannot read {args.file!r}: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"batch payload is not valid JSON: {exc}") from None
    if isinstance(payload, list):
        # convenience: a bare item list is the common hand-written shape
        payload = {"op": "batch", "items": payload}
    resp = dispatch(BatchRequest.from_dict(payload))
    if args.json:
        return _emit_json([resp])
    rows = []
    failures = 0
    for k, item in enumerate(resp.items):
        if item.ok:
            rows.append((k, item.response.op, "ok", _item_brief(item.response)))
        else:
            failures += 1
            rows.append((k, "-", item.error.type, item.error.message))
    print(ascii_table(["#", "op", "status", "result"], rows))
    print(f"{len(resp.items) - failures}/{len(resp.items)} items ok")
    return 0


def cmd_cache_stats(args) -> int:
    if args.json:
        print(json.dumps(cache_stats_payload(), indent=2))
        return 0
    info = cache_info()
    responses, models = info["responses"], info["models"]
    store = info["grid_store"]
    rows = [
        ("responses", f"{responses.hits} hits / {responses.misses} misses, "
                      f"{responses.currsize}/{responses.maxsize} entries"),
        ("models", f"{models.hits} hits / {models.misses} misses, "
                   f"{models.currsize}/{models.maxsize} entries"),
        ("grid store", f"{store['hits']} hits + {store['superset_hits']} "
                       f"superset / {store['misses']} misses, "
                       f"{store['entries']}/{store['max_entries']} grids, "
                       f"{store['bytes']} bytes"),
        ("contour pairs", f"{store['pair_batches']} batches, "
                          f"{store['pair_points']} points"),
        ("hetero grids", f"{store['hetero_hits']} hits / "
                         f"{store['hetero_misses']} misses, "
                         f"{store['hetero_entries']} grids, "
                         f"{store['hetero_bytes']} bytes"),
    ]
    shared = store["shared"]
    rows.append((
        "shared plane",
        ("detached" if not shared["plane"] else
         f"{shared['hits']} hits + {shared['superset_hits']} superset / "
         f"{shared['misses']} misses, {shared['published']} published, "
         f"{shared['attached_segments']}/{shared['segments']} segments "
         f"attached, {shared['shared_bytes']} bytes"),
    ))
    retained = cache_stats_payload()
    traces, series = retained["trace_store"], retained["timeseries"]
    rows.append((
        "trace store",
        f"{traces['recent_traces']}/{traces['max_traces']} recent + "
        f"{traces['slow_traces']}/{traces['max_slow']} slow traces, "
        f"{traces['recent_spans'] + traces['slow_spans']} spans",
    ))
    rows.append((
        "timeseries",
        f"{series['samples']}/{series['capacity']} snapshots",
    ))
    print(ascii_table(["layer", "statistics"], rows))
    return 0


def cmd_metrics(args) -> int:
    resp = dispatch(MetricsRequest(filter=args.filter))
    if args.json:
        return _emit_json([resp])
    # text mode prints the exposition body exactly as GET /metrics would
    print(resp.text, end="")
    return 0


def _fmt_opt(value, digits: int = 6) -> str:
    """A rollup cell: '-' for undefined, compact fixed-point otherwise."""
    return "-" if value is None else f"{value:.{digits}g}"


def cmd_trace(args) -> int:
    resp = dispatch(TraceRequest(trace_id=args.trace_id))
    if args.json:
        return _emit_json([resp])
    from repro.obs.store import TraceRecord, render_waterfall

    record = TraceRecord(
        trace_id=resp.trace_id, slow=resp.slow, dropped=resp.dropped,
        duration_s=resp.duration_s, spans=resp.spans,
    )
    print(render_waterfall(record))
    return 0


def cmd_timeseries(args) -> int:
    resp = dispatch(
        TimeSeriesRequest(window_s=args.window, prefix=args.prefix)
    )
    if args.json:
        return _emit_json([resp])
    print(
        f"rollup over the last {resp.window_s:g} s "
        f"({resp.samples} snapshots spanning {resp.span_s:.1f} s)"
    )
    rows = [
        (
            f"{s.name}{s.labels}", s.kind, _fmt_opt(s.last),
            _fmt_opt(s.rate_per_s, 4), _fmt_opt(s.mean, 4),
            _fmt_opt(s.p95_s, 4), _fmt_opt(s.p99_s, 4),
        )
        for s in resp.series
    ]
    print(ascii_table(
        ["series", "kind", "last", "rate/s", "mean", "p95", "p99"], rows
    ))
    return 0


def cmd_alerts(args) -> int:
    resp = dispatch(AlertsRequest())
    if args.json:
        return _emit_json([resp])
    print(
        f"{resp.firing} firing, {resp.pending} pending, "
        f"{len(resp.alerts) - resp.firing - resp.pending} ok"
    )
    rows = [
        (
            a.rule, a.kind, a.state, f"{a.value:.6g}", f"{a.threshold:g}",
            f"{a.window_s:g}", f"{a.for_s:g}", f"{a.breached_for_s:.1f}",
        )
        for a in resp.alerts
    ]
    print(ascii_table(
        ["rule", "kind", "state", "value", "threshold", "window (s)",
         "for (s)", "breached (s)"],
        rows,
    ))
    return 0


def cmd_serve(args) -> int:
    from repro.api.server import serve
    from repro.obs import configure_logging, set_slow_threshold_ms

    # logging/slow-log policy belongs to the *process entry point*, not
    # to serve() itself — embedded/test servers stay quiet by default
    # (workers fork after this, so the pool inherits the configuration)
    configure_logging(json_lines=args.log_json)
    set_slow_threshold_ms(args.slow_ms)
    from repro.api.pool import MAX_WORKERS

    if not 1 <= args.workers <= MAX_WORKERS:
        raise ReproError(
            f"--workers must be between 1 and {MAX_WORKERS}, "
            f"got {args.workers}"
        )
    if args.workers > 1:
        from repro.api.pool import serve_pool

        return serve_pool(
            host=args.host, port=args.port, workers=args.workers,
            max_concurrency=args.max_concurrency,
            sample_every_s=args.sample_every,
            shm_max_bytes=args.shm_max_mb * (1 << 20),
        )
    return serve(host=args.host, port=args.port,
                 max_concurrency=args.max_concurrency,
                 sample_every_s=args.sample_every)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iso-energy-efficiency model (Song et al., IPDPS 2011)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--benchmark", default="FT", type=str.upper,
                       choices=list(benchmark_names()))
        p.add_argument("--cluster", default="systemg")
        p.add_argument("--klass", default="B", help="NPB class (S/W/A/B/C/D)")
        p.add_argument("--niter", type=int, default=None,
                       help="iteration override (time sampling)")
        p.add_argument("--json", action="store_true",
                       help="emit the API response payload as JSON")

    p_eval = sub.add_parser("evaluate", help="model outputs at one point")
    common(p_eval)
    p_eval.add_argument("--p", type=int, default=64)
    p_eval.add_argument("--freq", type=float, default=None, help="GHz")
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser("sweep", help="EE table across p")
    common(p_sweep)
    p_sweep.add_argument("--p-values", default="1,2,4,8,16,32,64,128")
    p_sweep.set_defaults(func=cmd_sweep)

    p_val = sub.add_parser("validate", help="model vs simulated measurement")
    common(p_val)
    p_val.add_argument("--p", type=int, default=4)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(func=cmd_validate)

    p_opt = sub.add_parser(
        "optimize", help="solve for the best (p, f) under constraints"
    )
    common(p_opt)
    p_opt.add_argument("--power-budget", type=float, default=None,
                       help="site power cap in watts (max speedup under it)")
    p_opt.add_argument("--deadline", type=float, default=None,
                       help="runtime SLA in seconds (min energy meeting it)")
    p_opt.add_argument("--target-ee", type=float, default=None,
                       help="trace the iso-EE contour n(p) at this EE")
    p_opt.add_argument("--pareto", action="store_true",
                       help="print the (Tp, Ep) Pareto frontier")
    p_opt.add_argument("--show-grid", action="store_true",
                       help="print the EE heatmap of the searched grid")
    p_opt.add_argument("--p-values", default="1,2,4,8,16,32,64,128")
    p_opt.add_argument("--f-values", default="1.6,2.0,2.4,2.8", help="GHz list")
    p_opt.add_argument("--n-factor", type=float, default=1.0,
                       help="scale the class problem size by this factor")
    p_opt.set_defaults(func=cmd_optimize)

    p_surf = sub.add_parser("surface", help="EE heatmap over (p × f) or (p × n)")
    common(p_surf)
    p_surf.add_argument("--axis", choices=["f", "n"], default="f")
    p_surf.add_argument("--p-values", default="1,4,16,64,256,1024")
    p_surf.add_argument("--f-values", default="1.6,2.0,2.4,2.8", help="GHz list")
    p_surf.add_argument("--n-factors", default="0.25,1,4", help="×class-size list")
    p_surf.set_defaults(func=cmd_surface)

    p_fed = sub.add_parser(
        "federate",
        help="split a site power budget across shards and route jobs",
    )
    p_fed.add_argument("--budget", type=float, required=True,
                       help="site power budget in watts")
    p_fed.add_argument(
        "--shard", action="append", default=[], metavar="SPEC",
        help="name:cluster:nodes:envelope[:policy[:ee_floor]] (repeatable); "
             f"policies: {','.join(SCHEDULE_POLICIES)}",
    )
    p_fed.add_argument(
        "--job", action="append", default=[], metavar="SPEC",
        help="name:benchmark:class[:niter] (repeatable)",
    )
    p_fed.add_argument("--strategy", choices=list(PARTITION_STRATEGIES),
                       default="waterfill")
    p_fed.add_argument("--metric", choices=list(ROUTING_METRICS),
                       default="ee_per_watt")
    p_fed.add_argument("--json", action="store_true",
                       help="emit the API response payload as JSON")
    p_fed.set_defaults(func=cmd_federate)

    p_het = sub.add_parser(
        "hetero",
        help="search mixed-pool allocations under power/deadline constraints",
    )
    p_het.add_argument("--benchmark", default="FT", type=str.upper,
                       choices=list(benchmark_names()))
    p_het.add_argument("--klass", default="B", help="NPB class (S/W/A/B/C/D)")
    p_het.add_argument("--niter", type=int, default=None,
                       help="iteration override (time sampling)")
    p_het.add_argument(
        "--pool", action="append", default=[], metavar="SPEC",
        help="name:cluster:counts[:freqs] with |-separated counts and GHz "
             "freqs (repeatable), e.g. fast:systemg:1|2|4|8:2.4|2.8",
    )
    p_het.add_argument(
        "--policies", default="balanced",
        help=f"comma list of split policies from {','.join(POLICIES)}",
    )
    p_het.add_argument("--power-budget", type=float, default=None,
                       help="power cap in watts (fastest mix under it)")
    p_het.add_argument("--deadline", type=float, default=None,
                       help="runtime SLA in seconds (greenest mix meeting it)")
    p_het.add_argument("--pareto", action="store_true",
                       help="print the (Tp, Ep) Pareto frontier of pool mixes")
    p_het.add_argument("--policy-gap", action="store_true",
                       help="quantify the uniform-vs-balanced split penalty")
    p_het.add_argument("--n-factor", type=float, default=1.0,
                       help="scale the class problem size by this factor")
    p_het.add_argument("--json", action="store_true",
                       help="emit the API response payload as JSON")
    p_het.set_defaults(func=cmd_hetero)

    p_sim = sub.add_parser(
        "simulate",
        help="discrete-event site simulation with online job placement",
    )
    p_sim.add_argument(
        "--file", default=None, metavar="PATH",
        help="scenario JSON (a bare ScenarioSpec object or a full 'simulate' "
             "payload); '-' reads stdin; overrides the inline flags below",
    )
    p_sim.add_argument("--budget", type=float, default=None,
                       help="site power budget in watts")
    p_sim.add_argument(
        "--shard", action="append", default=[], metavar="SPEC",
        help="name:cluster:nodes:envelope[:policy[:ee_floor]] (repeatable); "
             f"policies: {','.join(SCHEDULE_POLICIES)}",
    )
    p_sim.add_argument(
        "--job", action="append", default=[], metavar="SPEC",
        help="demand template name:benchmark:class[:niter] (repeatable)",
    )
    p_sim.add_argument(
        "--demand", default="poisson",
        choices=[k for k in DEMAND_KINDS if k != "trace"],
        help="arrival process (replay traces via --file scenarios)",
    )
    p_sim.add_argument("--rate", type=float, default=0.1,
                       help="mean arrival rate in jobs/s")
    p_sim.add_argument("--burst-size", type=int, default=8)
    p_sim.add_argument("--burst-every", type=float, default=120.0, metavar="S")
    p_sim.add_argument("--period", type=float, default=86400.0, metavar="S",
                       help="diurnal period in seconds")
    p_sim.add_argument("--amplitude", type=float, default=0.5,
                       help="diurnal modulation depth in [0, 1]")
    p_sim.add_argument("--horizon", type=float, default=600.0, metavar="S",
                       help="stop generating arrivals after this many seconds")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--queue", choices=list(QUEUE_DISCIPLINES),
                       default="fifo")
    p_sim.add_argument("--max-queue-depth", type=int, default=None,
                       help="reject arrivals beyond this per-shard depth")
    p_sim.add_argument("--strategy", choices=list(PARTITION_STRATEGIES),
                       default="waterfill")
    p_sim.add_argument("--metric", choices=list(ROUTING_METRICS),
                       default="ee_per_watt")
    p_sim.add_argument("--slo-deadline", type=float, default=None, metavar="S",
                       help="sojourn-time SLO in seconds")
    p_sim.add_argument("--slo-max-wait", type=float, default=None, metavar="S",
                       help="queueing-wait SLO in seconds")
    p_sim.add_argument("--include-events", action="store_true",
                       help="carry the full event log in the response")
    p_sim.add_argument("--json", action="store_true",
                       help="emit the API response payload as JSON")
    p_sim.set_defaults(func=cmd_simulate)

    p_batch = sub.add_parser(
        "batch",
        help="answer a JSON file of heterogeneous sub-queries in one pass",
    )
    p_batch.add_argument(
        "--file", default="-", metavar="PATH",
        help="JSON payload: {\"op\": \"batch\", \"items\": [...]} or a bare "
             "item list; '-' (default) reads stdin",
    )
    p_batch.add_argument("--json", action="store_true",
                         help="emit the API response payload as JSON")
    p_batch.set_defaults(func=cmd_batch)

    p_stats = sub.add_parser(
        "cache-stats",
        help="hit/miss census of the serving memo layers (incl. grid store)",
    )
    p_stats.add_argument("--json", action="store_true",
                         help="emit the /healthz caches payload as JSON")
    p_stats.set_defaults(func=cmd_cache_stats)

    p_met = sub.add_parser(
        "metrics",
        help="dump the observability registry (Prometheus text format)",
    )
    p_met.add_argument(
        "--filter", default="", metavar="PREFIX",
        help="only families whose name starts with this prefix",
    )
    p_met.add_argument("--json", action="store_true",
                       help="emit the 'metrics' op response payload as JSON")
    p_met.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="render one retained request trace as an ASCII waterfall",
    )
    p_trace.add_argument("trace_id", help="the trace id to look up")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the 'trace' op response payload as JSON")
    p_trace.set_defaults(func=cmd_trace)

    p_ts = sub.add_parser(
        "timeseries",
        help="rolling-window rollups of the retained metric time series",
    )
    p_ts.add_argument("--window", type=float, default=60.0, metavar="S",
                      help="rollup window in seconds")
    p_ts.add_argument("--prefix", default="", metavar="PREFIX",
                      help="only series whose metric name starts with this")
    p_ts.add_argument("--json", action="store_true",
                      help="emit the 'timeseries' op response payload as JSON")
    p_ts.set_defaults(func=cmd_timeseries)

    p_al = sub.add_parser(
        "alerts",
        help="evaluate the SLO rules into ok/pending/firing alert states",
    )
    p_al.add_argument("--json", action="store_true",
                      help="emit the 'alerts' op response payload as JSON")
    p_al.set_defaults(func=cmd_alerts)

    p_srv = sub.add_parser(
        "serve", help="HTTP/JSON API server over the same operations"
    )
    from repro.api.server import DEFAULT_HOST, DEFAULT_PORT

    p_srv.add_argument("--host", default=DEFAULT_HOST)
    p_srv.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_srv.add_argument(
        "--max-concurrency", type=int, default=None,
        help="cap in-flight connections; extra arrivals get a 503",
    )
    p_srv.add_argument(
        "--log-json", action="store_true",
        help="emit request/error logs as JSON lines instead of text",
    )
    p_srv.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="WARN on instrumented spans slower than this many milliseconds "
             "and pin their traces in the slow ring",
    )
    p_srv.add_argument(
        "--sample-every", type=float, default=5.0, metavar="S",
        help="retained-telemetry ticker period (time-series sampling + SLO "
             "evaluation); 0 disables",
    )
    p_srv.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="pre-fork N serving workers sharing the port (SO_REUSEPORT "
             "where available) and one shared-memory grid plane",
    )
    p_srv.add_argument(
        "--shm-max-mb", type=int, default=256, metavar="MB",
        help="byte budget of the shared grid plane before FIFO eviction "
             "(multi-worker mode only)",
    )
    p_srv.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # last-resort guard: a malformed input must never leak a traceback
        # to the shell — emit one structured line and a distinct exit code
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""LMbench ``lat_mem_rd`` analog: memory latency vs. working-set size.

The real tool chases a pointer chain through a working set of a given
size; the measured per-load latency forms a staircase whose steps are the
cache levels and whose final plateau is main memory — the paper estimates
``tm`` this way.  Our analog chases through the simulated
:class:`~repro.cluster.memory.MemoryHierarchy`, with optional measurement
noise, and recovers ``tm`` from the tail plateau.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import Node
from repro.errors import MeasurementError
from repro.microbench.fitting import tail_plateau


def default_sizes(max_bytes: int) -> list[int]:
    """The classic lat_mem_rd sweep: powers of two (plus halves) up to max."""
    sizes: list[int] = []
    size = 1024
    while size <= max_bytes:
        sizes.append(size)
        sizes.append(size + size // 2)
        size *= 2
    return [s for s in sizes if s <= max_bytes]


def lat_mem_rd(
    node: Node,
    sizes: list[int] | None = None,
    noise_sigma: float = 0.01,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Measure load latency (seconds) at each working-set size.

    Returns (sizes, latencies).  Latencies include lognormal measurement
    noise of relative width ``noise_sigma`` (set 0 for exact values).
    """
    if sizes is None:
        # sweep to 4× the last-level cache so DRAM shows a clear plateau
        llc = node.memory.levels[-1].capacity if node.memory.levels else 1 << 20
        sizes = default_sizes(4 * llc)
    if not sizes:
        raise MeasurementError("no working-set sizes supplied")
    if any(s <= 0 for s in sizes):
        raise MeasurementError("working-set sizes must be positive")
    rng = np.random.default_rng(seed)
    lat = []
    for s in sizes:
        base = node.memory.latency_for_working_set(int(s))
        if noise_sigma > 0:
            base *= float(np.exp(rng.normal(-0.5 * noise_sigma**2, noise_sigma)))
        lat.append(base)
    return np.asarray(sizes, dtype=float), np.asarray(lat, dtype=float)


def estimate_tm(
    node: Node,
    sizes: list[int] | None = None,
    noise_sigma: float = 0.01,
    seed: int = 0,
) -> float:
    """Derive the machine parameter ``tm`` from a lat_mem_rd sweep.

    Takes the tail plateau of the latency staircase — the main-memory
    level, exactly how the paper reads the LMbench output.
    """
    _, lat = lat_mem_rd(node, sizes=sizes, noise_sigma=noise_sigma, seed=seed)
    plateau = tail_plateau(lat)
    if plateau.width < 2:
        raise MeasurementError(
            "DRAM plateau too narrow; extend the working-set sweep"
        )
    return plateau.level


def cache_capacities_from_sweep(
    sizes: np.ndarray, latencies: np.ndarray, jump_factor: float = 1.5
) -> list[int]:
    """Detect cache-capacity boundaries: sizes where latency jumps.

    Returns the largest working-set size *before* each latency jump — an
    estimate of each level's capacity.  Used in tests to confirm the sweep
    resolves the configured hierarchy.
    """
    if len(sizes) != len(latencies) or len(sizes) < 2:
        raise MeasurementError("need aligned sweeps of length >= 2")
    caps = []
    for i in range(1, len(latencies)):
        if latencies[i] > jump_factor * latencies[i - 1]:
            caps.append(int(sizes[i - 1]))
    return caps

"""Measurement tools for deriving model input parameters.

The paper's contribution list includes "a set of open source tools for
deriving and measuring model input parameters": Perfmon for CPI and
workload counters, LMbench's ``lat_mem_rd`` for memory latency, MPPTest
for (ts, tw), TAU/PMPI for message counts, and ``/proc/stat`` for I/O
time.  This subpackage reimplements each against the simulated cluster,
so the calibration pipeline *derives* Θ1 and Θ2 from observations instead
of reading them from configuration.
"""

from repro.microbench.fitting import (
    LineFit,
    PlateauFit,
    fit_line,
    fit_power_law,
    largest_plateau,
)
from repro.microbench.lmbench import lat_mem_rd, estimate_tm
from repro.microbench.mpptest import MpptestResult, mpptest, estimate_ts_tw
from repro.microbench.perfmon import CounterReport, measure_counters, measure_cpi
from repro.microbench.procstat import ProcStat, proc_stat

__all__ = [
    "LineFit",
    "PlateauFit",
    "fit_line",
    "fit_power_law",
    "largest_plateau",
    "lat_mem_rd",
    "estimate_tm",
    "MpptestResult",
    "mpptest",
    "estimate_ts_tw",
    "CounterReport",
    "measure_counters",
    "measure_cpi",
    "ProcStat",
    "proc_stat",
]

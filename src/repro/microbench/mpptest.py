"""MPPTest analog: derive (ts, tw) from ping-pong message sweeps.

MPPTest measures point-to-point time across message sizes; fitting the
Hockney line ``t = ts + n·tw`` yields the paper's two communication
parameters.  Our analog runs real ping-pong exchanges through the
discrete-event engine (so congestion/noise settings affect the
measurement, as they would on hardware) and fits the line by least
squares over several repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import MeasurementError
from repro.microbench.fitting import LineFit, fit_line
from repro.simmpi.engine import SimConfig, SimEngine
from repro.simmpi.noise import NoiseModel


@dataclass(frozen=True)
class MpptestResult:
    """Sweep data plus the fitted Hockney parameters."""

    sizes: np.ndarray
    times: np.ndarray  # one-way seconds per size (averaged over reps)
    fit: LineFit

    @property
    def ts(self) -> float:
        """Fitted message start-up time (s)."""
        return self.fit.intercept

    @property
    def tw(self) -> float:
        """Fitted per-byte time (s/byte)."""
        return self.fit.slope


def default_message_sizes() -> list[int]:
    """Sizes spanning the latency- and bandwidth-dominated regimes."""
    return [0, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576]


def mpptest(
    cluster: Cluster,
    sizes: list[int] | None = None,
    reps: int = 5,
    noise: NoiseModel | None = None,
) -> MpptestResult:
    """Run a two-rank ping-pong sweep and fit the Hockney line.

    Each measurement sends a message from rank 0 to rank 1 and back
    ``reps`` times; the one-way time is half the round-trip average —
    exactly the classic benchmark procedure.
    """
    if len(cluster) < 2:
        raise MeasurementError("mpptest needs at least two nodes")
    if reps < 1:
        raise MeasurementError("reps must be >= 1")
    sizes = default_message_sizes() if sizes is None else sizes
    if not sizes or any(s < 0 for s in sizes):
        raise MeasurementError("message sizes must be non-negative")

    config = SimConfig(noise=noise or NoiseModel.quiet())
    one_way: list[float] = []
    for nbytes in sizes:

        def program(ctx, nbytes=nbytes):
            for r in range(reps):
                if ctx.rank == 0:
                    yield from ctx.send(dst=1, nbytes=nbytes, tag=r)
                    yield from ctx.recv(src=1, tag=reps + r)
                elif ctx.rank == 1:
                    yield from ctx.recv(src=0, tag=r)
                    yield from ctx.send(dst=0, nbytes=nbytes, tag=reps + r)

        result = SimEngine(cluster, config).run(program, size=2)
        one_way.append(result.total_time / (2 * reps))

    times = np.asarray(one_way)
    fit = fit_line(np.asarray(sizes, dtype=float), times)
    if fit.intercept <= 0:
        raise MeasurementError(
            f"fitted ts={fit.intercept:.3e} s is non-positive; sweep too noisy"
        )
    return MpptestResult(sizes=np.asarray(sizes, dtype=float), times=times, fit=fit)


def estimate_ts_tw(
    cluster: Cluster,
    noise: NoiseModel | None = None,
) -> tuple[float, float]:
    """Shortcut returning just (ts, tw) for calibration pipelines."""
    res = mpptest(cluster, noise=noise)
    return res.ts, res.tw

"""Perfmon analog: hardware-counter measurement of simulated runs.

The paper "built a tool using the Perfmon API from UT-Knoxville to
automatically measure the average tc derived as CPI/f" and uses the same
counters for the application-dependent workload parameters (Wc, Wm).  The
simulator records exact operation counts on every work segment; this
module reads them back the way a counter multiplexer would — totals,
per-rank, per-phase — and derives CPI/tc from timed calibration loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.errors import MeasurementError
from repro.simmpi.engine import SimConfig, SimEngine, SimResult
from repro.simmpi.noise import NoiseModel


@dataclass(frozen=True)
class CounterReport:
    """Counter totals harvested from one run."""

    instructions: float
    mem_accesses: float
    cpu_seconds: float
    mem_seconds: float
    wall_seconds: float
    per_rank_instructions: dict[int, float]
    per_phase_instructions: dict[str, float]

    @property
    def measured_cpi_time(self) -> float:
        """Average seconds per instruction (``tc``) from the counters."""
        if self.instructions <= 0:
            raise MeasurementError("no instructions retired")
        return self.cpu_seconds / self.instructions

    @property
    def measured_tm(self) -> float:
        """Average seconds per memory access from the counters."""
        if self.mem_accesses <= 0:
            raise MeasurementError("no memory accesses recorded")
        return self.mem_seconds / self.mem_accesses


def measure_counters(result: SimResult) -> CounterReport:
    """Harvest counters from a finished run's work segments."""
    instr = 0.0
    mem = 0.0
    cpu_s = 0.0
    mem_s = 0.0
    per_rank: dict[int, float] = {}
    per_phase: dict[str, float] = {}
    for seg in result.segments:
        if seg.kind != "work":
            continue
        instr += seg.instructions
        mem += seg.mem_ops
        cpu_s += seg.cpu_active
        mem_s += seg.mem_active
        per_rank[seg.rank] = per_rank.get(seg.rank, 0.0) + seg.instructions
        if seg.phase:
            per_phase[seg.phase] = per_phase.get(seg.phase, 0.0) + seg.instructions
    return CounterReport(
        instructions=instr,
        mem_accesses=mem,
        cpu_seconds=cpu_s,
        mem_seconds=mem_s,
        wall_seconds=result.total_time,
        per_rank_instructions=per_rank,
        per_phase_instructions=per_phase,
    )


def measure_cpi(
    cluster: Cluster,
    cpi_factor: float = 1.0,
    instructions: float = 1e8,
    noise: NoiseModel | None = None,
) -> tuple[float, float]:
    """Time a pure-compute calibration loop; returns (cpi, tc).

    Runs ``instructions`` arithmetic operations on one rank at the current
    frequency and derives ``tc = elapsed/instructions`` and
    ``CPI = tc·f`` — the Table-1 relation in reverse.
    """
    if instructions <= 0:
        raise MeasurementError("calibration loop needs positive work")

    def program(ctx):
        yield from ctx.compute(instructions=instructions, mem_accesses=0.0)

    config = SimConfig(
        alpha=1.0, cpi_factor=cpi_factor, noise=noise or NoiseModel.quiet()
    )
    result = SimEngine(cluster, config).run(program, size=1)
    report = measure_counters(result)
    tc = report.measured_cpi_time
    f = cluster.head.frequency
    return tc * f, tc

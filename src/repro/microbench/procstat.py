"""``/proc/stat`` analog: CPU-state time accounting per node.

The paper notes T_IO "can be estimated by using the Linux pseudo file
/proc/stat".  This module aggregates a run's segments into the familiar
user/iowait/idle jiffy split per node, from which ``T_IO`` (and a sanity
view of utilization) is read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.simmpi.engine import SimResult


@dataclass(frozen=True)
class ProcStat:
    """Per-node time accounting, in seconds (not jiffies, for sanity)."""

    node: int
    user: float  # compute segments
    iowait: float  # io segments
    network: float  # comm segments (counted as system time on hardware)
    idle: float  # wall time not covered by any segment

    @property
    def wall(self) -> float:
        return self.user + self.iowait + self.network + self.idle

    @property
    def utilization(self) -> float:
        if self.wall <= 0:
            raise MeasurementError("zero wall time")
        return (self.user + self.network + self.iowait) / self.wall


def proc_stat(result: SimResult, node: int) -> ProcStat:
    """Aggregate the run's segments for one node into /proc/stat buckets.

    With multiple ranks per node the buckets sum rank time (as per-core
    jiffies do); idle is measured against ``ranks_on_node × wall``.
    """
    user = iowait = network = 0.0
    ranks = set()
    for seg in result.segments:
        if seg.node != node:
            continue
        ranks.add(seg.rank)
        if seg.kind == "work":
            user += seg.duration
        elif seg.kind == "io":
            iowait += seg.duration
        elif seg.kind == "comm":
            network += seg.duration
        # "wait" segments fall through to idle
    if not ranks:
        raise MeasurementError(f"node {node} ran no ranks")
    capacity = len(ranks) * result.total_time
    idle = max(0.0, capacity - user - iowait - network)
    return ProcStat(node=node, user=user, iowait=iowait, network=network, idle=idle)


def total_io_seconds(result: SimResult) -> float:
    """T_IO across all ranks — the model's I/O time input."""
    return sum(s.duration for s in result.segments if s.kind == "io")

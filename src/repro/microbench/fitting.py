"""Regression helpers shared by the measurement tools."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class LineFit:
    """Least-squares fit of y = intercept + slope·x."""

    intercept: float
    slope: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def fit_line(x, y) -> LineFit:
    """Ordinary least squares for a straight line.

    This is how MPPTest-style sweeps become Hockney constants: message
    time vs. size fits ``t = ts + n·tw``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise CalibrationError("x and y must be equal-length 1-D arrays")
    if len(x) < 2:
        raise CalibrationError("need at least two samples to fit a line")
    if np.ptp(x) == 0:
        raise CalibrationError("x values are all identical")
    a = np.vstack([np.ones_like(x), x]).T
    coef, *_ = np.linalg.lstsq(a, y, rcond=None)
    pred = a @ coef
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LineFit(intercept=float(coef[0]), slope=float(coef[1]), r_squared=r2)


def fit_power_law(x, y) -> tuple[float, float]:
    """Fit ``y = a·x^b`` by least squares in log space; returns (a, b).

    Used by the γ-ablation bench to recover the power-frequency exponent
    from measured (f, ΔP) pairs.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise CalibrationError("power-law fit needs strictly positive data")
    fit = fit_line(np.log(x), np.log(y))
    return float(np.exp(fit.intercept)), fit.slope


@dataclass(frozen=True)
class PlateauFit:
    """A detected plateau: mean level over a contiguous index range."""

    level: float
    start: int
    stop: int  # exclusive

    @property
    def width(self) -> int:
        return self.stop - self.start


def largest_plateau(values, rel_tol: float = 0.08) -> PlateauFit:
    """The widest run of consecutive values within ``rel_tol`` of each other.

    ``lat_mem_rd`` output is a staircase (L1 / L2 / DRAM); the *last*
    plateau is the DRAM latency.  This helper finds maximal runs; callers
    slice the tail to pick the DRAM level.
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or len(v) == 0:
        raise CalibrationError("need a non-empty 1-D series")
    best = PlateauFit(level=float(v[0]), start=0, stop=1)
    start = 0
    for i in range(1, len(v) + 1):
        run_ref = np.median(v[start:i]) if i > start else v[start]
        if i == len(v) or abs(v[i] - run_ref) > rel_tol * run_ref:
            if i - start > best.width:
                best = PlateauFit(level=float(np.mean(v[start:i])), start=start, stop=i)
            start = i
    return best


def tail_plateau(values, rel_tol: float = 0.08) -> PlateauFit:
    """The plateau that includes the final sample (DRAM in lat_mem_rd)."""
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or len(v) == 0:
        raise CalibrationError("need a non-empty 1-D series")
    stop = len(v)
    start = stop - 1
    while start > 0 and abs(v[start - 1] - v[stop - 1]) <= rel_tol * v[stop - 1]:
        start -= 1
    return PlateauFit(level=float(np.mean(v[start:stop])), start=start, stop=stop)

"""The paper's primary contribution: the iso-energy-efficiency model.

Public surface:

* :class:`~repro.core.parameters.MachineParams` — the machine-dependent
  vector Θ1 = (tc, tm, ts, tw, ΔPc, ΔPm, ΔPio, P*-idle, f, γ) of Table 1.
* :class:`~repro.core.parameters.AppParams` — the application-dependent
  vector Θ2 = (α, Wc, Wm, Wco, Wmo, M, B) of Table 2.
* :mod:`~repro.core.performance` — Eq. (5)/(6)/(10): T1, ΣTi, Tp, speedup.
* :mod:`~repro.core.energy` — Eq. (13)/(15)/(16)/(18): E1, Ep, ΔE.
* :mod:`~repro.core.efficiency` — Eq. (19)/(21): EEF and EE.
* :class:`~repro.core.model.IsoEnergyModel` — a facade evaluating all of
  the above over (p, f, n) grids.
* :mod:`~repro.core.scaling` — iso-contour solvers ("how must n scale with
  p to hold EE constant?") and DVFS tuning.
* :mod:`~repro.core.baselines` — the related-work models the paper
  contrasts against (Grama isoefficiency, power-aware speedup, ERE).
"""

from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import (
    comm_time,
    parallel_time,
    sequential_time,
    speedup,
    total_parallel_time,
)
from repro.core.energy import (
    EnergyBreakdown,
    delta_energy,
    parallel_energy,
    sequential_energy,
)
from repro.core.efficiency import eef, energy_efficiency
from repro.core.model import IsoEnergyModel, ModelPoint
from repro.core.scaling import (
    frequency_for_best_ee,
    iso_workload,
    max_parallelism,
)
from repro.core.baselines import (
    ere_metric,
    grama_isoefficiency_overhead,
    performance_efficiency,
    power_aware_speedup,
)

__all__ = [
    "AppParams",
    "MachineParams",
    "comm_time",
    "parallel_time",
    "sequential_time",
    "speedup",
    "total_parallel_time",
    "EnergyBreakdown",
    "delta_energy",
    "parallel_energy",
    "sequential_energy",
    "eef",
    "energy_efficiency",
    "IsoEnergyModel",
    "ModelPoint",
    "frequency_for_best_ee",
    "iso_workload",
    "max_parallelism",
    "ere_metric",
    "grama_isoefficiency_overhead",
    "performance_efficiency",
    "power_aware_speedup",
]

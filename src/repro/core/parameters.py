"""Model parameter vectors Θ1 (machine) and Θ2 (application).

Tables 1 and 2 of the paper split every model input into a
machine-dependent vector::

    Θ1 = f(frequency, bandwidth) = (tc, tm, ts, tw,
                                    ΔPc, ΔPm, ΔPio,
                                    Pc-idle, Pm-idle, Pio-idle, Pothers, γ)

and an application-dependent vector::

    Θ2 = f(n, p) = (α, Wc, Wm, Wco, Wmo, M, B)

Both are plain frozen dataclasses here: Θ1 knows how to re-derive itself at
another DVFS frequency (Eq. 20 power law + ``tc = CPI/f``), Θ2 is produced
for a concrete ``(n, p)`` by the workload models in
:mod:`repro.npb.workloads` or fitted from measurements by
:mod:`repro.validation.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError


@dataclass(frozen=True)
class MachineParams:
    """Machine-dependent parameter vector Θ1 (Table 1).

    All times in seconds, powers in watts, per *processing element* — the
    unit that the model counts with ``p``.  When a processing element is a
    whole node (as in the paper's validations) these are node-level values.

    Attributes
    ----------
    tc:
        Average time per on-chip computation instruction, ``CPI / f``.
    tm:
        Average main-memory access latency.
    ts:
        Average message start-up time.
    tw:
        Average transmission time of one byte (an "8-bit word").
    delta_pc, delta_pm, delta_pio:
        Extra (running − idle) power of CPU, memory, and IO devices.
    pc_idle, pm_idle, pio_idle:
        Idle power of CPU, memory, and IO devices.
    p_others:
        Always-on power of remaining components (motherboard, fans, NIC…).
    f:
        Clock frequency (Hz) at which this vector is valid.
    f_ref:
        Reference frequency of the power law (Eq. 20).
    gamma:
        Power-frequency exponent γ ≥ 1 for ΔPc.
    gamma_idle:
        Exponent applied to CPU idle power under DVFS (0 = constant).
    cpi:
        Cycles per instruction; lets :meth:`at_frequency` recompute ``tc``.
    """

    tc: float
    tm: float
    ts: float
    tw: float
    delta_pc: float
    delta_pm: float
    pc_idle: float
    pm_idle: float
    p_others: float
    f: float
    delta_pio: float = 0.0
    pio_idle: float = 0.0
    f_ref: float | None = None
    gamma: float = 2.0
    gamma_idle: float = 0.0
    cpi: float | None = None

    def __post_init__(self) -> None:
        for name in ("tc", "tm", "ts", "tw"):
            v = getattr(self, name)
            if v <= 0:
                raise ParameterError(f"{name} must be positive, got {v}")
        for name in (
            "delta_pc",
            "delta_pm",
            "delta_pio",
            "pc_idle",
            "pm_idle",
            "pio_idle",
            "p_others",
        ):
            v = getattr(self, name)
            if v < 0:
                raise ParameterError(f"{name} must be >= 0, got {v}")
        if self.f <= 0:
            raise ParameterError("f must be positive")
        if self.gamma < 1.0:
            raise ParameterError(f"gamma must be >= 1 (Eq. 20), got {self.gamma}")
        if self.gamma_idle < 0:
            raise ParameterError("gamma_idle must be >= 0")
        if self.cpi is not None and self.cpi <= 0:
            raise ParameterError("cpi must be positive when given")
        if self.f_ref is not None and self.f_ref <= 0:
            raise ParameterError("f_ref must be positive when given")
        if self.cpi is not None:
            derived = self.cpi / self.f
            if abs(derived - self.tc) > 1e-6 * max(derived, self.tc):
                raise ParameterError(
                    f"tc={self.tc} inconsistent with cpi/f={derived} "
                    "(Table 1 requires tc = CPI/f)"
                )

    # -- aggregates ------------------------------------------------------------

    @property
    def p_system_idle(self) -> float:
        """Total idle power of one processing element (paper P_system-idle)."""
        return self.pc_idle + self.pm_idle + self.pio_idle + self.p_others

    # -- DVFS projection (Eq. 20) -------------------------------------------------

    def at_frequency(self, f_new: float) -> "MachineParams":
        """Re-derive Θ1 at a different clock frequency.

        Applies ``tc = CPI/f`` and ``ΔPc(f) = ΔPc_ref·(f/f_ref)^γ`` with the
        power law anchored at ``f_ref`` (defaulting to the current ``f``).
        Memory and network characteristics are frequency-independent, per the
        paper's simplifying assumption ("For simplicity, we assume they are
        only affected by hardware").
        """
        if f_new <= 0:
            raise ParameterError("target frequency must be positive")
        if self.cpi is None:
            # derive CPI from the current pair so the projection stays exact
            cpi = self.tc * self.f
        else:
            cpi = self.cpi
        anchor = self.f_ref if self.f_ref is not None else self.f
        ratio = f_new / anchor
        anchor_delta = self.delta_pc / ((self.f / anchor) ** self.gamma)
        anchor_idle = (
            self.pc_idle / ((self.f / anchor) ** self.gamma_idle)
            if self.gamma_idle
            else self.pc_idle
        )
        return replace(
            self,
            tc=cpi / f_new,
            f=f_new,
            f_ref=anchor,
            cpi=cpi,
            delta_pc=anchor_delta * ratio**self.gamma,
            pc_idle=anchor_idle * ratio**self.gamma_idle
            if self.gamma_idle
            else self.pc_idle,
        )

    def scaled_network(self, bandwidth_factor: float) -> "MachineParams":
        """Θ1 with network bandwidth scaled by ``bandwidth_factor``.

        The paper lists network bandwidth alongside frequency as the main
        machine-side tuning knob; this scales ``tw`` (inverse bandwidth)
        while leaving the latency-dominated ``ts`` untouched.
        """
        if bandwidth_factor <= 0:
            raise ParameterError("bandwidth_factor must be positive")
        return replace(self, tw=self.tw / bandwidth_factor)


@dataclass(frozen=True)
class AppParams:
    """Application-dependent parameter vector Θ2 (Table 2) at a given (n, p).

    Attributes
    ----------
    alpha:
        Overlap factor α ∈ (0, 1]: measured time / theoretical time (§VI-F).
    wc:
        Total on-chip computation workload (instructions), independent of p.
    wm:
        Total off-chip memory accesses, independent of p.
    wco:
        Total parallel computation overhead (extra instructions across all
        p processors).
    wmo:
        Total extra memory accesses due to parallelization.
    m_messages:
        Total number of messages M across all processors.
    b_bytes:
        Total bytes transmitted B across all processors.
    t_io:
        Total I/O access time (seconds); zero for the studied benchmarks.
    n:
        Problem size this vector was produced for (bookkeeping).
    p:
        Processor count this vector was produced for (bookkeeping).
    """

    alpha: float
    wc: float
    wm: float = 0.0
    wco: float = 0.0
    wmo: float = 0.0
    m_messages: float = 0.0
    b_bytes: float = 0.0
    t_io: float = 0.0
    n: float | None = None
    p: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ParameterError(
                f"alpha must be in (0, 1] (paper §VI-A), got {self.alpha}"
            )
        if self.wc <= 0:
            raise ParameterError("wc must be positive (some computation exists)")
        for name in ("wm", "wco", "wmo", "m_messages", "b_bytes", "t_io"):
            v = getattr(self, name)
            if v < 0:
                raise ParameterError(f"{name} must be >= 0, got {v}")
        if self.p is not None and self.p < 1:
            raise ParameterError("p must be >= 1 when given")
        if self.p == 1 and (
            self.wco or self.wmo or self.m_messages or self.b_bytes
        ):
            raise ParameterError(
                "sequential execution (p=1) cannot carry parallel overheads"
            )

    # -- convenience -----------------------------------------------------------

    @property
    def total_instructions(self) -> float:
        """All instructions including overhead: Wc + Wco."""
        return self.wc + self.wco

    @property
    def total_mem_accesses(self) -> float:
        """All memory accesses including overhead: Wm + Wmo."""
        return self.wm + self.wmo

    def sequential(self) -> "AppParams":
        """The p=1 view of this workload: overheads stripped."""
        return AppParams(
            alpha=self.alpha,
            wc=self.wc,
            wm=self.wm,
            t_io=self.t_io,
            n=self.n,
            p=1,
        )

"""Energy model — Equations (7)–(18) of the paper.

The total energy of an execution decomposes by component (Eq. 7) and by
state (Eq. 8), which collapses to the intuitive Eq. (9): the whole system
draws idle power for the entire runtime, and each component additionally
draws its ΔP while it is actively working::

    E  = T_total·P_system_idle  +  Wc·tc·ΔPc  +  Wm·tm·ΔPm  +  T_IO·ΔPio

Sequential (Eq. 13, no messages)::

    E1 = T1·P_system_idle + Wc·tc·ΔPc + Wm·tm·ΔPm [+ T_IO·ΔPio]

Parallel over p processors (Eqs. 14–15, 18)::

    Ep = (Σ Ti)·P_system_idle + (Wc+Wco)·tc·ΔPc + (Wm+Wmo)·tm·ΔPm [+ …]

and the parallel energy overhead (Eqs. 1, 16)::

    ΔE = Ep − E1
       = α·(Wco·tc + Wmo·tm + M·ts + B·tw)·P_system_idle
         + Wco·tc·ΔPc + Wmo·tm·ΔPm

Note the asymmetry the paper builds in deliberately: *time* terms carry the
overlap factor α (overlap shortens the run and thus idle-power energy), but
*active* energy terms ``W·t·ΔP`` do not — the work is performed regardless
of how well it overlaps, exactly as in the Fig. 10 shading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import (
    comm_time,
    sequential_time,
    total_parallel_time,
)
from repro.errors import ParameterError


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-source decomposition of a predicted energy (joules).

    ``idle`` is the system-idle floor over the full runtime; the remaining
    fields are the active (ΔP) energies per component.
    """

    idle: float
    cpu_active: float
    memory_active: float
    io_active: float

    @property
    def total(self) -> float:
        return self.idle + self.cpu_active + self.memory_active + self.io_active

    def as_dict(self) -> dict[str, float]:
        return {
            "idle": self.idle,
            "cpu_active": self.cpu_active,
            "memory_active": self.memory_active,
            "io_active": self.io_active,
            "total": self.total,
        }


def sequential_energy_breakdown(
    machine: MachineParams, app: AppParams
) -> EnergyBreakdown:
    """E1's components (Eq. 13)."""
    seq = app.sequential()
    t1 = sequential_time(machine, app)
    return EnergyBreakdown(
        idle=t1 * machine.p_system_idle,
        cpu_active=seq.wc * machine.tc * machine.delta_pc,
        memory_active=seq.wm * machine.tm * machine.delta_pm,
        io_active=seq.t_io * machine.delta_pio,
    )


def sequential_energy(machine: MachineParams, app: AppParams) -> float:
    """E1 — total energy of the sequential execution (Eq. 13)."""
    return sequential_energy_breakdown(machine, app).total


def parallel_energy_breakdown(
    machine: MachineParams, app: AppParams, p: int
) -> EnergyBreakdown:
    """Ep's components (Eqs. 15/18)."""
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    if p == 1:
        return sequential_energy_breakdown(machine, app)
    sum_ti = total_parallel_time(machine, app, p)
    return EnergyBreakdown(
        idle=sum_ti * machine.p_system_idle,
        cpu_active=app.total_instructions * machine.tc * machine.delta_pc,
        memory_active=app.total_mem_accesses * machine.tm * machine.delta_pm,
        io_active=app.t_io * machine.delta_pio,
    )


def parallel_energy(machine: MachineParams, app: AppParams, p: int) -> float:
    """Ep — total energy across all p processors (Eqs. 15/18)."""
    return parallel_energy_breakdown(machine, app, p).total


def delta_energy(machine: MachineParams, app: AppParams, p: int) -> float:
    """ΔE = Ep − E1, evaluated in closed form (Eq. 16).

    Closed form and the difference of the two totals agree to rounding;
    tests assert this identity.
    """
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    idle_part = (
        app.alpha
        * (
            app.wco * machine.tc
            + app.wmo * machine.tm
            + comm_time(machine, app)
        )
        * machine.p_system_idle
    )
    active_part = (
        app.wco * machine.tc * machine.delta_pc
        + app.wmo * machine.tm * machine.delta_pm
    )
    return idle_part + active_part

"""Heterogeneous-system extension of the iso-energy-efficiency model.

The paper closes with "we want to extend the current model to
heterogeneous systems" (§VII).  This module implements that extension
under the natural generalization of Eqs. (14)–(15): processors belong
to *groups*, each with its own machine vector Θ1ᵍ and processor count
pᵍ; workload is distributed across groups by a split policy and the
group energies sum::

    Ep = Σ_g [ ΣTᵢᵍ·P_sys_idleᵍ + Wcᵍ·tcᵍ·ΔPcᵍ + Wmᵍ·tmᵍ·ΔPmᵍ ]

EEF keeps its meaning (ΔE against the *best* single processor running
the job alone), so EE remains comparable with the homogeneous model.

Two split policies are provided: proportional-to-speed (makespan-
balanced, what a good scheduler does) and uniform (what a naive
launcher does) — the gap between them is itself a useful output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.parameters import AppParams, MachineParams
from repro.errors import ParameterError


@dataclass(frozen=True)
class ProcessorGroup:
    """A homogeneous pool inside a heterogeneous system."""

    name: str
    machine: MachineParams
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ParameterError(f"group {self.name}: count must be >= 1")

    def unit_work_time(self, app: AppParams) -> float:
        """Seconds for one processor here to do a unit of (Wc, Wm) mix."""
        total = app.wc + app.wm
        if total <= 0:
            # name the group: a degenerate workload surfacing mid-batch
            # must point at *where* it broke, and the vectorized space
            # evaluator mirrors this exact message for per-item parity
            raise ParameterError(
                f"group {self.name}: workload has no work"
            )
        frac_c = app.wc / total
        frac_m = app.wm / total
        return frac_c * self.machine.tc + frac_m * self.machine.tm


@dataclass(frozen=True)
class HeteroPoint:
    """Model outputs for one heterogeneous evaluation."""

    tp: float
    ep: float
    e1_best: float
    ee: float
    group_shares: dict[str, float]
    group_energies: dict[str, float]


class HeteroIsoEnergyModel:
    """Iso-energy-efficiency over processor groups.

    Parameters
    ----------
    groups:
        The processor pools.  Communication uses the slowest group's
        (ts, tw) — messages cross the common fabric.
    """

    def __init__(self, groups: Sequence[ProcessorGroup]) -> None:
        if not groups:
            raise ParameterError("need at least one processor group")
        names = [g.name for g in groups]
        if len(set(names)) != len(names):
            raise ParameterError("group names must be unique")
        self.groups = list(groups)

    @property
    def total_processors(self) -> int:
        return sum(g.count for g in self.groups)

    # -- workload split ----------------------------------------------------------

    def split_shares(self, app: AppParams, policy: str = "balanced") -> dict[str, float]:
        """Fraction of the workload each group receives.

        ``balanced`` splits proportional to aggregate speed (equal
        finish times); ``uniform`` splits proportional to processor
        count only (ignores speed differences).
        """
        if policy == "balanced":
            speeds = {
                g.name: g.count / g.unit_work_time(app) for g in self.groups
            }
        elif policy == "uniform":
            speeds = {g.name: float(g.count) for g in self.groups}
        else:
            raise ParameterError(
                f"unknown split policy {policy!r}; "
                "choose from ('balanced', 'uniform')"
            )
        total = sum(speeds.values())
        return {name: s / total for name, s in speeds.items()}

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, app: AppParams, policy: str = "balanced") -> HeteroPoint:
        """Tp, Ep, and EE for the workload across all groups."""
        shares = self.split_shares(app, policy)
        comm_ts = max(g.machine.ts for g in self.groups)
        comm_tw = max(g.machine.tw for g in self.groups)
        comm_total = app.m_messages * comm_ts + app.b_bytes * comm_tw

        group_tp: dict[str, float] = {}
        group_e: dict[str, float] = {}
        for g in self.groups:
            share = shares[g.name]
            wc = (app.wc + app.wco) * share
            wm = (app.wm + app.wmo) * share
            comm = comm_total * share
            busy = app.alpha * (
                wc * g.machine.tc + wm * g.machine.tm + comm
            )
            group_tp[g.name] = busy / g.count
            group_e[g.name] = (
                busy * g.machine.p_system_idle
                + wc * g.machine.tc * g.machine.delta_pc
                + wm * g.machine.tm * g.machine.delta_pm
            )

        tp = max(group_tp.values())
        # stragglers make the finished groups idle until the last one ends
        idle_tail = sum(
            (tp - group_tp[g.name]) * g.count * g.machine.p_system_idle
            for g in self.groups
        )
        ep = sum(group_e.values()) + idle_tail
        e1 = self.best_sequential_energy(app)
        return HeteroPoint(
            tp=tp,
            ep=ep,
            e1_best=e1,
            ee=min(e1 / ep, 1.0) if ep > 0 else 1.0,
            group_shares=shares,
            group_energies=group_e,
        )

    def best_sequential_energy(self, app: AppParams) -> float:
        """E1 on the most energy-efficient single processor (the EE anchor)."""
        seq = app.sequential()
        best = None
        for g in self.groups:
            t1 = seq.alpha * (seq.wc * g.machine.tc + seq.wm * g.machine.tm)
            e1 = (
                t1 * g.machine.p_system_idle
                + seq.wc * g.machine.tc * g.machine.delta_pc
                + seq.wm * g.machine.tm * g.machine.delta_pm
            )
            best = e1 if best is None else min(best, e1)
        assert best is not None
        return best

    def policy_gap(self, app: AppParams) -> float:
        """Energy penalty of uniform splitting vs. balanced: Ep_u/Ep_b − 1."""
        balanced = self.evaluate(app, policy="balanced")
        uniform = self.evaluate(app, policy="uniform")
        return uniform.ep / balanced.ep - 1.0

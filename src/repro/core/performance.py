"""Performance model — Equations (5), (6), (10), (17) of the paper.

Sequential::

    T  = Wc·tc + Wm·tm + T_IO                         (5)
    T1 = α · T                                        (6)

Parallel, processor ``i`` of ``p``::

    Ti = α · (Tcp_i + Tmp_i + Tnet_i + T_IO_i)        (10)

with the accumulated network time decomposed Hockney-style::

    Σ Tnet_i = M·ts + B·tw                            (17)

Under the homogeneous-workload assumption (§V-B-5) every processor gets an
equal share, so ``Σ Ti = α·((Wc+Wco)·tc + (Wm+Wmo)·tm + M·ts + B·tw)`` and
the wall-clock parallel time is ``Tp = Σ Ti / p``.
"""

from __future__ import annotations

from repro.core.parameters import AppParams, MachineParams
from repro.errors import ParameterError


def _check_p(p: int) -> None:
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")


def comm_time(machine: MachineParams, app: AppParams) -> float:
    """Accumulated network time across all processors (Eq. 17).

    ``Σ Tnet_i = M·ts + B·tw`` — message start-ups plus byte transmission.
    """
    return app.m_messages * machine.ts + app.b_bytes * machine.tw


def sequential_time(machine: MachineParams, app: AppParams) -> float:
    """T1 = α·(Wc·tc + Wm·tm + T_IO)  (Eqs. 5–6).

    Uses the workload's sequential view: parallel overheads do not exist
    when the application runs on one processor.
    """
    seq = app.sequential()
    theoretical = seq.wc * machine.tc + seq.wm * machine.tm + seq.t_io
    return seq.alpha * theoretical


def total_parallel_time(machine: MachineParams, app: AppParams, p: int) -> float:
    """Σ Ti — total busy time accumulated over all ``p`` processors.

    ``Σ Ti = α·((Wc+Wco)·tc + (Wm+Wmo)·tm + M·ts + B·tw + T_IO)``.
    This is the quantity multiplying ``P_system_idle`` in Eq. (15).
    """
    _check_p(p)
    if p == 1:
        return sequential_time(machine, app)
    theoretical = (
        app.total_instructions * machine.tc
        + app.total_mem_accesses * machine.tm
        + comm_time(machine, app)
        + app.t_io
    )
    return app.alpha * theoretical


def parallel_time(machine: MachineParams, app: AppParams, p: int) -> float:
    """Wall-clock time Tp of the parallel run (homogeneous split): Σ Ti / p."""
    _check_p(p)
    return total_parallel_time(machine, app, p) / p


def speedup(machine: MachineParams, app: AppParams, p: int) -> float:
    """Classic speedup S(p) = T1 / Tp."""
    _check_p(p)
    return sequential_time(machine, app) / parallel_time(machine, app, p)


def overlap_alpha(
    measured_time: float,
    compute_time: float,
    memory_time: float,
    network_time: float = 0.0,
    io_time: float = 0.0,
) -> float:
    """Derive the overlap factor α from measurements (§VI-F).

    ``α = T_measured / (T_compute + T_memory + T_network + T_IO)``.

    The denominator is the non-overlapped theoretical time; values below 1
    mean the architecture/compiler overlapped some component latencies.
    """
    denom = compute_time + memory_time + network_time + io_time
    if denom <= 0:
        raise ParameterError("theoretical time components must sum positive")
    if measured_time <= 0:
        raise ParameterError("measured time must be positive")
    alpha = measured_time / denom
    if alpha > 1.0 + 1e-9:
        raise ParameterError(
            f"measured time exceeds theoretical time (alpha={alpha:.3f} > 1); "
            "check the component measurements"
        )
    return min(alpha, 1.0)

"""The :class:`IsoEnergyModel` facade.

Binds a machine description (Θ1, re-derivable at any DVFS frequency) to a
workload model (Θ2 as a function of problem size ``n`` and parallelism
``p``) and evaluates every quantity the paper reports — times, energies,
EEF, EE, speedup — at arbitrary ``(p, f, n)`` points.  This is the object
the examples and benchmark harnesses drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.core.efficiency import dominant_overhead, eef, energy_efficiency
from repro.core.energy import parallel_energy, sequential_energy
from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import parallel_time, sequential_time, speedup
from repro.errors import ParameterError


class WorkloadModel(Protocol):
    """Anything that produces Θ2 for a concrete (n, p).

    The NPB workload models in :mod:`repro.npb.workloads` implement this;
    so do fitted models from :mod:`repro.validation.calibration`.
    """

    def params(self, n: float, p: int) -> AppParams: ...


@dataclass(frozen=True)
class ModelPoint:
    """Every model output at one (p, f, n) evaluation point."""

    p: int
    f: float
    n: float
    t1: float
    tp: float
    e1: float
    ep: float
    eef: float
    ee: float
    speedup: float
    perf_efficiency: float
    bottleneck: str

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "p": self.p,
            "f": self.f,
            "n": self.n,
            "t1": self.t1,
            "tp": self.tp,
            "e1": self.e1,
            "ep": self.ep,
            "eef": self.eef,
            "ee": self.ee,
            "speedup": self.speedup,
            "perf_efficiency": self.perf_efficiency,
            "bottleneck": self.bottleneck,
        }


class IsoEnergyModel:
    """Evaluate the iso-energy-efficiency model over (p, f, n).

    Parameters
    ----------
    machine:
        Machine-dependent vector Θ1 at its calibration frequency.
    workload:
        A :class:`WorkloadModel` producing Θ2 for any (n, p).
    name:
        Label used in reports (e.g. ``"FT.B on SystemG"``).
    """

    def __init__(
        self,
        machine: MachineParams,
        workload: WorkloadModel | Callable[[float, int], AppParams],
        name: str = "model",
    ) -> None:
        self._machine = machine
        if callable(workload) and not hasattr(workload, "params"):
            fn = workload

            class _Wrapped:
                def params(self, n: float, p: int) -> AppParams:
                    return fn(n, p)

            workload = _Wrapped()
        self._workload = workload
        self.name = name

    # -- accessors ---------------------------------------------------------------

    @property
    def machine(self) -> MachineParams:
        return self._machine

    def machine_at(self, f: float | None = None) -> MachineParams:
        """Θ1 re-derived at frequency ``f`` (Eq. 20 + tc = CPI/f)."""
        if f is None or abs(f - self._machine.f) < 0.5:
            return self._machine
        return self._machine.at_frequency(f)

    def app_params(self, n: float, p: int) -> AppParams:
        return self._workload.params(n, p)

    # -- point evaluation -----------------------------------------------------------

    def evaluate(self, *, n: float, p: int, f: float | None = None) -> ModelPoint:
        """All model outputs at one (p, f, n) point."""
        if p < 1:
            raise ParameterError(f"p must be >= 1, got {p}")
        mach = self.machine_at(f)
        app = self.app_params(n, p)
        t1 = sequential_time(mach, app)
        tp = parallel_time(mach, app, p)
        e1 = sequential_energy(mach, app)
        ep = parallel_energy(mach, app, p)
        point_eef = eef(mach, app, p)
        return ModelPoint(
            p=p,
            f=mach.f,
            n=n,
            t1=t1,
            tp=tp,
            e1=e1,
            ep=ep,
            eef=point_eef,
            ee=1.0 / (1.0 + point_eef),
            speedup=speedup(mach, app, p),
            perf_efficiency=t1 / (p * tp),
            bottleneck="none" if p == 1 else dominant_overhead(mach, app, p),
        )

    # -- common shortcuts --------------------------------------------------------------

    def ee(self, *, n: float, p: int, f: float | None = None) -> float:
        """Iso-energy-efficiency EE at a point (Eq. 21)."""
        mach = self.machine_at(f)
        return energy_efficiency(mach, self.app_params(n, p), p)

    def eef(self, *, n: float, p: int, f: float | None = None) -> float:
        """Energy efficiency factor EEF at a point (Eq. 19)."""
        mach = self.machine_at(f)
        return eef(mach, self.app_params(n, p), p)

    def predict_energy(self, *, n: float, p: int, f: float | None = None) -> float:
        """Predicted total system energy Ep (Eq. 15) — the Fig. 3/4 quantity."""
        mach = self.machine_at(f)
        return parallel_energy(mach, self.app_params(n, p), p)

    # -- sweeps ------------------------------------------------------------------------

    def sweep(
        self,
        *,
        n_values: Sequence[float] | None = None,
        p_values: Sequence[int] | None = None,
        f_values: Sequence[float] | None = None,
        n: float | None = None,
        p: int | None = None,
        f: float | None = None,
    ) -> list[ModelPoint]:
        """Evaluate the cartesian product of the supplied axes.

        Fixed values are given via ``n``/``p``/``f``; swept axes via the
        ``*_values`` sequences.  At least one axis must be fixed or swept
        for each of n and p (f defaults to the calibration frequency).
        """
        ns = list(n_values) if n_values is not None else [n]
        ps = list(p_values) if p_values is not None else [p]
        fs = list(f_values) if f_values is not None else [f]
        if any(v is None for v in ns):
            raise ParameterError("problem size n not specified for sweep")
        if any(v is None for v in ps):
            raise ParameterError("parallelism p not specified for sweep")
        points = []
        for nv in ns:
            for pv in ps:
                for fv in fs:
                    points.append(self.evaluate(n=nv, p=int(pv), f=fv))
        return points

"""The :class:`IsoEnergyModel` facade.

Binds a machine description (Θ1, re-derivable at any DVFS frequency) to a
workload model (Θ2 as a function of problem size ``n`` and parallelism
``p``) and evaluates every quantity the paper reports — times, energies,
EEF, EE, speedup — at arbitrary ``(p, f, n)`` points.  This is the object
the examples and benchmark harnesses drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.core.efficiency import dominant_overhead, eef, energy_efficiency
from repro.core.energy import parallel_energy, sequential_energy
from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import parallel_time, sequential_time, speedup
from repro.errors import ParameterError

#: Θ2 fields exposed by :meth:`IsoEnergyModel.theta2_table`, in table order.
THETA2_FIELDS = (
    "alpha",
    "wc",
    "wm",
    "wco",
    "wmo",
    "m_messages",
    "b_bytes",
    "t_io",
)


class WorkloadModel(Protocol):
    """Anything that produces Θ2 for a concrete (n, p).

    The NPB workload models in :mod:`repro.npb.workloads` implement this;
    so do fitted models from :mod:`repro.validation.calibration`.
    """

    def params(self, n: float, p: int) -> AppParams: ...


@dataclass(frozen=True)
class ModelPoint:
    """Every model output at one (p, f, n) evaluation point."""

    p: int
    f: float
    n: float
    t1: float
    tp: float
    e1: float
    ep: float
    eef: float
    ee: float
    speedup: float
    perf_efficiency: float
    bottleneck: str

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "p": self.p,
            "f": self.f,
            "n": self.n,
            "t1": self.t1,
            "tp": self.tp,
            "e1": self.e1,
            "ep": self.ep,
            "eef": self.eef,
            "ee": self.ee,
            "speedup": self.speedup,
            "perf_efficiency": self.perf_efficiency,
            "bottleneck": self.bottleneck,
        }


class IsoEnergyModel:
    """Evaluate the iso-energy-efficiency model over (p, f, n).

    Parameters
    ----------
    machine:
        Machine-dependent vector Θ1 at its calibration frequency.
    workload:
        A :class:`WorkloadModel` producing Θ2 for any (n, p).
    name:
        Label used in reports (e.g. ``"FT.B on SystemG"``).
    cache_theta2:
        Memoise ``workload.params(n, p)`` per model instance (default).
        Pass ``False`` for stateful or nondeterministic workloads — e.g.
        noise-injecting calibration models — where every evaluation must
        consult the workload afresh.
    """

    def __init__(
        self,
        machine: MachineParams,
        workload: WorkloadModel | Callable[[float, int], AppParams],
        name: str = "model",
        cache_theta2: bool = True,
    ) -> None:
        self._machine = machine
        if callable(workload) and not hasattr(workload, "params"):
            fn = workload

            class _Wrapped:
                def params(self, n: float, p: int) -> AppParams:
                    return fn(n, p)

            workload = _Wrapped()
        self._workload = workload
        self.name = name
        # Batch-evaluation hooks: grid sweeps hit the same Θ1(f) and Θ2(n, p)
        # vectors thousands of times, so both derivations are memoised per
        # model instance (the caches die with the model).  Θ2 caching is
        # only sound for workloads that are pure functions of (n, p) —
        # callers with stateful workloads opt out via cache_theta2=False.
        self._machine_at_cached = lru_cache(maxsize=256)(
            self._machine.at_frequency
        )
        self._theta2_cached = cache_theta2
        self._app_params_cached = (
            lru_cache(maxsize=16384)(self._workload.params)
            if cache_theta2
            else self._workload.params
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def machine(self) -> MachineParams:
        return self._machine

    def machine_at(self, f: float | None = None) -> MachineParams:
        """Θ1 re-derived at frequency ``f`` (Eq. 20 + tc = CPI/f), memoised."""
        if f is None or abs(f - self._machine.f) < 0.5:
            return self._machine
        return self._machine_at_cached(f)

    def app_params(self, n: float, p: int) -> AppParams:
        """Θ2 at (n, p), memoised per model instance."""
        return self._app_params_cached(n, p)

    def cache_info(self) -> dict[str, object]:
        """Hit/miss statistics of the Θ1/Θ2 memo layers (diagnostics).

        ``app_params`` is ``None`` when the model was built with
        ``cache_theta2=False``.
        """
        return {
            "machine_at": self._machine_at_cached.cache_info(),
            "app_params": self._app_params_cached.cache_info()
            if self._theta2_cached
            else None,
        }

    # -- point evaluation -----------------------------------------------------------

    def evaluate(self, *, n: float, p: int, f: float | None = None) -> ModelPoint:
        """All model outputs at one (p, f, n) point."""
        if p < 1:
            raise ParameterError(f"p must be >= 1, got {p}")
        mach = self.machine_at(f)
        app = self.app_params(n, p)
        t1 = sequential_time(mach, app)
        tp = parallel_time(mach, app, p)
        e1 = sequential_energy(mach, app)
        ep = parallel_energy(mach, app, p)
        point_eef = eef(mach, app, p)
        if tp <= 0.0:
            raise ParameterError(
                f"degenerate workload at (n={n}, p={p}): parallel time "
                f"Tp={tp} — efficiency ratios are undefined"
            )
        if point_eef <= -1.0:
            raise ParameterError(
                f"degenerate workload at (n={n}, p={p}): EEF={point_eef} "
                "implies non-positive parallel energy; EE=1/(1+EEF) is undefined"
            )
        return ModelPoint(
            p=p,
            f=mach.f,
            n=n,
            t1=t1,
            tp=tp,
            e1=e1,
            ep=ep,
            eef=point_eef,
            ee=1.0 / (1.0 + point_eef),
            speedup=speedup(mach, app, p),
            perf_efficiency=t1 / (p * tp),
            bottleneck="none" if p == 1 else dominant_overhead(mach, app, p),
        )

    # -- common shortcuts --------------------------------------------------------------

    def ee(self, *, n: float, p: int, f: float | None = None) -> float:
        """Iso-energy-efficiency EE at a point (Eq. 21)."""
        mach = self.machine_at(f)
        return energy_efficiency(mach, self.app_params(n, p), p)

    def eef(self, *, n: float, p: int, f: float | None = None) -> float:
        """Energy efficiency factor EEF at a point (Eq. 19)."""
        mach = self.machine_at(f)
        return eef(mach, self.app_params(n, p), p)

    def predict_energy(self, *, n: float, p: int, f: float | None = None) -> float:
        """Predicted total system energy Ep (Eq. 15) — the Fig. 3/4 quantity."""
        mach = self.machine_at(f)
        return parallel_energy(mach, self.app_params(n, p), p)

    # -- sweeps ------------------------------------------------------------------------

    def sweep(
        self,
        *,
        n_values: Sequence[float] | None = None,
        p_values: Sequence[int] | None = None,
        f_values: Sequence[float] | None = None,
        n: float | None = None,
        p: int | None = None,
        f: float | None = None,
    ) -> list[ModelPoint]:
        """Evaluate the cartesian product of the supplied axes.

        Fixed values are given via ``n``/``p``/``f``; swept axes via the
        ``*_values`` sequences.  At least one axis must be fixed or swept
        for each of n and p (f defaults to the calibration frequency).
        """
        ns = list(n_values) if n_values is not None else [n]
        ps = list(p_values) if p_values is not None else [p]
        fs = list(f_values) if f_values is not None else [f]
        if any(v is None for v in ns):
            raise ParameterError("problem size n not specified for sweep")
        if any(v is None for v in ps):
            raise ParameterError("parallelism p not specified for sweep")
        points = []
        for nv in ns:
            for pv in ps:
                for fv in fs:
                    points.append(self.evaluate(n=nv, p=int(pv), f=fv))
        return points

    # -- batch hooks -------------------------------------------------------------------

    def theta2_table(
        self,
        n_values: Sequence[float],
        p_values: Sequence[int],
    ) -> dict[str, np.ndarray]:
        """Θ2 over the (n × p) plane as dense arrays, one per field.

        The hook the vectorized grid evaluator in
        :mod:`repro.optimize.grid` builds on: Θ2 does not depend on ``f``,
        so a full (p × f × n) sweep needs only ``len(n)·len(p)`` workload
        evaluations — returned here as arrays of shape
        ``(len(n_values), len(p_values))`` keyed by :data:`THETA2_FIELDS`.
        """
        if not len(n_values) or not len(p_values):
            raise ParameterError("theta2_table needs at least one n and one p")
        table = {
            field: np.empty((len(n_values), len(p_values)))
            for field in THETA2_FIELDS
        }
        for i, nv in enumerate(n_values):
            for j, pv in enumerate(p_values):
                if pv < 1:
                    raise ParameterError(f"p must be >= 1, got {pv}")
                app = self.app_params(float(nv), int(pv))
                for field in THETA2_FIELDS:
                    table[field][i, j] = getattr(app, field)
        return table

    def theta2_pairs(
        self,
        n_values: Sequence[float] | np.ndarray,
        p_values: Sequence[int] | np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Θ2 at element-wise (n, p) pairs as 1-D arrays.

        The batch-bisection hook: contour solvers refine a *different* n
        per p each iteration, so the (n × p) outer product of
        :meth:`theta2_table` would waste a quadratic factor.  Workloads
        exposing a vectorized ``params_batch(n, p)`` (the NPB headline
        trio) are evaluated in one NumPy pass; anything else falls back to
        per-pair scalar :meth:`app_params` calls.
        """
        n = np.asarray(n_values, dtype=float)
        p = np.asarray(p_values, dtype=np.int64)
        if n.shape != p.shape or n.ndim != 1:
            raise ParameterError(
                f"theta2_pairs needs matching 1-D n/p vectors, got shapes "
                f"{n.shape} and {p.shape}"
            )
        if n.size == 0:
            raise ParameterError("theta2_pairs needs at least one pair")
        if np.any(p < 1):
            raise ParameterError(f"p must be >= 1, got {int(p.min())}")
        batch = getattr(self._workload, "params_batch", None)
        if batch is not None:
            return batch(n, p)
        pairs = {field: np.empty(n.shape) for field in THETA2_FIELDS}
        for k in range(n.size):
            app = self.app_params(float(n[k]), int(p[k]))
            for field in THETA2_FIELDS:
                pairs[field][k] = getattr(app, field)
        return pairs

"""Frequency-dependence helpers — Equation (20) and Table 1's ``tc = CPI/f``.

The paper's machine-dependent vector is explicitly a function of frequency::

    Θ1 = f(f, bandwidth)

with two laws: instruction time shrinks as ``1/f`` while dynamic CPU power
grows as ``f^γ`` (γ ≥ 1, from Kim et al. on leakage/dynamic power; γ=2 on
SystemG).  These helpers expose the laws standalone — useful for ablation
benches that sweep γ — while :meth:`MachineParams.at_frequency` applies them
to whole vectors.
"""

from __future__ import annotations

from repro.errors import ParameterError


def tc_from_cpi(cpi: float, f: float) -> float:
    """Average instruction time ``tc = CPI / f`` (Table 1)."""
    if cpi <= 0:
        raise ParameterError("cpi must be positive")
    if f <= 0:
        raise ParameterError("frequency must be positive")
    return cpi / f


def dynamic_power(delta_p_ref: float, f: float, f_ref: float, gamma: float) -> float:
    """Dynamic power law ``ΔP(f) = ΔP_ref · (f/f_ref)^γ`` (Eq. 20)."""
    if delta_p_ref < 0:
        raise ParameterError("delta_p_ref must be >= 0")
    if f <= 0 or f_ref <= 0:
        raise ParameterError("frequencies must be positive")
    if gamma < 1.0:
        raise ParameterError(f"gamma must be >= 1 (Eq. 20), got {gamma}")
    return delta_p_ref * (f / f_ref) ** gamma


def energy_per_instruction(
    cpi: float, f: float, delta_p_ref: float, f_ref: float, gamma: float
) -> float:
    """Active CPU energy of one instruction: ``tc(f) · ΔP(f)``.

    Scales as ``f^(γ−1)``: for γ>1 higher frequency costs more energy per
    instruction even though it finishes sooner — the race-to-idle trade-off
    the CG case study exercises (§V-B-7).
    """
    return tc_from_cpi(cpi, f) * dynamic_power(delta_p_ref, f, f_ref, gamma)


def race_to_idle_break_even_gamma() -> float:
    """γ at which active CPU energy per instruction is frequency-neutral.

    ``tc·ΔPc ∝ f^(γ−1)``, so γ=1 is the break-even: below it faster clocks
    save active energy, above it they cost active energy (but still save
    idle-power·time energy — which is why CG prefers high f).
    """
    return 1.0

"""Power-constrained configuration — the paper's title, made executable.

The motivating constraint (§I): an exaflop machine gets 1000× the
performance of a petaflop machine on only 10× the power.  Given a
system-level power budget, these tools search the (p, f) space for
configurations that respect the cap and optimize what the operator
cares about: throughput under the cap, energy under a deadline, or
energy efficiency outright.

Average power of a configuration is derived from the model's own
quantities — ``P_avg(p, f) = Ep / Tp`` — so every decision inherits the
model's validated energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import IsoEnergyModel, ModelPoint
from repro.errors import ParameterError


@dataclass(frozen=True)
class CappedConfig:
    """One feasible configuration under a power cap."""

    p: int
    f: float
    avg_power: float
    tp: float
    ep: float
    ee: float

    @classmethod
    def from_point(cls, pt: ModelPoint) -> "CappedConfig":
        return cls(
            p=pt.p,
            f=pt.f,
            avg_power=pt.ep / pt.tp,
            tp=pt.tp,
            ep=pt.ep,
            ee=pt.ee,
        )


def average_power(model: IsoEnergyModel, *, n: float, p: int, f: float | None = None) -> float:
    """System-average power draw of a run: Ep / Tp (watts)."""
    pt = model.evaluate(n=n, p=p, f=f)
    return pt.ep / pt.tp


def feasible_configs(
    model: IsoEnergyModel,
    *,
    n: float,
    power_cap: float,
    p_values: Sequence[int],
    frequencies: Sequence[float],
) -> list[CappedConfig]:
    """All (p, f) whose average power stays within ``power_cap`` watts."""
    if power_cap <= 0:
        raise ParameterError("power_cap must be positive")
    if not p_values or not frequencies:
        raise ParameterError("need at least one p and one frequency")
    out = []
    for p in p_values:
        for f in frequencies:
            pt = model.evaluate(n=n, p=p, f=f)
            if pt.ep / pt.tp <= power_cap:
                out.append(CappedConfig.from_point(pt))
    return out


def fastest_under_cap(
    model: IsoEnergyModel,
    *,
    n: float,
    power_cap: float,
    p_values: Sequence[int],
    frequencies: Sequence[float],
) -> CappedConfig:
    """The minimum-runtime configuration whose power fits the cap.

    The classic power-constrained question: the budget is fixed; how
    fast can this workload legally run?

    Raises
    ------
    ParameterError
        If no configuration fits (cap below even the smallest config).
    """
    configs = feasible_configs(
        model, n=n, power_cap=power_cap, p_values=p_values, frequencies=frequencies
    )
    if not configs:
        raise ParameterError(
            f"no (p, f) configuration fits under {power_cap:.0f} W; "
            "smallest candidate draws more than the cap"
        )
    return min(configs, key=lambda c: c.tp)


def greenest_under_deadline(
    model: IsoEnergyModel,
    *,
    n: float,
    deadline: float,
    p_values: Sequence[int],
    frequencies: Sequence[float],
) -> CappedConfig:
    """The minimum-energy configuration meeting a runtime deadline.

    The dual problem: the SLA fixes Tp; minimize joules subject to it.
    """
    if deadline <= 0:
        raise ParameterError("deadline must be positive")
    candidates = []
    for p in p_values:
        for f in frequencies:
            pt = model.evaluate(n=n, p=p, f=f)
            if pt.tp <= deadline:
                candidates.append(CappedConfig.from_point(pt))
    if not candidates:
        raise ParameterError(
            f"no (p, f) configuration meets the {deadline:g} s deadline; "
            "add processors or raise the deadline"
        )
    return min(candidates, key=lambda c: c.ep)


def cap_for_scaling(
    model: IsoEnergyModel,
    *,
    n: float,
    p_from: int,
    p_to: int,
    f: float | None = None,
) -> float:
    """Power multiplier needed to scale from ``p_from`` to ``p_to``.

    The DOE-style question inverted: scaling this workload from p_from
    to p_to processors multiplies average power draw by how much?
    (Speedup per watt is the companion output of :func:`scaling_report`.)
    """
    if p_from < 1 or p_to < p_from:
        raise ParameterError("need 1 <= p_from <= p_to")
    lo = average_power(model, n=n, p=p_from, f=f)
    hi = average_power(model, n=n, p=p_to, f=f)
    return hi / lo


def scaling_report(
    model: IsoEnergyModel,
    *,
    n: float,
    p_values: Sequence[int],
    f: float | None = None,
) -> list[tuple[int, float, float, float]]:
    """(p, speedup, power-multiplier, speedup-per-power) rows.

    ``speedup_per_power`` is the exascale figure of merit: a perfectly
    iso-energy-efficient system holds it at 1.0 while scaling; the DOE
    target in the paper's introduction amounts to 100× (1000× perf on
    10× power).
    """
    if not p_values:
        raise ParameterError("no p values supplied")
    base = model.evaluate(n=n, p=p_values[0], f=f)
    base_power = base.ep / base.tp
    rows = []
    for p in p_values:
        pt = model.evaluate(n=n, p=p, f=f)
        speedup = base.tp / pt.tp
        power_mult = (pt.ep / pt.tp) / base_power
        rows.append((p, speedup, power_mult, speedup / power_mult))
    return rows

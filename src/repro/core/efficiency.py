"""Energy Efficiency Factor and iso-energy-efficiency — Eqs. (19) and (21).

::

    EEF = ΔE / E1
        =  α·(Wco·tc + Wmo·tm + M·ts + B·tw)·P_sys_idle
           + Wco·tc·ΔPc + Wmo·tm·ΔPm
          ─────────────────────────────────────────────
           α·(Wc·tc + Wm·tm)·P_sys_idle
           + Wc·tc·ΔPc + Wm·tm·ΔPm

    EE  = 1 / (1 + EEF)  =  E1 / Ep

A large EEF means the parallel run burns much more energy than the
sequential one for the same work → low energy efficiency.  EE ∈ (0, 1],
with EE = 1 the iso-energy-efficient ideal (EP comes close; FT and CG
decay as p grows).
"""

from __future__ import annotations

from repro.core.energy import delta_energy, sequential_energy
from repro.core.parameters import AppParams, MachineParams
from repro.errors import ParameterError


def eef(machine: MachineParams, app: AppParams, p: int) -> float:
    """Energy Efficiency Factor (Eq. 19): parallel energy overhead over E1."""
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    e1 = sequential_energy(machine, app)
    if e1 <= 0:
        raise ParameterError("sequential energy must be positive")
    return delta_energy(machine, app, p) / e1


def energy_efficiency(machine: MachineParams, app: AppParams, p: int) -> float:
    """Iso-energy-efficiency EE = 1/(1 + EEF) (Eq. 21)."""
    return 1.0 / (1.0 + eef(machine, app, p))


def eef_terms(
    machine: MachineParams, app: AppParams, p: int
) -> dict[str, float]:
    """The additive pieces of Eq. (19)'s numerator, for root-cause analysis.

    The paper's headline use case is identifying *which* overhead dominates
    the energy-efficiency loss; this returns the numerator split into its
    four sources, plus the denominator, all in joules.
    """
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    psys = machine.p_system_idle
    a = app.alpha
    num_compute = app.wco * machine.tc * (a * psys + machine.delta_pc)
    num_memory = app.wmo * machine.tm * (a * psys + machine.delta_pm)
    num_startup = a * app.m_messages * machine.ts * psys
    num_transmit = a * app.b_bytes * machine.tw * psys
    denom = sequential_energy(machine, app)
    return {
        "compute_overhead": num_compute,
        "memory_overhead": num_memory,
        "message_startup": num_startup,
        "byte_transmission": num_transmit,
        "sequential_energy": denom,
    }


def dominant_overhead(machine: MachineParams, app: AppParams, p: int) -> str:
    """Name of the largest EEF numerator term — the efficiency bottleneck."""
    terms = eef_terms(machine, app, p)
    terms.pop("sequential_energy")
    return max(terms, key=terms.__getitem__)

"""Related-work models the paper positions itself against (§II).

* **Performance isoefficiency** (Grama, Gupta & Kumar): efficiency
  ``E = T1/(p·Tp) = 1/(1 + To/W·tc)`` with total overhead
  ``To = p·Tp − T1``; the isoefficiency function asks how W must grow with
  p to hold E constant.  Our Figure-2 curves plot this next to EE.
* **Power-aware speedup** (Ge & Cameron, IPDPS'07): Amdahl-style speedup
  generalized with per-phase frequency scaling.
* **ERE** (Jiang, Pisharath & Choudhary): a high-level energy/performance
  ratio that flags tradeoffs without attributing causes — implemented to
  let benches contrast "metric says inefficient" vs. the EEF term
  breakdown that says *why*.
"""

from __future__ import annotations

from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import parallel_time, sequential_time
from repro.errors import ParameterError


def performance_efficiency(
    machine: MachineParams, app: AppParams, p: int
) -> float:
    """Grama's parallel efficiency E = T1 / (p · Tp) ∈ (0, 1]."""
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    t1 = sequential_time(machine, app)
    tp = parallel_time(machine, app, p)
    return t1 / (p * tp)


def grama_isoefficiency_overhead(
    machine: MachineParams, app: AppParams, p: int
) -> float:
    """Total overhead To(W, p) = p·Tp − T1 (seconds).

    The isoefficiency function is ``W = K·To(W, p)`` for constant
    ``K = E/(1−E)``; reporting To directly lets callers build that curve
    for any target efficiency.
    """
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    t1 = sequential_time(machine, app)
    tp = parallel_time(machine, app, p)
    return p * tp - t1


def isoefficiency_constant(target_efficiency: float) -> float:
    """K = E/(1−E): the multiplier in Grama's W = K·To(W,p) relation."""
    if not (0.0 < target_efficiency < 1.0):
        raise ParameterError(
            f"target efficiency must be in (0, 1), got {target_efficiency}"
        )
    return target_efficiency / (1.0 - target_efficiency)


def power_aware_speedup(
    machine: MachineParams,
    app: AppParams,
    p: int,
    f: float,
) -> float:
    """Ge & Cameron's power-aware speedup.

    Speedup of the p-processor run at frequency ``f`` relative to the
    sequential run at the machine's reference frequency::

        S(p, f) = T1(f_ref) / Tp(f)

    Captures the entangled effect the paper highlights: lowering f slows
    compute-bound phases (tc grows as 1/f) but leaves memory- and
    network-bound phases untouched.
    """
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    t1_ref = sequential_time(machine, app)
    tp_f = parallel_time(machine.at_frequency(f), app, p)
    return t1_ref / tp_f


def ere_metric(
    machine: MachineParams, app: AppParams, p: int
) -> float:
    """Energy Resource Efficiency: throughput gained per unit energy spent.

    Following Jiang et al.'s framing (performance variation over energy
    variation), we define ERE as relative-performance / relative-energy::

        ERE = (T1/Tp) / (Ep/E1)  = speedup / energy-blowup

    ERE = p would be ideal linear scaling with no energy overhead; values
    well below the speedup indicate the energy cost of scaling.  Unlike
    EEF, ERE carries no attribution — that contrast is the point (§II-D).
    """
    from repro.core.energy import parallel_energy, sequential_energy

    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    t1 = sequential_time(machine, app)
    tp = parallel_time(machine, app, p)
    e1 = sequential_energy(machine, app)
    ep = parallel_energy(machine, app, p)
    return (t1 / tp) / (ep / e1)

"""Iso-energy-efficiency scaling decisions (§V-B-5/6/7 of the paper).

The point of the model is *decision-making*: given that EE decays with p,
how must the problem size n grow to hold EE at a target (the iso-contour —
the energy analog of Grama's isoefficiency function), which DVFS frequency
maximizes EE, and how far can p scale before EE drops below a bound.
"""

from __future__ import annotations

from typing import Sequence

from scipy.optimize import brentq

from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError


def iso_workload(
    model: IsoEnergyModel,
    *,
    p: int,
    target_ee: float,
    n_lo: float,
    n_hi: float,
    f: float | None = None,
    tol: float = 1e-6,
) -> float:
    """Problem size n at which EE(n, p) == target_ee (the iso-contour).

    Searches ``[n_lo, n_hi]`` with Brent's method.  Requires EE to bracket
    the target across the interval — for FT/CG-like workloads EE rises with
    n, so ``EE(n_lo) < target < EE(n_hi)`` is the usual bracketing.

    Raises
    ------
    ParameterError
        If the target is outside (0, 1] or not bracketed (e.g. EP, whose EE
        is flat in n — the paper's point that scaling n cannot rescue EP).
    """
    if not (0.0 < target_ee <= 1.0):
        raise ParameterError(f"target_ee must be in (0, 1], got {target_ee}")
    if n_lo <= 0 or n_hi <= n_lo:
        raise ParameterError("need 0 < n_lo < n_hi")

    def gap(n: float) -> float:
        return model.ee(n=n, p=p, f=f) - target_ee

    g_lo, g_hi = gap(n_lo), gap(n_hi)
    if g_lo * g_hi > 0:
        raise ParameterError(
            f"EE does not cross {target_ee} on [{n_lo:g}, {n_hi:g}] "
            f"(EE range [{min(g_lo, g_hi) + target_ee:.4f}, "
            f"{max(g_lo, g_hi) + target_ee:.4f}]); widen the interval or "
            "accept that n cannot restore this EE (cf. EP, §V-B-6)"
        )
    return float(brentq(gap, n_lo, n_hi, xtol=tol * n_lo, rtol=tol))


def iso_contour(
    model: IsoEnergyModel,
    *,
    p_values: Sequence[int],
    target_ee: float,
    n_lo: float,
    n_hi: float,
    f: float | None = None,
) -> list[tuple[int, float]]:
    """The iso-energy-efficiency curve n(p): one iso_workload solve per p."""
    return [
        (p, iso_workload(model, p=p, target_ee=target_ee, n_lo=n_lo, n_hi=n_hi, f=f))
        for p in p_values
    ]


def frequency_for_best_ee(
    model: IsoEnergyModel,
    *,
    n: float,
    p: int,
    frequencies: Sequence[float],
) -> tuple[float, float]:
    """The DVFS frequency maximizing EE at (n, p): returns (f, EE(f)).

    Implements the §V-B-7 guidance: CG improves at high f, FT/EP barely move
    — the caller learns both which f to pick and how much it matters.
    """
    if not frequencies:
        raise ParameterError("no frequencies supplied")
    best_f, best_ee = None, -1.0
    for f in frequencies:
        ee = model.ee(n=n, p=p, f=f)
        if ee > best_ee:
            best_f, best_ee = f, ee
    assert best_f is not None
    return best_f, best_ee


def ee_frequency_sensitivity(
    model: IsoEnergyModel,
    *,
    n: float,
    p: int,
    frequencies: Sequence[float],
) -> float:
    """Spread of EE across the frequency range: max − min.

    Near-zero for FT and EP (frequency "has little impact", §V-B-1/2);
    clearly positive for CG (§V-B-3).
    """
    if not frequencies:
        raise ParameterError("no frequencies supplied")
    values = [model.ee(n=n, p=p, f=f) for f in frequencies]
    return max(values) - min(values)


def max_parallelism(
    model: IsoEnergyModel,
    *,
    n: float,
    min_ee: float,
    p_limit: int = 4096,
    f: float | None = None,
) -> int:
    """Largest power-of-two p with EE(n, p) >= min_ee.

    The "scalability decision-making" use from the abstract: how far can
    this workload scale before energy efficiency drops below a bound.
    Returns 1 if even p=2 violates the bound.
    """
    if not (0.0 < min_ee <= 1.0):
        raise ParameterError(f"min_ee must be in (0, 1], got {min_ee}")
    if p_limit < 1:
        raise ParameterError("p_limit must be >= 1")
    best = 1
    p = 2
    while p <= p_limit:
        if model.ee(n=n, p=p, f=f) >= min_ee:
            best = p
            p *= 2
        else:
            break
    return best

"""I/O energy components — the model term the paper defers.

Section VI-B: "users can always replace T_IO·ΔP_IO with any
combinations of specific I/O components according to their parallel
applications", while the studied benchmarks exercise none.  This module
supplies those combinations: a composite I/O vector with per-component
(time, ΔP) contributions, a BTIO-style checkpointing workload that
exercises it end to end, and helpers folding the composite back into
the flat ``(t_io, delta_pio)`` the core equations consume.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.core.parameters import AppParams, MachineParams
from repro.errors import ParameterError


@dataclass(frozen=True)
class IoComponent:
    """One I/O device class: disks, SSDs, a parallel filesystem client…"""

    name: str
    delta_p: float  # extra watts while active
    bandwidth: float  # bytes/second sustained
    access_latency: float  # seconds per operation

    def __post_init__(self) -> None:
        if self.delta_p < 0:
            raise ParameterError(f"{self.name}: delta_p must be >= 0")
        if self.bandwidth <= 0:
            raise ParameterError(f"{self.name}: bandwidth must be positive")
        if self.access_latency < 0:
            raise ParameterError(f"{self.name}: latency must be >= 0")

    def time_for(self, nbytes: float, operations: int = 1) -> float:
        """Seconds to move ``nbytes`` in ``operations`` requests."""
        if nbytes < 0 or operations < 0:
            raise ParameterError("I/O amounts must be non-negative")
        return operations * self.access_latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class IoPattern:
    """What an application asks of one component."""

    component: IoComponent
    bytes_total: float
    operations: int

    @property
    def time(self) -> float:
        return self.component.time_for(self.bytes_total, self.operations)

    @property
    def energy(self) -> float:
        """Active I/O energy: time × ΔP (idle power is in P_system_idle)."""
        return self.time * self.component.delta_p


def composite_io(patterns: Sequence[IoPattern]) -> tuple[float, float]:
    """Fold component patterns into the model's flat (T_IO, ΔP_IO).

    ``T_IO`` is the total component-busy time; ``ΔP_IO`` the
    time-weighted average active power — chosen so that
    ``T_IO·ΔP_IO`` equals the exact summed component energy.
    """
    if not patterns:
        return 0.0, 0.0
    t_total = sum(p.time for p in patterns)
    e_total = sum(p.energy for p in patterns)
    if t_total == 0:
        return 0.0, 0.0
    return t_total, e_total / t_total


def with_io(app: AppParams, patterns: Sequence[IoPattern]) -> AppParams:
    """A copy of Θ2 with the composite I/O time attached."""
    t_io, _ = composite_io(patterns)
    return dataclasses.replace(app, t_io=t_io)


def machine_with_io(machine: MachineParams, patterns: Sequence[IoPattern]) -> MachineParams:
    """A copy of Θ1 whose ΔP_IO matches the composite pattern."""
    _, delta_pio = composite_io(patterns)
    return dataclasses.replace(machine, delta_pio=delta_pio)


# ---------------------------------------------------------------------------
# Stock components (2011-era hardware, matching the testbed presets)
# ---------------------------------------------------------------------------


def sata_disk() -> IoComponent:
    """A 7200 rpm SATA disk: ~8 ms seeks, ~90 MB/s streams, ~6 W active."""
    return IoComponent(
        name="sata-disk", delta_p=6.0, bandwidth=90e6, access_latency=8e-3
    )


def nfs_client() -> IoComponent:
    """An NFS-over-GigE client: network-bound writes, NIC-side power."""
    return IoComponent(
        name="nfs-client", delta_p=3.0, bandwidth=70e6, access_latency=1.5e-3
    )


def checkpoint_pattern(
    component: IoComponent,
    *,
    data_bytes: float,
    intervals: int,
) -> IoPattern:
    """BTIO-style periodic checkpointing: the whole state, every interval."""
    if intervals < 1:
        raise ParameterError("need at least one checkpoint interval")
    if data_bytes < 0:
        raise ParameterError("checkpoint size must be >= 0")
    return IoPattern(
        component=component,
        bytes_total=data_bytes * intervals,
        operations=intervals,
    )

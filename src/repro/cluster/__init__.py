"""Power-aware cluster hardware model.

This subpackage is the substrate standing in for the paper's two physical
testbeds (SystemG and Dori).  It describes CPUs with DVFS P-states, a
memory hierarchy, network interconnects, per-component power states, and
Dominion-PX-style measured power outlets, assembled into nodes and
clusters.  Everything downstream (the MPI simulator, PowerPack profiler,
microbenchmarks and the iso-energy-efficiency model itself) consumes
hardware characteristics exclusively through these classes.
"""

from repro.cluster.cpu import Cpu, DvfsState, PowerLaw
from repro.cluster.memory import CacheLevel, MemoryHierarchy
from repro.cluster.network import Interconnect, ethernet_1g, infiniband_qdr
from repro.cluster.power import ComponentPower, NodePowerModel
from repro.cluster.pdu import PowerDistributionUnit, OutletSample
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster
from repro.cluster.presets import dori, system_g

__all__ = [
    "Cpu",
    "DvfsState",
    "PowerLaw",
    "CacheLevel",
    "MemoryHierarchy",
    "Interconnect",
    "ethernet_1g",
    "infiniband_qdr",
    "ComponentPower",
    "NodePowerModel",
    "PowerDistributionUnit",
    "OutletSample",
    "Node",
    "Cluster",
    "dori",
    "system_g",
]

"""A compute node: sockets × cores, memory hierarchy, NIC, power model."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.cpu import Cpu
from repro.cluster.memory import MemoryHierarchy
from repro.cluster.network import Interconnect
from repro.cluster.power import ComponentPower, NodePowerModel
from repro.errors import ConfigurationError


@dataclass
class Node:
    """One node of a power-aware cluster.

    Frequency is set node-wide (both of the paper's testbeds scale all
    sockets of a node together).  The node's power model tracks the CPU
    component through DVFS changes via Eq. (20).
    """

    name: str
    cpu: Cpu
    sockets: int
    memory: MemoryHierarchy
    nic: Interconnect
    power: NodePowerModel

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigurationError("a node needs at least one socket")

    # -- topology ---------------------------------------------------------------

    @property
    def cores(self) -> int:
        """Total cores on the node."""
        return self.sockets * self.cpu.cores

    # -- DVFS ---------------------------------------------------------------------

    @property
    def frequency(self) -> float:
        return self.cpu.frequency

    def set_frequency(self, f: float) -> None:
        """Change the node's P-state; rescales the CPU power component."""
        f_old = self.cpu.frequency
        self.cpu.set_frequency(f)
        self.power = self.power.scaled_to_frequency(
            f=f,
            f_ref=f_old,
            gamma=self.cpu.power.gamma,
            gamma_idle=self.cpu.power.gamma_idle,
        )

    def at_frequency(self, f: float) -> "Node":
        """A copy of this node pinned to frequency ``f`` (original untouched)."""
        cpu_copy = replace(self.cpu)
        clone = Node(
            name=self.name,
            cpu=cpu_copy,
            sockets=self.sockets,
            memory=self.memory,
            nic=self.nic,
            power=self.power,
        )
        clone.set_frequency(f)
        return clone

    # -- derived machine parameters --------------------------------------------------

    def tc(self) -> float:
        """Seconds per instruction at the current frequency (paper ``tc``)."""
        return self.cpu.tc()

    def tm(self) -> float:
        """Main-memory latency (paper ``tm``)."""
        return self.memory.tm

    def ts(self) -> float:
        """Message start-up time (paper ``ts``)."""
        return self.nic.ts

    def tw(self) -> float:
        """Per-byte transmit time (paper ``tw``)."""
        return self.nic.tw

    @property
    def p_system_idle(self) -> float:
        return self.power.p_system_idle

    @property
    def delta_pc(self) -> float:
        return self.power.cpu.delta_p

    @property
    def delta_pm(self) -> float:
        return self.power.memory.delta_p

    def cpu_component_at(self, f: float) -> ComponentPower:
        """CPU power component this node would have at frequency ``f``."""
        scaled = self.power.scaled_to_frequency(
            f=f,
            f_ref=self.cpu.frequency,
            gamma=self.cpu.power.gamma,
            gamma_idle=self.cpu.power.gamma_idle,
        )
        return scaled.cpu

"""Memory-hierarchy model: cache levels over DRAM.

The iso-energy-efficiency model needs a single machine parameter ``tm``
(average main-memory access latency, Table 1) which the paper measures with
LMbench's ``lat_mem_rd``.  To make that measurement *derivable* rather than
assumed, the hierarchy here exposes latency as a function of working-set
size — a pointer chase over a working set that fits in L1 sees L1 latency, a
chase over a set larger than the last-level cache sees DRAM latency.  The
``lat_mem_rd`` analog in :mod:`repro.microbench.lmbench` walks this curve and
detects the plateaus exactly the way the real tool does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheLevel:
    """One level of cache.

    Parameters
    ----------
    name:
        Level label, e.g. ``"L1"``.
    capacity:
        Capacity in bytes.
    latency:
        Load-to-use latency in seconds for a hit at this level.
    line_size:
        Cache line size in bytes (used by the miss model).
    """

    name: str
    capacity: int
    latency: float
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.latency <= 0:
            raise ConfigurationError(f"{self.name}: latency must be positive")
        if self.line_size <= 0:
            raise ConfigurationError(f"{self.name}: line size must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """Cache levels (fastest first) backed by DRAM.

    Parameters
    ----------
    levels:
        Cache levels ordered ascending by capacity (L1, L2, ...).
    dram_latency:
        Main-memory access latency in seconds — the paper's ``tm``.
    dram_capacity:
        Installed DRAM in bytes.
    """

    levels: tuple[CacheLevel, ...]
    dram_latency: float
    dram_capacity: int

    def __post_init__(self) -> None:
        if self.dram_latency <= 0:
            raise ConfigurationError("dram_latency must be positive")
        if self.dram_capacity <= 0:
            raise ConfigurationError("dram_capacity must be positive")
        caps = [lvl.capacity for lvl in self.levels]
        if sorted(caps) != caps:
            raise ConfigurationError("cache levels must grow in capacity")
        lats = [lvl.latency for lvl in self.levels]
        if sorted(lats) != lats:
            raise ConfigurationError("cache latency must grow with level")
        if self.levels and self.levels[-1].latency >= self.dram_latency:
            raise ConfigurationError(
                "last-level cache latency must be below DRAM latency"
            )

    @property
    def tm(self) -> float:
        """The paper's ``tm``: average main-memory access latency (s)."""
        return self.dram_latency

    def latency_for_working_set(self, working_set: int) -> float:
        """Latency (s) of a dependent load whose working set is ``working_set`` bytes.

        This is the curve ``lat_mem_rd`` traces: the latency of the smallest
        level that still holds the working set, or DRAM if none does.
        """
        if working_set <= 0:
            raise ConfigurationError("working set must be positive")
        for lvl in self.levels:
            if working_set <= lvl.capacity:
                return lvl.latency
        return self.dram_latency

    def miss_chain_latency(self, working_set: int) -> float:
        """Latency including traversal of every missed level.

        A DRAM access on real hardware pays the lookup of each cache level it
        misses.  ``latency_for_working_set`` reports the *service* level only;
        this variant accumulates the tag-check cost of the missed levels,
        which is what a calibrated ``tm`` actually absorbs.
        """
        total = 0.0
        for lvl in self.levels:
            if working_set <= lvl.capacity:
                return total + lvl.latency
            total += 0.1 * lvl.latency  # tag check on the way down
        return total + self.dram_latency

    def effective_latency(self, hit_fractions: dict[str, float]) -> float:
        """Weighted latency given per-level hit fractions.

        ``hit_fractions`` maps level names (plus ``"DRAM"``) to the fraction
        of accesses served there; fractions must sum to 1.
        """
        total_frac = sum(hit_fractions.values())
        if abs(total_frac - 1.0) > 1e-9:
            raise ConfigurationError(
                f"hit fractions must sum to 1, got {total_frac}"
            )
        by_name = {lvl.name: lvl.latency for lvl in self.levels}
        by_name["DRAM"] = self.dram_latency
        acc = 0.0
        for name, frac in hit_fractions.items():
            if frac < 0:
                raise ConfigurationError(f"negative hit fraction for {name}")
            if name not in by_name:
                raise ConfigurationError(f"unknown level {name!r}")
            acc += frac * by_name[name]
        return acc

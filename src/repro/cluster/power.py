"""Per-component power states and the node power model.

Equation (8) of the paper splits each component's energy into a running
and an idle state::

    E = (Pc·Tc + Pc_idle·Tc_idle) + (Pm·Tm + Pm_idle·Tm_idle)
        + (Pio·Tio + Pio_idle·Tio_idle) + Pothers·T

:class:`ComponentPower` carries one component's two power levels;
:class:`NodePowerModel` aggregates the CPU, memory, NIC/IO, and "others"
(motherboard, fans, PSU losses) into the node-level quantities the model
needs — in particular ``P_system_idle``, the sum of every component's idle
draw, which multiplies total runtime in Eq. (9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComponentPower:
    """Idle/running power levels for one node component.

    ``delta_p = p_running − p_idle`` is the paper's ΔP for this component.
    """

    name: str
    p_idle: float
    p_running: float

    def __post_init__(self) -> None:
        if self.p_idle < 0:
            raise ConfigurationError(f"{self.name}: idle power must be >= 0")
        if self.p_running < self.p_idle:
            raise ConfigurationError(
                f"{self.name}: running power ({self.p_running} W) below idle "
                f"power ({self.p_idle} W)"
            )

    @property
    def delta_p(self) -> float:
        """Extra power while active: ΔP = P_running − P_idle (watts)."""
        return self.p_running - self.p_idle


@dataclass(frozen=True)
class NodePowerModel:
    """Aggregate power description of one node.

    Components follow the paper's decomposition: CPU, memory, IO (NIC +
    disk), and "others" (motherboard, fans, PSU overhead) which has no
    active state — Eq. (8) charges ``P_others`` for the whole runtime.
    """

    cpu: ComponentPower
    memory: ComponentPower
    io: ComponentPower
    others: float  # watts, always-on

    def __post_init__(self) -> None:
        if self.others < 0:
            raise ConfigurationError("others power must be >= 0")

    @property
    def p_system_idle(self) -> float:
        """Idle power of the whole node (paper's ``P_system-idle``)."""
        return self.cpu.p_idle + self.memory.p_idle + self.io.p_idle + self.others

    @property
    def p_system_peak(self) -> float:
        """Everything active simultaneously — an upper bound used in tests."""
        return (
            self.cpu.p_running
            + self.memory.p_running
            + self.io.p_running
            + self.others
        )

    def components(self) -> dict[str, ComponentPower]:
        """Named access to the three stateful components."""
        return {"cpu": self.cpu, "memory": self.memory, "io": self.io}

    def with_cpu(self, cpu: ComponentPower) -> "NodePowerModel":
        """A copy with the CPU component replaced (used by DVFS rescaling)."""
        return NodePowerModel(cpu=cpu, memory=self.memory, io=self.io, others=self.others)

    def scaled_to_frequency(
        self, f: float, f_ref: float, gamma: float, gamma_idle: float = 0.0
    ) -> "NodePowerModel":
        """Rescale the CPU component for a DVFS change using Eq. (20).

        ``ΔPc(f) = ΔPc_ref · (f/f_ref)^γ`` and idle power optionally follows
        a shallower exponent.  Memory/IO/others are frequency-independent,
        matching the paper's simplifying assumption.
        """
        if f <= 0 or f_ref <= 0:
            raise ConfigurationError("frequencies must be positive")
        if gamma < 1:
            raise ConfigurationError("gamma must be >= 1 (Eq. 20)")
        ratio = f / f_ref
        idle = self.cpu.p_idle * ratio**gamma_idle
        delta = self.cpu.delta_p * ratio**gamma
        return self.with_cpu(
            ComponentPower(name=self.cpu.name, p_idle=idle, p_running=idle + delta)
        )

"""Cluster assembly: a homogeneous collection of nodes plus a fabric."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import Interconnect
from repro.cluster.node import Node
from repro.cluster.pdu import PowerDistributionUnit
from repro.errors import ConfigurationError


@dataclass
class Cluster:
    """A power-aware cluster.

    The iso-energy-efficiency model assumes *homogeneous* processors
    (Table 1: "Number of homogeneous processors available"); the
    constructor enforces that every node shares the CPU model, memory
    hierarchy and NIC.  Heterogeneity for failure-injection tests is
    introduced at the simulator level (per-node jitter), not here.
    """

    name: str
    nodes: list[Node]
    interconnect: Interconnect
    pdu: PowerDistributionUnit = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("a cluster needs at least one node")
        head = self.nodes[0]
        for n in self.nodes[1:]:
            if n.cpu.name != head.cpu.name:
                raise ConfigurationError(
                    f"heterogeneous CPUs: {n.cpu.name} vs {head.cpu.name}"
                )
            if n.memory != head.memory:
                raise ConfigurationError("heterogeneous memory hierarchies")
            if n.nic != head.nic:
                raise ConfigurationError("heterogeneous NICs")
        for n in self.nodes:
            if n.nic != self.interconnect:
                raise ConfigurationError(
                    f"node {n.name} NIC does not match cluster interconnect"
                )
        if self.pdu is None:
            self.pdu = PowerDistributionUnit(outlets=len(self.nodes))

    # -- shape ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def head(self) -> Node:
        """Representative node (homogeneity makes any node representative)."""
        return self.nodes[0]

    # -- DVFS -------------------------------------------------------------------

    def set_frequency(self, f: float) -> None:
        """Set every node to P-state ``f`` (cluster-wide DVFS)."""
        for n in self.nodes:
            n.set_frequency(f)

    @property
    def frequency(self) -> float:
        return self.head.frequency

    @property
    def available_frequencies(self) -> tuple[float, ...]:
        return tuple(s.frequency for s in self.head.cpu.pstates)

    # -- aggregate power ------------------------------------------------------------

    @property
    def p_system_idle(self) -> float:
        """Idle power of the whole cluster (sum over nodes)."""
        return sum(n.p_system_idle for n in self.nodes)

    def subcluster(self, n_nodes: int) -> "Cluster":
        """The first ``n_nodes`` nodes as a new cluster.

        This is how the paper's methodology works in practice: measure a
        "smaller representative portion of a large scale system", then
        project to bigger node counts.
        """
        if not (1 <= n_nodes <= len(self.nodes)):
            raise ConfigurationError(
                f"cannot take {n_nodes} nodes from a {len(self.nodes)}-node cluster"
            )
        return Cluster(
            name=f"{self.name}[0:{n_nodes}]",
            nodes=self.nodes[:n_nodes],
            interconnect=self.interconnect,
            pdu=PowerDistributionUnit(outlets=n_nodes),
        )

"""CPU core model with DVFS P-states and a power-frequency law.

The paper models on-chip computation with two machine parameters:

* ``tc`` — average time per on-chip instruction, ``tc = CPI / f`` (Table 1,
  citing Hennessy & Patterson), and
* dynamic CPU power ``ΔPc ∝ f^γ`` with ``γ ≥ 1`` (Eq. 20, citing Kim et al.;
  the paper uses γ=2 for SystemG).

:class:`Cpu` carries both: a nominal CPI, a set of DVFS frequencies, and a
:class:`PowerLaw` mapping frequency to running/idle power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import GHZ


@dataclass(frozen=True)
class PowerLaw:
    """Power as a function of clock frequency.

    Dynamic (running minus idle) power follows ``ΔP(f) = ΔP_ref·(f/f_ref)^γ``
    and idle power follows a shallower law ``P_idle(f) = P_idle_ref ·
    (f/f_ref)^γ_idle`` — leakage shrinks only weakly with frequency, which is
    why the paper treats idle powers as "also functions of f" without giving
    them the full exponent.

    Parameters
    ----------
    delta_p_ref:
        Dynamic power draw (watts) at the reference frequency.
    p_idle_ref:
        Idle power draw (watts) at the reference frequency.
    f_ref:
        Reference frequency in hertz.
    gamma:
        Dynamic power exponent γ ≥ 1 (Eq. 20).
    gamma_idle:
        Idle power exponent; 0 keeps idle power frequency-independent.
    """

    delta_p_ref: float
    p_idle_ref: float
    f_ref: float
    gamma: float = 2.0
    gamma_idle: float = 0.0

    def __post_init__(self) -> None:
        if self.f_ref <= 0:
            raise ConfigurationError(f"f_ref must be positive, got {self.f_ref}")
        if self.gamma < 1.0:
            raise ConfigurationError(
                f"gamma must be >= 1 (paper Eq. 20), got {self.gamma}"
            )
        if self.delta_p_ref < 0 or self.p_idle_ref < 0:
            raise ConfigurationError("power draws must be non-negative")
        if self.gamma_idle < 0:
            raise ConfigurationError("gamma_idle must be non-negative")

    def delta_p(self, f: float) -> float:
        """Dynamic power ΔP at frequency ``f`` (watts)."""
        self._check_f(f)
        return self.delta_p_ref * (f / self.f_ref) ** self.gamma

    def p_idle(self, f: float) -> float:
        """Idle power at frequency ``f`` (watts)."""
        self._check_f(f)
        return self.p_idle_ref * (f / self.f_ref) ** self.gamma_idle

    def p_running(self, f: float) -> float:
        """Total running-state power ``P_idle(f) + ΔP(f)`` (watts)."""
        return self.p_idle(f) + self.delta_p(f)

    @staticmethod
    def _check_f(f: float) -> None:
        if f <= 0:
            raise ConfigurationError(f"frequency must be positive, got {f}")


@dataclass(frozen=True)
class DvfsState:
    """One DVFS operating point (P-state)."""

    frequency: float  # Hz
    voltage: float  # volts; informational, power is carried by PowerLaw

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ConfigurationError("P-state frequency must be positive")
        if self.voltage <= 0:
            raise ConfigurationError("P-state voltage must be positive")


@dataclass
class Cpu:
    """A CPU with DVFS support.

    Parameters
    ----------
    name:
        Human-readable model name.
    base_cpi:
        Nominal cycles-per-instruction for the on-chip workload mix; the
        machine parameter ``tc`` is derived as ``CPI / f``.
    pstates:
        Available DVFS operating points, sorted ascending by frequency.
    power:
        The CPU component's :class:`PowerLaw`.
    cores:
        Physical cores exposed by this CPU package.
    """

    name: str
    base_cpi: float
    pstates: tuple[DvfsState, ...]
    power: PowerLaw
    cores: int = 1
    _current: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError("base_cpi must be positive")
        if not self.pstates:
            raise ConfigurationError("a Cpu needs at least one P-state")
        if self.cores < 1:
            raise ConfigurationError("a Cpu needs at least one core")
        freqs = [s.frequency for s in self.pstates]
        if sorted(freqs) != freqs:
            raise ConfigurationError("P-states must be sorted by frequency")
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("duplicate P-state frequencies")
        if self._current == -1:
            # default to the highest operating point, like cpufreq's
            # `performance` governor
            object.__setattr__(self, "_current", len(self.pstates) - 1)

    # -- frequency control ---------------------------------------------------

    @property
    def frequency(self) -> float:
        """Current clock frequency (Hz)."""
        return self.pstates[self._current].frequency

    @property
    def max_frequency(self) -> float:
        return self.pstates[-1].frequency

    @property
    def min_frequency(self) -> float:
        return self.pstates[0].frequency

    def set_frequency(self, f: float) -> None:
        """Switch to the P-state with frequency ``f`` (exact match required)."""
        for i, s in enumerate(self.pstates):
            if abs(s.frequency - f) < 0.5:  # sub-hertz tolerance
                self._current = i
                return
        raise ConfigurationError(
            f"{self.name}: no P-state at {f / GHZ:.3f} GHz; available: "
            + ", ".join(f"{s.frequency / GHZ:.3f}" for s in self.pstates)
        )

    def nearest_pstate(self, f: float) -> DvfsState:
        """The P-state whose frequency is closest to ``f``."""
        return min(self.pstates, key=lambda s: abs(s.frequency - f))

    # -- derived machine parameters ------------------------------------------

    def tc(self, f: float | None = None) -> float:
        """Average seconds per on-chip instruction at frequency ``f``.

        This is the paper's ``tc = CPI / f`` (Table 1).
        """
        freq = self.frequency if f is None else f
        if freq <= 0:
            raise ConfigurationError("frequency must be positive")
        return self.base_cpi / freq

    def instructions_per_second(self, f: float | None = None) -> float:
        return 1.0 / self.tc(f)

    def delta_p(self, f: float | None = None) -> float:
        """Dynamic power at ``f`` (defaults to current P-state)."""
        return self.power.delta_p(self.frequency if f is None else f)

    def p_idle(self, f: float | None = None) -> float:
        return self.power.p_idle(self.frequency if f is None else f)

    def p_running(self, f: float | None = None) -> float:
        return self.power.p_running(self.frequency if f is None else f)

"""Factory functions for the paper's two testbeds.

SystemG (Virginia Tech): 325 Mac Pro nodes, each with two 4-core 2.8 GHz
Intel Xeon processors, 8 GB RAM, 6 MB cache per core, Mellanox 40 Gb/s
InfiniBand.  DVFS-capable ("G stands for green").

Dori: 8 nodes of dual dual-core AMD Opteron, 6 GB RAM, 1 MB cache per
core, 1 Gb/s Ethernet.

**Power reconstruction.**  The paper reports model outputs, not component
wattages, so the split below is reconstructed — with one deliberate,
documented constraint: §V-B-3 observes that CG's *sequential energy E1
increases with clock frequency*, which under the γ=2 law requires the
CPU's dynamic range ΔPc to exceed the α-scaled system idle floor
(ΔPc > α·P_system_idle).  The presets therefore use a large all-core ΔPc
against a lean idle floor (PowerPack's "system" scope excludes PSU
inefficiency and chassis overhead it cannot attribute).  See DESIGN.md §2.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.cpu import Cpu, DvfsState, PowerLaw
from repro.cluster.memory import CacheLevel, MemoryHierarchy
from repro.cluster.network import Interconnect
from repro.cluster.node import Node
from repro.cluster.pdu import PowerDistributionUnit
from repro.cluster.power import ComponentPower, NodePowerModel
from repro.units import GHZ, GIB, GIGA, KIB, MIB, MICRO, NS, gbit_per_s

#: Nominal CPI of the Xeon Harpertown-class cores in SystemG.  The paper
#: quotes ``tc`` in ``CPI/f`` form on SystemG; 0.781 cycles/instruction
#: reflects superscalar issue on the NPB instruction mix.
SYSTEM_G_CPI = 0.781

#: Nominal CPI of Dori's Opteron cores (narrower issue, older core).
DORI_CPI = 1.10

#: Power-frequency exponent used throughout the paper for SystemG (γ=2).
SYSTEM_G_GAMMA = 2.0
DORI_GAMMA = 2.0


def system_g_interconnect() -> Interconnect:
    """SystemG's fabric: Mellanox 40 Gb/s (QDR) InfiniBand.

    QDR signals at 40 Gb/s; 8b/10b coding and MPI protocol overhead cap
    payload bandwidth near 3.2 GB/s.  The 4 µs start-up reflects the full
    2011-era MPI small-message path (not bare verbs latency).
    """
    return Interconnect(
        name="InfiniBand QDR 40Gb/s",
        startup_latency=4.0 * MICRO,
        per_byte_time=1.0 / (3.2 * GIGA),
        link_rate=gbit_per_s(40),
        switch_hop_latency=100e-9,
    )


def _system_g_node(index: int) -> Node:
    pstates = tuple(
        DvfsState(frequency=f * GHZ, voltage=v)
        for f, v in [(1.6, 0.85), (2.0, 0.95), (2.4, 1.05), (2.8, 1.15)]
    )
    cpu = Cpu(
        name="Intel Xeon E5462 2.8GHz",
        base_cpi=SYSTEM_G_CPI,
        pstates=pstates,
        power=PowerLaw(
            delta_p_ref=140.0,  # both sockets, all cores active, at 2.8 GHz
            p_idle_ref=15.0,
            f_ref=2.8 * GHZ,
            gamma=SYSTEM_G_GAMMA,
        ),
        cores=4,
    )
    memory = MemoryHierarchy(
        levels=(
            CacheLevel(name="L1", capacity=32 * KIB, latency=1.1 * NS),
            CacheLevel(name="L2", capacity=6 * MIB, latency=5.4 * NS),
        ),
        dram_latency=96.0 * NS,
        dram_capacity=8 * GIB,
    )
    return Node(
        name=f"systemg{index:03d}",
        cpu=cpu,
        sockets=2,
        memory=memory,
        nic=system_g_interconnect(),
        power=NodePowerModel(
            cpu=ComponentPower(name="cpu", p_idle=15.0, p_running=155.0),
            memory=ComponentPower(name="memory", p_idle=6.0, p_running=24.0),
            io=ComponentPower(name="io", p_idle=4.0, p_running=8.0),
            others=30.0,  # motherboard, fans (PowerPack-attributable share)
        ),
    )


def dori_interconnect() -> Interconnect:
    """Dori's fabric: 1 Gb/s Ethernet (TCP/IP over GigE)."""
    return Interconnect(
        name="Gigabit Ethernet",
        startup_latency=55.0 * MICRO,
        per_byte_time=1.0 / (0.112 * GIGA),
        link_rate=gbit_per_s(1),
        switch_hop_latency=2.0 * MICRO,
    )


def _dori_node(index: int) -> Node:
    pstates = tuple(
        DvfsState(frequency=f * GHZ, voltage=v)
        for f, v in [(1.0, 1.10), (1.8, 1.25), (2.0, 1.30), (2.2, 1.35), (2.4, 1.40)]
    )
    cpu = Cpu(
        name="AMD Opteron 280 dual-core",
        base_cpi=DORI_CPI,
        pstates=pstates,
        power=PowerLaw(
            delta_p_ref=95.0,
            p_idle_ref=18.0,
            f_ref=2.4 * GHZ,
            gamma=DORI_GAMMA,
        ),
        cores=2,
    )
    memory = MemoryHierarchy(
        levels=(
            CacheLevel(name="L1", capacity=64 * KIB, latency=1.5 * NS),
            CacheLevel(name="L2", capacity=1 * MIB, latency=6.0 * NS),
        ),
        dram_latency=110.0 * NS,
        dram_capacity=6 * GIB,
    )
    return Node(
        name=f"dori{index:02d}",
        cpu=cpu,
        sockets=2,
        memory=memory,
        nic=dori_interconnect(),
        power=NodePowerModel(
            cpu=ComponentPower(name="cpu", p_idle=18.0, p_running=113.0),
            memory=ComponentPower(name="memory", p_idle=8.0, p_running=28.0),
            io=ComponentPower(name="io", p_idle=4.0, p_running=8.0),
            others=35.0,
        ),
    )


def system_g(n_nodes: int = 32) -> Cluster:
    """Build a SystemG-like cluster with ``n_nodes`` nodes (max 325).

    The default of 32 matches the largest configuration in the paper's
    Figure-2 efficiency plots; validation runs go up to 128 (Fig. 4).
    """
    if not (1 <= n_nodes <= 325):
        raise ValueError("SystemG has 325 nodes; ask for 1..325")
    nodes = [_system_g_node(i) for i in range(n_nodes)]
    return Cluster(
        name="SystemG",
        nodes=nodes,
        interconnect=system_g_interconnect(),
        pdu=PowerDistributionUnit(outlets=n_nodes),
    )


def dori(n_nodes: int = 8) -> Cluster:
    """Build the 8-node Dori cluster (or a subset)."""
    if not (1 <= n_nodes <= 8):
        raise ValueError("Dori has 8 nodes; ask for 1..8")
    nodes = [_dori_node(i) for i in range(n_nodes)]
    return Cluster(
        name="Dori",
        nodes=nodes,
        interconnect=dori_interconnect(),
        pdu=PowerDistributionUnit(outlets=n_nodes),
    )


def cluster_preset(cluster: str | Cluster, nodes: int = 32) -> Cluster:
    """Resolve a preset by name, clamping ``nodes`` to the testbed's size.

    The single dispatch point for everything that takes a cluster as a
    string (the CLI, the scheduler): ``"systemg"`` or ``"dori"``,
    case-insensitive; an already-built :class:`Cluster` passes through.
    """
    from repro.errors import ConfigurationError

    if isinstance(cluster, Cluster):
        return cluster
    name = cluster.lower()
    if name == "systemg":
        return system_g(min(max(nodes, 1), 325))
    if name == "dori":
        return dori(min(max(nodes, 1), 8))
    raise ConfigurationError(
        f"unknown cluster {cluster!r}; choose systemg or dori"
    )

"""Interconnect models (InfiniBand, Ethernet).

The paper's communication parameters (Table 1) are the Hockney model's two
constants:

* ``ts``  — average message start-up time, and
* ``tw``  — average time to transmit one 8-bit word (i.e. per byte),

measured with MPPTest on both a 40 Gb/s InfiniBand fabric (SystemG) and
1 Gb/s Ethernet (Dori).  :class:`Interconnect` carries those constants plus
enough structure (signalling rate, protocol efficiency, switch hops) for the
MPPTest analog to *derive* them from ping-pong sweeps rather than read them
off a config.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIGA, MICRO, gbit_per_s


@dataclass(frozen=True)
class Interconnect:
    """A cluster interconnect described by Hockney-model constants.

    Parameters
    ----------
    name:
        Fabric name, e.g. ``"InfiniBand QDR"``.
    startup_latency:
        ``ts`` in seconds: fixed per-message cost (software stack + switch).
    per_byte_time:
        ``tw`` in seconds/byte: inverse effective bandwidth.
    link_rate:
        Raw signalling rate in bytes/second (marketing number).
    switch_hop_latency:
        Additional latency per switch hop, folded into multi-hop sends.
    full_duplex:
        Whether a link carries traffic both ways at full rate.
    """

    name: str
    startup_latency: float
    per_byte_time: float
    link_rate: float
    switch_hop_latency: float = 100e-9
    full_duplex: bool = True

    def __post_init__(self) -> None:
        if self.startup_latency <= 0:
            raise ConfigurationError("startup_latency (ts) must be positive")
        if self.per_byte_time <= 0:
            raise ConfigurationError("per_byte_time (tw) must be positive")
        if self.link_rate <= 0:
            raise ConfigurationError("link_rate must be positive")
        if self.per_byte_time < 1.0 / self.link_rate:
            raise ConfigurationError(
                f"{self.name}: effective bandwidth exceeds raw link rate"
            )
        if self.switch_hop_latency < 0:
            raise ConfigurationError("switch_hop_latency must be >= 0")

    # -- Hockney model --------------------------------------------------------

    @property
    def ts(self) -> float:
        """Message start-up time (s) — paper's ``ts``."""
        return self.startup_latency

    @property
    def tw(self) -> float:
        """Per-byte transmission time (s/byte) — paper's ``tw``."""
        return self.per_byte_time

    @property
    def effective_bandwidth(self) -> float:
        """Achievable large-message bandwidth, bytes/second (= 1/tw)."""
        return 1.0 / self.per_byte_time

    def ptp_time(self, nbytes: int, hops: int = 1) -> float:
        """Point-to-point time of a single ``nbytes`` message over ``hops``.

        The Hockney model ``ts + n·tw`` plus a per-hop switch penalty.
        """
        if nbytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if hops < 1:
            raise ConfigurationError("a message traverses at least one hop")
        return self.ts + nbytes * self.tw + (hops - 1) * self.switch_hop_latency

    def half_bandwidth_point(self) -> float:
        """Message size n_1/2 where achieved bandwidth is half of peak.

        A classic fabric figure of merit: ``n_1/2 = ts / tw``.
        """
        return self.ts / self.tw


def infiniband_qdr() -> Interconnect:
    """SystemG's fabric: Mellanox 40 Gb/s (QDR) InfiniBand.

    QDR signals at 40 Gb/s but 8b/10b coding and protocol overhead cap
    useful payload bandwidth around 3.2 GB/s; small-message latency of MPI
    over IB verbs sits in the low microseconds.
    """
    return Interconnect(
        name="InfiniBand QDR 40Gb/s",
        startup_latency=2.6 * MICRO,
        per_byte_time=1.0 / (3.2 * GIGA),
        link_rate=gbit_per_s(40),
        switch_hop_latency=100e-9,
    )


def ethernet_1g() -> Interconnect:
    """Dori's fabric: 1 Gb/s Ethernet.

    TCP/IP over GigE: ~50 µs end-to-end small-message latency and roughly
    112 MB/s sustained payload bandwidth.
    """
    return Interconnect(
        name="Gigabit Ethernet",
        startup_latency=50.0 * MICRO,
        per_byte_time=1.0 / (0.112 * GIGA),
        link_rate=gbit_per_s(1),
        switch_hop_latency=2.0 * MICRO,
    )

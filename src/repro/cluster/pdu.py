"""Intelligent power distribution unit (Dominion PX analog).

SystemG attaches Dominion PX units to adjacent machines so users can
"dynamically profile power consumption of controlled machines or remotely
turn on/off nodes".  This module provides the same affordances for the
simulated cluster: per-outlet on/off state and sampled apparent power, with
configurable sample period and quantization — the coarse, node-level
counterpart to PowerPack's fine-grained component meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, MeasurementError


@dataclass(frozen=True)
class OutletSample:
    """One reading from a PDU outlet."""

    time: float  # seconds since profiling start
    watts: float


@dataclass
class PowerDistributionUnit:
    """A bank of measured, switchable outlets.

    Parameters
    ----------
    outlets:
        Number of outlets on the unit.
    sample_period:
        Seconds between readings when sampling a power timeline.
    quantum:
        Measurement quantization in watts (PX units report whole watts).
    """

    outlets: int
    sample_period: float = 1.0
    quantum: float = 1.0
    _on: list[bool] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.outlets < 1:
            raise ConfigurationError("a PDU needs at least one outlet")
        if self.sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        if self.quantum < 0:
            raise ConfigurationError("quantum must be >= 0")
        if not self._on:
            self._on = [True] * self.outlets

    # -- switching -------------------------------------------------------------

    def is_on(self, outlet: int) -> bool:
        self._check(outlet)
        return self._on[outlet]

    def power_off(self, outlet: int) -> None:
        """Remotely cut power to an outlet (kills the attached node)."""
        self._check(outlet)
        self._on[outlet] = False

    def power_on(self, outlet: int) -> None:
        self._check(outlet)
        self._on[outlet] = True

    # -- measurement -------------------------------------------------------------

    def sample_timeline(
        self,
        outlet: int,
        power_fn,
        duration: float,
    ) -> list[OutletSample]:
        """Sample ``power_fn(t) -> watts`` every ``sample_period`` seconds.

        Readings are quantized to ``quantum`` watts, mimicking the PX's
        integer-watt reporting.  A powered-off outlet reads zero.
        """
        self._check(outlet)
        if duration <= 0:
            raise MeasurementError("sampling duration must be positive")
        samples: list[OutletSample] = []
        t = 0.0
        while t <= duration:
            if self._on[outlet]:
                raw = float(power_fn(t))
                if raw < 0:
                    raise MeasurementError(f"negative power reading at t={t}")
                if self.quantum > 0:
                    raw = round(raw / self.quantum) * self.quantum
            else:
                raw = 0.0
            samples.append(OutletSample(time=t, watts=raw))
            t += self.sample_period
        return samples

    @staticmethod
    def energy(samples: list[OutletSample]) -> float:
        """Trapezoidal energy (joules) of a sampled timeline."""
        if len(samples) < 2:
            raise MeasurementError("need at least two samples to integrate")
        total = 0.0
        for a, b in zip(samples, samples[1:]):
            dt = b.time - a.time
            if dt < 0:
                raise MeasurementError("samples must be time-ordered")
            total += 0.5 * (a.watts + b.watts) * dt
        return total

    def _check(self, outlet: int) -> None:
        if not (0 <= outlet < self.outlets):
            raise ConfigurationError(
                f"outlet {outlet} out of range 0..{self.outlets - 1}"
            )

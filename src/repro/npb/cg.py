"""NPB CG: conjugate gradient eigenvalue estimation (§V-B-3).

CG finds the smallest eigenvalue of a large sparse matrix by repeated
conjugate-gradient solves: per inner iteration one sparse matrix–vector
product, vector updates, and three communication steps on a 2-D processor
grid (row-group vector reductions, a transpose exchange, and scalar
dot-product allreduces) — the √p-shaped traffic visible in the paper's
printed CG parameterization.

**The deliberate model gap.**  The paper reports CG as its least accurate
benchmark (8.31% mean error) and attributes it to "inaccuracies in our
memory model for this application".  We reproduce the cause, not just the
number: the *analytic* workload model uses a constant off-chip access rate
per row (``awm_model``), while the *kernel* issues traffic from a
cache-capacity model — the partition of the sparse matrix resident in L2
grows with p, cutting DRAM traffic in a p- and machine-dependent way the
analytic Θ2 cannot express.  The same capacity effect produces CG's
efficiency dip-and-recover shape in Figure 2b.

``cg_scipy_reference`` runs a real conjugate-gradient solve on an NPB-style
random sparse matrix for substrate verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.parameters import AppParams
from repro.errors import ConfigurationError
from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.simmpi import collectives
from repro.simmpi.program import Op, RankContext

#: nonzeros per row (NPB class B value; folded into coefficients)
_NONZER = 13
#: bytes per stored nonzero (double value + int index)
_NNZ_BYTES = 12


def cg_grid(p: int) -> tuple[int, int]:
    """NPB CG's 2-D processor grid (nprows, npcols) for power-of-two p."""
    if p < 1:
        raise ConfigurationError("p must be >= 1")
    if p & (p - 1) != 0:
        raise ConfigurationError("NPB CG requires a power-of-two processor count")
    log2p = p.bit_length() - 1
    npcols = 1 << math.ceil(log2p / 2)
    return p // npcols, npcols


def cg_comm_plan(n: float, p: int) -> dict[str, float]:
    """Per-matvec communication totals shared by model and kernel.

    Per rank per inner iteration: ``log2(npcols)`` row-group butterfly
    exchanges of the 8·n/npcols-byte vector segment, one transpose
    exchange of the same size (when the grid has ≥2 rows), and two 8-byte
    scalar allreduces.
    """
    if p == 1:
        return {"m": 0.0, "b": 0.0, "seg_bytes": 0.0, "row_steps": 0}
    nprows, npcols = cg_grid(p)
    seg_bytes = float(int(8 * n / npcols))
    row_steps = npcols.bit_length() - 1  # log2(npcols)
    transpose = 1 if nprows > 1 else 0
    m_vector = p * (row_steps + transpose)
    b_vector = m_vector * seg_bytes
    m_scalar = 2 * collectives.allreduce_message_count(p)
    b_scalar = 2 * collectives.allreduce_byte_count(p, 8)
    return {
        "m": float(m_vector + m_scalar),
        "b": float(b_vector + b_scalar),
        "seg_bytes": seg_bytes,
        "row_steps": row_steps,
    }


@lru_cache(maxsize=65536)
def _cg_comm_coeff1(p: int) -> tuple[float, float, float, float]:
    """(npcols, vector messages, total messages, fixed bytes) per matvec.

    Every n-independent piece of :func:`cg_comm_plan` at one p, validated
    through :func:`cg_grid` exactly as the scalar path is (non-power-of-two
    p raises).
    """
    if p == 1:
        return 1.0, 0.0, 0.0, 0.0
    nprows, cols = cg_grid(p)
    row_steps = cols.bit_length() - 1
    transpose = 1 if nprows > 1 else 0
    m_vec = float(p * (row_steps + transpose))
    m_scalar = 2 * collectives.allreduce_message_count(p)
    b_fixed = float(2 * collectives.allreduce_byte_count(p, 8))
    return float(cols), m_vec, m_vec + m_scalar, b_fixed


@lru_cache(maxsize=512)
def _cg_comm_coeffs(
    p_bytes: bytes,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-p grid/collective coefficient vectors for a whole lane array.

    Keyed on the raw int64 bytes of the p vector: batch solvers re-present
    the same (shrinking) lane subsets every refinement round, so repeats
    hit this memo outright and fresh subsets only pay element-level
    :func:`_cg_comm_coeff1` lookups.
    """
    p = np.frombuffer(p_bytes, dtype=np.int64)
    rows = np.array([_cg_comm_coeff1(int(v)) for v in p]).reshape(-1, 4)
    return rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3]


@dataclass
class CgWorkload:
    """Analytic Θ2 model for CG (n = matrix rows).

    Per-matvec coefficients:

    * ``awc`` — instructions per row (≈8 per nonzero plus vector ops).
    * ``awm_model`` — the *model's* constant off-chip accesses per row
      (matrix streaming); deliberately blind to cache-capacity effects.
    * ``bwc``/``bwm`` — parallel overhead per row, saturating with the
      column count of the processor grid.
    * ``niter`` — total inner iterations (outer × 25 for NPB sizes).
    """

    alpha: float = 0.85
    awc: float = 113.6
    awm_model: float = 2.2
    bwc: float = 3.0
    bwm: float = 0.5
    niter: int = 1875  # class B: 75 outer × 25 inner

    def _sat(self, p: int) -> float:
        """Overhead saturation factor 1 − 1/npcols."""
        if p == 1:
            return 0.0
        _, npcols = cg_grid(p)
        return 1.0 - 1.0 / npcols

    def wc(self, n: float) -> float:
        return self.awc * n * self.niter

    def wm(self, n: float) -> float:
        return self.awm_model * n * self.niter

    def wco(self, n: float, p: int) -> float:
        return self.bwc * n * self._sat(p) * self.niter

    def wmo(self, n: float, p: int) -> float:
        return self.bwm * n * self._sat(p) * self.niter

    def comm(self, n: float, p: int) -> tuple[float, float]:
        plan = cg_comm_plan(n, p)
        return plan["m"] * self.niter, plan["b"] * self.niter

    def params(self, n: float, p: int) -> AppParams:
        if n < 2:
            raise ConfigurationError("CG needs at least a 2-row matrix")
        m, b = self.comm(n, p)
        return AppParams(
            alpha=self.alpha,
            wc=self.wc(n),
            wm=self.wm(n),
            wco=self.wco(n, p),
            wmo=self.wmo(n, p),
            m_messages=m,
            b_bytes=b,
            n=n,
            p=p,
        )

    def params_batch(
        self, n: np.ndarray, p: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Θ2 at element-wise (n, p) pairs as arrays (batch solvers' hook).

        Matches :meth:`params` exactly: the 2-D processor-grid shape and
        collective counts come from the same closed forms (memoised per p
        tuple), with only the n-coupled segment bytes vectorized.
        """
        n = np.asarray(n, dtype=float)
        p = np.asarray(p, dtype=np.int64)
        if np.any(n < 2):
            raise ConfigurationError("CG needs at least a 2-row matrix")
        npcols, m_vec, m_total, b_fixed = _cg_comm_coeffs(
            np.ascontiguousarray(p).tobytes()
        )
        par = p > 1
        sat = np.where(par, 1.0 - 1.0 / npcols, 0.0)
        seg_bytes = np.where(par, np.trunc(8 * n / npcols), 0.0)
        return {
            "alpha": np.full(n.shape, self.alpha),
            "wc": self.awc * n * self.niter,
            "wm": self.awm_model * n * self.niter,
            "wco": self.bwc * n * sat * self.niter,
            "wmo": self.bwm * n * sat * self.niter,
            "m_messages": m_total * self.niter,
            "b_bytes": (m_vec * seg_bytes + b_fixed) * self.niter,
            "t_io": np.zeros(n.shape),
        }


def cg_kernel_memory_rate(
    n: float, p: int, l2_capacity: float, awm_stream: float = 2.5
) -> float:
    """The kernel's true off-chip accesses per row per matvec.

    A rank's matrix partition is ``156·n/p`` bytes (13 nonzeros × 12 B);
    the fraction of it resident in L2 across consecutive matvecs avoids
    DRAM re-reads, cutting effective traffic by up to 38% (indices, the
    vectors, and conflict misses always move).  This machine- and
    p-dependent rate is what the analytic model's constant ``awm_model``
    cannot express: on SystemG (6 MB L2) the partition becomes resident
    at small p and the model overshoots (the paper's 8.3% CG error); on
    Dori (1 MB L2) it never does, and the model fits well (Fig. 3).
    """
    if l2_capacity <= 0:
        raise ConfigurationError("l2_capacity must be positive")
    partition_bytes = _NONZER * _NNZ_BYTES * n / p
    resident = min(1.0, l2_capacity / partition_bytes)
    return awm_stream * (1.0 - 0.38 * resident)


class CgBenchmark(NpbBenchmark):
    """CG: executable kernel + analytic model."""

    name = "CG"
    #: effective CPI multiplier: indexed gathers stall the pipeline
    cpi_factor = 2.8
    class_sizes = {
        ProblemClass.S: 1400,
        ProblemClass.W: 7000,
        ProblemClass.A: 14000,
        ProblemClass.B: 75000,
        ProblemClass.C: 150000,
        ProblemClass.D: 1_500_000,
    }
    #: total inner iterations (outer iterations × 25 CG steps)
    class_iterations = {
        ProblemClass.S: 15 * 25,
        ProblemClass.W: 15 * 25,
        ProblemClass.A: 15 * 25,
        ProblemClass.B: 75 * 25,
        ProblemClass.C: 75 * 25,
        ProblemClass.D: 100 * 25,
    }

    def __init__(
        self,
        workload: CgWorkload | None = None,
        bias: KernelBias | None = None,
        l2_capacity: float = 6 * 1024 * 1024,
    ) -> None:
        if bias is None:
            bias = KernelBias(compute_scale=1.02)
        super().__init__(workload or CgWorkload(), bias)
        self.l2_capacity = l2_capacity

    @classmethod
    def for_class(
        cls,
        klass: ProblemClass | str,
        niter: int | None = None,
        l2_capacity: float = 6 * 1024 * 1024,
    ) -> tuple["CgBenchmark", float]:
        klass = ProblemClass(klass)
        bench = cls(
            CgWorkload(niter=niter or cls.class_iterations.get(klass, 1875)),
            l2_capacity=l2_capacity,
        )
        return bench, float(cls.class_sizes[klass])

    # -- kernel ---------------------------------------------------------------

    def make_program(
        self, n: float, p: int
    ) -> Callable[[RankContext], Iterator[Op]]:
        wl: CgWorkload = self.workload  # type: ignore[assignment]
        plan = cg_comm_plan(n, p)
        niter = wl.niter
        bias = self.bias
        seg_bytes = int(plan["seg_bytes"])
        row_steps = int(plan["row_steps"])
        nprows, npcols = cg_grid(p) if p > 1 else (1, 1)

        # instructions follow the analytic model (with bias); memory traffic
        # follows the cache-capacity model the analytic Θ2 is blind to
        wc_mv = (wl.wc(n) + wl.wco(n, p)) * bias.compute_scale / niter
        mem_rate = cg_kernel_memory_rate(n, p, self.l2_capacity)
        wm_mv = (mem_rate + wl.bwm * wl._sat(p)) * n * bias.mem_factor(p)

        def program(ctx: RankContext) -> Iterator[Op]:
            my_wc = self.split_even(wc_mv, p, ctx.rank)
            my_wm = self.split_even(wm_mv, p, ctx.rank)
            for _ in range(niter):
                yield from ctx.phase("matvec")
                yield from ctx.compute(my_wc * 0.8, my_wm * 0.9, label="spmv")
                if p > 1:
                    yield from ctx.phase("row-reduce")
                    for k in range(row_steps):
                        partner = ctx.rank ^ (1 << k)
                        yield from ctx.exchange(
                            dst=partner, src=partner, nbytes=seg_bytes, tag=900 + k
                        )
                    if nprows > 1:
                        yield from ctx.phase("transpose")
                        partner = ctx.rank ^ npcols
                        yield from ctx.exchange(
                            dst=partner, src=partner, nbytes=seg_bytes, tag=940
                        )
                yield from ctx.phase("vector-ops")
                yield from ctx.compute(my_wc * 0.2, my_wm * 0.1, label="axpy")
                if p > 1:
                    yield from ctx.phase("dot-products")
                    yield from collectives.allreduce(ctx, nbytes=8)
                    yield from collectives.allreduce(ctx, nbytes=8)

        return program


def cg_scipy_reference(n: int = 1400, nonzer: int = 7, seed: int = 1618):
    """A real CG solve on an NPB-style random sparse SPD matrix.

    Builds ``A = I·(shift) + S·Sᵀ`` from a random sparse S (the NPB matrix
    construction in spirit), runs scipy CG, and returns (iterations-taken,
    residual-norm, smallest-eigenvalue-estimate).
    """
    if n < 2:
        raise ConfigurationError("need n >= 2")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nonzer)
    cols = rng.integers(0, n, size=n * nonzer)
    vals = rng.standard_normal(n * nonzer) / math.sqrt(nonzer)
    s = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    a = (s @ s.T + sp.identity(n) * 10.0).tocsr()
    b = np.ones(n)
    iters = 0

    def count(_):
        nonlocal iters
        iters += 1

    x, info = spla.cg(a, b, rtol=1e-8, maxiter=10 * n, callback=count)
    if info != 0:
        raise ConfigurationError(f"reference CG failed to converge (info={info})")
    residual = float(np.linalg.norm(a @ x - b))
    # one step of inverse power iteration estimates the smallest eigenvalue
    lam = float((x @ (a @ x)) / (x @ x))
    return iters, residual, lam

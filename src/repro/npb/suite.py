"""The remaining NPB kernels and pseudo-applications: IS, MG, LU, BT, SP.

Figure 3 validates the model across the whole NAS suite on Dori; these
five benchmarks complete it.  Each is expressed as a
:class:`PhasedBenchmark`: an analytic Θ2 model built from per-iteration
coefficient forms plus a communication plan, and a generic kernel that
executes that plan.  The coefficient forms follow each code's published
algorithm structure:

* **IS** — bucketed integer sort: one all-to-all-v of the key population
  per iteration plus a bucket-size allreduce.
* **MG** — V-cycle multigrid: halo exchanges on every level; surface-to-
  volume traffic ∝ (n/p)^(2/3) per rank.
* **LU** — SSOR with 2-D pencil wavefronts: many small north/south/east/
  west exchanges per sweep.
* **BT / SP** — ADI solvers on a √p×√p grid: face exchanges in the three
  sweep directions per iteration, BT with larger per-face payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.parameters import AppParams
from repro.errors import ConfigurationError
from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.simmpi import collectives
from repro.simmpi.program import Op, RankContext


@dataclass
class PhasedWorkload:
    """Generic analytic Θ2: coefficient forms over (n, p) per iteration.

    Workload forms::

        Wc  = awc·n·niter                 Wm  = awm·n·niter
        Wco = bwc·n·(1−1/p)·niter          Wmo = bwm·n^mexp·(1−1/p)·niter

    Communication per iteration is one "bulk" pattern (alltoall-style:
    M = p(p−1), B = cbulk·n·(p−1)/p) plus "halo" exchanges (M = chalo_m·p,
    B = chalo_m·p · chalo_b·8·(n/p)^(2/3)) plus ``n_allreduce`` scalar
    allreduces — zeroing coefficients selects the pattern mix.
    """

    alpha: float
    awc: float
    awm: float
    bwc: float = 0.0
    bwm: float = 0.0
    mexp: float = 1.0
    cbulk: float = 0.0
    chalo_m: float = 0.0
    chalo_b: float = 1.0
    n_allreduce: int = 0
    niter: int = 1

    def halo_bytes(self, n: float, p: int) -> float:
        """Per-message halo payload: surface of a rank's subdomain."""
        return float(int(self.chalo_b * 8.0 * (n / p) ** (2.0 / 3.0)))

    def bulk_pair_bytes(self, n: float, p: int) -> float:
        """Per-pair payload of the bulk all-to-all."""
        if p == 1 or self.cbulk == 0.0:
            return 0.0
        return float(int(self.cbulk * n / (p * p)))

    def comm(self, n: float, p: int) -> tuple[float, float]:
        if p == 1:
            return 0.0, 0.0
        m = 0.0
        b = 0.0
        if self.cbulk > 0.0:
            pair = int(self.bulk_pair_bytes(n, p))
            m += collectives.alltoall_message_count(p)
            b += collectives.alltoall_byte_count(p, pair)
        if self.chalo_m > 0.0:
            halo_msgs = round(self.chalo_m * p)
            m += halo_msgs
            b += halo_msgs * self.halo_bytes(n, p)
        if self.n_allreduce:
            m += self.n_allreduce * collectives.allreduce_message_count(p)
            b += self.n_allreduce * collectives.allreduce_byte_count(p, 8)
        return m * self.niter, b * self.niter

    def params(self, n: float, p: int) -> AppParams:
        if n < 1:
            raise ConfigurationError("problem size must be >= 1")
        sat = 0.0 if p == 1 else 1.0 - 1.0 / p
        m, b = self.comm(n, p)
        return AppParams(
            alpha=self.alpha,
            wc=self.awc * n * self.niter,
            wm=self.awm * n * self.niter,
            wco=self.bwc * n * sat * self.niter,
            wmo=self.bwm * (n**self.mexp) * sat * self.niter,
            m_messages=m,
            b_bytes=b,
            n=n,
            p=p,
        )


class PhasedBenchmark(NpbBenchmark):
    """Generic kernel executing a :class:`PhasedWorkload`'s plan."""

    def __init__(
        self, workload: PhasedWorkload, bias: KernelBias | None = None
    ) -> None:
        super().__init__(workload, bias)

    @classmethod
    def for_class(
        cls, klass: ProblemClass | str, niter: int | None = None
    ) -> tuple["PhasedBenchmark", float]:
        klass = ProblemClass(klass)
        wl = cls.default_workload()
        wl.niter = niter or cls.class_iterations.get(klass, 1)
        return cls(wl), float(cls.class_sizes[klass])

    @classmethod
    def default_workload(cls) -> PhasedWorkload:  # pragma: no cover - abstract
        raise NotImplementedError

    def make_program(
        self, n: float, p: int
    ) -> Callable[[RankContext], Iterator[Op]]:
        wl: PhasedWorkload = self.workload  # type: ignore[assignment]
        ap = wl.params(n, p)
        bias = self.bias
        niter = wl.niter
        wc_it = ap.total_instructions * bias.compute_scale / niter
        wm_it = ap.total_mem_accesses * bias.mem_factor(p) / niter
        bulk_pair = int(wl.bulk_pair_bytes(n, p))
        halo_bytes = int(wl.halo_bytes(n, p))
        halo_rounds = max(1, round(wl.chalo_m)) if wl.chalo_m > 0 else 0

        def program(ctx: RankContext) -> Iterator[Op]:
            my_wc = self.split_even(wc_it, p, ctx.rank)
            my_wm = self.split_even(wm_it, p, ctx.rank)
            for _ in range(niter):
                yield from ctx.phase("compute")
                yield from ctx.compute(my_wc * 0.7, my_wm * 0.7)
                if p > 1:
                    if bulk_pair or wl.cbulk > 0:
                        yield from ctx.phase("alltoall")
                        yield from collectives.alltoall(ctx, nbytes_per_pair=bulk_pair)
                    if halo_rounds:
                        yield from ctx.phase("halo")
                        for k in range(halo_rounds):
                            # cycle through non-self neighbours so any
                            # halo_rounds works on any communicator size
                            offset = (k % (ctx.size - 1)) + 1
                            dst = (ctx.rank + offset) % ctx.size
                            src = (ctx.rank - offset) % ctx.size
                            yield from ctx.exchange(
                                dst=dst, src=src, nbytes=halo_bytes, tag=500 + k
                            )
                yield from ctx.phase("update")
                yield from ctx.compute(my_wc * 0.3, my_wm * 0.3)
                if p > 1 and wl.n_allreduce:
                    yield from ctx.phase("norm")
                    for _ in range(wl.n_allreduce):
                        yield from collectives.allreduce(ctx, nbytes=8)

        return program


# ---------------------------------------------------------------------------
# Concrete suite members
# ---------------------------------------------------------------------------


class IsBenchmark(PhasedBenchmark):
    """IS: bucketed integer sort (n = number of keys)."""

    name = "IS"
    cpi_factor = 1.3  # random bucket scatters
    class_sizes = {
        ProblemClass.S: 2**16,
        ProblemClass.W: 2**20,
        ProblemClass.A: 2**23,
        ProblemClass.B: 2**25,
        ProblemClass.C: 2**27,
        ProblemClass.D: 2**31,
    }
    class_iterations = {k: 10 for k in ProblemClass}

    @classmethod
    def default_workload(cls) -> PhasedWorkload:
        return PhasedWorkload(
            alpha=0.90,
            awc=42.0,
            awm=1.8,
            bwc=1.1,
            bwm=0.25,
            cbulk=4.0,  # 4-byte keys redistributed each iteration
            n_allreduce=1,
            niter=10,
        )


class MgBenchmark(PhasedBenchmark):
    """MG: V-cycle multigrid (n = fine-grid points)."""

    name = "MG"
    cpi_factor = 1.1
    class_sizes = {
        ProblemClass.S: 32**3,
        ProblemClass.W: 128**3,
        ProblemClass.A: 256**3,
        ProblemClass.B: 256**3,
        ProblemClass.C: 512**3,
        ProblemClass.D: 1024**3,
    }
    class_iterations = {
        ProblemClass.S: 4,
        ProblemClass.W: 4,
        ProblemClass.A: 4,
        ProblemClass.B: 20,
        ProblemClass.C: 20,
        ProblemClass.D: 50,
    }

    @classmethod
    def default_workload(cls) -> PhasedWorkload:
        return PhasedWorkload(
            alpha=0.82,
            awc=62.0,
            awm=3.1,
            bwc=2.0,
            bwm=0.3,
            chalo_m=12.0,  # 6 faces × 2 V-cycle legs
            chalo_b=1.0,
            n_allreduce=1,
            niter=20,
        )


class LuBenchmark(PhasedBenchmark):
    """LU: SSOR solver with pencil wavefronts (n = grid points)."""

    name = "LU"
    cpi_factor = 1.0
    class_sizes = {
        ProblemClass.S: 12**3,
        ProblemClass.W: 33**3,
        ProblemClass.A: 64**3,
        ProblemClass.B: 102**3,
        ProblemClass.C: 162**3,
        ProblemClass.D: 408**3,
    }
    class_iterations = {
        ProblemClass.S: 50,
        ProblemClass.W: 300,
        ProblemClass.A: 250,
        ProblemClass.B: 250,
        ProblemClass.C: 250,
        ProblemClass.D: 300,
    }

    @classmethod
    def default_workload(cls) -> PhasedWorkload:
        return PhasedWorkload(
            alpha=0.88,
            awc=155.0,
            awm=1.9,
            bwc=3.0,
            bwm=0.2,
            chalo_m=8.0,  # N/S/E/W × lower+upper sweeps
            chalo_b=0.5,  # thin wavefront slabs
            n_allreduce=1,
            niter=250,
        )


class BtBenchmark(PhasedBenchmark):
    """BT: block-tridiagonal ADI solver (n = grid points)."""

    name = "BT"
    cpi_factor = 0.95  # dense 5×5 block arithmetic
    class_sizes = {
        ProblemClass.S: 12**3,
        ProblemClass.W: 24**3,
        ProblemClass.A: 64**3,
        ProblemClass.B: 102**3,
        ProblemClass.C: 162**3,
        ProblemClass.D: 408**3,
    }
    class_iterations = {
        ProblemClass.S: 60,
        ProblemClass.W: 200,
        ProblemClass.A: 200,
        ProblemClass.B: 200,
        ProblemClass.C: 200,
        ProblemClass.D: 250,
    }

    @classmethod
    def default_workload(cls) -> PhasedWorkload:
        return PhasedWorkload(
            alpha=0.89,
            awc=530.0,  # ~5× LU per point: 5×5 block solves
            awm=4.0,
            bwc=6.0,
            bwm=0.4,
            chalo_m=6.0,  # 3 sweep directions × 2 faces
            chalo_b=5.0,  # 5 solution components per face cell
            n_allreduce=1,
            niter=200,
        )


class SpBenchmark(PhasedBenchmark):
    """SP: scalar-pentadiagonal ADI solver (n = grid points)."""

    name = "SP"
    cpi_factor = 1.05
    class_sizes = dict(BtBenchmark.class_sizes)
    class_sizes[ProblemClass.W] = 36**3
    class_iterations = {
        ProblemClass.S: 100,
        ProblemClass.W: 400,
        ProblemClass.A: 400,
        ProblemClass.B: 400,
        ProblemClass.C: 400,
        ProblemClass.D: 500,
    }

    @classmethod
    def default_workload(cls) -> PhasedWorkload:
        return PhasedWorkload(
            alpha=0.87,
            awc=240.0,
            awm=3.4,
            bwc=4.0,
            bwm=0.35,
            chalo_m=6.0,
            chalo_b=3.0,
            n_allreduce=1,
            niter=400,
        )

"""Simulated NAS Parallel Benchmarks.

Every benchmark pairs an analytic workload model (Θ2 over (n, p) — the
model-facing half) with an executable simulated kernel (the measurement-
facing half).  FT, EP and CG follow the paper's §V case-study
parameterizations; IS, MG, LU, BT and SP complete the suite for the Dori
validation of Figure 3.
"""

from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.npb.cg import CgBenchmark, CgWorkload, cg_comm_plan, cg_grid, cg_scipy_reference
from repro.npb.ep import EpBenchmark, EpWorkload, ep_numpy_reference
from repro.npb.ft import FtBenchmark, FtWorkload, ft_comm_plan, ft_numpy_reference
from repro.npb.suite import (
    BtBenchmark,
    IsBenchmark,
    LuBenchmark,
    MgBenchmark,
    PhasedBenchmark,
    PhasedWorkload,
    SpBenchmark,
)
from repro.npb.workloads import (
    HEADLINE_BENCHMARKS,
    SUITE_BENCHMARKS,
    benchmark_class,
    benchmark_for,
    benchmark_names,
    workload_for,
)

__all__ = [
    "KernelBias",
    "NpbBenchmark",
    "ProblemClass",
    "CgBenchmark",
    "CgWorkload",
    "cg_comm_plan",
    "cg_grid",
    "cg_scipy_reference",
    "EpBenchmark",
    "EpWorkload",
    "ep_numpy_reference",
    "FtBenchmark",
    "FtWorkload",
    "ft_comm_plan",
    "ft_numpy_reference",
    "BtBenchmark",
    "IsBenchmark",
    "LuBenchmark",
    "MgBenchmark",
    "PhasedBenchmark",
    "PhasedWorkload",
    "SpBenchmark",
    "HEADLINE_BENCHMARKS",
    "SUITE_BENCHMARKS",
    "benchmark_class",
    "benchmark_for",
    "benchmark_names",
    "workload_for",
]

"""NPB EP: embarrassingly parallel Gaussian-deviate generation (§V-B-2).

EP generates pairs of Gaussian random deviates with the Marsaglia polar
method and tallies them into ten annular bins; the only communication is
a final tiny reduction.  The paper measures Θ2 = (0.93, 109.4·n,
1.03e?·n, 0, 6.7e?·n·(p−1), 0, 0) — M and B are simply set to zero
"since communication in embarrassingly parallel is trivial".

The kernel issues the same per-rank workload plus the final allreduce the
analytic model ignores (an honest, tiny model-vs-measurement gap), and
``ep_numpy_reference`` runs the actual Marsaglia polar method so tests can
verify the generated deviates are Gaussian.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.parameters import AppParams
from repro.errors import ConfigurationError
from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.simmpi import collectives
from repro.simmpi.program import Op, RankContext

#: final reduction payload: 10 annulus counters + 2 sums (8 B each)
_REDUCTION_BYTES = 96


@dataclass
class EpWorkload:
    """Analytic Θ2 model for EP (n = number of random pairs).

    * ``awc = 109.4`` instructions per pair (paper's measured value).
    * ``awm`` — off-chip accesses per pair; EP's working set is a handful
      of scalars, so this is tiny (reconstructed as 1.03e-2).
    * ``bwm`` — per-pair memory overhead growing with (p−1): tally-table
      interactions (reconstructed as 6.7e-6, keeping EE ≈ 1 at all p).
    """

    alpha: float = 0.93
    awc: float = 109.4
    awm: float = 1.03e-2
    bwm: float = 6.7e-6

    def wc(self, n: float) -> float:
        return self.awc * n

    def wm(self, n: float) -> float:
        return self.awm * n

    def wmo(self, n: float, p: int) -> float:
        if p == 1:
            return 0.0
        return self.bwm * n * (p - 1)

    def params(self, n: float, p: int) -> AppParams:
        if n < 1:
            raise ConfigurationError("EP needs at least one pair")
        return AppParams(
            alpha=self.alpha,
            wc=self.wc(n),
            wm=self.wm(n),
            wco=0.0,
            wmo=self.wmo(n, p),
            m_messages=0.0,  # the paper sets M = 0 for EP
            b_bytes=0.0,
            n=n,
            p=p,
        )

    def params_batch(
        self, n: np.ndarray, p: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Θ2 at element-wise (n, p) pairs — EP is closed-form throughout."""
        n = np.asarray(n, dtype=float)
        p = np.asarray(p, dtype=np.int64)
        if np.any(n < 1):
            raise ConfigurationError("EP needs at least one pair")
        zeros = np.zeros(n.shape)
        return {
            "alpha": np.full(n.shape, self.alpha),
            "wc": self.awc * n,
            "wm": self.awm * n,
            "wco": zeros,
            "wmo": np.where(p > 1, self.bwm * n * (p - 1), 0.0),
            "m_messages": zeros,
            "b_bytes": zeros,
            "t_io": zeros,
        }


class EpBenchmark(NpbBenchmark):
    """EP: executable kernel + analytic model."""

    name = "EP"
    #: tight arithmetic loop issues below machine-average CPI
    cpi_factor = 0.9
    class_sizes = {
        ProblemClass.S: 2**24,
        ProblemClass.W: 2**25,
        ProblemClass.A: 2**28,
        ProblemClass.B: 2**30,
        ProblemClass.C: 2**32,
        ProblemClass.D: 2**36,
    }
    class_iterations = {k: 1 for k in ProblemClass}

    def __init__(
        self,
        workload: EpWorkload | None = None,
        bias: KernelBias | None = None,
    ) -> None:
        if bias is None:
            # The Marsaglia polar method rejects ≈21.5% of candidate pairs;
            # the rejected work is real but the analytic 109.4/pair folds it
            # in imperfectly — EP's measured error in the paper (6.6%) is
            # the largest of the three, reproduced here as a compute bias.
            bias = KernelBias(compute_scale=1.065, memory_scale=1.02)
        super().__init__(workload or EpWorkload(), bias)

    @classmethod
    def for_class(cls, klass: ProblemClass | str) -> tuple["EpBenchmark", float]:
        klass = ProblemClass(klass)
        return cls(), float(cls.class_sizes[klass])

    # -- kernel ---------------------------------------------------------------

    def make_program(
        self, n: float, p: int
    ) -> Callable[[RankContext], Iterator[Op]]:
        wl: EpWorkload = self.workload  # type: ignore[assignment]
        ap = wl.params(n, p)
        bias = self.bias
        #: chunks let power profiles show EP's long flat compute plateau
        chunks = 8

        wc_total = ap.total_instructions * bias.compute_scale
        wm_total = ap.total_mem_accesses * bias.mem_factor(p)

        def program(ctx: RankContext) -> Iterator[Op]:
            my_wc = self.split_even(wc_total, p, ctx.rank)
            my_wm = self.split_even(wm_total, p, ctx.rank)
            yield from ctx.phase("generate")
            for _ in range(chunks):
                yield from ctx.compute(my_wc / chunks, my_wm / chunks, label="polar")
            yield from ctx.phase("reduce")
            if p > 1:
                # the tiny reduction the analytic model deliberately ignores
                yield from collectives.allreduce(ctx, nbytes=_REDUCTION_BYTES)

        return program


def ep_numpy_reference(n_pairs: int = 100_000, seed: int = 271828):
    """Actual Marsaglia polar method: returns (gaussians, acceptance_rate).

    Draws uniform candidate pairs in [−1,1)², keeps those inside the unit
    disk, and maps them to independent N(0,1) deviates — exactly EP's
    per-pair computation.  Tests verify moments and the ≈π/4 acceptance.
    """
    if n_pairs < 1:
        raise ConfigurationError("need at least one pair")
    rng = np.random.default_rng(seed)
    out = np.empty(2 * n_pairs)
    filled = 0
    drawn = 0
    accepted = 0
    while filled < 2 * n_pairs:
        remaining_pairs = n_pairs - filled // 2
        todo = max(1024, int(remaining_pairs / 0.75) + 16)
        x = rng.uniform(-1.0, 1.0, todo)
        y = rng.uniform(-1.0, 1.0, todo)
        s = x * x + y * y
        keep = (s > 0.0) & (s < 1.0)
        drawn += todo
        accepted += int(keep.sum())
        xs, ys, ss = x[keep], y[keep], s[keep]
        factor = np.sqrt(-2.0 * np.log(ss) / ss)
        g = np.concatenate([xs * factor, ys * factor])
        take = min(len(g), 2 * n_pairs - filled)
        out[filled : filled + take] = g[:take]
        filled += take
    return out, accepted / drawn

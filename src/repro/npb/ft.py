"""NPB FT: 3-D FFT PDE solver (§V-B-1 of the paper).

FT iterates four phases: computation phase 1 (evolve + local FFTs),
a reduction phase (checksum), computation phase 2, and the dominating
all-to-all communication (the distributed transpose).

The analytic workload model reconstructs the paper's Θ2 parameterization
(several printed coefficients are OCR-garbled in the source text; the
functional forms follow the 1-D radix-2 binary-exchange FFT analysis the
paper cites — Wc ∝ n·log2 n — and the transpose's pairwise-exchange
traffic B = 16·n·(p−1)/p per iteration for complex128 grids).  The
executable kernel issues the same phases against the simulator, with the
all-to-all performed as real pairwise message rounds.

``ft_numpy_reference`` additionally runs a real (small) 3-D FFT evolution
via numpy so tests can check the substrate computes what FT computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

import numpy as np

from repro.core.parameters import AppParams
from repro.errors import ConfigurationError
from repro.npb.base import KernelBias, NpbBenchmark, ProblemClass
from repro.simmpi import collectives
from repro.simmpi.program import Op, RankContext

#: bytes per grid point (complex128)
_POINT_BYTES = 16
#: payload of the reduction-phase checksum allreduce
_CHECKSUM_BYTES = 16


def ft_comm_plan(n: float, p: int, algorithm: str = "pairwise") -> dict[str, float]:
    """Per-iteration communication totals shared by model and kernel.

    Returns M (messages) and B (bytes) for one FT iteration: one all-to-all
    moving the whole 16n-byte grid (each pair exchanges ``16n/p²`` bytes)
    plus the reduction phase's checksum allreduce.
    """
    if p < 1:
        raise ConfigurationError("p must be >= 1")
    if p == 1:
        return {"m": 0.0, "b": 0.0, "pair_bytes": 0.0}
    pair_bytes = float(int(_POINT_BYTES * n / (p * p)))
    m = collectives.alltoall_message_count(p, algorithm)
    b = (
        collectives.alltoall_byte_count(p, int(pair_bytes), algorithm)
        + collectives.allreduce_byte_count(p, _CHECKSUM_BYTES)
    )
    m += collectives.allreduce_message_count(p)
    return {"m": float(m), "b": float(b), "pair_bytes": pair_bytes}


@lru_cache(maxsize=65536)
def _ft_comm_coeff1(p: int, algorithm: str) -> tuple[float, float, float]:
    """(messages, bytes-per-pair-byte, fixed bytes) per iteration at one p."""
    if p == 1:
        return 0.0, 0.0, 0.0
    m = float(
        collectives.alltoall_message_count(p, algorithm)
        + collectives.allreduce_message_count(p)
    )
    # alltoall bytes scale linearly in the per-pair payload
    coeff = float(collectives.alltoall_byte_count(p, 1, algorithm))
    fixed = float(collectives.allreduce_byte_count(p, _CHECKSUM_BYTES))
    return m, coeff, fixed


@lru_cache(maxsize=512)
def _ft_comm_coeffs(
    p_bytes: bytes, algorithm: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-p collective coefficient vectors for a whole lane array.

    Keyed on the raw int64 bytes of the p vector: batch solvers re-present
    the same (shrinking) lane subsets every refinement round, so repeats
    hit this memo outright and fresh subsets only pay element-level
    :func:`_ft_comm_coeff1` lookups.
    """
    p = np.frombuffer(p_bytes, dtype=np.int64)
    rows = np.array(
        [_ft_comm_coeff1(int(v), algorithm) for v in p]
    ).reshape(-1, 3)
    return rows[:, 0], rows[:, 1], rows[:, 2]


@dataclass
class FtWorkload:
    """Analytic Θ2 model for FT.

    Per-iteration coefficients (n = total grid points):

    * ``awc`` — instructions per point per log2(n) term (FFT butterflies).
    * ``awm`` — off-chip accesses per point (grid sweeps).
    * ``bwc`` — overhead instructions per point per log2(p) (transpose
      index arithmetic).
    * ``bwm`` — overhead accesses per point per log2(p): each doubling of
      the processor grid adds a pack/unpack sweep of the local slab for
      the deeper transpose.
    """

    alpha: float = 0.86
    awc: float = 5.5
    awm: float = 2.5
    bwc: float = 0.6
    bwm: float = 0.16
    niter: int = 20
    algorithm: str = "pairwise"

    def wc(self, n: float) -> float:
        return self.awc * n * math.log2(n) * self.niter

    def wm(self, n: float) -> float:
        return self.awm * n * self.niter

    def wco(self, n: float, p: int) -> float:
        if p == 1:
            return 0.0
        return self.bwc * n * math.log2(p) * self.niter

    def wmo(self, n: float, p: int) -> float:
        if p == 1:
            return 0.0
        return self.bwm * n * math.log2(p) * self.niter

    def comm(self, n: float, p: int) -> tuple[float, float]:
        plan = ft_comm_plan(n, p, self.algorithm)
        return plan["m"] * self.niter, plan["b"] * self.niter

    def params(self, n: float, p: int) -> AppParams:
        if n < 4:
            raise ConfigurationError("FT needs at least 4 grid points")
        m, b = self.comm(n, p)
        return AppParams(
            alpha=self.alpha,
            wc=self.wc(n),
            wm=self.wm(n),
            wco=self.wco(n, p),
            wmo=self.wmo(n, p),
            m_messages=m,
            b_bytes=b,
            n=n,
            p=p,
        )

    def params_batch(
        self, n: np.ndarray, p: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Θ2 at element-wise (n, p) pairs as arrays (batch solvers' hook).

        Numerically identical to mapping :meth:`params` over the pairs:
        the p-only collective counts come from the same
        :mod:`repro.simmpi.collectives` closed forms (memoised per p
        tuple), and the n-coupled terms are evaluated in one NumPy pass.
        """
        n = np.asarray(n, dtype=float)
        p = np.asarray(p, dtype=np.int64)
        if np.any(n < 4):
            raise ConfigurationError("FT needs at least 4 grid points")
        m_per_iter, byte_coeff, b_fixed = _ft_comm_coeffs(
            np.ascontiguousarray(p).tobytes(), self.algorithm
        )
        par = p > 1
        log2p = np.where(par, np.log2(np.maximum(p, 2)), 0.0)
        pair_bytes = np.where(par, np.trunc(_POINT_BYTES * n / (p * p)), 0.0)
        return {
            "alpha": np.full(n.shape, self.alpha),
            "wc": self.awc * n * np.log2(n) * self.niter,
            "wm": self.awm * n * self.niter,
            "wco": np.where(par, self.bwc * n * log2p * self.niter, 0.0),
            "wmo": np.where(par, self.bwm * n * log2p * self.niter, 0.0),
            "m_messages": m_per_iter * self.niter,
            "b_bytes": (byte_coeff * pair_bytes + b_fixed) * self.niter,
            "t_io": np.zeros(n.shape),
        }


class FtBenchmark(NpbBenchmark):
    """FT: executable kernel + analytic model."""

    name = "FT"
    class_sizes = {
        ProblemClass.S: 64**3,
        ProblemClass.W: 128 * 128 * 32,
        ProblemClass.A: 256 * 256 * 128,
        ProblemClass.B: 512 * 256 * 256,
        ProblemClass.C: 512**3,
        ProblemClass.D: 2048 * 1024 * 1024,
    }
    class_iterations = {
        ProblemClass.S: 6,
        ProblemClass.W: 6,
        ProblemClass.A: 6,
        ProblemClass.B: 20,
        ProblemClass.C: 20,
        ProblemClass.D: 25,
    }
    #: (name, wc fraction, wm fraction) of the three compute sub-phases.
    #: The splits are deliberately heterogeneous: the butterfly phase is
    #: compute-rich while pack/unpack phases stream memory — which is what
    #: makes the component power traces fluctuate phase-to-phase (Fig. 10)
    #: even though FT is memory-dominated overall.
    PHASE_FRACTIONS = (
        ("evolve+fft1", 0.60, 0.15),
        ("fft2", 0.30, 0.35),
        ("unpack", 0.10, 0.50),
    )

    def __init__(
        self,
        workload: FtWorkload | None = None,
        bias: KernelBias | None = None,
    ) -> None:
        if bias is None:
            # FT's kernel runs a few percent more instructions than the
            # n·log2 n analysis (twiddle setup, boundary handling).
            bias = KernelBias(compute_scale=1.025, memory_scale=1.02)
        super().__init__(workload or FtWorkload(), bias)

    @classmethod
    def for_class(
        cls, klass: ProblemClass | str, niter: int | None = None
    ) -> tuple["FtBenchmark", float]:
        """(benchmark, n) configured for an NPB class; niter overridable."""
        klass = ProblemClass(klass)
        bench = cls(
            FtWorkload(niter=niter or cls.class_iterations.get(klass, 20))
        )
        return bench, float(cls.class_sizes[klass])

    # -- kernel ---------------------------------------------------------------

    def make_program(
        self, n: float, p: int
    ) -> Callable[[RankContext], Iterator[Op]]:
        wl: FtWorkload = self.workload  # type: ignore[assignment]
        ap = wl.params(n, p)
        plan = ft_comm_plan(n, p, wl.algorithm)
        niter = wl.niter
        bias = self.bias
        pair_bytes = int(plan["pair_bytes"])

        # analytic totals, split per rank per iteration
        wc_it = ap.total_instructions * bias.compute_scale / niter
        wm_it = ap.total_mem_accesses * bias.mem_factor(p) / niter

        def program(ctx: RankContext) -> Iterator[Op]:
            my_wc = self.split_even(wc_it, p, ctx.rank)
            my_wm = self.split_even(wm_it, p, ctx.rank)
            for _ in range(niter):
                yield from ctx.phase("compute1")
                name, wc_f, wm_f = self.PHASE_FRACTIONS[0]
                yield from ctx.compute(my_wc * wc_f, my_wm * wm_f, label=name)
                yield from ctx.phase("reduction")
                yield from collectives.allreduce(ctx, nbytes=_CHECKSUM_BYTES)
                yield from ctx.phase("compute2")
                name, wc_f, wm_f = self.PHASE_FRACTIONS[1]
                yield from ctx.compute(my_wc * wc_f, my_wm * wm_f, label=name)
                yield from ctx.phase("alltoall")
                if p > 1:
                    yield from collectives.alltoall(
                        ctx, nbytes_per_pair=pair_bytes, algorithm=wl.algorithm
                    )
                name, wc_f, wm_f = self.PHASE_FRACTIONS[2]
                yield from ctx.compute(my_wc * wc_f, my_wm * wm_f, label=name)

        return program


def ft_numpy_reference(shape: tuple[int, int, int] = (16, 16, 16), niter: int = 3):
    """A real (tiny) FT evolution: forward 3-D FFT, evolve, inverse.

    Returns the checksum series NPB FT prints; used by tests to show the
    substrate's kernels correspond to genuine computation.
    """
    rng = np.random.default_rng(314159)
    u0 = rng.random(shape) + 1j * rng.random(shape)
    u_hat = np.fft.fftn(u0)
    kx = np.fft.fftfreq(shape[0])[:, None, None]
    ky = np.fft.fftfreq(shape[1])[None, :, None]
    kz = np.fft.fftfreq(shape[2])[None, None, :]
    k2 = kx**2 + ky**2 + kz**2
    checksums = []
    for it in range(1, niter + 1):
        evolved = u_hat * np.exp(-4.0 * np.pi**2 * k2 * it * 1e-6)
        u = np.fft.ifftn(evolved)
        checksums.append(complex(u.ravel()[: 1024].sum()))
    return checksums

"""Aggregated access to every benchmark's analytic workload model.

This module is the single lookup point used by benches and examples:
``workload_for("FT", klass="B")`` returns a ready Θ2 model, and
``benchmark_for("FT", klass="B")`` the full executable benchmark plus its
problem size.  The headline trio (FT, EP, CG — the paper's §V case
studies) and the whole-suite list (Fig. 3) are exported as constants.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.npb.base import NpbBenchmark, ProblemClass
from repro.npb.cg import CgBenchmark, CgWorkload
from repro.npb.ep import EpBenchmark, EpWorkload
from repro.npb.ft import FtBenchmark, FtWorkload
from repro.npb.suite import (
    BtBenchmark,
    IsBenchmark,
    LuBenchmark,
    MgBenchmark,
    SpBenchmark,
)

#: the paper's three scalability case studies (§V-B)
HEADLINE_BENCHMARKS = ("EP", "FT", "CG")

#: the full suite used in the Dori validation (Fig. 3)
SUITE_BENCHMARKS = ("EP", "FT", "CG", "IS", "MG", "LU", "BT", "SP")

_REGISTRY: dict[str, type[NpbBenchmark]] = {
    "EP": EpBenchmark,
    "FT": FtBenchmark,
    "CG": CgBenchmark,
    "IS": IsBenchmark,
    "MG": MgBenchmark,
    "LU": LuBenchmark,
    "BT": BtBenchmark,
    "SP": SpBenchmark,
}


def benchmark_names() -> tuple[str, ...]:
    """All registered benchmark names."""
    return tuple(_REGISTRY)


def benchmark_class(name: str) -> type[NpbBenchmark]:
    """The benchmark class registered under ``name``."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown NPB benchmark {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def benchmark_for(
    name: str,
    klass: ProblemClass | str = ProblemClass.B,
    niter: int | None = None,
) -> tuple[NpbBenchmark, float]:
    """(benchmark, n) for a named benchmark at an NPB class.

    ``niter`` overrides the class's iteration count — validation harnesses
    use this to time-sample long-running codes (model and kernel stay
    consistent because both read the workload's ``niter``).
    """
    cls = benchmark_class(name)
    if name.upper() == "EP":
        if niter is not None and niter != 1:
            raise ConfigurationError("EP has no iteration structure")
        return cls.for_class(klass)  # type: ignore[attr-defined]
    return cls.for_class(klass, niter=niter)  # type: ignore[attr-defined]


def workload_for(
    name: str,
    klass: ProblemClass | str = ProblemClass.B,
    niter: int | None = None,
):
    """Just the analytic Θ2 model (with its problem size) for a benchmark."""
    bench, n = benchmark_for(name, klass, niter)
    return bench.workload, n


__all__ = [
    "HEADLINE_BENCHMARKS",
    "SUITE_BENCHMARKS",
    "benchmark_names",
    "benchmark_class",
    "benchmark_for",
    "workload_for",
    "FtWorkload",
    "EpWorkload",
    "CgWorkload",
    "FtBenchmark",
    "EpBenchmark",
    "CgBenchmark",
    "IsBenchmark",
    "MgBenchmark",
    "LuBenchmark",
    "BtBenchmark",
    "SpBenchmark",
]

"""NAS Parallel Benchmark abstractions: problem classes and kernels.

Each benchmark couples an *analytic workload model* (Θ2 as a function of
problem size ``n`` and parallelism ``p`` — what the iso-energy-efficiency
model consumes) with an *executable simulated kernel* (a rank program that
issues the corresponding compute/memory/message operations to the
discrete-event engine — what PowerPack measures).

The kernels deliberately deviate from their analytic models in small,
systematic ways (remainder imbalance, per-phase constants, access-pattern
biases configured per benchmark) — these deviations, plus engine noise,
are what make the validation experiments (Figs. 3–4) honest rather than a
model compared against itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator, Protocol

from repro.core.parameters import AppParams
from repro.errors import ConfigurationError
from repro.simmpi.program import Op, RankContext


class ProblemClass(str, Enum):
    """Standard NPB problem classes (S = sample … D = large)."""

    S = "S"
    W = "W"
    A = "A"
    B = "B"
    C = "C"
    D = "D"


class NpbWorkload(Protocol):
    """Analytic Θ2 model of one benchmark (the model-facing half)."""

    alpha: float

    def params(self, n: float, p: int) -> AppParams: ...


@dataclass(frozen=True)
class KernelBias:
    """Systematic kernel-vs-model deviations (the honest-validation knobs).

    Parameters
    ----------
    compute_scale:
        Multiplier on issued instructions vs. the analytic Wc+Wco.
    memory_scale:
        Multiplier on issued memory accesses at p=1.
    memory_scale_parallel:
        Additional memory-traffic growth saturating with p:
        issued ``= analytic · (memory_scale + memory_scale_parallel·(1−1/p))``.
        Models partition-dependent cache behaviour the analytic Wm misses
        (the paper attributes CG's 8.3% error to exactly this).
    """

    compute_scale: float = 1.0
    memory_scale: float = 1.0
    memory_scale_parallel: float = 0.0

    def mem_factor(self, p: int) -> float:
        return self.memory_scale + self.memory_scale_parallel * (1.0 - 1.0 / p)


class NpbBenchmark:
    """Base class binding a workload model, sizes, and a kernel factory."""

    #: benchmark name, e.g. "FT"
    name: str = "?"
    #: problem sizes per class (the meaning of n is benchmark-specific)
    class_sizes: dict[ProblemClass, float] = {}
    #: iterations actually simulated per class (kernels may time-sample)
    class_iterations: dict[ProblemClass, int] = {}
    #: effective-CPI multiplier for this code's instruction mix (the paper
    #: measures tc per application; see SimConfig.cpi_factor)
    cpi_factor: float = 1.0

    def __init__(self, workload: NpbWorkload, bias: KernelBias | None = None) -> None:
        self.workload = workload
        self.bias = bias or KernelBias()

    # -- sizes ---------------------------------------------------------------

    def n_for_class(self, cls: ProblemClass | str) -> float:
        cls = ProblemClass(cls)
        try:
            return self.class_sizes[cls]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no class {cls.value}"
            ) from None

    def iterations_for_class(self, cls: ProblemClass | str) -> int:
        cls = ProblemClass(cls)
        return self.class_iterations.get(cls, 1)

    # -- model-facing --------------------------------------------------------

    def app_params(self, n: float, p: int) -> AppParams:
        """Θ2 for (n, p) from the analytic workload model."""
        return self.workload.params(n, p)

    @property
    def alpha(self) -> float:
        return self.workload.alpha

    # -- kernel-facing --------------------------------------------------------

    def make_program(
        self, n: float, p: int
    ) -> Callable[[RankContext], Iterator[Op]]:
        """Build the rank program for an (n, p) run.  Subclasses override."""
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------------

    @staticmethod
    def split_even(total: float, p: int, rank: int) -> float:
        """Rank ``rank``'s share of ``total`` under block distribution.

        Uses integer-style remainder assignment: the first ``total % p``
        conceptual units land on low ranks, creating the slight imbalance
        real block distributions have (a model-vs-kernel deviation).
        """
        if p < 1:
            raise ConfigurationError("p must be >= 1")
        base = math.floor(total / p)
        remainder = total - base * p
        extra = 1.0 if rank < remainder and remainder >= 1.0 else 0.0
        if rank == 0 and remainder < 1.0:
            extra = remainder  # fractional crumbs go to rank 0
        return base + extra

"""The model-vs-measurement harness (Figures 3 and 4).

``validate()`` performs one complete experiment: build the benchmark,
derive the machine vector, predict total energy with the
iso-energy-efficiency model (Eq. 15), execute the benchmark kernel on the
simulated cluster under realistic noise, measure its energy with the
PowerPack profiler, and report the prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.model import IsoEnergyModel
from repro.errors import ConfigurationError
from repro.npb.base import NpbBenchmark, ProblemClass
from repro.npb.workloads import benchmark_for
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine, SimResult
from repro.simmpi.noise import NoiseModel


@dataclass(frozen=True)
class ValidationResult:
    """One model-vs-measurement comparison."""

    benchmark: str
    n: float
    p: int
    predicted_j: float
    measured_j: float
    sim_seconds: float
    model_seconds: float
    messages: int
    bytes: int

    @property
    def error(self) -> float:
        """Signed relative error: (predicted − measured)/measured."""
        return (self.predicted_j - self.measured_j) / self.measured_j

    @property
    def abs_error_pct(self) -> float:
        """|error| in percent — the Fig. 3/4 quantity."""
        return abs(self.error) * 100.0

    def row(self) -> tuple:
        return (
            self.benchmark,
            self.p,
            round(self.measured_j, 1),
            round(self.predicted_j, 1),
            round(self.abs_error_pct, 2),
        )


def default_noise(seed: int) -> NoiseModel:
    """The harness's standard execution-noise model."""
    return NoiseModel(
        seed=seed,
        cpu_sigma=0.015,
        mem_sigma=0.03,
        net_sigma=0.05,
        os_noise_rate=0.01,
        os_noise_duration=0.002,
    )


def run_benchmark(
    cluster: Cluster,
    bench: NpbBenchmark,
    n: float,
    p: int,
    seed: int = 0,
    congestion_beta: float = 0.004,
    procs_per_node: int = 1,
) -> SimResult:
    """Execute a benchmark kernel on the cluster under harness noise."""
    if p > len(cluster) * procs_per_node:
        raise ConfigurationError(
            f"p={p} exceeds {len(cluster)} nodes × {procs_per_node} ppn"
        )
    config = SimConfig(
        alpha=bench.alpha,
        procs_per_node=procs_per_node,
        noise=default_noise(seed),
        congestion_beta=congestion_beta,
        cpi_factor=bench.cpi_factor,
    )
    engine = SimEngine(cluster, config)
    return engine.run(bench.make_program(n, p), size=p)


def validate(
    cluster: Cluster,
    benchmark: str,
    klass: ProblemClass | str = ProblemClass.B,
    p: int = 4,
    niter: int | None = None,
    seed: int = 0,
    congestion_beta: float = 0.004,
) -> ValidationResult:
    """One Fig.-3-style experiment: predict vs. measure total energy.

    ``niter`` time-samples long benchmarks (model and kernel both use the
    reduced count, so the comparison stays apples-to-apples; total-energy
    magnitudes scale accordingly).
    """
    bench, n = benchmark_for(benchmark, klass, niter)
    _bind_to_cluster(bench, cluster)
    machine = _machine_for(cluster, bench)
    model = IsoEnergyModel(machine, bench.workload, name=f"{benchmark} on {cluster.name}")
    predicted = model.predict_energy(n=n, p=p)
    model_tp = model.evaluate(n=n, p=p).tp

    result = run_benchmark(
        cluster, bench, n, p, seed=seed, congestion_beta=congestion_beta
    )
    measured = PowerProfiler(cluster).measure_energy(result)
    return ValidationResult(
        benchmark=bench.name,
        n=n,
        p=p,
        predicted_j=predicted,
        measured_j=measured,
        sim_seconds=result.total_time,
        model_seconds=model_tp,
        messages=result.trace.m_total,
        bytes=result.trace.b_total,
    )


def validate_suite(
    cluster: Cluster,
    benchmarks: tuple[str, ...],
    klass: ProblemClass | str = ProblemClass.B,
    p: int = 4,
    niter_overrides: dict[str, int] | None = None,
    seed: int = 0,
) -> list[ValidationResult]:
    """Fig. 3: whole-suite validation at one parallelism level."""
    niter_overrides = niter_overrides or {}
    return [
        validate(
            cluster,
            name,
            klass=klass,
            p=p,
            niter=niter_overrides.get(name),
            seed=seed + i,
        )
        for i, name in enumerate(benchmarks)
    ]


def _machine_for(cluster: Cluster, bench: NpbBenchmark):
    from repro.validation.calibration import derive_machine_params

    return derive_machine_params(cluster, cpi_factor=bench.cpi_factor)


def _bind_to_cluster(bench: NpbBenchmark, cluster: Cluster) -> None:
    """Give cache-aware kernels the machine's real last-level capacity.

    Only kernels carry cache models (the analytic Θ2 stays machine-blind,
    per the paper's Table-2 forms) — this is where CG's machine-dependent
    memory behaviour enters the *measured* side of validation.
    """
    if hasattr(bench, "l2_capacity") and cluster.head.memory.levels:
        bench.l2_capacity = cluster.head.memory.levels[-1].capacity

"""Validation campaigns: error-vs-parallelism sweeps and efficiency curves.

``error_by_parallelism`` produces Figure 4 (mean |error| per benchmark
over p = 1..128); ``efficiency_study`` produces the Figure-2 curves
(measured performance efficiency and energy efficiency vs. CPU count,
with the model's predictions alongside).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.model import IsoEnergyModel
from repro.errors import ConfigurationError
from repro.npb.base import ProblemClass
from repro.npb.workloads import benchmark_for
from repro.powerpack.profiler import PowerProfiler
from repro.validation.calibration import derive_machine_params
from repro.validation.harness import (
    ValidationResult,
    _bind_to_cluster,
    run_benchmark,
    validate,
)


def error_by_parallelism(
    cluster: Cluster,
    benchmark: str,
    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    klass: ProblemClass | str = ProblemClass.B,
    niter: int | None = None,
    seeds: tuple[int, ...] = (0,),
) -> list[ValidationResult]:
    """Validation at every parallelism level (the raw data behind Fig. 4)."""
    results = []
    for p in p_values:
        if p > len(cluster):
            raise ConfigurationError(
                f"p={p} exceeds the {len(cluster)}-node cluster; "
                "build a larger preset"
            )
        for seed in seeds:
            results.append(
                validate(cluster, benchmark, klass=klass, p=p, niter=niter, seed=seed)
            )
    return results


def mean_error_table(
    results_by_benchmark: dict[str, list[ValidationResult]],
) -> list[tuple[str, float]]:
    """(benchmark, mean |error| %) rows — Figure 4's bar heights."""
    rows = []
    for name, results in results_by_benchmark.items():
        if not results:
            raise ConfigurationError(f"no results for {name}")
        rows.append(
            (name, sum(r.abs_error_pct for r in results) / len(results))
        )
    return rows


@dataclass(frozen=True)
class EfficiencyPoint:
    """One point of a Figure-2 curve."""

    p: int
    measured_perf_eff: float
    measured_energy_eff: float
    model_perf_eff: float
    model_energy_eff: float
    measured_seconds: float
    measured_joules: float


def efficiency_study(
    cluster: Cluster,
    benchmark: str,
    p_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    klass: ProblemClass | str = ProblemClass.B,
    niter: int | None = None,
    seed: int = 0,
) -> list[EfficiencyPoint]:
    """Measured + modeled efficiency curves vs. CPU count (Figs. 2a/2b).

    Performance efficiency is ``T1/(p·Tp)`` and energy efficiency is
    ``E1/Ep``, both relative to the measured single-CPU run — the paper's
    "relative to the smallest node configuration" framing.
    """
    if 1 not in p_values:
        p_values = (1,) + tuple(p_values)
    bench, n = benchmark_for(benchmark, klass, niter)
    _bind_to_cluster(bench, cluster)
    machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
    model = IsoEnergyModel(machine, bench.workload, name=benchmark)
    profiler = PowerProfiler(cluster)

    baseline_run = run_benchmark(cluster, bench, n, 1, seed=seed)
    t1 = baseline_run.total_time
    e1 = profiler.measure_energy(baseline_run)

    points = []
    for p in sorted(set(p_values)):
        if p == 1:
            run_t, run_e = t1, e1
        else:
            run = run_benchmark(cluster, bench, n, p, seed=seed + p)
            run_t = run.total_time
            run_e = profiler.measure_energy(run)
        mp = model.evaluate(n=n, p=p)
        points.append(
            EfficiencyPoint(
                p=p,
                measured_perf_eff=t1 / (p * run_t),
                measured_energy_eff=e1 / run_e,
                model_perf_eff=mp.perf_efficiency,
                model_energy_eff=mp.ee,
                measured_seconds=run_t,
                measured_joules=run_e,
            )
        )
    return points

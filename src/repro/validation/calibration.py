"""Parameter calibration: derive Θ1 from measurement, Θ2 from counters.

Two routes to the machine vector:

* :func:`derive_machine_params` — read the cluster's specifications
  directly (exact; used when the study's subject is the model itself).
* :func:`calibrate_machine_params` — run the microbenchmark toolchain
  (Perfmon CPI loop, lat_mem_rd, MPPTest, PowerPack idle/active runs)
  and build Θ1 from the observations, measurement noise included — the
  paper's §IV-B procedure.

And one route to the application vector: :func:`measure_app_params` runs
an instrumented benchmark, harvests counters and the PMPI trace, and
returns the Θ2 a practitioner would obtain (vs. the analytic Θ2 a model
builder writes down).

:func:`calibrated_model` closes the loop for the optimizer stack: a
solver-ready :class:`~repro.core.model.IsoEnergyModel` whose Θ1 comes
from the measurement toolchain (noise included) instead of the exact
hardware read — the budget/deadline solvers and, through
:func:`repro.hetero.space.pool_from_machine`, the heterogeneous
allocation solvers run on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.parameters import AppParams, MachineParams
from repro.errors import CalibrationError
from repro.microbench.lmbench import estimate_tm
from repro.microbench.mpptest import estimate_ts_tw
from repro.microbench.perfmon import measure_counters, measure_cpi
from repro.microbench.procstat import total_io_seconds
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine, SimResult
from repro.simmpi.noise import NoiseModel


def derive_machine_params(
    cluster: Cluster,
    cpi_factor: float = 1.0,
    f: float | None = None,
) -> MachineParams:
    """Θ1 straight from the cluster's hardware description (exact)."""
    node = cluster.head
    if f is not None and abs(f - node.frequency) > 0.5:
        node = node.at_frequency(f)
    freq = node.frequency
    cpi = node.cpu.base_cpi * cpi_factor
    return MachineParams(
        tc=cpi / freq,
        tm=node.memory.tm,
        ts=node.nic.ts,
        tw=node.nic.tw,
        delta_pc=node.power.cpu.delta_p,
        delta_pm=node.power.memory.delta_p,
        delta_pio=node.power.io.delta_p,
        pc_idle=node.power.cpu.p_idle,
        pm_idle=node.power.memory.p_idle,
        pio_idle=node.power.io.p_idle,
        p_others=node.power.others,
        f=freq,
        f_ref=node.cpu.power.f_ref,
        gamma=node.cpu.power.gamma,
        gamma_idle=node.cpu.power.gamma_idle,
        cpi=cpi,
    )


@dataclass(frozen=True)
class CalibratedMachine:
    """Measured Θ1 plus the raw observations that produced it."""

    params: MachineParams
    measured_cpi: float
    measured_tm: float
    measured_ts: float
    measured_tw: float
    idle_power: dict[str, float]
    delta_pc: float
    delta_pm: float


def calibrate_machine_params(
    cluster: Cluster,
    cpi_factor: float = 1.0,
    seed: int = 0,
    noise: NoiseModel | None = None,
) -> CalibratedMachine:
    """Θ1 via the full measurement toolchain (the paper's §IV-B).

    Timing parameters come from the Perfmon CPI loop, the lat_mem_rd
    sweep, and the MPPTest ping-pong fit.  Power levels come from three
    PowerPack-profiled runs: a pure-idle run (component floors), a pure-
    compute run (ΔPc), and a memory-stress run (ΔPm).
    """
    noise = noise or NoiseModel(seed=seed)
    cpi, tc = measure_cpi(cluster, cpi_factor=cpi_factor, noise=noise)
    tm = estimate_tm(cluster.head, seed=seed)
    ts, tw = estimate_ts_tw(cluster, noise=noise)
    profiler = PowerProfiler(cluster)

    # --- idle floors -----------------------------------------------------------
    def idle_prog(ctx):
        yield from ctx.sleep(10.0)

    idle_run = SimEngine(cluster, SimConfig()).run(idle_prog, size=1)
    idle_e = profiler.exact_component_energies(idle_run)
    t = idle_run.total_time
    idle_power = {comp: e / t for comp, e in idle_e.items()}

    # --- ΔPc from a compute-bound run -------------------------------------------
    def compute_prog(ctx):
        yield from ctx.compute(instructions=2e9, mem_accesses=0.0)

    crun = SimEngine(
        cluster, SimConfig(cpi_factor=cpi_factor, noise=noise)
    ).run(compute_prog, size=1)
    ce = profiler.exact_component_energies(crun)
    cpu_active = sum(s.cpu_active for s in crun.segments)
    if cpu_active <= 0:
        raise CalibrationError("compute calibration produced no CPU activity")
    delta_pc = (ce["cpu"] - idle_power["cpu"] * crun.total_time) / cpu_active

    # --- ΔPm from a memory-bound run ----------------------------------------------
    def memory_prog(ctx):
        yield from ctx.compute(instructions=1e6, mem_accesses=2e7)

    mrun = SimEngine(cluster, SimConfig(noise=noise)).run(memory_prog, size=1)
    me = profiler.exact_component_energies(mrun)
    mem_active = sum(s.mem_active for s in mrun.segments)
    if mem_active <= 0:
        raise CalibrationError("memory calibration produced no memory activity")
    delta_pm = (me["memory"] - idle_power["memory"] * mrun.total_time) / mem_active

    node = cluster.head
    params = MachineParams(
        tc=tc,
        tm=tm,
        ts=ts,
        tw=tw,
        delta_pc=max(delta_pc, 0.0),
        delta_pm=max(delta_pm, 0.0),
        delta_pio=node.power.io.delta_p,  # exercised only by I/O tests
        pc_idle=idle_power["cpu"],
        pm_idle=idle_power["memory"],
        pio_idle=idle_power["io"],
        p_others=idle_power["motherboard"],
        f=node.frequency,
        f_ref=node.cpu.power.f_ref,
        gamma=node.cpu.power.gamma,
        gamma_idle=node.cpu.power.gamma_idle,
        cpi=cpi,
    )
    return CalibratedMachine(
        params=params,
        measured_cpi=cpi,
        measured_tm=tm,
        measured_ts=ts,
        measured_tw=tw,
        idle_power=idle_power,
        delta_pc=delta_pc,
        delta_pm=delta_pm,
    )


def calibrated_model(
    cluster: Cluster | str,
    benchmark: str,
    klass: str = "B",
    niter: int | None = None,
    *,
    seed: int = 0,
    noise: NoiseModel | None = None,
    workload=None,
    name: str | None = None,
):
    """(model, n) on *measured* Θ1 — the calibrated twin of ``paper_model``.

    Runs the §IV-B measurement toolchain (:func:`calibrate_machine_params`,
    with the workload's CPI correction and seeded measurement noise) and
    binds the fitted Θ1 to the benchmark's Θ2 model.  The returned
    :class:`~repro.core.model.IsoEnergyModel` drops into every grid/
    budget/deadline/Pareto solver in place of the analytic preset —
    recommendation stability across seeds is the signal that a
    measurement campaign suffices to drive the optimizer.

    ``workload`` optionally substitutes a fitted Θ2 source (anything
    with ``params(n, p)``, e.g. built from :func:`measure_app_params` +
    :func:`split_overheads` + :func:`fit_workload_scaling`); the
    analytic model is the default first slice.
    """
    from repro.cluster.presets import cluster_preset
    from repro.core.model import IsoEnergyModel
    from repro.npb.workloads import benchmark_for

    # two nodes: the MPPTest ping-pong fit needs a partner rank
    machine_room = (
        cluster_preset(cluster, 2) if isinstance(cluster, str) else cluster
    )
    bench, n = benchmark_for(benchmark, klass, niter)
    calibrated = calibrate_machine_params(
        machine_room, cpi_factor=bench.cpi_factor, seed=seed, noise=noise
    )
    model = IsoEnergyModel(
        calibrated.params,
        workload if workload is not None else bench.workload,
        name=name
        or f"{bench.name}.{klass.upper()} on {machine_room.name} "
           f"[calibrated seed={seed}]",
    )
    return model, n


def measure_app_params(result: SimResult, alpha: float) -> AppParams:
    """Θ2 as a practitioner measures it: counters + PMPI trace.

    Returns the *observed* totals of a parallel run (instructions, memory
    accesses, messages, bytes).  Overheads cannot be split from base
    workload by observation alone — that needs the p=1 reference run;
    :func:`split_overheads` does the subtraction.
    """
    report = measure_counters(result)
    return AppParams(
        alpha=alpha,
        wc=report.instructions,
        wm=report.mem_accesses,
        m_messages=result.trace.m_total,
        b_bytes=result.trace.b_total,
        t_io=total_io_seconds(result),
        p=result.size if result.size > 1 else 1,
    )


def split_overheads(sequential: AppParams, parallel: AppParams) -> AppParams:
    """Derive (Wco, Wmo) by subtracting the p=1 reference (Table 2).

    ``Wco = Wc(p) − Wc(1)`` and likewise for memory — exactly how the
    paper separates base workload from parallelization overhead.
    """
    wco = parallel.wc - sequential.wc
    wmo = parallel.wm - sequential.wm
    if wco < -0.01 * sequential.wc or wmo < -0.01 * max(sequential.wm, 1.0):
        raise CalibrationError(
            "parallel run retired less work than sequential run; "
            "check that both executed the same problem size"
        )
    return AppParams(
        alpha=parallel.alpha,
        wc=sequential.wc,
        wm=sequential.wm,
        wco=max(wco, 0.0),
        wmo=max(wmo, 0.0),
        m_messages=parallel.m_messages,
        b_bytes=parallel.b_bytes,
        t_io=parallel.t_io,
        n=parallel.n,
        p=parallel.p,
    )


def fit_workload_scaling(ns, values, form: str = "linear") -> float:
    """Fit one coefficient of a Table-2 scaling form by least squares.

    Supported forms: ``"linear"`` (W = c·n), ``"nlogn"`` (W = c·n·log2 n).
    Returns the coefficient c — e.g. the paper's ``109.4`` for EP's Wc.
    """
    ns = np.asarray(ns, dtype=float)
    values = np.asarray(values, dtype=float)
    if ns.shape != values.shape or len(ns) == 0:
        raise CalibrationError("need aligned, non-empty samples")
    if form == "linear":
        basis = ns
    elif form == "nlogn":
        if np.any(ns < 2):
            raise CalibrationError("nlogn form needs n >= 2")
        basis = ns * np.log2(ns)
    else:
        raise CalibrationError(f"unknown scaling form {form!r}")
    denom = float(basis @ basis)
    if denom == 0:
        raise CalibrationError("degenerate basis")
    return float((basis @ values) / denom)

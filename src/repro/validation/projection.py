"""Small-scale → large-scale projection (the §V-A methodology).

"We use measurements from smaller configurations to predict and analyze
power-performance tradeoffs on larger systems": machine parameters come
from the microbenchmarks on a small slice, application overhead
coefficients are *fitted* from instrumented runs at a few small p, and
the resulting model projects to processor counts never executed.

:func:`fit_projected_workload` performs the coefficient fits (least
squares on the Table-2 forms), returning a :class:`ProjectedWorkload`
that implements the WorkloadModel protocol — drop-in for
:class:`~repro.core.model.IsoEnergyModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.parameters import AppParams
from repro.errors import CalibrationError
from repro.microbench.perfmon import measure_counters
from repro.npb.base import NpbBenchmark
from repro.simmpi.engine import SimConfig, SimEngine
from repro.simmpi.noise import NoiseModel


@dataclass
class ProjectedWorkload:
    """Θ2 model with coefficients fitted from small-scale measurement.

    Functional forms (per the paper's Table-2 discussion): base workload
    measured directly at p=1; overheads fitted as ``Wco = a·g(p)`` and
    ``Wmo = b·g(p)`` with ``g(p) = 1 − 1/p`` (saturating) or ``log2 p``
    (growing), whichever fits better; communication projected from the
    benchmark's own comm plan (message patterns are algorithmically
    known — only workload coefficients need fitting).
    """

    alpha: float
    wc_base: float
    wm_base: float
    wco_coeff: float
    wco_form: str
    wmo_coeff: float
    wmo_form: str
    comm_model: object  # the benchmark's analytic workload (for M, B)
    n: float

    @staticmethod
    def _g(form: str, p: int) -> float:
        if p == 1:
            return 0.0
        if form == "saturating":
            return 1.0 - 1.0 / p
        if form == "log":
            return math.log2(p)
        raise CalibrationError(f"unknown overhead form {form!r}")

    def params(self, n: float, p: int) -> AppParams:
        if abs(n - self.n) > 1e-6 * self.n:
            # base workload rescales with n; forms are per-point rates
            scale = n / self.n
        else:
            scale = 1.0
        m, b = self.comm_model.comm(n, p)
        return AppParams(
            alpha=self.alpha,
            wc=self.wc_base * scale,
            wm=self.wm_base * scale,
            wco=self.wco_coeff * scale * self._g(self.wco_form, p),
            wmo=self.wmo_coeff * scale * self._g(self.wmo_form, p),
            m_messages=m,
            b_bytes=b,
            n=n,
            p=p,
        )


def _fit_form(ps: list[int], values: list[float]) -> tuple[float, str, float]:
    """Fit value = c·g(p) for both forms; return (c, form, residual)."""
    best: tuple[float, str, float] | None = None
    for form in ("saturating", "log"):
        basis = np.array([ProjectedWorkload._g(form, p) for p in ps])
        v = np.asarray(values)
        denom = float(basis @ basis)
        if denom == 0:
            continue
        c = float((basis @ v) / denom)
        resid = float(np.sum((v - c * basis) ** 2))
        if best is None or resid < best[2]:
            best = (max(c, 0.0), form, resid)
    if best is None:
        raise CalibrationError("could not fit any overhead form")
    return best


def fit_projected_workload(
    cluster: Cluster,
    bench: NpbBenchmark,
    n: float,
    calibration_ps: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> ProjectedWorkload:
    """Measure the benchmark at small p and fit a projectable Θ2 model.

    Runs instrumented executions at each calibration p, measures
    (Wc, Wm) with the counter tool, derives overheads against the p=1
    reference, and least-squares fits the overhead growth forms.
    """
    if 1 not in calibration_ps:
        raise CalibrationError("calibration must include the p=1 reference")
    if len(calibration_ps) < 3:
        raise CalibrationError("need at least 3 calibration points to fit forms")

    config = SimConfig(
        alpha=bench.alpha,
        cpi_factor=bench.cpi_factor,
        noise=NoiseModel(seed=seed),
    )
    measured: dict[int, tuple[float, float]] = {}
    for p in calibration_ps:
        run = SimEngine(cluster, config).run(bench.make_program(n, p), size=p)
        rep = measure_counters(run)
        measured[p] = (rep.instructions, rep.mem_accesses)

    wc1, wm1 = measured[1]
    ps = [p for p in calibration_ps if p > 1]
    wco_obs = [max(measured[p][0] - wc1, 0.0) for p in ps]
    wmo_obs = [max(measured[p][1] - wm1, 0.0) for p in ps]
    wco_c, wco_form, _ = _fit_form(ps, wco_obs)
    wmo_c, wmo_form, _ = _fit_form(ps, wmo_obs)

    return ProjectedWorkload(
        alpha=bench.alpha,
        wc_base=wc1,
        wm_base=wm1,
        wco_coeff=wco_c,
        wco_form=wco_form,
        wmo_coeff=wmo_c,
        wmo_form=wmo_form,
        comm_model=bench.workload,
        n=n,
    )


@dataclass(frozen=True)
class ProjectionReport:
    """Accuracy of a small-scale-calibrated model at large p."""

    p: int
    predicted_j: float
    measured_j: float

    @property
    def abs_error_pct(self) -> float:
        return abs(self.predicted_j - self.measured_j) / self.measured_j * 100


def verify_projection(
    cluster: Cluster,
    bench: NpbBenchmark,
    n: float,
    projected: ProjectedWorkload,
    target_ps: tuple[int, ...],
    seed: int = 100,
) -> list[ProjectionReport]:
    """Execute at the (large) target scales and score the projection."""
    from repro.core.model import IsoEnergyModel
    from repro.powerpack.profiler import PowerProfiler
    from repro.validation.calibration import derive_machine_params
    from repro.validation.harness import run_benchmark

    machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
    model = IsoEnergyModel(machine, projected, name=f"{bench.name} projected")
    profiler = PowerProfiler(cluster)
    reports = []
    for p in target_ps:
        predicted = model.predict_energy(n=n, p=p)
        run = run_benchmark(cluster, bench, n, p, seed=seed + p)
        measured = profiler.measure_energy(run)
        reports.append(
            ProjectionReport(p=p, predicted_j=predicted, measured_j=measured)
        )
    return reports

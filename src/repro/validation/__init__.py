"""Model validation: calibrate Θ1/Θ2, run, measure, predict, compare.

This subpackage implements the paper's Section IV methodology: machine
parameters derived from microbenchmarks, application parameters from
hardware counters and message traces, then total-energy predictions
compared against PowerPack measurements — per benchmark (Fig. 3) and per
parallelism level (Fig. 4).
"""

from repro.validation.calibration import (
    CalibratedMachine,
    calibrate_machine_params,
    derive_machine_params,
    fit_workload_scaling,
    measure_app_params,
)
from repro.validation.harness import (
    ValidationResult,
    run_benchmark,
    validate,
    validate_suite,
)
from repro.validation.study import (
    EfficiencyPoint,
    efficiency_study,
    error_by_parallelism,
    mean_error_table,
)

__all__ = [
    "CalibratedMachine",
    "calibrate_machine_params",
    "derive_machine_params",
    "fit_workload_scaling",
    "measure_app_params",
    "ValidationResult",
    "run_benchmark",
    "validate",
    "validate_suite",
    "EfficiencyPoint",
    "efficiency_study",
    "error_by_parallelism",
    "mean_error_table",
]

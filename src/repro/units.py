"""Unit constants and conversion helpers.

All quantities inside :mod:`repro` are stored in base SI units:

* time    — seconds
* power   — watts
* energy  — joules
* rate    — hertz (clock frequency), bytes/second (bandwidth)

The constants here exist so call sites can say ``2.8 * GHZ`` or
``latency=96 * NANO`` instead of sprinkling bare exponents around, and so
tests can assert round-trips through the helpers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# SI prefixes (scale factors relative to the base unit)
# ---------------------------------------------------------------------------

NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Frequency
HZ = 1.0
KHZ = KILO
MHZ = MEGA
GHZ = GIGA

# Time
SECOND = 1.0
MS = MILLI
US = MICRO
NS = NANO

# Data sizes (binary for capacities, decimal for link rates — matching how
# vendors quote DRAM capacity vs. network bandwidth)
BYTE = 1
KIB = 1024
MIB = 1024**2
GIB = 1024**3

# Link rates are quoted in bits/second by vendors; we store bytes/second.
BITS_PER_BYTE = 8


def gbit_per_s(gbits: float) -> float:
    """Convert a link rate quoted in Gbit/s to bytes/second."""
    return gbits * GIGA / BITS_PER_BYTE


def bytes_per_s_to_gbit(rate: float) -> float:
    """Convert bytes/second back to Gbit/s (inverse of :func:`gbit_per_s`)."""
    return rate * BITS_PER_BYTE / GIGA


def seconds_to_ns(t: float) -> float:
    """Express a duration in nanoseconds."""
    return t / NANO


def ns_to_seconds(t_ns: float) -> float:
    """Express a nanosecond duration in seconds."""
    return t_ns * NANO


def joules_to_kwh(e: float) -> float:
    """Express energy in kilowatt-hours (for operator-facing reports)."""
    return e / 3.6e6


def watts(power: float) -> float:
    """Identity helper used for call-site readability."""
    return float(power)

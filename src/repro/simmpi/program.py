"""Rank program API and the activity timeline.

A rank program is a generator function ``def program(ctx): ...`` that
yields operation objects.  :class:`RankContext` provides the MPI-flavoured
surface; every method is used with ``yield from`` so collectives composed
of many point-to-point steps read naturally::

    def program(ctx):
        yield from ctx.compute(instructions=1e9, mem_accesses=1e7)
        yield from ctx.exchange(dst=(ctx.rank+1) % ctx.size,
                                src=(ctx.rank-1) % ctx.size,
                                nbytes=65536)
        yield from collectives.alltoall(ctx, nbytes_per_pair=4096)

The engine translates operations into virtual time and records
:class:`Segment` entries — the activity timeline PowerPack integrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import RankError


# ---------------------------------------------------------------------------
# Operations (internal protocol between programs and the engine)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComputeOp:
    """On-chip work plus off-chip accesses, overlappable per SimConfig.alpha."""

    instructions: float
    mem_accesses: float
    label: str = ""


@dataclass(frozen=True)
class IoOp:
    """Blocking I/O of a fixed duration (the paper's flat I/O model)."""

    duration: float
    label: str = ""


@dataclass(frozen=True)
class SleepOp:
    """Pure idle time: the clock advances, nothing draws active power.

    Used by measurement tools to observe a node's idle power floor and by
    failure-injection tests to stagger ranks.
    """

    duration: float


@dataclass(frozen=True)
class SendPost:
    dst: int
    nbytes: int
    tag: int


@dataclass(frozen=True)
class RecvPost:
    src: int
    tag: int


@dataclass(frozen=True)
class CommOp:
    """A set of posted sends/recvs completed together (isend/irecv+waitall)."""

    posts: tuple[SendPost | RecvPost, ...]
    label: str = ""


@dataclass(frozen=True)
class PhaseMark:
    """Marks entry into a named phase (for the tracer's per-phase stats)."""

    name: str


Op = ComputeOp | IoOp | SleepOp | CommOp | PhaseMark


# ---------------------------------------------------------------------------
# Timeline segments (engine output)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One interval of a rank's activity timeline.

    ``cpu_active``, ``mem_active``, ``net_active`` and ``io_active`` are
    *active-seconds within the segment* — they may each be less than the
    wall duration (waiting) and their sum may exceed it (overlap), which is
    exactly how the model's energy accounting treats α (§VI-F).

    ``instructions`` and ``mem_ops`` carry the exact operation counts of
    work segments — what a hardware counter (the Perfmon analog) reads.
    """

    rank: int
    node: int
    t0: float
    t1: float
    kind: str  # "work" | "comm" | "wait" | "io"
    cpu_active: float = 0.0
    mem_active: float = 0.0
    net_active: float = 0.0
    io_active: float = 0.0
    instructions: float = 0.0
    mem_ops: float = 0.0
    phase: str = ""

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise RankError(f"segment ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


# ---------------------------------------------------------------------------
# RankContext
# ---------------------------------------------------------------------------


class RankContext:
    """Per-rank handle passed to program generators."""

    def __init__(self, rank: int, size: int) -> None:
        if size < 1:
            raise RankError("communicator size must be >= 1")
        if not (0 <= rank < size):
            raise RankError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size

    # -- compute / io ---------------------------------------------------------

    def compute(
        self, instructions: float, mem_accesses: float = 0.0, label: str = ""
    ) -> Iterator[Op]:
        """Execute ``instructions`` on-chip ops and ``mem_accesses`` loads."""
        if instructions < 0 or mem_accesses < 0:
            raise RankError("work amounts must be non-negative")
        if instructions == 0 and mem_accesses == 0:
            return
        yield ComputeOp(instructions=instructions, mem_accesses=mem_accesses, label=label)

    def io(self, duration: float, label: str = "") -> Iterator[Op]:
        """Block on I/O for ``duration`` seconds."""
        if duration < 0:
            raise RankError("io duration must be non-negative")
        if duration == 0:
            return
        yield IoOp(duration=duration, label=label)

    def sleep(self, duration: float) -> Iterator[Op]:
        """Idle for ``duration`` seconds (no active power drawn)."""
        if duration < 0:
            raise RankError("sleep duration must be non-negative")
        if duration == 0:
            return
        yield SleepOp(duration=duration)

    # -- point-to-point ---------------------------------------------------------

    def send(self, dst: int, nbytes: int, tag: int = 0) -> Iterator[Op]:
        """Blocking send of ``nbytes`` to ``dst``."""
        self._check_peer(dst)
        self._check_bytes(nbytes)
        yield CommOp(posts=(SendPost(dst=dst, nbytes=nbytes, tag=tag),))

    def recv(self, src: int, tag: int = 0) -> Iterator[Op]:
        """Blocking receive from ``src``."""
        self._check_peer(src)
        yield CommOp(posts=(RecvPost(src=src, tag=tag),))

    def exchange(
        self, dst: int, src: int, nbytes: int, tag: int = 0
    ) -> Iterator[Op]:
        """MPI_Sendrecv: post a send to ``dst`` and a recv from ``src``.

        Both complete before the rank continues; posting them together is
        what makes pairwise-exchange patterns deadlock-free.
        """
        self._check_peer(dst)
        self._check_peer(src)
        self._check_bytes(nbytes)
        yield CommOp(
            posts=(
                SendPost(dst=dst, nbytes=nbytes, tag=tag),
                RecvPost(src=src, tag=tag),
            )
        )

    def post(self, posts: list[SendPost | RecvPost], label: str = "") -> Iterator[Op]:
        """Arbitrary isend/irecv set completed together (waitall)."""
        if not posts:
            return
        for pst in posts:
            if isinstance(pst, SendPost):
                self._check_peer(pst.dst)
                self._check_bytes(pst.nbytes)
            else:
                self._check_peer(pst.src)
        yield CommOp(posts=tuple(posts), label=label)

    # -- phases -----------------------------------------------------------------

    def phase(self, name: str) -> Iterator[Op]:
        """Mark the start of a named phase (per-phase tracer statistics)."""
        yield PhaseMark(name=name)

    # -- checks ------------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.size):
            raise RankError(f"peer {peer} out of range for size {self.size}")
        if peer == self.rank:
            raise RankError("self-messaging is not supported; copy locally")

    @staticmethod
    def _check_bytes(nbytes: int) -> None:
        if nbytes < 0:
            raise RankError("message size must be non-negative")

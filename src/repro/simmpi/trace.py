"""PMPI/TAU-style communication tracer.

The paper measures the application-dependent parameters M (total messages)
and B (total bytes) "by using PMPI in MPICH2 or TAU".  The simulator's
tracer observes every matched transfer and accumulates the same counters,
globally and per named phase, so the calibration pipeline can fit the
analytic communication models against observed traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseStats:
    """Traffic and timing accumulated for one named phase."""

    name: str
    messages: int = 0
    bytes: int = 0
    comm_seconds: float = 0.0

    def record(self, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.comm_seconds += seconds


@dataclass
class CommTrace:
    """Global and per-phase message accounting for a simulated run."""

    messages: int = 0
    bytes: int = 0
    intra_node_messages: int = 0
    comm_seconds: float = 0.0
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    per_rank_sent: dict[int, int] = field(default_factory=dict)
    per_rank_bytes: dict[int, int] = field(default_factory=dict)

    def record_transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        seconds: float,
        *,
        same_node: bool,
        phase: str = "",
    ) -> None:
        """Count one matched point-to-point transfer."""
        self.messages += 1
        self.bytes += nbytes
        self.comm_seconds += seconds
        if same_node:
            self.intra_node_messages += 1
        self.per_rank_sent[src] = self.per_rank_sent.get(src, 0) + 1
        self.per_rank_bytes[src] = self.per_rank_bytes.get(src, 0) + nbytes
        if phase:
            if phase not in self.phases:
                self.phases[phase] = PhaseStats(name=phase)
            self.phases[phase].record(nbytes, seconds)

    # -- the paper's Θ2 quantities ------------------------------------------------

    @property
    def m_total(self) -> int:
        """Total number of messages M (Table 2)."""
        return self.messages

    @property
    def b_total(self) -> int:
        """Total bytes transmitted B (Table 2)."""
        return self.bytes

    def phase_summary(self) -> list[tuple[str, int, int]]:
        """(phase, M, B) rows sorted by traffic volume."""
        return sorted(
            ((s.name, s.messages, s.bytes) for s in self.phases.values()),
            key=lambda row: -row[2],
        )

"""MPI collectives implemented as point-to-point message patterns.

The paper estimates FT's MPI_Alltoall with the *pairwise exchange /
Hockney* model (§V-B-1, citing Pjesivac-Grbovic et al. and Thakur):

    T_alltoall = (p − 1)·ts + (p − 1)·m·tw

Implementing the collectives as real message patterns (rather than closed
forms) means the tracer counts M and B from actual traffic, the congestion
model applies, and alternative algorithms (Bruck, spread) are one flag away
— which is what the ablation bench compares.

All functions are generators over a :class:`RankContext`; drive them with
``yield from``.  Tags are derived from a per-collective base so back-to-back
collectives never cross-match.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import RankError
from repro.simmpi.program import Op, RankContext, RecvPost, SendPost

# Tag bases keep distinct collectives (and their rounds) on distinct
# channels.  Round index is added to the base; user point-to-point traffic
# should stay below _TAG_BASE.
_TAG_BASE = 1 << 20
_TAG_STRIDE = 1 << 12


def _round_tag(collective_id: int, rnd: int) -> int:
    return _TAG_BASE + collective_id * _TAG_STRIDE + rnd


def barrier(ctx: RankContext) -> Iterator[Op]:
    """Dissemination barrier: ⌈log2 p⌉ rounds of 0-byte exchanges."""
    p = ctx.size
    if p == 1:
        return
    rounds = math.ceil(math.log2(p))
    for k in range(rounds):
        dist = 1 << k
        dst = (ctx.rank + dist) % p
        src = (ctx.rank - dist) % p
        yield from ctx.exchange(dst=dst, src=src, nbytes=0, tag=_round_tag(0, k))


def bcast(ctx: RankContext, nbytes: int, root: int = 0) -> Iterator[Op]:
    """Binomial-tree broadcast: ⌈log2 p⌉ rounds, p−1 messages total."""
    p = ctx.size
    _check_root(root, p)
    if p == 1 or nbytes < 0:
        if nbytes < 0:
            raise RankError("nbytes must be non-negative")
        return
    vrank = (ctx.rank - root) % p  # virtual rank: root becomes 0
    rounds = math.ceil(math.log2(p))
    # ascending binomial tree: in round k every vrank < 2^k forwards to
    # vrank + 2^k, so the set of data holders doubles each round
    for k in range(rounds):
        dist = 1 << k
        if vrank < dist:
            partner_v = vrank + dist
            if partner_v < p:
                dst = (partner_v + root) % p
                yield from ctx.send(dst=dst, nbytes=nbytes, tag=_round_tag(1, k))
        elif vrank < (dist << 1):
            src = (vrank - dist + root) % p
            yield from ctx.recv(src=src, tag=_round_tag(1, k))


def reduce(ctx: RankContext, nbytes: int, root: int = 0) -> Iterator[Op]:
    """Binomial-tree reduction toward ``root``: mirror image of bcast."""
    p = ctx.size
    _check_root(root, p)
    if p == 1:
        return
    vrank = (ctx.rank - root) % p
    rounds = math.ceil(math.log2(p))
    alive = True
    for k in range(rounds):
        dist = 1 << k
        if not alive:
            break
        if (vrank % (dist << 1)) == 0:
            partner_v = vrank + dist
            if partner_v < p:
                src = (partner_v + root) % p
                yield from ctx.recv(src=src, tag=_round_tag(2, k))
        else:
            dst = (vrank - dist + root) % p
            yield from ctx.send(dst=dst, nbytes=nbytes, tag=_round_tag(2, k))
            alive = False


def allreduce(ctx: RankContext, nbytes: int) -> Iterator[Op]:
    """Allreduce.

    Power-of-two sizes use recursive doubling (log2 p rounds of pairwise
    exchanges); other sizes fall back to binomial reduce + broadcast, the
    standard MPICH fallback shape.
    """
    p = ctx.size
    if p == 1:
        return
    if p & (p - 1) == 0:  # power of two
        rounds = p.bit_length() - 1
        for k in range(rounds):
            partner = ctx.rank ^ (1 << k)
            yield from ctx.exchange(
                dst=partner, src=partner, nbytes=nbytes, tag=_round_tag(3, k)
            )
    else:
        yield from reduce(ctx, nbytes=nbytes, root=0)
        yield from bcast(ctx, nbytes=nbytes, root=0)


def scatter(ctx: RankContext, nbytes_per_rank: int, root: int = 0) -> Iterator[Op]:
    """Linear scatter: the root sends each rank its block (p−1 messages).

    MPICH uses binomial scatters for large p, but NPB-era codes scatter
    rarely and small; the linear form keeps the closed form obvious.
    """
    p = ctx.size
    _check_root(root, p)
    if nbytes_per_rank < 0:
        raise RankError("nbytes_per_rank must be non-negative")
    if p == 1:
        return
    if ctx.rank == root:
        posts: list[SendPost | RecvPost] = [
            SendPost(dst=r, nbytes=nbytes_per_rank, tag=_round_tag(8, 0))
            for r in range(p)
            if r != root
        ]
        yield from ctx.post(posts, label="scatter-root")
    else:
        yield from ctx.recv(src=root, tag=_round_tag(8, 0))


def gather(ctx: RankContext, nbytes_per_rank: int, root: int = 0) -> Iterator[Op]:
    """Linear gather: every rank sends its block to the root."""
    p = ctx.size
    _check_root(root, p)
    if nbytes_per_rank < 0:
        raise RankError("nbytes_per_rank must be non-negative")
    if p == 1:
        return
    if ctx.rank == root:
        posts: list[SendPost | RecvPost] = [
            RecvPost(src=r, tag=_round_tag(9, 0)) for r in range(p) if r != root
        ]
        yield from ctx.post(posts, label="gather-root")
    else:
        yield from ctx.send(dst=root, nbytes=nbytes_per_rank, tag=_round_tag(9, 0))


def scatter_message_count(p: int) -> int:
    """Messages generated by one linear scatter (or gather): p − 1."""
    if p < 1:
        raise RankError("p must be >= 1")
    return p - 1


def gather_message_count(p: int) -> int:
    """Messages generated by one linear gather: p − 1."""
    return scatter_message_count(p)


def allgather(ctx: RankContext, nbytes_per_rank: int) -> Iterator[Op]:
    """Ring allgather: p−1 rounds forwarding one block to the right."""
    p = ctx.size
    if p == 1:
        return
    right = (ctx.rank + 1) % p
    left = (ctx.rank - 1) % p
    for k in range(p - 1):
        yield from ctx.exchange(
            dst=right, src=left, nbytes=nbytes_per_rank, tag=_round_tag(4, k)
        )


def alltoall(
    ctx: RankContext, nbytes_per_pair: int, algorithm: str = "pairwise"
) -> Iterator[Op]:
    """All-to-all personalized exchange.

    Algorithms:

    * ``"pairwise"`` — the paper's model: p−1 rounds, in round k every rank
      exchanges its block with partner ``(rank ± k) mod p``.  Per rank:
      ``(p−1)·(ts + m·tw)``; totals M = p(p−1), B = p(p−1)·m.
    * ``"bruck"`` — ⌈log2 p⌉ rounds of bulk exchanges (~p/2 blocks each):
      fewer start-ups, more bytes moved; wins for tiny messages.
    * ``"spread"`` — every rank posts all p−1 sends and receives at once;
      one logical step, but the congestion model charges the fan-in.
    """
    p = ctx.size
    if nbytes_per_pair < 0:
        raise RankError("nbytes_per_pair must be non-negative")
    if p == 1:
        return
    if algorithm == "pairwise":
        for k in range(1, p):
            dst = (ctx.rank + k) % p
            src = (ctx.rank - k) % p
            yield from ctx.exchange(
                dst=dst, src=src, nbytes=nbytes_per_pair, tag=_round_tag(5, k)
            )
    elif algorithm == "bruck":
        rounds = math.ceil(math.log2(p))
        for k in range(rounds):
            dist = 1 << k
            # blocks whose k-th index bit is set travel this round
            nblocks = sum(1 for b in range(1, p) if b & dist)
            dst = (ctx.rank + dist) % p
            src = (ctx.rank - dist) % p
            yield from ctx.exchange(
                dst=dst,
                src=src,
                nbytes=nblocks * nbytes_per_pair,
                tag=_round_tag(6, k),
            )
    elif algorithm == "spread":
        posts: list[SendPost | RecvPost] = []
        for k in range(1, p):
            dst = (ctx.rank + k) % p
            src = (ctx.rank - k) % p
            posts.append(SendPost(dst=dst, nbytes=nbytes_per_pair, tag=_round_tag(7, k)))
            posts.append(RecvPost(src=src, tag=_round_tag(7, k)))
        yield from ctx.post(posts, label="alltoall-spread")
    else:
        raise RankError(
            f"unknown alltoall algorithm {algorithm!r}; "
            "choose pairwise | bruck | spread"
        )


# ---------------------------------------------------------------------------
# Closed-form cost predictions (for tests and the analytic model)
# ---------------------------------------------------------------------------


def alltoall_message_count(p: int, algorithm: str = "pairwise") -> int:
    """Total messages M generated by one all-to-all among p ranks."""
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0
    if algorithm == "pairwise" or algorithm == "spread":
        return p * (p - 1)
    if algorithm == "bruck":
        return p * math.ceil(math.log2(p))
    raise RankError(f"unknown alltoall algorithm {algorithm!r}")


def alltoall_byte_count(p: int, nbytes_per_pair: int, algorithm: str = "pairwise") -> int:
    """Total bytes B generated by one all-to-all among p ranks."""
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0
    if algorithm in ("pairwise", "spread"):
        return p * (p - 1) * nbytes_per_pair
    if algorithm == "bruck":
        total_blocks = sum(
            sum(1 for b in range(1, p) if b & (1 << k))
            for k in range(math.ceil(math.log2(p)))
        )
        return p * total_blocks * nbytes_per_pair
    raise RankError(f"unknown alltoall algorithm {algorithm!r}")


def pairwise_alltoall_time(p: int, nbytes_per_pair: int, ts: float, tw: float) -> float:
    """The paper's §V-B-1 closed form: T = (p−1)·ts + (p−1)·m·tw."""
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0.0
    return (p - 1) * ts + (p - 1) * nbytes_per_pair * tw


def bcast_message_count(p: int) -> int:
    """Messages generated by one binomial broadcast: p − 1."""
    if p < 1:
        raise RankError("p must be >= 1")
    return p - 1


def reduce_message_count(p: int) -> int:
    """Messages generated by one binomial reduction: p − 1."""
    return bcast_message_count(p)


def allreduce_message_count(p: int) -> int:
    """Messages generated by one allreduce.

    Recursive doubling for powers of two (p·log2 p exchanges → p·log2 p
    messages since each exchange is a send+recv pair counted once per
    direction... each of the log2 p rounds has p sends), otherwise
    reduce+bcast (2(p−1)).
    """
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0
    if p & (p - 1) == 0:
        return p * (p.bit_length() - 1)
    return 2 * (p - 1)


def allreduce_byte_count(p: int, nbytes: int) -> int:
    """Bytes moved by one allreduce of an ``nbytes`` payload."""
    return allreduce_message_count(p) * nbytes


def allgather_message_count(p: int) -> int:
    """Messages generated by one ring allgather: p·(p−1)."""
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0
    return p * (p - 1)


def barrier_message_count(p: int) -> int:
    """Messages generated by one dissemination barrier: p·⌈log2 p⌉."""
    if p < 1:
        raise RankError("p must be >= 1")
    if p == 1:
        return 0
    return p * math.ceil(math.log2(p))


def _check_root(root: int, p: int) -> None:
    if not (0 <= root < p):
        raise RankError(f"root {root} out of range for size {p}")

"""Seeded stochastic perturbations for the simulator.

The validation experiments (Figs. 3–4) compare the analytic model against
*measured* energy.  On real hardware the two disagree because execution is
noisy — per-node manufacturing variation, cache behaviour the counters
average away, network congestion, OS interference.  This module injects
exactly those effects, deterministically per seed, so that model-vs-
measured errors in our reproduction are genuine disagreements of the same
origin and magnitude as the paper's (≈5% mean).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class NoiseModel:
    """Multiplicative jitter sources, all lognormal around 1.0.

    Parameters
    ----------
    seed:
        Root seed; every stream derives from it deterministically.
    cpu_sigma:
        Per-node static CPI variation (manufacturing spread) plus
        per-block dynamic variation.
    mem_sigma:
        Per-block memory latency variation (row-buffer luck, prefetch).
    net_sigma:
        Per-message transfer-time variation (congestion, retransmits).
    os_noise_rate:
        Expected OS preemptions per simulated second of compute.
    os_noise_duration:
        Mean duration (s) of one preemption (exponentially distributed).
    mem_pattern_bias:
        Systematic multiplier on memory time, modelling access patterns
        the analytic Wm underestimates (paper: CG's 8.3% error traces to
        "inaccuracies in our memory model"); 1.0 = unbiased.
    """

    seed: int = 0
    cpu_sigma: float = 0.015
    mem_sigma: float = 0.03
    net_sigma: float = 0.05
    os_noise_rate: float = 0.02
    os_noise_duration: float = 0.002
    mem_pattern_bias: float = 1.0
    _rng: np.random.Generator = field(init=False, repr=False)
    _node_factor_cache: dict[int, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("cpu_sigma", "mem_sigma", "net_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.os_noise_rate < 0 or self.os_noise_duration < 0:
            raise ConfigurationError("OS noise parameters must be >= 0")
        if self.mem_pattern_bias <= 0:
            raise ConfigurationError("mem_pattern_bias must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._node_factor_cache = {}

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """A noiseless instance — simulator output matches closed forms."""
        return cls(
            seed=0,
            cpu_sigma=0.0,
            mem_sigma=0.0,
            net_sigma=0.0,
            os_noise_rate=0.0,
            os_noise_duration=0.0,
            mem_pattern_bias=1.0,
        )

    # -- streams ----------------------------------------------------------------

    def _lognormal(self, sigma: float) -> float:
        if sigma == 0.0:
            return 1.0
        # mean-1 lognormal: exp(N(-sigma^2/2, sigma))
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    def node_cpu_factor(self, node_index: int) -> float:
        """Static per-node CPI multiplier (same every call for a node)."""
        if node_index not in self._node_factor_cache:
            rng = np.random.default_rng((self.seed << 16) ^ (node_index + 1))
            sigma = self.cpu_sigma
            self._node_factor_cache[node_index] = (
                1.0
                if sigma == 0.0
                else float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))
            )
        return self._node_factor_cache[node_index]

    def compute_factor(self) -> float:
        """Dynamic per-block compute-time multiplier."""
        return self._lognormal(self.cpu_sigma)

    def memory_factor(self) -> float:
        """Per-block memory-time multiplier, including the systematic bias."""
        return self.mem_pattern_bias * self._lognormal(self.mem_sigma)

    def network_factor(self) -> float:
        """Per-message transfer-time multiplier."""
        return self._lognormal(self.net_sigma)

    def os_preemption(self, busy_seconds: float) -> float:
        """Extra seconds of OS interference for a busy interval."""
        if self.os_noise_rate == 0.0 or busy_seconds <= 0.0:
            return 0.0
        events = self._rng.poisson(self.os_noise_rate * busy_seconds)
        if events == 0:
            return 0.0
        return float(
            np.sum(self._rng.exponential(self.os_noise_duration, size=events))
        )

"""Communication cost model for the simulator.

Point-to-point transfers follow the Hockney model of the cluster's
interconnect (``ts + n·tw``), with three refinements the analytic model
deliberately ignores — they are the source of genuine model-vs-measured
disagreement in the validation experiments:

* per-message stochastic jitter (retransmits, switch arbitration),
* a congestion penalty growing with the number of concurrently active
  transfers, and
* cheaper intra-node transfers when multiple ranks share a node
  (shared-memory transport).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import Interconnect
from repro.errors import ConfigurationError
from repro.simmpi.noise import NoiseModel


@dataclass
class CostModel:
    """Transfer-time calculator.

    Parameters
    ----------
    interconnect:
        The fabric whose ``ts``/``tw`` drive inter-node transfers.
    congestion_beta:
        Slope of the congestion penalty: each transfer concurrently in
        flight adds ``congestion_beta`` fractional slowdown.
    intra_node_ts_factor, intra_node_tw_factor:
        Multipliers applied to ts/tw for same-node transfers.
    noise:
        Per-message jitter source (``NoiseModel.quiet()`` disables it).
    """

    interconnect: Interconnect
    congestion_beta: float = 0.0
    intra_node_ts_factor: float = 0.2
    intra_node_tw_factor: float = 0.1
    noise: NoiseModel | None = None

    def __post_init__(self) -> None:
        if self.congestion_beta < 0:
            raise ConfigurationError("congestion_beta must be >= 0")
        if not (0 < self.intra_node_ts_factor <= 1):
            raise ConfigurationError("intra_node_ts_factor must be in (0, 1]")
        if not (0 < self.intra_node_tw_factor <= 1):
            raise ConfigurationError("intra_node_tw_factor must be in (0, 1]")

    def transfer_time(
        self, nbytes: int, *, same_node: bool = False, concurrent: int = 0
    ) -> float:
        """Seconds to move ``nbytes`` with ``concurrent`` other live transfers."""
        if nbytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if concurrent < 0:
            raise ConfigurationError("concurrent count must be >= 0")
        ts = self.interconnect.ts
        tw = self.interconnect.tw
        if same_node:
            ts *= self.intra_node_ts_factor
            tw *= self.intra_node_tw_factor
        base = ts + nbytes * tw
        base *= 1.0 + self.congestion_beta * concurrent
        if self.noise is not None:
            base *= self.noise.network_factor()
        return base

"""The discrete-event simulation engine.

Rank programs (generators yielding :mod:`repro.simmpi.program` operations)
run against a :class:`~repro.cluster.cluster.Cluster`.  The engine advances
each rank's virtual clock through compute and I/O operations immediately,
blocks ranks on communication operations, and matches sends with receives
using MPI ordering semantics (FIFO per (src, dst, tag) channel).  A matched
transfer starts when both endpoints are ready and lasts according to the
:class:`~repro.simmpi.costmodel.CostModel`.

Outputs: per-rank :class:`~repro.simmpi.program.Segment` timelines (for the
PowerPack profiler), a :class:`~repro.simmpi.trace.CommTrace` (M and B for
calibration), and total wall-clock time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError, DeadlockError, RankError, SimulationError
from repro.simmpi.costmodel import CostModel
from repro.simmpi.noise import NoiseModel
from repro.simmpi.program import (
    CommOp,
    ComputeOp,
    IoOp,
    Op,
    PhaseMark,
    RankContext,
    Segment,
    SendPost,
    SleepOp,
)
from repro.simmpi.trace import CommTrace


@dataclass
class SimConfig:
    """Knobs of one simulated execution.

    Parameters
    ----------
    alpha:
        Computational overlap factor applied to compute blocks (§VI-F):
        a block of ``Tc + Tm`` theoretical seconds takes ``α·(Tc+Tm)``
        wall seconds while still costing the full active energy.
    procs_per_node:
        MPI ranks placed on each node (block distribution).
    noise:
        Stochastic perturbation model; ``NoiseModel.quiet()`` for exact runs.
    congestion_beta:
        Congestion slope handed to the :class:`CostModel`.
    cpi_factor:
        Application-specific multiplier on the CPU's base CPI.  The paper
        measures ``tc`` per application with Perfmon (gather-heavy codes
        like CG stall far more than EP's tight arithmetic loop); kernels
        carry their factor and the harness forwards it here so execution
        and model use the same effective CPI.
    """

    alpha: float = 1.0
    procs_per_node: int = 1
    noise: NoiseModel = field(default_factory=NoiseModel.quiet)
    congestion_beta: float = 0.0
    cpi_factor: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.procs_per_node < 1:
            raise ConfigurationError("procs_per_node must be >= 1")
        if self.cpi_factor <= 0:
            raise ConfigurationError("cpi_factor must be positive")


@dataclass
class SimResult:
    """Everything a simulated run produced."""

    total_time: float
    rank_times: list[float]
    segments: list[Segment]
    trace: CommTrace
    size: int
    nodes_used: int
    config: SimConfig

    def segments_for_rank(self, rank: int) -> list[Segment]:
        return [s for s in self.segments if s.rank == rank]

    def segments_for_node(self, node: int) -> list[Segment]:
        return [s for s in self.segments if s.node == node]

    def busy_seconds(self, kind: str | None = None) -> float:
        """Total duration across ranks, optionally filtered by segment kind."""
        return sum(
            s.duration for s in self.segments if kind is None or s.kind == kind
        )


class _RankState:
    __slots__ = (
        "rank",
        "node",
        "gen",
        "clock",
        "status",
        "pending_posts",
        "completed_ends",
        "blocked_at",
        "phase",
        "net_active_accum",
    )

    def __init__(self, rank: int, node: int, gen: Iterator[Op]) -> None:
        self.rank = rank
        self.node = node
        self.gen = gen
        self.clock = 0.0
        self.status = "running"  # running | blocked | done
        self.pending_posts: list = []
        self.completed_ends: list[float] = []
        self.blocked_at = 0.0
        self.phase = ""
        self.net_active_accum = 0.0


class SimEngine:
    """Run rank programs on a simulated cluster."""

    def __init__(self, cluster: Cluster, config: SimConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or SimConfig()
        self.cost = CostModel(
            interconnect=cluster.interconnect,
            congestion_beta=self.config.congestion_beta,
            noise=None if _is_quiet(self.config.noise) else self.config.noise,
        )

    # -- placement ----------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return rank // self.config.procs_per_node

    def max_ranks(self) -> int:
        return len(self.cluster) * self.config.procs_per_node

    # -- run ------------------------------------------------------------------------

    def run(
        self,
        program: Callable[[RankContext], Iterator[Op]],
        size: int,
    ) -> SimResult:
        """Execute ``size`` instances of ``program`` (SPMD) to completion."""
        if size < 1:
            raise ConfigurationError("need at least one rank")
        if size > self.max_ranks():
            raise ConfigurationError(
                f"{size} ranks exceed capacity {self.max_ranks()} "
                f"({len(self.cluster)} nodes × {self.config.procs_per_node} ppn)"
            )

        states = [
            _RankState(rank=r, node=self.node_of(r), gen=program(RankContext(r, size)))
            for r in range(size)
        ]
        segments: list[Segment] = []
        trace = CommTrace()
        # channel -> FIFO of (state, post) awaiting a partner
        send_q: dict[tuple[int, int, int], deque] = {}
        recv_q: dict[tuple[int, int, int], deque] = {}
        # recently active transfers for the congestion estimate
        live_transfers: list[tuple[float, float]] = []

        def advance(st: _RankState) -> None:
            """Run a rank until it blocks on comm or finishes."""
            while True:
                try:
                    op = next(st.gen)
                except StopIteration:
                    st.status = "done"
                    return
                except RankError:
                    raise
                except Exception as exc:  # surface program bugs with context
                    raise RankError(
                        f"rank {st.rank} program raised: {exc!r}"
                    ) from exc
                if isinstance(op, PhaseMark):
                    st.phase = op.name
                elif isinstance(op, ComputeOp):
                    self._apply_compute(st, op, segments)
                elif isinstance(op, IoOp):
                    segments.append(
                        Segment(
                            rank=st.rank,
                            node=st.node,
                            t0=st.clock,
                            t1=st.clock + op.duration,
                            kind="io",
                            io_active=op.duration,
                            phase=st.phase,
                        )
                    )
                    st.clock += op.duration
                elif isinstance(op, SleepOp):
                    segments.append(
                        Segment(
                            rank=st.rank,
                            node=st.node,
                            t0=st.clock,
                            t1=st.clock + op.duration,
                            kind="wait",
                            phase=st.phase,
                        )
                    )
                    st.clock += op.duration
                elif isinstance(op, CommOp):
                    st.status = "blocked"
                    st.blocked_at = st.clock
                    st.pending_posts = list(op.posts)
                    st.completed_ends = []
                    st.net_active_accum = 0.0
                    for post in op.posts:
                        if isinstance(post, SendPost):
                            key = (st.rank, post.dst, post.tag)
                            send_q.setdefault(key, deque()).append((st, post))
                        else:
                            key = (post.src, st.rank, post.tag)
                            recv_q.setdefault(key, deque()).append((st, post))
                    return
                else:  # pragma: no cover - exhaustive over Op
                    raise SimulationError(f"unknown operation {op!r}")

        def concurrent_at(t: float) -> int:
            live_transfers[:] = [(s, e) for (s, e) in live_transfers if e > t]
            return sum(1 for (s, e) in live_transfers if s <= t < e)

        def match_all() -> bool:
            """Complete every currently matchable transfer; True if any."""
            matched_any = False
            for key in list(send_q.keys()):
                sq = send_q.get(key)
                rq = recv_q.get(key)
                while sq and rq:
                    s_state, s_post = sq.popleft()
                    r_state, r_post = rq.popleft()
                    start = max(s_state.blocked_at, r_state.blocked_at)
                    same_node = s_state.node == r_state.node
                    dur = self.cost.transfer_time(
                        s_post.nbytes,
                        same_node=same_node,
                        concurrent=concurrent_at(start),
                    )
                    end = start + dur
                    live_transfers.append((start, end))
                    trace.record_transfer(
                        src=s_state.rank,
                        dst=r_state.rank,
                        nbytes=s_post.nbytes,
                        seconds=dur,
                        same_node=same_node,
                        phase=s_state.phase,
                    )
                    for st, post in ((s_state, s_post), (r_state, r_post)):
                        st.pending_posts.remove(post)
                        st.completed_ends.append(end)
                        st.net_active_accum += dur
                    matched_any = True
                if sq is not None and not sq:
                    send_q.pop(key, None)
                if rq is not None and not rq:
                    recv_q.pop(key, None)
            # unblock ranks whose posts all completed
            for st in states:
                if st.status == "blocked" and not st.pending_posts:
                    end = max(st.completed_ends)
                    segments.append(
                        Segment(
                            rank=st.rank,
                            node=st.node,
                            t0=st.blocked_at,
                            t1=end,
                            kind="comm",
                            net_active=min(
                                st.net_active_accum, end - st.blocked_at
                            ),
                            phase=st.phase,
                        )
                    )
                    st.clock = end
                    st.status = "running"
            return matched_any

        # main loop
        while True:
            progressed = False
            for st in states:
                if st.status == "running":
                    advance(st)
                    progressed = True
            if match_all():
                progressed = True
            if all(st.status == "done" for st in states):
                break
            if not progressed:
                blocked = [st.rank for st in states if st.status == "blocked"]
                raise DeadlockError(
                    f"no progress possible; blocked ranks: {blocked}"
                )

        total = max((st.clock for st in states), default=0.0)
        return SimResult(
            total_time=total,
            rank_times=[st.clock for st in states],
            segments=segments,
            trace=trace,
            size=size,
            nodes_used=len({st.node for st in states}),
            config=self.config,
        )

    # -- compute application ----------------------------------------------------------

    def _apply_compute(
        self, st: _RankState, op: ComputeOp, segments: list[Segment]
    ) -> None:
        node = self.cluster.nodes[st.node]
        noise = self.config.noise
        tc = (
            node.cpu.tc()
            * self.config.cpi_factor
            * noise.node_cpu_factor(st.node)
            * noise.compute_factor()
        )
        tm = node.memory.tm * noise.memory_factor()
        t_cpu = op.instructions * tc
        t_mem = op.mem_accesses * tm
        wall = self.config.alpha * (t_cpu + t_mem)
        wall += noise.os_preemption(wall)
        segments.append(
            Segment(
                rank=st.rank,
                node=st.node,
                t0=st.clock,
                t1=st.clock + wall,
                kind="work",
                cpu_active=t_cpu,
                mem_active=t_mem,
                instructions=op.instructions,
                mem_ops=op.mem_accesses,
                phase=st.phase,
            )
        )
        st.clock += wall


def _is_quiet(noise: NoiseModel) -> bool:
    return (
        noise.cpu_sigma == 0.0
        and noise.mem_sigma == 0.0
        and noise.net_sigma == 0.0
        and noise.os_noise_rate == 0.0
        and noise.mem_pattern_bias == 1.0
    )

"""Discrete-event MPI simulator.

Stands in for MPICH2 over InfiniBand/Ethernet on the paper's testbeds.
Rank programs are Python generators driving a :class:`~repro.simmpi.engine.
SimEngine`; point-to-point transfers follow the Hockney model of the
cluster's interconnect, and collectives are implemented *as message
patterns* (pairwise-exchange all-to-all, recursive-doubling allreduce,
binomial broadcast, dissemination barrier) so that a PMPI-style tracer
observes exactly the message counts (M) and byte volumes (B) the paper's
analytic communication models predict.

The engine also emits a per-rank activity timeline (compute / memory /
network / IO / idle-wait active-seconds per segment) which is what the
PowerPack profiler analog integrates into component power traces.
"""

from repro.simmpi.engine import SimConfig, SimEngine, SimResult
from repro.simmpi.program import RankContext, Segment
from repro.simmpi.noise import NoiseModel
from repro.simmpi.trace import CommTrace, PhaseStats
from repro.simmpi import collectives

__all__ = [
    "SimConfig",
    "SimEngine",
    "SimResult",
    "RankContext",
    "Segment",
    "NoiseModel",
    "CommTrace",
    "PhaseStats",
    "collectives",
]

"""The shard registry: named machines → resolvable, model-carrying shards.

A *shard* is one power-capped cluster inside a federated site: a machine
description (one of the paper's testbeds, or a user-defined hypothetical
machine), a node count, a power envelope — the most watts the site is
willing to route there — and the scheduling policy its local scheduler
runs.  The registry maps machine *names* to builders so shards stay
wire-expressible: a :class:`ShardSpec` travels as JSON, and
:meth:`ShardRegistry.build` turns it back into a live :class:`Shard`
carrying its own Θ1/Θ2 model hooks (via :func:`repro.paperdata.paper_model`
on the shard's cluster).

Hypothetical machines derive from a registered base by scaling the
knobs the iso-energy-efficiency model actually reads — message startup
(ts), per-byte time (tw), CPU dynamic power (ΔPc), and the idle floor —
so "what if SystemG had twice the network?" is a one-line registration,
in the spirit of the EXCESS deliverable's composable platform models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.presets import cluster_preset
from repro.core.model import IsoEnergyModel
from repro.errors import ConfigurationError, ParameterError
from repro.hetero.space import HeteroSpace, PoolSpec
from repro.optimize.schedule import SCHEDULE_POLICIES, default_p_values
from repro.paperdata import paper_model

#: a machine builder: node count → assembled cluster.
MachineBuilder = Callable[[int], Cluster]


@dataclass(frozen=True)
class ShardSpec:
    """The wire-expressible description of one shard.

    ``cluster`` names a machine registered in the resolving
    :class:`ShardRegistry` (the presets ``"systemg"``/``"dori"`` are
    always there); ``power_envelope_w`` is the ceiling on the watts the
    site partitioner may allocate to this shard; ``policy``/``ee_floor``
    select the local scheduling policy
    (:data:`~repro.optimize.schedule.SCHEDULE_POLICIES`).

    ``pools`` optionally declares the shard *heterogeneous*: a set of
    :class:`~repro.hetero.space.PoolSpec` records whose machine names
    resolve through the same registry (hypothetical machines included).
    A pooled shard's scheduler climbs mixed-pool allocation rungs
    instead of the homogeneous (p, f) ladder; ``cluster``/``nodes`` then
    only label the shard's fabric.
    """

    name: str
    cluster: str = "systemg"
    nodes: int = 32
    power_envelope_w: float = 0.0
    policy: str = "makespan"
    ee_floor: float | None = None
    pools: tuple[PoolSpec, ...] = ()


@dataclass(frozen=True, eq=False)  # eq=False: identity hash for memo tables
class Shard:
    """A resolved shard: its spec, its live cluster, and its model hooks.

    Heterogeneous shards additionally carry ``pool_clusters`` — one
    resolved cluster per :attr:`ShardSpec.pools` entry, built by the
    registry — and derive per-workload mixed-pool search spaces from
    them via :meth:`hetero_space_for`.
    """

    spec: ShardSpec
    cluster: Cluster
    pool_clusters: tuple[Cluster, ...] = ()
    _models: dict = field(default_factory=dict, repr=False, compare=False)
    _spaces: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def power_envelope_w(self) -> float:
        return self.spec.power_envelope_w

    @property
    def policy(self) -> str:
        return self.spec.policy

    @property
    def ee_floor(self) -> float | None:
        return self.spec.ee_floor

    @property
    def p_values(self) -> list[int]:
        """The shard's processor-count axis: powers of two up to its size."""
        return default_p_values(self.cluster, self.spec.nodes)

    @property
    def f_values(self) -> tuple[float, ...]:
        """The shard's DVFS P-states."""
        return self.cluster.available_frequencies

    def model_for(
        self, benchmark: str, klass: str = "B", niter: int | None = None
    ) -> tuple[IsoEnergyModel, float]:
        """(model, class n) of a workload on *this* shard's hardware.

        Memoised per (benchmark, klass, niter): the Θ1 derivation and Θ2
        table construction happen once per distinct workload per shard.
        """
        key = (benchmark.upper(), klass.upper(), niter)
        if key not in self._models:
            self._models[key] = paper_model(
                key[0],
                key[1],
                cluster=self.cluster,
                niter=niter,
                name=f"{key[0]}.{key[1]} on {self.cluster.name}",
            )
        return self._models[key]

    @property
    def is_heterogeneous(self) -> bool:
        """Whether this shard schedules over mixed pools."""
        return bool(self.spec.pools)

    def hetero_space_for(
        self, benchmark: str, klass: str = "B", niter: int | None = None
    ) -> HeteroSpace:
        """The mixed-pool search space of a workload on this shard.

        Memoised per (benchmark, klass, niter), like :meth:`model_for`;
        pool machines derive from the registry-built ``pool_clusters``
        with the workload's CPI correction.  Only meaningful on
        heterogeneous shards.
        """
        if not self.is_heterogeneous:
            raise ParameterError(
                f"shard {self.name!r} declares no pools; "
                "use model_for() for homogeneous shards"
            )
        key = (benchmark.upper(), klass.upper(), niter)
        if key not in self._spaces:
            from repro.hetero.solve import space_for

            self._spaces[key] = space_for(
                key[0],
                key[1],
                key[2],
                pools=self.spec.pools,
                clusters=self.pool_clusters,
            )
        return self._spaces[key]


def _scaled_cluster(
    name: str,
    base: Cluster,
    *,
    net_startup_scale: float,
    net_per_byte_scale: float,
    cpu_power_scale: float,
    idle_power_scale: float,
) -> Cluster:
    """A copy of ``base`` with the model-visible knobs rescaled."""
    ic = base.interconnect
    link_rate = ic.link_rate
    if net_per_byte_scale < 1.0:
        # Interconnect validation insists tw >= 1/link_rate; a faster
        # hypothetical fabric raises the raw rate alongside the payload.
        link_rate = link_rate / net_per_byte_scale
    interconnect = replace(
        ic,
        name=f"{ic.name} [{name}]",
        startup_latency=ic.startup_latency * net_startup_scale,
        per_byte_time=ic.per_byte_time * net_per_byte_scale,
        link_rate=link_rate,
    )
    nodes = []
    for node in base.nodes:
        cpu = replace(
            node.cpu,
            power=replace(
                node.cpu.power,
                delta_p_ref=node.cpu.power.delta_p_ref * cpu_power_scale,
                p_idle_ref=node.cpu.power.p_idle_ref * idle_power_scale,
            ),
        )
        cpu_comp = node.power.cpu
        mem_comp = node.power.memory
        io_comp = node.power.io
        power = replace(
            node.power,
            cpu=replace(
                cpu_comp,
                p_idle=cpu_comp.p_idle * idle_power_scale,
                p_running=cpu_comp.p_idle * idle_power_scale
                + cpu_comp.delta_p * cpu_power_scale,
            ),
            memory=replace(
                mem_comp,
                p_idle=mem_comp.p_idle * idle_power_scale,
                p_running=mem_comp.p_idle * idle_power_scale
                + mem_comp.delta_p,
            ),
            io=replace(
                io_comp,
                p_idle=io_comp.p_idle * idle_power_scale,
                p_running=io_comp.p_idle * idle_power_scale + io_comp.delta_p,
            ),
            others=node.power.others * idle_power_scale,
        )
        nodes.append(replace(node, nic=interconnect, cpu=cpu, power=power))
    return Cluster(
        name=name,
        nodes=nodes,
        interconnect=interconnect,
        pdu=replace(base.pdu) if base.pdu is not None else None,
    )


class ShardRegistry:
    """Named machine builders plus a build cache for resolved shards.

    The two paper testbeds are pre-registered; :meth:`register` adds any
    builder and :meth:`register_hypothetical` derives a what-if machine
    from a registered base by scaling its model-visible parameters.
    """

    def __init__(self, include_presets: bool = True) -> None:
        self._machines: dict[str, MachineBuilder] = {}
        self._shards: dict[ShardSpec, Shard] = {}
        self._mutation_hooks: list[Callable[[], None]] = []
        if include_presets:
            for preset in ("systemg", "dori"):
                self._machines[preset] = (
                    lambda nodes, _p=preset: cluster_preset(_p, nodes)
                )

    def names(self) -> tuple[str, ...]:
        """Every registered machine name, registration order."""
        return tuple(self._machines)

    def on_mutation(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever a machine is (re)registered.

        Resolved shards are cached by spec *value*, so rebinding a
        machine name changes what an identical spec means; any layer
        memoising results derived from this registry (the API dispatch
        cache does) must drop them.
        """
        self._mutation_hooks.append(hook)

    def register(
        self, name: str, builder: MachineBuilder, *, exist_ok: bool = False
    ) -> None:
        """Bind ``name`` to a ``nodes -> Cluster`` builder."""
        key = name.lower()
        if key in self._machines and not exist_ok:
            raise ConfigurationError(
                f"machine {name!r} is already registered; "
                "pass exist_ok=True to replace it"
            )
        self._machines[key] = builder
        self._shards.clear()  # a rebind may change what cached shards mean
        for hook in self._mutation_hooks:
            hook()

    def register_hypothetical(
        self,
        name: str,
        *,
        base: str = "systemg",
        net_startup_scale: float = 1.0,
        net_per_byte_scale: float = 1.0,
        cpu_power_scale: float = 1.0,
        idle_power_scale: float = 1.0,
        exist_ok: bool = False,
    ) -> None:
        """Derive a hypothetical machine from a registered ``base``.

        The four scales multiply exactly the quantities Θ1 reads from the
        hardware description: ts, tw, ΔPc, and the idle power floor.
        All must be positive; 1.0 everywhere reproduces the base.
        """
        base_builder = self._builder(base)
        for label, scale in (
            ("net_startup_scale", net_startup_scale),
            ("net_per_byte_scale", net_per_byte_scale),
            ("cpu_power_scale", cpu_power_scale),
            ("idle_power_scale", idle_power_scale),
        ):
            if scale <= 0:
                raise ConfigurationError(f"{label} must be positive, got {scale}")

        def builder(nodes: int, _name: str = name) -> Cluster:
            return _scaled_cluster(
                _name,
                base_builder(nodes),
                net_startup_scale=net_startup_scale,
                net_per_byte_scale=net_per_byte_scale,
                cpu_power_scale=cpu_power_scale,
                idle_power_scale=idle_power_scale,
            )

        self.register(name, builder, exist_ok=exist_ok)

    def _builder(self, name: str) -> MachineBuilder:
        try:
            return self._machines[name.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown machine {name!r}; registered: {sorted(self._machines)}"
            ) from None

    def build_cluster(self, name: str, nodes: int) -> Cluster:
        """A live cluster for a registered machine name at ``nodes``.

        The resolution hook heterogeneous pools share with shards:
        :func:`repro.hetero.solve.resolve_pools` builds each pool's
        machine vector from the cluster this returns, so hypothetical
        machines registered here can serve as pools too.
        """
        if nodes < 1:
            raise ParameterError(
                f"machine {name!r} needs at least one node, got {nodes}"
            )
        return self._builder(name)(nodes)

    def build(self, spec: ShardSpec) -> Shard:
        """Resolve one spec into a live shard (cached per spec value)."""
        if spec in self._shards:
            return self._shards[spec]
        if not spec.name:
            raise ParameterError("a shard needs a non-empty name")
        if spec.nodes < 1:
            raise ParameterError(
                f"shard {spec.name!r} needs at least one node"
            )
        if spec.power_envelope_w <= 0:
            raise ParameterError(
                f"shard {spec.name!r} needs a positive power envelope, "
                f"got {spec.power_envelope_w!r}"
            )
        if spec.policy not in SCHEDULE_POLICIES:
            raise ParameterError(
                f"shard {spec.name!r} has unknown policy {spec.policy!r}; "
                f"choose from {SCHEDULE_POLICIES}"
            )
        if spec.policy == "ee_floor" and spec.ee_floor is None:
            raise ParameterError(
                f"shard {spec.name!r} selects policy='ee_floor' "
                "but carries no ee_floor value"
            )
        pool_clusters: tuple[Cluster, ...] = ()
        if spec.pools:
            from repro.hetero.solve import _validate_specs

            try:
                _validate_specs(spec.pools)
            except ParameterError as exc:
                raise ParameterError(
                    f"shard {spec.name!r}: {exc}"
                ) from None
            pool_clusters = tuple(
                self.build_cluster(p.cluster, max(p.count_values))
                for p in spec.pools
            )
        shard = Shard(
            spec=spec,
            cluster=self._builder(spec.cluster)(spec.nodes),
            pool_clusters=pool_clusters,
        )
        self._shards[spec] = shard
        return shard

    def build_site(self, specs: Sequence[ShardSpec]) -> list[Shard]:
        """Resolve a whole site, insisting on unique shard names."""
        if not specs:
            raise ParameterError("a federated site needs at least one shard")
        seen: set[str] = set()
        for spec in specs:
            if spec.name in seen:
                raise ParameterError(
                    f"duplicate shard name {spec.name!r} in the site spec"
                )
            seen.add(spec.name)
        return [self.build(spec) for spec in specs]


_DEFAULT_REGISTRY = ShardRegistry()


def default_registry() -> ShardRegistry:
    """The process-wide registry the API service and the CLI resolve with."""
    return _DEFAULT_REGISTRY

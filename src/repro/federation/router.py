"""EE-per-watt job routing across a federated site.

The routing pipeline composes every decision layer below it:

1. :func:`repro.federation.partition.partition_budget` splits the site
   budget into per-shard allocations (strategy-selectable);
2. each job is routed to the shard that serves it best *within the
   shard's remaining allocation* — by energy efficiency per watt
   (``metric="ee_per_watt"``, the default: most efficiency bought per
   watt spent) or by raw energy efficiency (``metric="ee"``);
3. each shard's queue is handed to the cluster scheduler
   (:func:`repro.optimize.schedule.schedule_jobs`) under the shard's own
   allocation and policy, producing real (p, f) assignments.

Budget conservation is an invariant at both levels: the allocations sum
to at most the site budget, and every shard's scheduled draw stays
within its allocation.  Jobs that fit on no shard raise
:class:`~repro.errors.InfeasibleJobsError` naming each stranded job, so
operators see exactly what to drop or re-budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import InfeasibleJobsError, ParameterError
from repro.federation.partition import (
    SitePartition,
    mix_ladders,
    partition_budget,
    shard_profiles,
)
from repro.federation.registry import Shard
from repro.obs.trace import span
from repro.optimize.schedule import (
    Assignment,
    Job,
    Rung,
    eligible_rungs,
    schedule_jobs,
)


def _ladder_table(
    shards: Sequence[Shard], jobs: Sequence[Job]
) -> list[list[list[Rung]]]:
    """``table[i][j]`` = job j's ladder on shard i, each grid built once.

    Jobs sharing a workload share the ladder object
    (:func:`~repro.federation.partition.mix_ladders` dedups by key), and
    the same table feeds the capability profiles, the routing scores,
    and the per-shard schedules — one federate call evaluates each
    (shard, workload) grid exactly once.
    """
    return [mix_ladders(shard, jobs) for shard in shards]

#: job-routing metrics understood by :func:`route_jobs`.
ROUTING_METRICS = ("ee_per_watt", "ee")


@dataclass(frozen=True)
class ShardPlan:
    """One shard's final schedule inside a federated placement."""

    shard: str
    cluster: str
    policy: str
    allocation_w: float
    assignments: tuple[Assignment, ...]
    total_power_w: float
    makespan_s: float
    total_energy_j: float

    @property
    def headroom_w(self) -> float:
        return self.allocation_w - self.total_power_w


@dataclass(frozen=True)
class FederatedSchedule:
    """The complete site decision: partition + routing + per-shard plans."""

    budget_w: float
    strategy: str
    metric: str
    partition: SitePartition
    plans: tuple[ShardPlan, ...]

    @property
    def total_allocated_w(self) -> float:
        return self.partition.total_allocated_w

    @property
    def total_power_w(self) -> float:
        return sum(p.total_power_w for p in self.plans)

    @property
    def site_headroom_w(self) -> float:
        return self.budget_w - self.total_power_w

    @property
    def makespan_s(self) -> float:
        return max((p.makespan_s for p in self.plans if p.assignments), default=0.0)

    @property
    def total_energy_j(self) -> float:
        return sum(p.total_energy_j for p in self.plans)

    def plan_for(self, shard: str) -> ShardPlan:
        for plan in self.plans:
            if plan.shard == shard:
                return plan
        raise ParameterError(f"no plan for shard {shard!r}")


def _eligible_ladder(ladder: list[Rung], shard: Shard) -> list[Rung]:
    """The rungs the shard's scheduler would actually accept."""
    return eligible_rungs(
        ladder, shard.ee_floor if shard.policy == "ee_floor" else None
    )


def routing_score(
    ladder: list[Rung], headroom_w: float, metric: str
) -> tuple[float, float] | None:
    """(score, floor draw) of the best feasible rung, or None if none fits.

    ``ladder`` is already policy-filtered; a rung is feasible when its
    draw fits the shard's *remaining* allocation given the floors
    already committed there.  ``ee_per_watt`` scores EE/draw (efficiency
    bought per watt); ``ee`` scores raw EE.  Shared by the offline
    router below and the online site simulator
    (:mod:`repro.sim.site`), so a job is steered to shards by the same
    rule whether it is routed in a batch or arrives mid-run.
    """
    best: tuple[float, float] | None = None
    for rung in ladder:
        if rung.avg_power > headroom_w:
            break  # ladders ascend in power: nothing further fits
        score = (
            rung.ee / rung.avg_power if metric == "ee_per_watt" else rung.ee
        )
        if best is None or score > best[0]:
            best = (score, ladder[0].avg_power)
    return best


def route_jobs(
    shards: Sequence[Shard],
    jobs: Sequence[Job],
    *,
    budget_w: float,
    strategy: str = "waterfill",
    metric: str = "ee_per_watt",
) -> FederatedSchedule:
    """Place every job on the shard that serves it best under the budget.

    Jobs are considered in queue order.  For each, every shard is scored
    by its best feasible rung under the shard's remaining allocation
    (allocation minus the cheapest-rung floors of jobs already routed
    there — the scheduler's own feasibility precondition); the best
    ``metric`` score wins, earlier shards break ties.  Per-shard queues
    are then scheduled for real via :func:`schedule_jobs` with the
    shard's policy.

    Raises :class:`~repro.errors.InfeasibleJobsError` listing every job
    no shard could take, and :class:`ParameterError` on empty inputs or
    an unknown metric.
    """
    if not jobs:
        raise ParameterError("the federated job queue is empty")
    if metric not in ROUTING_METRICS:
        raise ParameterError(
            f"unknown routing metric {metric!r}; choose from {ROUTING_METRICS}"
        )
    shards = list(shards)
    with span("federation.route"):
        ladder_table = _ladder_table(shards, jobs)
        profiles = shard_profiles(shards, jobs, ladders_by_shard=ladder_table)
        partition = partition_budget(
            shards, budget_w, jobs=jobs, strategy=strategy, profiles=profiles
        )

    committed = [0.0] * len(shards)  # Σ floors of the jobs routed per shard
    queues: list[list[int]] = [[] for _ in shards]  # job indices per shard
    stranded: list[tuple[str, float]] = []
    for j, job in enumerate(jobs):
        best: tuple[float, int, float] | None = None  # (score, shard, floor)
        cheapest_floor = float("inf")
        for i, shard in enumerate(shards):
            ladder = _eligible_ladder(ladder_table[i][j], shard)
            if not ladder:
                continue  # no rung meets this shard's EE floor
            cheapest_floor = min(cheapest_floor, ladder[0].avg_power)
            headroom = partition.allocations[i].allocation_w - committed[i]
            scored = routing_score(ladder, headroom, metric)
            if scored is None:
                continue
            score, floor = scored
            if best is None or score > best[0]:
                best = (score, i, floor)
        if best is None:
            stranded.append((job.name, cheapest_floor))
            continue
        _, i, floor = best
        committed[i] += floor
        queues[i].append(j)
    if stranded:
        detail = ", ".join(
            f"{name} needs {floor:.0f} W on its cheapest eligible shard"
            if floor != float("inf")
            else f"{name} meets no shard's placement rules"
            for name, floor in stranded
        )
        raise InfeasibleJobsError(
            f"{len(stranded)} job(s) fit on no shard under the current "
            f"partition of {budget_w:.0f} W: {detail}",
            jobs=tuple(stranded),
        )

    plans = []
    for i, (shard, queue, alloc) in enumerate(
        zip(shards, queues, partition.allocations)
    ):
        if not queue:
            plans.append(
                ShardPlan(
                    shard=shard.name,
                    cluster=shard.cluster.name,
                    policy=shard.policy,
                    allocation_w=alloc.allocation_w,
                    assignments=(),
                    total_power_w=0.0,
                    makespan_s=0.0,
                    total_energy_j=0.0,
                )
            )
            continue
        schedule = schedule_jobs(
            [jobs[j] for j in queue],
            cluster=shard.cluster,
            power_budget=alloc.allocation_w,
            nodes=len(shard.cluster),
            p_values=shard.p_values,
            f_values=shard.f_values,
            policy=shard.policy,
            ee_floor=shard.ee_floor,
            ladders=[ladder_table[i][j] for j in queue],
        )
        plans.append(
            ShardPlan(
                shard=shard.name,
                cluster=schedule.cluster,
                policy=schedule.policy,
                allocation_w=alloc.allocation_w,
                assignments=schedule.assignments,
                total_power_w=schedule.total_power,
                makespan_s=schedule.makespan,
                total_energy_j=schedule.total_energy,
            )
        )
    return FederatedSchedule(
        budget_w=budget_w,
        strategy=partition.strategy,
        metric=metric,
        partition=partition,
        plans=tuple(plans),
    )

"""Site power-budget partitioning across shards.

A federated site holds one power budget and several shards (clusters
with their own hardware, envelopes, and schedulers).  Before any job is
placed, the site must decide *how many watts each shard gets*.  This
module scores candidate splits against per-shard **capability curves**
and offers three partitioning strategies.

The capability curve of a shard is built by running the cluster
scheduler's greedy climb on the whole reference job mix *as if the
shard hosted it alone*, recording ``(total power, utility)`` after every
rung upgrade, where utility is the mix's EE-weighted completion rate
``Σ_j EE_j / Tp_j`` — energy-efficient throughput.  ``V_s(w)`` is then a
monotone step function: the utility shard *s* could deliver with *w*
watts (0 below its floor).  A split ``(w_1 … w_S)`` scores
``Σ_s V_s(w_s)``.  That is a *capability* model, deliberately not a
physical schedule — the router does the real placement afterwards — but
it ranks splits by exactly the quantity the site cares about, and its
marginal ``ΔV/Δw`` is the "marginal EE-per-watt" the water-filling
strategy climbs.

Strategies:

* ``"proportional"`` — watts in proportion to each shard's envelope;
  the baseline every study needs.
* ``"waterfill"`` — greedy water-filling: repeatedly hand the next rung
  upgrade to the shard with the highest marginal utility per watt until
  nothing affordable remains.
* ``"exhaustive"`` — enumerate every combination of rung-aligned
  allocations (small grids only), score them all **in bulk** through
  :func:`score_splits`, and take the best.  Exact w.r.t. the scoring
  model; the reference the heuristics are tested against.

:func:`score_splits` is the vectorized hot path —
``benchmarks/bench_federation.py`` holds it to ≥5× over the scalar
per-split loop (:func:`score_split_scalar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.federation.registry import Shard
from repro.obs.trace import span
from repro.hetero.space import hetero_grid
from repro.optimize.schedule import (
    Job,
    Rung,
    climb_makespan,
    eligible_rungs,
    ladder_from_cells,
    power_ladder,
)

#: strategies understood by :func:`partition_budget`.
PARTITION_STRATEGIES = ("proportional", "waterfill", "exhaustive")

#: refuse exhaustive enumeration beyond this many candidate splits.
MAX_EXHAUSTIVE_SPLITS = 250_000


@dataclass(frozen=True, eq=False)  # eq=False: ndarray fields break ==
class ShardProfile:
    """One shard's capability curve over the reference job mix.

    ``powers`` ascends; ``utilities`` is the running-best utility
    reachable at each power level.  ``powers[0]`` is the shard's floor —
    the cheapest wattage at which the whole mix runs at all.
    """

    shard: str
    envelope_w: float
    powers: np.ndarray
    utilities: np.ndarray

    def __post_init__(self) -> None:
        if len(self.powers) != len(self.utilities) or not len(self.powers):
            raise ParameterError(
                f"profile of shard {self.shard!r} needs matched, non-empty "
                "power/utility arrays"
            )

    @property
    def floor_w(self) -> float:
        return float(self.powers[0])

    def value_at(self, w: float) -> float:
        """V(w): best utility at allocation ``w`` (0 below the floor)."""
        idx = int(np.searchsorted(self.powers, w, side="right")) - 1
        return float(self.utilities[idx]) if idx >= 0 else 0.0


@dataclass(frozen=True)
class ShardAllocation:
    """The watts one shard received, and what the model says they buy."""

    shard: str
    allocation_w: float
    utility: float
    floor_w: float


@dataclass(frozen=True)
class SitePartition:
    """A complete budget split: one allocation per shard, site order."""

    budget_w: float
    strategy: str
    allocations: tuple[ShardAllocation, ...]

    @property
    def total_allocated_w(self) -> float:
        return sum(a.allocation_w for a in self.allocations)

    @property
    def headroom_w(self) -> float:
        return self.budget_w - self.total_allocated_w

    @property
    def utility(self) -> float:
        return sum(a.utility for a in self.allocations)

    def allocation_for(self, shard: str) -> ShardAllocation:
        for a in self.allocations:
            if a.shard == shard:
                return a
        raise ParameterError(f"no allocation for shard {shard!r}")


def hetero_ladder(
    shard: Shard, benchmark: str, klass: str = "B", niter: int | None = None
) -> list[Rung]:
    """A heterogeneous shard's power ladder: mixed-pool allocation rungs.

    Every allocation of the shard's pool space is a candidate rung;
    :func:`~repro.optimize.schedule.ladder_from_cells` prunes it to the
    power-vs-runtime Pareto set, exactly as the homogeneous (p, f)
    ladder is pruned, so the scheduler's climb and the partitioner's
    capability curves work unchanged on mixed pools.  ``Rung.p`` carries
    the allocation's *total* processor count and ``Rung.f`` the fastest
    pool's clock — representative labels; the full per-pool detail lives
    in the hetero API.  The grid rides the shared store's group-aware
    cache, so repeated federate calls reuse one evaluation.
    """
    grid = hetero_grid(shard.hetero_space_for(benchmark, klass, niter))
    cells = [
        Rung(
            p=int(grid.total_p[k]),
            f=float(grid.freqs[k].max()),
            tp=float(grid.tp[k]),
            ep=float(grid.ep[k]),
            ee=float(grid.ee[k]),
            avg_power=float(grid.avg_power[k]),
        )
        for k in range(grid.size)
    ]
    return ladder_from_cells(cells)


def mix_ladders(shard: Shard, jobs: Sequence[Job]) -> list[list[Rung]]:
    """Each job's power ladder on this shard's hardware.

    Jobs sharing a (benchmark, klass, niter) workload share one ladder
    object — each distinct grid is evaluated exactly once per shard,
    and the router reuses this same table for scoring and scheduling.
    Heterogeneous shards (:attr:`ShardSpec.pools`) ladder over their
    mixed-pool allocation space via :func:`hetero_ladder`; homogeneous
    shards over the (p, f) grid.  The underlying grids ride the shared
    :mod:`repro.optimize.engine` store (shard models and spaces are
    memoised per spec), so *repeated* federate calls over overlapping
    sites skip the model evaluation entirely, not just within one call.
    """
    per_workload: dict[tuple, list[Rung]] = {}
    ladders = []
    for job in jobs:
        key = (job.benchmark.upper(), job.klass.upper(), job.niter)
        if key not in per_workload:
            if shard.is_heterogeneous:
                per_workload[key] = hetero_ladder(shard, *key)
            else:
                model, n = shard.model_for(*key)
                per_workload[key] = power_ladder(
                    model, n, shard.p_values, shard.f_values
                )
        ladders.append(per_workload[key])
    return ladders


def shard_profile(
    shard: Shard,
    jobs: Sequence[Job],
    *,
    ladders: Sequence[list[Rung]] | None = None,
) -> ShardProfile:
    """The shard's capability curve over ``jobs`` (see module docstring).

    Replays the scheduler's makespan-greedy climb
    (:func:`~repro.optimize.schedule.climb_makespan`) capped at the
    shard's envelope, recording the (total power, Σ EE/Tp) trajectory —
    the common capability measure across policies (an ``energy`` shard
    spends headroom differently but shares the same feasible set).  On
    an ``ee_floor`` shard the ladders are filtered to qualifying rungs
    first, so the curve never prices in placements that shard's
    scheduler is bound to reject; a shard whose floor excludes some
    workload entirely profiles as useless (zero utility everywhere).
    ``ladders`` reuses pre-built per-job ladders (the router's).
    """
    if not jobs:
        raise ParameterError("a capability profile needs at least one job")
    if ladders is None:
        ladders = mix_ladders(shard, jobs)
    if shard.policy == "ee_floor":
        ladders = [eligible_rungs(lad, shard.ee_floor) for lad in ladders]
        if any(not lad for lad in ladders):
            # some workload meets the floor at no (p, f): the shard can
            # never host the whole mix, so any legal allocation buys
            # nothing — a one-point curve just above the envelope says so
            return ShardProfile(
                shard=shard.name,
                envelope_w=shard.power_envelope_w,
                powers=np.array([shard.power_envelope_w + 1.0]),
                utilities=np.array([0.0]),
            )

    def util(levels: list[int]) -> float:
        # EE-weighted completion rate Σ EE_j / Tp_j (1/s): rewards both
        # running faster and staying energy-efficient, and — being an
        # absolute rate — compares fairly across shards of different
        # hardware, unlike any per-shard-normalised speedup.
        return sum(
            lad[lvl].ee / lad[lvl].tp for lad, lvl in zip(ladders, levels)
        )

    def total_power(levels: list[int]) -> float:
        return sum(lad[lvl].avg_power for lad, lvl in zip(ladders, levels))

    levels = [0] * len(ladders)
    points: list[tuple[float, float]] = []
    if total_power(levels) <= shard.power_envelope_w:
        points.append((total_power(levels), util(levels)))
    climb_makespan(
        ladders, levels, shard.power_envelope_w,
        on_step=lambda lv: points.append((total_power(lv), util(lv))),
    )

    if not points:
        # even the floor exceeds the envelope: a degenerate one-point
        # profile at the floor with zero utility keeps the arrays valid
        # while scoring the shard as useless at any legal allocation.
        floor = sum(lad[0].avg_power for lad in ladders)
        return ShardProfile(
            shard=shard.name,
            envelope_w=shard.power_envelope_w,
            powers=np.array([floor]),
            utilities=np.array([0.0]),
        )

    powers = np.array([p for p, _ in points])
    utilities = np.maximum.accumulate(np.array([u for _, u in points]))
    # collapse duplicate power levels to their best utility so the step
    # function is well defined and strictly increasing in power
    keep = np.ones(len(powers), dtype=bool)
    keep[:-1] = powers[1:] > powers[:-1]
    return ShardProfile(
        shard=shard.name,
        envelope_w=shard.power_envelope_w,
        powers=powers[keep],
        utilities=utilities[keep],
    )


def shard_profiles(
    shards: Sequence[Shard],
    jobs: Sequence[Job],
    *,
    ladders_by_shard: Sequence[Sequence[list[Rung]]] | None = None,
) -> list[ShardProfile]:
    """Capability curves for every shard over one shared job mix."""
    if ladders_by_shard is None:
        ladders_by_shard = [None] * len(shards)
    return [
        shard_profile(s, jobs, ladders=lads)
        for s, lads in zip(shards, ladders_by_shard)
    ]


def score_splits(
    profiles: Sequence[ShardProfile], splits: np.ndarray
) -> np.ndarray:
    """Score many candidate splits in one vectorized pass.

    ``splits`` has shape ``(M, S)`` — M candidate splits over S shards,
    column order matching ``profiles``.  Returns the M scores
    ``Σ_s V_s(w_s)``.  One ``searchsorted`` per shard replaces the
    M × S Python-level curve lookups of the scalar path.
    """
    splits = np.asarray(splits, dtype=float)
    if splits.ndim != 2 or splits.shape[1] != len(profiles):
        raise ParameterError(
            f"splits must be (M, {len(profiles)}), got {splits.shape}"
        )
    with span("federation.score"):
        scores = np.zeros(len(splits))
        for j, prof in enumerate(profiles):
            idx = np.searchsorted(prof.powers, splits[:, j], side="right") - 1
            scores += np.where(
                idx >= 0, prof.utilities[np.maximum(idx, 0)], 0.0
            )
    return scores


def score_split_scalar(
    profiles: Sequence[ShardProfile], split: Sequence[float]
) -> float:
    """The per-split reference loop ``score_splits`` is benchmarked against."""
    if len(split) != len(profiles):
        raise ParameterError(
            f"split has {len(split)} entries for {len(profiles)} shards"
        )
    total = 0.0
    for prof, w in zip(profiles, split):
        value = 0.0
        for power, utility in zip(prof.powers, prof.utilities):
            if power <= w:
                value = float(utility)
            else:
                break
        total += value
    return total


def _clip(w: float, prof: ShardProfile) -> float:
    return min(w, prof.envelope_w)


def _proportional(
    profiles: Sequence[ShardProfile], budget_w: float
) -> list[float]:
    total_env = sum(p.envelope_w for p in profiles)
    return [
        _clip(budget_w * p.envelope_w / total_env, p) for p in profiles
    ]


def _waterfill(
    profiles: Sequence[ShardProfile], budget_w: float
) -> list[float]:
    """Greedy water-filling on marginal utility per watt.

    Every shard starts dry (0 W).  Each round, every affordable higher
    rung of every shard is a candidate upgrade costing
    ``powers[k] − current`` extra watts for ``utilities[k] − current``
    extra utility; the densest upgrade wins.  Stops when nothing
    affordable remains.  Allocations land exactly on curve steps, so no
    watt is parked below a shard's next useful rung.
    """
    levels = [-1] * len(profiles)  # -1 = below the floor, 0 W
    alloc = [0.0] * len(profiles)
    remaining = budget_w
    while True:
        best: tuple[float, int, int] | None = None  # (density, shard, level)
        for i, prof in enumerate(profiles):
            cur_util = float(prof.utilities[levels[i]]) if levels[i] >= 0 else 0.0
            # consider every higher rung, not just the adjacent one: the
            # running-max curve can hold flat (zero-gain) steps, and
            # stopping at the first would strand the gains beyond them
            for k in range(levels[i] + 1, len(prof.powers)):
                target = float(prof.powers[k])
                if target > prof.envelope_w:
                    break
                cost = target - alloc[i]
                if cost > remaining:
                    break
                gain = float(prof.utilities[k]) - cur_util
                if gain <= 0:
                    continue
                density = gain / max(cost, 1e-12)
                if best is None or density > best[0]:
                    best = (density, i, k)
        if best is None:
            break
        _, i, k = best
        levels[i] = k
        step = float(profiles[i].powers[k])
        remaining -= step - alloc[i]
        alloc[i] = step
    return alloc


def _exhaustive(
    profiles: Sequence[ShardProfile], budget_w: float
) -> list[float]:
    """Enumerate rung-aligned splits, score in bulk, take the best.

    Candidate allocations per shard are 0 plus every curve power within
    the envelope and the budget; the cartesian product is scored with
    :func:`score_splits`.  Ties resolve to the smallest total draw, then
    lexicographically — deterministic output for identical inputs.
    """
    axes = []
    for prof in profiles:
        cap = min(prof.envelope_w, budget_w)
        candidates = [0.0] + [
            float(p) for p in prof.powers if p <= cap
        ]
        axes.append(np.array(candidates))
    n_splits = int(np.prod([len(a) for a in axes]))
    if n_splits > MAX_EXHAUSTIVE_SPLITS:
        raise ParameterError(
            f"exhaustive partitioning would score {n_splits} splits "
            f"(cap {MAX_EXHAUSTIVE_SPLITS}); use strategy='waterfill'"
        )
    mesh = np.meshgrid(*axes, indexing="ij")
    splits = np.stack([m.ravel() for m in mesh], axis=1)
    feasible = splits.sum(axis=1) <= budget_w
    splits = splits[feasible]
    scores = score_splits(profiles, splits)
    best_score = scores.max()
    winners = splits[scores >= best_score - 1e-12]
    totals = winners.sum(axis=1)
    winners = winners[totals <= totals.min() + 1e-9]
    # lexicographic tie-break over the remaining equal-score, equal-draw rows
    order = np.lexsort(tuple(winners[:, j] for j in range(winners.shape[1] - 1, -1, -1)))
    return [float(w) for w in winners[order[0]]]


def partition_budget(
    shards: Sequence[Shard],
    budget_w: float,
    *,
    jobs: Sequence[Job],
    strategy: str = "waterfill",
    profiles: Sequence[ShardProfile] | None = None,
) -> SitePartition:
    """Split ``budget_w`` across ``shards`` for the reference job mix.

    Returns a :class:`SitePartition` whose allocations conserve the
    budget (``Σ allocation ≤ budget``) and respect every shard's
    envelope.  ``profiles`` may be passed to reuse precomputed
    capability curves (the router does, to avoid re-deriving models).
    """
    if not shards:
        raise ParameterError("cannot partition a budget over zero shards")
    if budget_w <= 0:
        raise ParameterError("site power budget must be positive")
    if strategy not in PARTITION_STRATEGIES:
        raise ParameterError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {PARTITION_STRATEGIES}"
        )
    if profiles is None:
        profiles = shard_profiles(shards, jobs)
    if strategy == "proportional":
        alloc = _proportional(profiles, budget_w)
    elif strategy == "waterfill":
        alloc = _waterfill(profiles, budget_w)
    else:
        alloc = _exhaustive(profiles, budget_w)
    # numerical guard: proportional splits may overshoot by float dust
    overshoot = sum(alloc) - budget_w
    if overshoot > 0:
        alloc = [w * (budget_w / sum(alloc)) for w in alloc]
    return SitePartition(
        budget_w=budget_w,
        strategy=strategy,
        allocations=tuple(
            ShardAllocation(
                shard=prof.shard,
                allocation_w=float(w),
                utility=prof.value_at(float(w)),
                floor_w=prof.floor_w,
            )
            for prof, w in zip(profiles, alloc)
        ),
    )

"""Multi-cluster federation: one site budget, many shards, one router.

The single-cluster solvers answer "which (p, f, n) on *one* machine";
a power-constrained site runs several.  This package turns the model
into a site-level decision service:

* :mod:`repro.federation.registry` — named machines (the paper's
  testbeds plus user-defined hypothetical ones) resolved into *shards*:
  wire-expressible cluster + envelope + policy bundles carrying their
  own Θ1/Θ2 model hooks;
* :mod:`repro.federation.partition` — site power-budget partitioning
  across shards (proportional, water-filling on marginal EE-per-watt,
  exhaustive over small grids), scored in bulk on capability curves
  built from the vectorized grid evaluator;
* :mod:`repro.federation.router` — EE-per-watt job routing: each job
  goes to the shard serving it best within its allocation, and each
  shard's queue is scheduled for real by
  :func:`repro.optimize.schedule.schedule_jobs` under the shard's own
  policy.

The wire surface is ``FederateRequest``/``FederateResponse`` in
:mod:`repro.api` (``POST /v1/federate``, ``repro federate``).
"""

from repro.federation.partition import (
    MAX_EXHAUSTIVE_SPLITS,
    PARTITION_STRATEGIES,
    ShardAllocation,
    ShardProfile,
    SitePartition,
    partition_budget,
    score_split_scalar,
    score_splits,
    shard_profile,
    shard_profiles,
)
from repro.federation.registry import (
    Shard,
    ShardRegistry,
    ShardSpec,
    default_registry,
)
from repro.federation.router import (
    ROUTING_METRICS,
    FederatedSchedule,
    ShardPlan,
    route_jobs,
)

__all__ = [
    "Shard",
    "ShardRegistry",
    "ShardSpec",
    "default_registry",
    "PARTITION_STRATEGIES",
    "MAX_EXHAUSTIVE_SPLITS",
    "ShardAllocation",
    "ShardProfile",
    "SitePartition",
    "partition_budget",
    "score_splits",
    "score_split_scalar",
    "shard_profile",
    "shard_profiles",
    "ROUTING_METRICS",
    "FederatedSchedule",
    "ShardPlan",
    "route_jobs",
]

"""Heterogeneous-pool optimization — the §VII extension, made searchable.

:mod:`repro.core.hetero` models mixed-voltage/mixed-clock processor
pools one configuration at a time; this package turns that model into an
optimizer, mirroring the homogeneous :mod:`repro.optimize` stack:

* :mod:`repro.hetero.space` — the vectorized mixed-pool grid engine:
  enumerate (per-pool counts × per-pool DVFS rungs × split policy) and
  batch-evaluate tp/ep/ee for thousands of allocations in one NumPy
  pass, cached group-aware in the shared
  :class:`~repro.optimize.engine.GridStore`.
* :mod:`repro.hetero.solve` — allocation solvers: fastest mix under a
  power budget, greenest mix under a deadline, the (Tp, Ep) Pareto
  frontier over pool mixes, and the balanced-vs-uniform ``policy_gap``
  sweep — plus the :class:`~repro.hetero.space.PoolSpec` resolution glue
  shared by the API, the CLI, and heterogeneous federation shards.

A single-pool space reduces to the homogeneous model bit for bit, so
every heterogeneous answer is anchored to the validated paper model.
"""

from repro.hetero.solve import (
    HeteroRecommendation,
    PolicyGap,
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
    policy_gap,
    resolve_pools,
    space_for,
)
from repro.hetero.space import (
    HETERO_METRICS,
    MAX_ALLOCATIONS,
    POLICIES,
    HeteroAllocationPoint,
    HeteroGridResult,
    HeteroSpace,
    Pool,
    PoolChoice,
    PoolSpec,
    evaluate_space,
    hetero_grid,
    pool_from_machine,
    scalar_space_points,
)

__all__ = [
    "HETERO_METRICS",
    "MAX_ALLOCATIONS",
    "POLICIES",
    "HeteroAllocationPoint",
    "HeteroGridResult",
    "HeteroRecommendation",
    "HeteroSpace",
    "PolicyGap",
    "Pool",
    "PoolChoice",
    "PoolSpec",
    "evaluate_space",
    "hetero_grid",
    "max_speedup_under_power",
    "min_energy_under_deadline",
    "pareto_frontier",
    "policy_gap",
    "pool_from_machine",
    "resolve_pools",
    "scalar_space_points",
    "space_for",
]

"""Vectorized evaluation over heterogeneous-pool configuration spaces.

:mod:`repro.core.hetero` generalizes Eqs. (14)–(15) to processor
*groups* and evaluates one mixed-pool configuration at a time.  An
optimizer, however, must search the whole allocation space — every
combination of per-pool counts pᵍ, per-pool DVFS rungs fᵍ, and workload
split policy — and the scalar path (build a
:class:`~repro.core.hetero.HeteroIsoEnergyModel`, call ``evaluate``)
pays Python-level group arithmetic per configuration.

This module factors the search the same way :mod:`repro.optimize.grid`
factors the homogeneous sweep:

* Θ2 depends only on the *total* processor count Σ pᵍ — one workload
  evaluation per distinct total, gathered across allocations;
* each pool's machine vector depends only on its chosen rung — one
  Θ1 re-derivation per (pool, rung), gathered across allocations;
* split shares, group times, group energies, straggler idle tails, and
  the EE anchor are elementwise over the flat allocation axis, so the
  full space evaluates as a handful of NumPy broadcasts per policy.

A **single-pool space reproduces the homogeneous grid bit for bit**:
share = 1.0 exactly, the straggler tail is exactly zero, and EE is
computed through the same Eq. (16) closed form ``evaluate_grid`` uses —
the reduction property tests in ``tests/hetero/`` rely on this.  Multi-
pool EE follows :class:`~repro.core.hetero.HeteroIsoEnergyModel`
(``min(E1_best / Ep, 1)``), where E1 anchors on the most efficient
single processor across the pools at their chosen rungs.

``benchmarks/bench_hetero_grid.py`` holds :func:`evaluate_space` to a
≥5× speedup over :func:`scalar_space_points`, the per-allocation
reference loop through the core scalar model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.hetero import HeteroIsoEnergyModel, HeteroPoint, ProcessorGroup
from repro.core.model import THETA2_FIELDS, WorkloadModel
from repro.core.parameters import MachineParams
from repro.errors import ParameterError
from repro.units import GHZ

#: workload split policies a space may search (core.hetero's vocabulary).
POLICIES = ("balanced", "uniform")

#: refuse to materialise allocation spaces beyond this many points.
MAX_ALLOCATIONS = 200_000

#: the per-allocation quantities a :class:`HeteroGridResult` carries.
HETERO_METRICS = ("tp", "ep", "e1", "ee", "avg_power")


@dataclass(frozen=True)
class PoolSpec:
    """The wire-expressible description of one candidate pool.

    ``cluster`` names a machine in the resolving
    :class:`~repro.federation.registry.ShardRegistry` (presets and
    ``register_hypothetical`` machines alike); ``count_values`` are the
    candidate processor counts and ``f_values_ghz`` the candidate DVFS
    rungs (empty = the machine's calibration frequency).  Validation
    happens at resolve time (:func:`repro.hetero.solve.resolve_pools`),
    keeping the record a plain data carrier like
    :class:`~repro.federation.registry.ShardSpec`.
    """

    name: str
    cluster: str = "systemg"
    count_values: tuple[int, ...] = (1, 2, 4, 8)
    f_values_ghz: tuple[float, ...] = ()


@dataclass(frozen=True, eq=False)  # eq=False: identity hash for memo tables
class Pool:
    """A resolved pool: candidate counts × per-rung machine vectors."""

    name: str
    count_values: tuple[int, ...]
    machines: tuple[MachineParams, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("a pool needs a non-empty name")
        if not self.count_values:
            raise ParameterError(
                f"pool {self.name!r} needs at least one candidate count"
            )
        if any(c < 1 for c in self.count_values):
            raise ParameterError(
                f"pool {self.name!r} counts must be >= 1, "
                f"got {min(self.count_values)}"
            )
        if not self.machines:
            raise ParameterError(
                f"pool {self.name!r} needs at least one frequency rung"
            )

    @property
    def options(self) -> int:
        """Candidate (count, rung) pairs this pool contributes."""
        return len(self.count_values) * len(self.machines)


def pool_from_machine(
    name: str,
    machine: MachineParams,
    *,
    count_values: Sequence[int],
    f_values_ghz: Sequence[float] = (),
) -> Pool:
    """A :class:`Pool` from an explicit Θ1 vector.

    The calibrated-model entry point: a measurement-fitted
    :class:`~repro.core.parameters.MachineParams` (from
    :func:`repro.validation.calibration.calibrate_machine_params`) slots
    into a search space exactly like a preset-derived one.  Rungs resolve
    through ``at_frequency`` with the same half-hertz tolerance
    :meth:`~repro.core.model.IsoEnergyModel.machine_at` applies, so a
    spelled-out calibration frequency and an empty rung list share one
    machine object.
    """
    rungs: list[MachineParams] = []
    for f_ghz in f_values_ghz or (None,):
        if f_ghz is None:
            rungs.append(machine)
            continue
        f = f_ghz * GHZ
        rungs.append(
            machine if abs(f - machine.f) < 0.5 else machine.at_frequency(f)
        )
    return Pool(
        name=name, count_values=tuple(int(c) for c in count_values),
        machines=tuple(rungs),
    )


@dataclass(frozen=True, eq=False)  # eq=False: identity hash for the store
class HeteroSpace:
    """One searchable mixed-pool configuration space.

    The cross product of every pool's (count × rung) options and the
    split policies, bound to one workload at one problem size.  The
    flat allocation order is load-bearing (solver tie-breaks follow it):
    policy-major, then pools left to right, each pool count-major and
    rung-minor — so a single-pool, single-policy space enumerates in
    exactly the homogeneous grid's (p, f) order.
    """

    label: str
    pools: tuple[Pool, ...]
    workload: WorkloadModel
    n: float
    policies: tuple[str, ...] = ("balanced",)

    def __post_init__(self) -> None:
        if callable(self.workload) and not hasattr(self.workload, "params"):
            # accept bare (n, p) -> AppParams callables, as IsoEnergyModel does
            fn = self.workload

            class _Wrapped:
                def params(self, n: float, p: int):
                    return fn(n, p)

            object.__setattr__(self, "workload", _Wrapped())
        if not self.pools:
            raise ParameterError("a hetero space needs at least one pool")
        names = [p.name for p in self.pools]
        if len(set(names)) != len(names):
            raise ParameterError("pool names must be unique")
        if not self.policies:
            raise ParameterError("a hetero space needs at least one policy")
        for policy in self.policies:
            if policy not in POLICIES:
                raise ParameterError(
                    f"unknown split policy {policy!r}; choose from {POLICIES}"
                )
        if len(set(self.policies)) != len(self.policies):
            raise ParameterError("duplicate split policies in the space")
        if self.n <= 0:
            raise ParameterError(f"problem size must be positive, got {self.n}")
        if self.size > MAX_ALLOCATIONS:
            raise ParameterError(
                f"the space enumerates {self.size} allocations "
                f"(cap {MAX_ALLOCATIONS}); trim counts or rungs"
            )

    @property
    def mixes(self) -> int:
        """Pool-mix combinations (before the policy axis)."""
        size = 1
        for pool in self.pools:
            size *= pool.options
        return size

    @property
    def size(self) -> int:
        """Total allocations: mixes × policies."""
        return self.mixes * len(self.policies)

    def signature(self) -> tuple:
        """The store key payload (axes + workload binding, value-level)."""
        return (
            float(self.n),
            self.policies,
            tuple(
                (p.name, p.count_values, tuple(m.f for m in p.machines))
                for p in self.pools
            ),
        )


@dataclass(frozen=True)
class PoolChoice:
    """One pool's slot in a concrete allocation: (pool, count, f)."""

    pool: str
    count: int
    f: float


@dataclass(frozen=True)
class HeteroAllocationPoint:
    """Model outputs for one concrete mixed-pool allocation."""

    policy: str
    pools: tuple[PoolChoice, ...]
    total_p: int
    tp: float
    ep: float
    e1: float
    ee: float
    avg_power: float


@dataclass(frozen=True, eq=False)  # eq=False: ndarray fields break ==/hash
class HeteroGridResult:
    """Every model output over a flat mixed-pool allocation axis.

    All metric arrays are 1-D of length ``size``; ``counts`` and
    ``freqs`` are ``(size, n_pools)`` columns describing each
    allocation, ``policy_codes`` indexes into ``policies``.
    """

    label: str
    pool_names: tuple[str, ...]
    policies: tuple[str, ...]
    counts: np.ndarray
    freqs: np.ndarray
    policy_codes: np.ndarray
    total_p: np.ndarray
    tp: np.ndarray
    ep: np.ndarray
    e1: np.ndarray
    ee: np.ndarray
    avg_power: np.ndarray = field(repr=False)

    @property
    def size(self) -> int:
        return int(self.tp.size)

    @property
    def mixes(self) -> int:
        return self.size // len(self.policies)

    @property
    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes
            for name in (*HETERO_METRICS, "counts", "freqs", "policy_codes",
                         "total_p")
        )

    def choices(self, k: int) -> tuple[PoolChoice, ...]:
        """The per-pool (count, f) picks of allocation ``k``."""
        return tuple(
            PoolChoice(
                pool=name,
                count=int(self.counts[k, g]),
                f=float(self.freqs[k, g]),
            )
            for g, name in enumerate(self.pool_names)
        )

    def point(self, k: int) -> HeteroAllocationPoint:
        """The full :class:`HeteroAllocationPoint` at flat index ``k``."""
        return HeteroAllocationPoint(
            policy=self.policies[int(self.policy_codes[k])],
            pools=self.choices(k),
            total_p=int(self.total_p[k]),
            tp=float(self.tp[k]),
            ep=float(self.ep[k]),
            e1=float(self.e1[k]),
            ee=float(self.ee[k]),
            avg_power=float(self.avg_power[k]),
        )


def _freeze(grid: HeteroGridResult) -> HeteroGridResult:
    """Mark every array read-only (shared-cache safety, as for grids)."""
    for name in (*HETERO_METRICS, "counts", "freqs", "policy_codes",
                 "total_p"):
        getattr(grid, name).flags.writeable = False
    return grid


def _mix_columns(space: HeteroSpace) -> tuple[np.ndarray, np.ndarray]:
    """(counts, rung indices), each ``(mixes, n_pools)``, pool 0 outermost.

    Within a pool, options run count-major and rung-minor — the
    homogeneous grid's (p, f) order, which the single-pool reduction
    property depends on.
    """
    option_counts = []
    option_rungs = []
    for pool in space.pools:
        counts = np.repeat(
            np.array(pool.count_values, dtype=np.int64), len(pool.machines)
        )
        rungs = np.tile(
            np.arange(len(pool.machines), dtype=np.int64),
            len(pool.count_values),
        )
        option_counts.append(counts)
        option_rungs.append(rungs)
    mesh = np.indices([p.options for p in space.pools]).reshape(
        len(space.pools), -1
    )
    counts = np.stack(
        [option_counts[g][mesh[g]] for g in range(len(space.pools))], axis=1
    )
    rungs = np.stack(
        [option_rungs[g][mesh[g]] for g in range(len(space.pools))], axis=1
    )
    return counts, rungs


def _theta2_by_total(
    space: HeteroSpace, totals: np.ndarray
) -> dict[str, np.ndarray]:
    """Θ2 fields per allocation, evaluated once per distinct Σ pᵍ."""
    uniq, inverse = np.unique(totals, return_inverse=True)
    table = {name: np.empty(uniq.size) for name in THETA2_FIELDS}
    for i, total in enumerate(uniq):
        app = space.workload.params(float(space.n), int(total))
        for name in THETA2_FIELDS:
            table[name][i] = getattr(app, name)
    return {name: arr[inverse] for name, arr in table.items()}


def evaluate_space(space: HeteroSpace) -> HeteroGridResult:
    """Every allocation of ``space``, batch-evaluated in NumPy.

    Numerically equivalent to building a
    :class:`~repro.core.hetero.HeteroIsoEnergyModel` per allocation and
    calling ``evaluate`` (see :func:`scalar_space_points`), with two
    deliberate refinements: parallel overheads are stripped at
    Σ pᵍ = 1 exactly as the homogeneous grid strips them, and
    single-pool spaces compute EE through the homogeneous Eq. (16)
    closed form so the reduction to :func:`repro.optimize.grid.evaluate_grid`
    is bit-exact.
    """
    pools = space.pools
    n_pools = len(pools)
    counts, rungs = _mix_columns(space)
    mixes = counts.shape[0]
    totals = counts.sum(axis=1)

    theta = _theta2_by_total(space, totals)
    alpha = theta["alpha"]
    wc, wm = theta["wc"], theta["wm"]
    # Σ pᵍ = 1 evaluates through the workload's sequential view: strip
    # parallel overheads exactly as evaluate_grid does for callable
    # workloads that skip the bookkeeping (only reachable single-pool).
    seq = totals == 1
    wco = np.where(seq, 0.0, theta["wco"])
    wmo = np.where(seq, 0.0, theta["wmo"])
    m_msg = np.where(seq, 0.0, theta["m_messages"])
    b_bytes = np.where(seq, 0.0, theta["b_bytes"])

    # Θ1 per (pool, rung), gathered onto the mix axis.
    def gather(attr: str) -> list[np.ndarray]:
        return [
            np.array([getattr(m, attr) for m in pool.machines])[rungs[:, g]]
            for g, pool in enumerate(pools)
        ]

    tc, tm = gather("tc"), gather("tm")
    dpc, dpm = gather("delta_pc"), gather("delta_pm")
    psys = gather("p_system_idle")
    ts_g, tw_g = gather("ts"), gather("tw")
    freqs = np.stack(gather("f"), axis=1)
    counts_f = [counts[:, g].astype(float) for g in range(n_pools)]

    # messages cross the common fabric: the slowest group's (ts, tw)
    comm_ts = np.max(np.stack(ts_g), axis=0)
    comm_tw = np.max(np.stack(tw_g), axis=0)

    # balanced shares weight count by speed on the workload's base mix;
    # the guard mirrors ProcessorGroup.unit_work_time's scalar error
    # (which uniform splitting never consults, so only balanced raises)
    frac_c = frac_m = None
    if "balanced" in space.policies:
        total_work = wc + wm
        if np.any(total_work <= 0):
            raise ParameterError(
                f"group {pools[0].name}: workload has no work"
            )
        frac_c = wc / total_work
        frac_m = wm / total_work

    tp_list: list[np.ndarray] = []
    ep_list: list[np.ndarray] = []
    e1_list: list[np.ndarray] = []
    ee_list: list[np.ndarray] = []

    # the best-single-processor EE anchor is policy-independent
    e1 = None
    for g in range(n_pools):
        t1_g = alpha * (wc * tc[g] + wm * tm[g])
        e1_g = t1_g * psys[g] + wc * tc[g] * dpc[g] + wm * tm[g] * dpm[g]
        e1 = e1_g if e1 is None else np.minimum(e1, e1_g)
    assert e1 is not None
    if np.any(e1 <= 0.0):
        raise ParameterError(
            "degenerate workload in the pool grid: some allocation has "
            "E1 <= 0; efficiency ratios are undefined"
        )

    for policy in space.policies:
        if policy == "balanced":
            speeds = [
                counts_f[g] / (frac_c * tc[g] + frac_m * tm[g])
                for g in range(n_pools)
            ]
        else:  # "uniform" (the space validated the vocabulary)
            speeds = counts_f
        speed_total = np.sum(np.stack(speeds), axis=0)
        shares = [s / speed_total for s in speeds]

        group_tp: list[np.ndarray] = []
        group_e: list[np.ndarray] = []
        for g in range(n_pools):
            wc_g = (wc + wco) * shares[g]
            wm_g = (wm + wmo) * shares[g]
            m_g = m_msg * shares[g]
            b_g = b_bytes * shares[g]
            busy = alpha * (
                wc_g * tc[g] + wm_g * tm[g] + m_g * comm_ts + b_g * comm_tw
            )
            group_tp.append(busy / counts_f[g])
            group_e.append(
                busy * psys[g] + wc_g * tc[g] * dpc[g] + wm_g * tm[g] * dpm[g]
            )

        tp = np.max(np.stack(group_tp), axis=0)
        if np.any(tp <= 0.0):
            raise ParameterError(
                "degenerate workload in the pool grid: some allocation has "
                "Tp <= 0; efficiency ratios are undefined"
            )
        # stragglers idle until the slowest group finishes
        idle_tail = np.sum(
            np.stack(
                [
                    (tp - group_tp[g]) * counts_f[g] * psys[g]
                    for g in range(n_pools)
                ]
            ),
            axis=0,
        )
        ep = np.sum(np.stack(group_e), axis=0) + idle_tail

        if n_pools == 1:
            # homogeneous reduction: Eq. (16) closed form → Eq. (21),
            # operand-for-operand the evaluate_grid computation
            delta_e = (
                alpha
                * (wco * tc[0] + wmo * tm[0] + m_msg * comm_ts
                   + b_bytes * comm_tw)
                * psys[0]
                + wco * tc[0] * dpc[0]
                + wmo * tm[0] * dpm[0]
            )
            eef = delta_e / e1
            if np.any(eef <= -1.0):
                raise ParameterError(
                    "degenerate workload in the pool grid: some allocation "
                    "has EEF <= -1; EE = 1/(1+EEF) is undefined"
                )
            ee = 1.0 / (1.0 + eef)
        else:
            ee = np.where(ep > 0.0, np.minimum(e1 / np.where(ep > 0.0, ep, 1.0), 1.0), 1.0)

        tp_list.append(tp)
        ep_list.append(ep)
        e1_list.append(e1)
        ee_list.append(ee)

    tp = np.concatenate(tp_list)
    ep = np.concatenate(ep_list)
    n_policies = len(space.policies)
    return _freeze(
        HeteroGridResult(
            label=space.label,
            pool_names=tuple(p.name for p in pools),
            policies=space.policies,
            counts=np.tile(counts, (n_policies, 1)),
            freqs=np.tile(freqs, (n_policies, 1)),
            policy_codes=np.repeat(
                np.arange(n_policies, dtype=np.int8), mixes
            ),
            total_p=np.tile(totals, n_policies),
            tp=tp,
            ep=ep,
            e1=np.concatenate(e1_list),
            ee=np.concatenate(ee_list),
            avg_power=ep / tp,
        )
    )


def hetero_grid(space: HeteroSpace, *, store=None) -> HeteroGridResult:
    """:func:`evaluate_space` through the shared grid store.

    The drop-in entry point every hetero consumer routes through — the
    allocation solvers, the API's ``hetero`` op, federation's mixed-pool
    ladders.  Cached under a group-aware signature (the space identity
    plus its value-level axes) in the same process-wide
    :class:`~repro.optimize.engine.GridStore` the homogeneous grids
    share, so repeated and batched queries over one space evaluate once.
    Returned grids are shared and read-only; copy before mutating.
    """
    from repro.obs.trace import span
    from repro.optimize.engine import default_store

    def _build():
        with span("hetero.enumerate"):
            return evaluate_space(space)

    return (store or default_store()).get_hetero(
        space, space.signature(), _build
    )


def scalar_space_points(space: HeteroSpace) -> list[HeteroAllocationPoint]:
    """The reference per-allocation loop over the core scalar model.

    Same flat order as :func:`evaluate_space` — policy-major, then the
    pool-option cross product — so equivalence tests and the benchmark
    can zip the two outputs.  Each allocation builds its
    :class:`~repro.core.hetero.HeteroIsoEnergyModel` and evaluates
    through :meth:`~repro.core.hetero.HeteroIsoEnergyModel.evaluate`.
    """
    counts, rungs = _mix_columns(space)
    out: list[HeteroAllocationPoint] = []
    for policy in space.policies:
        for k in range(counts.shape[0]):
            groups = [
                ProcessorGroup(
                    name=pool.name,
                    machine=pool.machines[int(rungs[k, g])],
                    count=int(counts[k, g]),
                )
                for g, pool in enumerate(space.pools)
            ]
            model = HeteroIsoEnergyModel(groups)
            total = int(counts[k].sum())
            app = space.workload.params(float(space.n), total)
            if total == 1:
                app = app.sequential()
            point: HeteroPoint = model.evaluate(app, policy=policy)
            out.append(
                HeteroAllocationPoint(
                    policy=policy,
                    pools=tuple(
                        PoolChoice(
                            pool=g.name, count=g.count, f=g.machine.f
                        )
                        for g in groups
                    ),
                    total_p=total,
                    tp=point.tp,
                    ep=point.ep,
                    e1=point.e1_best,
                    ee=point.ee,
                    avg_power=point.ep / point.tp,
                )
            )
    return out

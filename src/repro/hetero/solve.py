"""Constrained allocation solvers over the mixed-pool grid.

The homogeneous solvers in :mod:`repro.optimize.budget` answer "which
(p, f) should I run?"; these answer the heterogeneous form — *which
pool mix* — over the vectorized allocation space of
:mod:`repro.hetero.space`:

* :func:`max_speedup_under_power` — fastest allocation whose average
  draw fits the budget;
* :func:`min_energy_under_deadline` — greenest allocation meeting the
  deadline;
* :func:`pareto_frontier` — the non-dominated (Tp, Ep) pool mixes;
* :func:`policy_gap` — how much energy a naive uniform split wastes
  against the makespan-balanced split, across the whole mix space (the
  hetero headline: more silicon, badly split, is not greener).

Tie-breaking follows the space's flat enumeration order exactly as the
homogeneous solvers follow the grid's — a single-pool space therefore
reproduces the homogeneous solver picks bit for bit.

:func:`resolve_pools` and :func:`space_for` are the resolution glue:
wire-level :class:`~repro.hetero.space.PoolSpec` records resolve through
the federation machine registry (presets and hypothetical machines
alike), so the API service, the CLI, and heterogeneous federation
shards all build spaces the same way.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.hetero.space import (
    MAX_ALLOCATIONS,
    POLICIES,
    HeteroGridResult,
    HeteroSpace,
    Pool,
    PoolChoice,
    PoolSpec,
    hetero_grid,
    pool_from_machine,
)
from repro.npb.workloads import benchmark_for
# the frontier kernel is shared with the homogeneous Pareto solver so
# both menus prune dominated configurations by the same rule
from repro.optimize.budget import _frontier_flat
from repro.validation.calibration import derive_machine_params


@dataclass(frozen=True)
class HeteroRecommendation:
    """One recommended pool allocation plus its predicted outcome.

    The mixed-pool analogue of
    :class:`~repro.optimize.budget.Recommendation`: ``pools`` lists the
    per-pool (count, f) picks, ``total_p`` their sum, and
    ``feasible_count`` how many allocations satisfied the constraint.
    """

    objective: str
    policy: str
    pools: tuple[PoolChoice, ...]
    total_p: int
    tp: float
    ep: float
    ee: float
    avg_power: float
    feasible_count: int


@dataclass(frozen=True)
class PolicyGap:
    """The balanced-vs-uniform energy penalty over one mix space.

    ``max_gap``/``mean_gap`` are ``Ep_uniform / Ep_balanced − 1`` over
    every pool mix; ``worst`` is the mix where the naive split hurts
    most.  A single-pool space gaps to zero everywhere.
    """

    mixes: int
    max_gap: float
    mean_gap: float
    worst: tuple[PoolChoice, ...]
    worst_total_p: int


def _recommend(
    grid: HeteroGridResult, k: int, objective: str, feasible_count: int
) -> HeteroRecommendation:
    point = grid.point(k)
    return HeteroRecommendation(
        objective=objective,
        policy=point.policy,
        pools=point.pools,
        total_p=point.total_p,
        tp=point.tp,
        ep=point.ep,
        ee=point.ee,
        avg_power=point.avg_power,
        feasible_count=feasible_count,
    )


def max_speedup_under_power(
    space: HeteroSpace, *, budget_w: float, store=None
) -> HeteroRecommendation:
    """Fastest allocation whose average power ``Ep/Tp`` fits ``budget_w``.

    Raises :class:`~repro.errors.ParameterError` when even the frugalest
    mix exceeds the budget, reporting the smallest draw on the space so
    the caller knows how far off the budget is.
    """
    if budget_w <= 0:
        raise ParameterError("power budget must be positive")
    grid = hetero_grid(space, store=store)
    feasible = grid.avg_power <= budget_w
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no pool allocation fits under {budget_w:.0f} W: the frugalest "
            f"mix draws {float(grid.avg_power.min()):.0f} W"
        )
    k = int(np.argmin(np.where(feasible, grid.tp, np.inf)))
    return _recommend(grid, k, "max_speedup_under_power", count)


def min_energy_under_deadline(
    space: HeteroSpace, *, t_max: float, store=None
) -> HeteroRecommendation:
    """Greenest allocation whose predicted Tp meets the ``t_max`` deadline."""
    if t_max <= 0:
        raise ParameterError("deadline must be positive")
    grid = hetero_grid(space, store=store)
    feasible = grid.tp <= t_max
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no pool allocation meets the {t_max:g} s deadline: the fastest "
            f"mix needs {float(grid.tp.min()):.3g} s"
        )
    k = int(np.argmin(np.where(feasible, grid.ep, np.inf)))
    return _recommend(grid, k, "min_energy_under_deadline", count)


def pareto_frontier(
    space: HeteroSpace, *, store=None
) -> list[HeteroRecommendation]:
    """Non-dominated (Tp, Ep) allocations, sorted fastest-first.

    The mixed-pool menu: an allocation survives iff no other is both
    faster and greener, pruned by the same lexsort/running-min kernel
    the homogeneous :func:`~repro.optimize.budget.pareto_frontier` uses.
    """
    grid = hetero_grid(space, store=store)
    winners = [int(k) for k in _frontier_flat(grid.tp, grid.ep)]
    return [
        _recommend(grid, k, "pareto_frontier", len(winners)) for k in winners
    ]


#: memoised both-policy twins of single-policy spaces — the hetero grid
#: cache keys on space *identity*, so the twin must be stable across
#: calls or every policy_gap would re-evaluate the two-policy grid.
#: Weak keys: a twin lives exactly as long as its source space.
_GAP_TWINS: "weakref.WeakKeyDictionary[HeteroSpace, HeteroSpace]" = (
    weakref.WeakKeyDictionary()
)


def policy_gap(space: HeteroSpace, *, store=None) -> PolicyGap:
    """Quantify balanced-vs-uniform splitting over every pool mix.

    When the space already searches both policies the cached grid is
    reused outright; otherwise a twin space carrying both policies is
    evaluated (memoised per source space, so repeated gap queries still
    share one grid).  Returns the max/mean energy penalty and the worst
    mix.
    """
    if "balanced" in space.policies and "uniform" in space.policies:
        full = space
    else:
        full = _GAP_TWINS.get(space)
        if full is None:
            if space.mixes * len(POLICIES) > MAX_ALLOCATIONS:
                # the twin would trip the space-size cap with a message
                # about a doubled space the caller never built — name the
                # real constraint instead
                raise ParameterError(
                    f"policy_gap evaluates both split policies over "
                    f"{space.mixes} mixes "
                    f"({space.mixes * len(POLICIES)} allocations, cap "
                    f"{MAX_ALLOCATIONS}); trim counts or rungs"
                )
            full = replace(space, policies=POLICIES)
            _GAP_TWINS[space] = full
    grid = hetero_grid(full, store=store)
    mixes = grid.mixes
    i_bal = full.policies.index("balanced")
    i_uni = full.policies.index("uniform")
    ep_bal = grid.ep[i_bal * mixes:(i_bal + 1) * mixes]
    ep_uni = grid.ep[i_uni * mixes:(i_uni + 1) * mixes]
    gaps = ep_uni / ep_bal - 1.0
    worst = int(np.argmax(gaps))
    k_worst = i_bal * mixes + worst  # choices are policy-independent
    return PolicyGap(
        mixes=mixes,
        max_gap=float(gaps[worst]),
        mean_gap=float(gaps.mean()),
        worst=grid.choices(k_worst),
        worst_total_p=int(grid.total_p[k_worst]),
    )


# ---------------------------------------------------------------------------
# Resolution glue: PoolSpec → Pool → HeteroSpace
# ---------------------------------------------------------------------------


def _validate_specs(specs: Sequence[PoolSpec]) -> None:
    if not specs:
        raise ParameterError("a hetero query needs at least one pool")
    seen: set[str] = set()
    for spec in specs:
        if not spec.name:
            raise ParameterError("a pool needs a non-empty name")
        if spec.name in seen:
            raise ParameterError(
                f"duplicate pool name {spec.name!r} in the pool set"
            )
        seen.add(spec.name)
        if not spec.count_values:
            raise ParameterError(
                f"pool {spec.name!r} needs at least one candidate count"
            )
        if any(c < 1 for c in spec.count_values):
            raise ParameterError(
                f"pool {spec.name!r} counts must be >= 1, "
                f"got {min(spec.count_values)}"
            )
        if any(f <= 0 for f in spec.f_values_ghz):
            raise ParameterError(
                f"pool {spec.name!r} frequencies must be positive"
            )


def resolve_pools(
    specs: Sequence[PoolSpec],
    *,
    cpi_factor: float = 1.0,
    registry=None,
    clusters=None,
) -> tuple[Pool, ...]:
    """Resolve wire-level pool specs into model-carrying :class:`Pool`\\ s.

    Machine names resolve through the federation registry (so
    ``register_hypothetical`` what-if machines can serve as pools);
    ``clusters`` optionally supplies pre-built clusters in spec order —
    the heterogeneous-shard path, whose registry already built them.
    ``cpi_factor`` is the workload's instruction-mix correction, exactly
    as :func:`repro.paperdata.paper_model` applies it.
    """
    _validate_specs(specs)
    if clusters is None:
        from repro.federation.registry import default_registry

        registry = registry or default_registry()
        clusters = [
            registry.build_cluster(spec.cluster, max(spec.count_values))
            for spec in specs
        ]
    if len(clusters) != len(specs):
        raise ParameterError(
            f"{len(clusters)} pre-built clusters for {len(specs)} pools"
        )
    return tuple(
        pool_from_machine(
            spec.name,
            derive_machine_params(cluster, cpi_factor=cpi_factor),
            count_values=spec.count_values,
            f_values_ghz=spec.f_values_ghz,
        )
        for spec, cluster in zip(specs, clusters)
    )


def space_for(
    benchmark: str,
    klass: str = "B",
    niter: int | None = None,
    *,
    pools: Sequence[PoolSpec],
    n_factor: float = 1.0,
    policies: Sequence[str] = ("balanced",),
    registry=None,
    clusters=None,
) -> HeteroSpace:
    """The searchable space of one workload over a described pool set.

    The one resolution path the API service, the CLI, and heterogeneous
    federation shards share: NPB workload + per-pool machine vectors
    (with the workload's CPI correction) + split policies.
    """
    if n_factor <= 0:
        raise ParameterError(f"n_factor must be positive, got {n_factor}")
    bench, n = benchmark_for(benchmark, klass, niter)
    resolved = resolve_pools(
        pools, cpi_factor=bench.cpi_factor, registry=registry,
        clusters=clusters,
    )
    names = " + ".join(p.name for p in resolved)
    return HeteroSpace(
        label=f"{bench.name}.{klass.upper()} over {names}",
        pools=resolved,
        workload=bench.workload,
        n=n * n_factor,
        policies=tuple(policies),
    )

"""Power-constrained configuration solving — the paper's model, inverted.

Everything below this package answers questions of the form "which
(p, f, n) should I run?", where the rest of the library answers "what
happens at this (p, f, n)?".  Four cooperating modules:

* :mod:`repro.optimize.grid` — a vectorized batch evaluator that computes
  every model quantity over a full (p × f × n) grid in bulk NumPy,
  replacing thousands of scalar :meth:`IsoEnergyModel.evaluate` calls.
  All solvers below run on top of it.
* :mod:`repro.optimize.engine` — the shared :class:`GridStore`: every
  grid consumer routes through :func:`grid_for`, so repeated and
  overlapping queries are served from cache (exact hits) or sliced out
  of cached supersets instead of re-evaluating the model.
* :mod:`repro.optimize.contour` — iso-energy-efficiency contour tracing:
  the ``n(p)`` and ``f(p)`` curves that hold EE at a target value, the
  paper's iso-efficiency scaling question as executable API.
* :mod:`repro.optimize.budget` — constrained optimizers: fastest
  configuration under a power budget, greenest under a deadline, and the
  (Tp, Ep) Pareto frontier of a workload.
* :mod:`repro.optimize.schedule` — a cluster-level DVFS scheduler that
  splits a site power budget across a queue of NPB jobs and assigns each
  a (p, f).
"""

from repro.optimize.budget import (
    Recommendation,
    max_speedup_under_power,
    max_speedup_under_power_many,
    min_energy_under_deadline,
    min_energy_under_deadline_many,
    pareto_frontier,
)
from repro.optimize.contour import (
    ContourPoint,
    iso_ee_curve,
    iso_ee_curve_scalar,
)
from repro.optimize.engine import (
    GridStore,
    default_store,
    ee_pairs,
    grid_for,
)
from repro.optimize.shm import (
    HAVE_SHARED_MEMORY,
    PoolBoard,
    SharedGridPlane,
)
from repro.optimize.grid import (
    GridResult,
    ee_at_pairs,
    evaluate_grid,
    scalar_grid,
)
from repro.optimize.schedule import (
    SCHEDULE_POLICIES,
    Assignment,
    ClusterSchedule,
    Job,
    Rung,
    climb_makespan,
    eligible_rungs,
    power_ladder,
    schedule_jobs,
)

__all__ = [
    "GridResult",
    "GridStore",
    "default_store",
    "ee_at_pairs",
    "ee_pairs",
    "evaluate_grid",
    "grid_for",
    "scalar_grid",
    "ContourPoint",
    "iso_ee_curve",
    "iso_ee_curve_scalar",
    "Recommendation",
    "max_speedup_under_power",
    "max_speedup_under_power_many",
    "min_energy_under_deadline",
    "min_energy_under_deadline_many",
    "pareto_frontier",
    "Assignment",
    "ClusterSchedule",
    "Job",
    "Rung",
    "SCHEDULE_POLICIES",
    "climb_makespan",
    "eligible_rungs",
    "power_ladder",
    "schedule_jobs",
    "HAVE_SHARED_MEMORY",
    "PoolBoard",
    "SharedGridPlane",
]

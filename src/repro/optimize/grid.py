"""Vectorized batch evaluation of the model over (p × f × n) grids.

The scalar path (:meth:`IsoEnergyModel.evaluate` in a triple loop)
re-derives Θ1 and Θ2 and walks Eqs. (5)–(21) point by point.  A grid of
(p × f × n) points, however, factors cleanly:

* Θ2 depends only on (n, p) — ``len(n)·len(p)`` workload evaluations,
  served by :meth:`IsoEnergyModel.theta2_table` (itself memoised);
* Θ1 depends only on f — ``len(f)`` re-derivations via the memoised
  :meth:`IsoEnergyModel.machine_at`;
* every model equation is arithmetic over those vectors, so the full
  grid evaluates as a handful of NumPy broadcasts.

``benchmarks/bench_optimize_grid.py`` holds the 50×20×10 grid to a ≥10×
speedup over the equivalent scalar sweep; :func:`scalar_grid` is the
reference implementation both the benchmark and the equivalence tests
compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.model import IsoEnergyModel, ModelPoint
from repro.errors import ParameterError

#: bottleneck codes used in :attr:`GridResult.bottleneck`; index 0 is the
#: p=1 sentinel, 1..4 mirror the term order of
#: :func:`repro.core.efficiency.eef_terms` (ties resolve to the first
#: maximal term there and under ``argmax`` here, keeping parity exact).
BOTTLENECK_NAMES = (
    "none",
    "compute_overhead",
    "memory_overhead",
    "message_startup",
    "byte_transmission",
)

#: the per-point quantities a :class:`GridResult` carries.
GRID_METRICS = (
    "t1",
    "tp",
    "e1",
    "ep",
    "eef",
    "ee",
    "speedup",
    "perf_efficiency",
    "avg_power",
)


@dataclass(frozen=True, eq=False)  # eq=False: ndarray fields break ==/hash
class GridResult:
    """Every model output over a dense (p × f × n) grid.

    All value arrays have shape ``(len(p_values), len(f_values),
    len(n_values))``; ``f_values`` holds the *resolved* machine
    frequencies (an ``f=None`` request resolves to the calibration
    frequency).  ``avg_power`` is the power-cap quantity ``Ep / Tp``.
    """

    label: str
    p_values: tuple[int, ...]
    f_values: tuple[float, ...]
    n_values: tuple[float, ...]
    t1: np.ndarray
    tp: np.ndarray
    e1: np.ndarray
    ep: np.ndarray
    eef: np.ndarray
    ee: np.ndarray
    speedup: np.ndarray
    perf_efficiency: np.ndarray
    avg_power: np.ndarray
    bottleneck: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        shape = self.shape
        for name in (*GRID_METRICS, "bottleneck"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ParameterError(
                    f"grid array {name!r} has shape {arr.shape}, "
                    f"expected {shape}"
                )

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(self.p_values), len(self.f_values), len(self.n_values))

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    # -- point access ------------------------------------------------------------

    def point(self, ip: int, jf: int, kn: int) -> ModelPoint:
        """The :class:`ModelPoint` at grid indices ``(ip, jf, kn)``."""
        return ModelPoint(
            p=self.p_values[ip],
            f=self.f_values[jf],
            n=self.n_values[kn],
            t1=float(self.t1[ip, jf, kn]),
            tp=float(self.tp[ip, jf, kn]),
            e1=float(self.e1[ip, jf, kn]),
            ep=float(self.ep[ip, jf, kn]),
            eef=float(self.eef[ip, jf, kn]),
            ee=float(self.ee[ip, jf, kn]),
            speedup=float(self.speedup[ip, jf, kn]),
            perf_efficiency=float(self.perf_efficiency[ip, jf, kn]),
            bottleneck=BOTTLENECK_NAMES[int(self.bottleneck[ip, jf, kn])],
        )

    def iter_points(self) -> Iterator[ModelPoint]:
        """All points in (p, f, n) index order."""
        for ip in range(len(self.p_values)):
            for jf in range(len(self.f_values)):
                for kn in range(len(self.n_values)):
                    yield self.point(ip, jf, kn)

    def points(self) -> list[ModelPoint]:
        """The grid as a flat point list (feeds ``points_table``)."""
        return list(self.iter_points())

    # -- slicing for heatmaps -----------------------------------------------------

    def slice_pf(self, metric: str = "ee", kn: int = 0) -> np.ndarray:
        """A (p × f) plane of ``metric`` at n index ``kn`` (heatmap food)."""
        return np.array(self._metric(metric)[:, :, kn])

    def slice_pn(self, metric: str = "ee", jf: int = 0) -> np.ndarray:
        """A (p × n) plane of ``metric`` at f index ``jf``."""
        return np.array(self._metric(metric)[:, jf, :])

    # -- reductions ----------------------------------------------------------------

    def argbest(
        self,
        metric: str,
        *,
        mode: str = "min",
        where: np.ndarray | None = None,
    ) -> tuple[int, int, int]:
        """Grid indices of the best ``metric`` value, optionally masked.

        ``where`` is a boolean feasibility mask of the grid's shape (e.g.
        ``grid.avg_power <= budget``); infeasible cells never win.
        """
        # no defensive copy: negation and masking below allocate fresh
        # arrays when needed, and a plain min-mode argmin reads in place
        values = self._metric(metric)
        if mode == "min":
            pass
        elif mode == "max":
            values = -values
        else:
            raise ParameterError(f"mode must be 'min' or 'max', got {mode!r}")
        if where is not None:
            if where.shape != self.shape:
                raise ParameterError("feasibility mask shape mismatch")
            if not where.any():
                raise ParameterError(
                    f"no feasible grid cell for {metric!r}: the mask "
                    "excludes the entire grid"
                )
            values = np.where(where, values, np.inf)
        flat = int(np.argmin(values))
        return np.unravel_index(flat, self.shape)  # type: ignore[return-value]

    def best_point(
        self,
        metric: str,
        *,
        mode: str = "min",
        where: np.ndarray | None = None,
    ) -> ModelPoint:
        """The :class:`ModelPoint` at :meth:`argbest`."""
        return self.point(*self.argbest(metric, mode=mode, where=where))

    def _metric(self, metric: str) -> np.ndarray:
        if metric not in GRID_METRICS:
            raise ParameterError(
                f"unknown grid metric {metric!r}; choose from {GRID_METRICS}"
            )
        return getattr(self, metric)


def _as_axis(name: str, values: Sequence[float] | None, fallback) -> list:
    if values is None:
        values = fallback
    values = list(values)
    if not values:
        raise ParameterError(f"grid axis {name!r} is empty")
    return values


def evaluate_grid(
    model: IsoEnergyModel,
    *,
    p_values: Sequence[int],
    n_values: Sequence[float],
    f_values: Sequence[float | None] | None = None,
    label: str = "",
) -> GridResult:
    """Evaluate ``model`` over the full (p × f × n) grid in bulk.

    Numerically identical to the scalar triple loop (the closed-form ΔE
    of Eq. 16 is used for EEF, exactly as ``evaluate()`` does) but runs
    as NumPy broadcasts over the factored Θ1(f) / Θ2(n, p) tables.
    ``f_values`` defaults to the model's calibration frequency.
    """
    ps = [int(p) for p in _as_axis("p", p_values, None)]
    if any(p < 1 for p in ps):
        raise ParameterError(f"p values must be >= 1, got {min(ps)}")
    ns = [float(n) for n in _as_axis("n", n_values, None)]
    fs = _as_axis("f", f_values, [None])

    machines = [model.machine_at(f) for f in fs]
    theta2 = model.theta2_table(ns, ps)

    # Θ2 planes → (P, 1, N); Θ1 vectors → (1, F, 1); results → (P, F, N).
    def plane(name: str) -> np.ndarray:
        return theta2[name].T[:, None, :]

    alpha = plane("alpha")
    wc, wm = plane("wc"), plane("wm")
    wco, wmo = plane("wco"), plane("wmo")
    m_msg, b_bytes = plane("m_messages"), plane("b_bytes")
    t_io = plane("t_io")
    p_col = np.array(ps, dtype=float)[:, None, None]

    # The scalar path evaluates p=1 through the workload's sequential()
    # view, which strips parallel overheads.  AppParams validation only
    # enforces zero overheads at p=1 when the Θ2 carries its p field, so
    # strip explicitly here to stay equivalent for callable workloads
    # that skip the bookkeeping.
    seq_col = p_col == 1.0
    wco = np.where(seq_col, 0.0, wco)
    wmo = np.where(seq_col, 0.0, wmo)
    m_msg = np.where(seq_col, 0.0, m_msg)
    b_bytes = np.where(seq_col, 0.0, b_bytes)

    def fvec(attr: str) -> np.ndarray:
        return np.array([getattr(m, attr) for m in machines])[None, :, None]

    tc, tm = fvec("tc"), fvec("tm")
    ts, tw = fvec("ts"), fvec("tw")
    dpc, dpm, dpio = fvec("delta_pc"), fvec("delta_pm"), fvec("delta_pio")
    psys = fvec("p_system_idle")

    # Eqs. (5)-(6): T1 from the sequential view (overheads stripped).
    t1 = alpha * (wc * tc + wm * tm + t_io)
    # Eqs. (10), (17): Σ Ti; overheads and comm are zero at p=1 by
    # construction (AppParams forbids them), so one formula covers all p.
    sum_ti = alpha * (
        (wc + wco) * tc + (wm + wmo) * tm + m_msg * ts + b_bytes * tw + t_io
    )
    tp = sum_ti / p_col

    # Eqs. (13), (15)/(18).
    e1 = t1 * psys + wc * tc * dpc + wm * tm * dpm + t_io * dpio
    ep = sum_ti * psys + (wc + wco) * tc * dpc + (wm + wmo) * tm * dpm + t_io * dpio

    if np.any(tp <= 0.0) or np.any(e1 <= 0.0):
        raise ParameterError(
            "degenerate workload on the grid: some cell has Tp <= 0 or "
            "E1 <= 0; efficiency ratios are undefined"
        )

    # Eq. (16) closed form → Eq. (19) → Eq. (21).
    delta_e = (
        alpha * (wco * tc + wmo * tm + m_msg * ts + b_bytes * tw) * psys
        + wco * tc * dpc
        + wmo * tm * dpm
    )
    eef = delta_e / e1
    if np.any(eef <= -1.0):
        raise ParameterError(
            "degenerate workload on the grid: some cell has EEF <= -1; "
            "EE = 1/(1+EEF) is undefined"
        )
    ee = 1.0 / (1.0 + eef)

    # eef_terms() numerators, stacked for a vectorized dominant-overhead.
    terms = np.stack(
        [
            wco * tc * (alpha * psys + dpc),
            wmo * tm * (alpha * psys + dpm),
            alpha * m_msg * ts * psys,
            alpha * b_bytes * tw * psys,
        ]
    )
    bottleneck = np.argmax(terms, axis=0).astype(np.int8) + 1
    bottleneck = np.where(p_col == 1.0, np.int8(0), bottleneck)

    return GridResult(
        label=label or model.name,
        p_values=tuple(ps),
        f_values=tuple(m.f for m in machines),
        n_values=tuple(ns),
        t1=t1,
        tp=tp,
        e1=e1,
        ep=ep,
        eef=eef,
        ee=ee,
        speedup=t1 / tp,
        perf_efficiency=t1 / (p_col * tp),
        avg_power=ep / tp,
        bottleneck=bottleneck,
    )


def ee_at_pairs(
    model: IsoEnergyModel,
    n_values: Sequence[float] | np.ndarray,
    p_values: Sequence[int] | np.ndarray,
    *,
    f: float | None = None,
) -> np.ndarray:
    """EE at element-wise (n, p) pairs in one vectorized pass.

    The batched-bisection primitive: where :func:`evaluate_grid` computes
    the full (p × f × n) outer product, contour solvers need EE along a
    *pairing* of the axes — a different n per p each refinement step.
    Equivalent to ``[model.ee(n=n_k, p=p_k, f=f) for k ...]`` (same
    Θ2 source, same Eq. 16 closed form) without the scalar per-point
    overhead.
    """
    th = model.theta2_pairs(n_values, p_values)
    p = np.asarray(p_values, dtype=float)
    mach = model.machine_at(f)

    # p=1 evaluates through the sequential view: strip parallel overheads
    # exactly as evaluate_grid does for callable workloads.
    seq = p == 1.0
    alpha = th["alpha"]
    wco = np.where(seq, 0.0, th["wco"])
    wmo = np.where(seq, 0.0, th["wmo"])
    m_msg = np.where(seq, 0.0, th["m_messages"])
    b_bytes = np.where(seq, 0.0, th["b_bytes"])

    t1 = alpha * (th["wc"] * mach.tc + th["wm"] * mach.tm + th["t_io"])
    psys = mach.p_system_idle
    e1 = (
        t1 * psys
        + th["wc"] * mach.tc * mach.delta_pc
        + th["wm"] * mach.tm * mach.delta_pm
        + th["t_io"] * mach.delta_pio
    )
    if np.any(e1 <= 0.0):
        raise ParameterError(
            "degenerate workload in the pair batch: some pair has E1 <= 0; "
            "efficiency ratios are undefined"
        )
    # Eq. (16) closed form → Eq. (19) → Eq. (21), as in evaluate_grid.
    delta_e = (
        alpha
        * (wco * mach.tc + wmo * mach.tm + m_msg * mach.ts + b_bytes * mach.tw)
        * psys
        + wco * mach.tc * mach.delta_pc
        + wmo * mach.tm * mach.delta_pm
    )
    eef = delta_e / e1
    if np.any(eef <= -1.0):
        raise ParameterError(
            "degenerate workload in the pair batch: some pair has EEF <= -1; "
            "EE = 1/(1+EEF) is undefined"
        )
    return 1.0 / (1.0 + eef)


def scalar_grid(
    model: IsoEnergyModel,
    *,
    p_values: Sequence[int],
    n_values: Sequence[float],
    f_values: Sequence[float | None] | None = None,
) -> list[ModelPoint]:
    """The reference triple loop of scalar ``evaluate()`` calls.

    Same point order as :meth:`GridResult.iter_points` — (p, f, n) —
    so equivalence tests and the benchmark can zip the two outputs.
    """
    fs = list(f_values) if f_values is not None else [None]
    return [
        model.evaluate(n=float(n), p=int(p), f=f)
        for p in p_values
        for f in fs
        for n in n_values
    ]

"""The shared-memory grid plane: one evaluation, many *processes*.

:mod:`repro.optimize.engine` made grids shareable across every consumer
inside one process.  This module extends the same idea across a pre-fork
worker pool (:mod:`repro.api.pool`): the frozen NumPy payloads of a
:class:`~repro.optimize.grid.GridResult` live in POSIX shared-memory
segments (``multiprocessing.shared_memory``), published through a small
shared *index* so that a grid computed by one worker is attached
read-only — zero-copy — by every other worker instead of being
recomputed.  Grids are immutable once published, which is exactly the
read-mostly model state that makes multicore scaling cheap.

Concurrency design
------------------

* **The index is a seqlock** (generation-counted directory).  A single
  fixed-size segment holds ``(generation, length)`` followed by a JSON
  payload listing every published grid.  Writers bump the generation to
  an odd value, rewrite the payload, then bump it even again; readers
  spin until they observe the same even generation before and after the
  payload copy.  Reads therefore take **no lock at all** — the common
  case (every worker checking the directory on a cache miss) never
  serializes.
* **Writers serialize on a file lock** (``fcntl.flock`` on a lockfile
  derived from the plane name).  File locks work between arbitrary
  processes with no inheritance requirements, so tests can attach to a
  plane they did not create.
* **Unlink is safe under concurrent readers**: POSIX keeps a mapping
  alive after the name is unlinked, so evicting a segment another
  worker has attached never invalidates that worker's arrays — the
  memory is reclaimed when the last mapping closes.

Every created or attached segment is *unregistered* from CPython's
``resource_tracker``: before 3.13 the tracker registers attachments too,
and would unlink segments still in use when any single worker exits.
Lifecycle is explicit instead — eviction and :meth:`SharedGridPlane.clear`
unlink segments, and :meth:`SharedGridPlane.destroy` (the pool parent's
shutdown path) removes everything including the index, verified leak-free
by ``tests/optimize/test_shm.py``.

:class:`PoolBoard` rides the same segment machinery: a slot of
seqlock-framed JSON per worker, each slot single-writer, so any worker
can aggregate pool-wide serving stats for ``/healthz`` and ``/metrics``
without IPC round trips.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import tempfile
import threading
import time
from typing import Any, Sequence

import numpy as np

from repro.errors import ParameterError, ReproError
from repro.optimize.grid import GRID_METRICS, GridResult

try:  # POSIX-only pieces; the plane degrades to unavailable elsewhere
    import fcntl
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - non-POSIX platforms
    HAVE_SHARED_MEMORY = False

#: every segment this module creates starts with this prefix — the
#: leak-scan hook tests and ``destroy()`` key on.
SEGMENT_PREFIX = "reprogs"

#: default capacity of the index segment (JSON directory + header).
DEFAULT_INDEX_BYTES = 1 << 20

#: default ceiling on resident published-grid bytes; FIFO eviction
#: (publish order) beyond it, oldest first.
DEFAULT_MAX_BYTES = 256 << 20

#: (generation, payload-length) little-endian header of the index and of
#: each board slot.
_HEADER = struct.Struct("<QQ")

#: arrays carried by every published grid, in segment layout order.
_GRID_ARRAYS = (*GRID_METRICS, "bottleneck")

#: bound on seqlock read retries before declaring the writer wedged.
_READ_RETRIES = 2000


def _unregister(segment) -> None:
    """Opt a *created* segment out of the resource tracker.

    The tracker would otherwise unlink every segment when its creating
    worker exits — even segments sibling workers still serve from.
    Lifecycle is explicit here instead (eviction / ``clear`` /
    ``destroy``).  Attach-only handles are never registered on the
    CPythons we support, so this is only called after creation.
    """
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across 3.x
        pass


def shm_dir_entries(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Live ``/dev/shm`` entries starting with ``prefix`` (Linux only).

    The leak-scan primitive the lifecycle tests use; returns ``[]`` where
    the kernel does not expose segments as files.
    """
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith(prefix)
        )
    except OSError:  # pragma: no cover - non-Linux
        return []


def grid_nbytes(grid: GridResult) -> int:
    """Total payload bytes of one grid's arrays."""
    return sum(getattr(grid, name).nbytes for name in _GRID_ARRAYS)


class SharedGridPlane:
    """A cross-process directory of published :class:`GridResult` grids.

    One process creates the plane (``create=True`` — the pool parent);
    any number of others attach by name.  Keys are caller-provided JSON
    strings for the *model* part (a content fingerprint — see
    ``shared_key`` in :func:`repro.paperdata.paper_model`) plus the
    value-level p/f/n axes, so forked workers resolving the same request
    agree on the key without sharing object identity.
    """

    def __init__(
        self,
        name: str,
        *,
        create: bool = False,
        index_bytes: int = DEFAULT_INDEX_BYTES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if not HAVE_SHARED_MEMORY:  # pragma: no cover - non-POSIX
            raise ReproError(
                "shared-memory grid plane needs POSIX shared memory "
                "(multiprocessing.shared_memory + fcntl)"
            )
        if index_bytes < 4096:
            raise ParameterError("index_bytes must be at least 4096")
        if max_bytes < 1:
            raise ParameterError("max_bytes must be positive")
        self.name = name
        self.max_bytes = int(max_bytes)
        self._index_name = f"{SEGMENT_PREFIX}-{name}-idx"
        self._lock_path = os.path.join(
            tempfile.gettempdir(), f"{SEGMENT_PREFIX}-{name}.lock"
        )
        self._owner = bool(create)
        self._tlock = threading.Lock()
        # attached data segments, kept open for the plane's lifetime:
        # numpy views into their buffers may be cached by any GridStore,
        # so handles are only closed (best-effort) at detach/destroy
        self._attached: dict[str, tuple[Any, int]] = {}
        self._closed = False
        # process-local traffic counters (plane-level census lives in
        # the index itself)
        self.published = 0
        self.publish_races = 0
        self.publish_rejects = 0
        self.attach_hits = 0
        self.superset_attach_hits = 0
        self.attach_misses = 0
        self.evicted = 0
        if create:
            self._index = _shared_memory.SharedMemory(
                name=self._index_name, create=True, size=index_bytes + 16
            )
            _unregister(self._index)
            with self._locked():
                self._write_index_locked({"seq": 0, "entries": []})
        else:
            try:
                self._index = _shared_memory.SharedMemory(name=self._index_name)
            except FileNotFoundError:
                raise ReproError(
                    f"shared grid plane {name!r} does not exist "
                    f"(no index segment {self._index_name!r})"
                ) from None

    # -- index access -------------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive writer section: thread lock + cross-process flock."""
        with self._tlock:
            fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o600)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)

    def _read_index(self) -> dict[str, Any]:
        """One consistent directory snapshot (lock-free seqlock read)."""
        buf = self._index.buf
        for _ in range(_READ_RETRIES):
            gen1, length = _HEADER.unpack_from(buf, 0)
            if gen1 % 2:  # a writer is mid-update
                time.sleep(0.0002)
                continue
            payload = bytes(buf[16 : 16 + length])
            gen2, _ = _HEADER.unpack_from(buf, 0)
            if gen1 == gen2:
                if not length:
                    return {"seq": 0, "entries": []}
                return json.loads(payload)
            time.sleep(0.0002)
        raise ReproError(
            f"shared grid index of plane {self.name!r} stayed "
            "write-locked; a writer likely died mid-update"
        )

    def _write_index_locked(self, index: dict[str, Any]) -> None:
        """Publish a new directory (writer lock held by the caller)."""
        payload = json.dumps(index, separators=(",", ":")).encode()
        capacity = self._index.size - 16
        if len(payload) > capacity:
            raise ReproError(
                f"shared grid index overflow: {len(payload)} bytes of "
                f"directory exceed the {capacity}-byte index segment"
            )
        buf = self._index.buf
        gen, _ = _HEADER.unpack_from(buf, 0)
        _HEADER.pack_into(buf, 0, gen + 1, len(payload))  # odd: in progress
        buf[16 : 16 + len(payload)] = payload
        _HEADER.pack_into(buf, 0, gen + 2, len(payload))  # even: stable

    # -- publishing ---------------------------------------------------------------

    @staticmethod
    def _match(entry: dict, model_json: str, ps, fs, ns) -> bool:
        return (
            entry["model"] == model_json
            and entry["p"] == list(ps)
            and entry["f"] == list(fs)
            and entry["n"] == list(ns)
        )

    def publish(self, model_json: str, grid: GridResult) -> bool:
        """Copy ``grid`` into a fresh segment and list it in the index.

        Returns True on publish; False when another worker already
        published the same key (first write wins — readers may already
        hold attachments to it) or the grid alone exceeds the plane's
        byte budget.  Publishing past the budget evicts oldest-published
        entries, unlinking their segments.
        """
        total = grid_nbytes(grid)
        if total > self.max_bytes:
            self.publish_rejects += 1
            return False
        ps, fs, ns = grid.p_values, grid.f_values, grid.n_values
        with self._locked():
            index = self._read_index()
            for entry in index["entries"]:
                if self._match(entry, model_json, ps, fs, ns):
                    self.publish_races += 1
                    return False
            seq = index["seq"]
            index["seq"] = seq + 1
            segment_name = f"{SEGMENT_PREFIX}-{self.name}-g{seq}"
            segment = _shared_memory.SharedMemory(
                name=segment_name, create=True, size=total
            )
            _unregister(segment)
            offset = 0
            arrays = []
            for array_name in _GRID_ARRAYS:
                src = getattr(grid, array_name)
                dst = np.ndarray(
                    src.shape, src.dtype, buffer=segment.buf, offset=offset
                )
                dst[...] = src
                arrays.append(
                    {
                        "name": array_name,
                        "dtype": src.dtype.str,
                        "shape": list(src.shape),
                        "offset": offset,
                    }
                )
                offset += src.nbytes
            del dst, src
            index["entries"].append(
                {
                    "model": model_json,
                    "p": list(ps),
                    "f": list(fs),
                    "n": list(ns),
                    "label": grid.label,
                    "segment": segment_name,
                    "nbytes": total,
                    "arrays": arrays,
                }
            )
            # FIFO eviction beyond the byte budget (publish order — the
            # directory carries no cross-process access clock); evicted
            # names are unlinked, surviving attachments stay valid
            evicted: list[str] = []
            while (
                sum(e["nbytes"] for e in index["entries"]) > self.max_bytes
                and len(index["entries"]) > 1
            ):
                evicted.append(index["entries"].pop(0)["segment"])
            self._write_index_locked(index)
            segment.close()
            for name in evicted:
                self._unlink_segment(name)
                self.evicted += 1
        self.published += 1
        return True

    def _unlink_segment(self, name: str) -> None:
        try:
            stale = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        with contextlib.suppress(OSError):
            stale.unlink()
        with contextlib.suppress(BufferError, OSError):
            stale.close()

    # -- attaching ----------------------------------------------------------------

    def _attach_entry(self, entry: dict) -> GridResult | None:
        """A read-only :class:`GridResult` over an entry's segment."""
        segment_name = entry["segment"]
        handle = self._attached.get(segment_name)
        if handle is None:
            try:
                segment = _shared_memory.SharedMemory(name=segment_name)
            except FileNotFoundError:
                # evicted between the index snapshot and the attach
                return None
            with self._tlock:
                handle = self._attached.setdefault(
                    segment_name, (segment, int(entry["nbytes"]))
                )
                if handle[0] is not segment:  # lost a racing attach
                    with contextlib.suppress(BufferError, OSError):
                        segment.close()
        segment = handle[0]
        views: dict[str, np.ndarray] = {}
        for spec in entry["arrays"]:
            view = np.ndarray(
                tuple(spec["shape"]),
                np.dtype(spec["dtype"]),
                buffer=segment.buf,
                offset=spec["offset"],
            )
            view.flags.writeable = False
            views[spec["name"]] = view
        return GridResult(
            label=entry["label"],
            p_values=tuple(int(p) for p in entry["p"]),
            f_values=tuple(float(f) for f in entry["f"]),
            n_values=tuple(float(n) for n in entry["n"]),
            **views,
        )

    def lookup(
        self,
        model_json: str,
        p_values: Sequence[int],
        f_values: Sequence[float],
        n_values: Sequence[float],
    ) -> GridResult | None:
        """The exact published grid for this key, attached, or None."""
        index = self._read_index()
        for entry in reversed(index["entries"]):
            if self._match(entry, model_json, p_values, f_values, n_values):
                grid = self._attach_entry(entry)
                if grid is not None:
                    self.attach_hits += 1
                    return grid
        self.attach_misses += 1
        return None

    def lookup_superset(
        self,
        model_json: str,
        p_values: Sequence[int],
        f_values: Sequence[float],
        n_values: Sequence[float],
    ) -> GridResult | None:
        """A sub-grid sliced out of a published superset, or None.

        Every grid quantity is elementwise in (p, f, n), so the slice is
        bit-identical to evaluating the sub-grid directly — the same
        invariant the in-process store relies on, now across workers.
        The slice itself is a process-local copy (fancy indexing); only
        the superset stays in shared memory.
        """
        ps, fs, ns = list(p_values), list(f_values), list(n_values)
        index = self._read_index()
        for entry in reversed(index["entries"]):
            if entry["model"] != model_json:
                continue
            pos_p = {v: i for i, v in enumerate(entry["p"])}
            pos_f = {v: i for i, v in enumerate(entry["f"])}
            pos_n = {v: i for i, v in enumerate(entry["n"])}
            if not (
                all(v in pos_p for v in ps)
                and all(v in pos_f for v in fs)
                and all(v in pos_n for v in ns)
            ):
                continue
            superset = self._attach_entry(entry)
            if superset is None:
                continue
            ix = np.ix_(
                [pos_p[v] for v in ps],
                [pos_f[v] for v in fs],
                [pos_n[v] for v in ns],
            )
            views: dict[str, np.ndarray] = {}
            for array_name in _GRID_ARRAYS:
                sliced = getattr(superset, array_name)[ix]
                sliced.flags.writeable = False
                views[array_name] = sliced
            self.superset_attach_hits += 1
            return GridResult(
                label=superset.label,
                p_values=tuple(int(p) for p in ps),
                f_values=tuple(float(f) for f in fs),
                n_values=tuple(float(n) for n in ns),
                **views,
            )
        return None

    # -- observability / lifecycle ------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Plane census + this process's traffic counters (JSON-ready)."""
        try:
            index = self._read_index()
            segments = len(index["entries"])
            segment_bytes = sum(e["nbytes"] for e in index["entries"])
            generation = _HEADER.unpack_from(self._index.buf, 0)[0]
        except (ReproError, ValueError):  # pragma: no cover - plane torn down
            segments, segment_bytes, generation = 0, 0, 0
        with self._tlock:
            attached = len(self._attached)
            attached_bytes = sum(n for _, n in self._attached.values())
        return {
            "segments": segments,
            "segment_bytes": segment_bytes,
            "generation": int(generation),
            "attached_segments": attached,
            "attached_bytes": attached_bytes,
            "published": self.published,
            "publish_races": self.publish_races,
            "publish_rejects": self.publish_rejects,
            "attach_hits": self.attach_hits,
            "superset_attach_hits": self.superset_attach_hits,
            "attach_misses": self.attach_misses,
            "evicted": self.evicted,
        }

    def clear(self) -> None:
        """Unlink every published segment and empty the directory.

        Attached handles stay open — cached views elsewhere must remain
        valid — but the names are gone, so a fresh scan of ``/dev/shm``
        shows no data segments.
        """
        with self._locked():
            index = self._read_index()
            names = [e["segment"] for e in index["entries"]]
            self._write_index_locked({"seq": index["seq"], "entries": []})
            for name in names:
                self._unlink_segment(name)

    def detach(self) -> None:
        """Close this process's handles (reader shutdown; nothing unlinked)."""
        if self._closed:
            return
        self._closed = True
        with self._tlock:
            attached = list(self._attached.values())
            self._attached.clear()
        for segment, _ in attached:
            with contextlib.suppress(BufferError, OSError):
                segment.close()
        with contextlib.suppress(BufferError, OSError):
            self._index.close()

    def destroy(self) -> None:
        """Tear the whole plane down: segments, index, lockfile.

        The pool parent's shutdown path; idempotent.  Verified leak-free
        against ``/dev/shm`` by the lifecycle tests.
        """
        if not self._closed:
            with contextlib.suppress(ReproError, OSError, ValueError):
                self.clear()
        self.detach()
        self._unlink_segment(self._index_name)
        with contextlib.suppress(FileNotFoundError, OSError):
            os.unlink(self._lock_path)


class PoolBoard:
    """Fixed worker-stat slots in one shared segment (single writer each).

    Every slot is ``(generation, length, JSON)`` with the same seqlock
    framing as the plane index, but needs no writer lock: each worker
    owns exactly one slot.  Any process reads all slots to build the
    pool-wide ``/healthz`` and ``/metrics`` aggregates.
    """

    SLOT_BYTES = 32768

    def __init__(self, name: str, slots: int, *, create: bool = False) -> None:
        if not HAVE_SHARED_MEMORY:  # pragma: no cover - non-POSIX
            raise ReproError("pool board needs POSIX shared memory")
        if slots < 1:
            raise ParameterError("a pool board needs at least one slot")
        self.name = name
        self.slots = int(slots)
        self._segment_name = f"{SEGMENT_PREFIX}-{name}-board"
        size = self.slots * self.SLOT_BYTES
        if create:
            self._segment = _shared_memory.SharedMemory(
                name=self._segment_name, create=True, size=size
            )
            _unregister(self._segment)
        else:
            self._segment = _shared_memory.SharedMemory(name=self._segment_name)
        self._closed = False

    def write(self, slot: int, payload: dict[str, Any]) -> None:
        """Publish one worker's stats into its slot (seqlock-framed)."""
        if not 0 <= slot < self.slots:
            raise ParameterError(
                f"slot {slot} out of range for a {self.slots}-slot board"
            )
        data = json.dumps(payload, separators=(",", ":")).encode()
        if len(data) > self.SLOT_BYTES - 16:
            raise ReproError(
                f"pool board payload of {len(data)} bytes exceeds the "
                f"{self.SLOT_BYTES - 16}-byte slot"
            )
        base = slot * self.SLOT_BYTES
        buf = self._segment.buf
        gen, _ = _HEADER.unpack_from(buf, base)
        _HEADER.pack_into(buf, base, gen + 1, len(data))
        buf[base + 16 : base + 16 + len(data)] = data
        _HEADER.pack_into(buf, base, gen + 2, len(data))

    def read(self, slot: int) -> dict[str, Any] | None:
        """One slot's latest stats, or None while it was never written."""
        if not 0 <= slot < self.slots:
            raise ParameterError(
                f"slot {slot} out of range for a {self.slots}-slot board"
            )
        base = slot * self.SLOT_BYTES
        buf = self._segment.buf
        for _ in range(_READ_RETRIES):
            gen1, length = _HEADER.unpack_from(buf, base)
            if gen1 == 0 and length == 0:
                return None
            if gen1 % 2:
                time.sleep(0.0002)
                continue
            data = bytes(buf[base + 16 : base + 16 + length])
            gen2, _ = _HEADER.unpack_from(buf, base)
            if gen1 == gen2:
                try:
                    return json.loads(data)
                except ValueError:  # pragma: no cover - torn first write
                    return None
            time.sleep(0.0002)
        raise ReproError(
            f"pool board slot {slot} stayed write-locked; the owning "
            "worker likely died mid-update"
        )

    def read_all(self) -> list[dict[str, Any]]:
        """Every written slot's stats, slot order."""
        out = []
        for slot in range(self.slots):
            payload = self.read(slot)
            if payload is not None:
                out.append(payload)
        return out

    def detach(self) -> None:
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(BufferError, OSError):
            self._segment.close()

    def destroy(self) -> None:
        """Close and unlink the board segment (pool parent only)."""
        self.detach()
        try:
            stale = _shared_memory.SharedMemory(name=self._segment_name)
        except FileNotFoundError:
            return
        with contextlib.suppress(OSError):
            stale.unlink()
        with contextlib.suppress(BufferError, OSError):
            stale.close()

"""Iso-energy-efficiency contour tracing — the paper's question, inverted.

The iso-efficiency tradition asks: as the machine grows, how fast must
the problem grow to *hold* efficiency constant?  The paper poses the
energy analogue (EE held constant over (p, f, n)); this module answers
it numerically: given a target EE, trace the ``n(p)`` curve (problem
size that maintains the target at each p) or the ``f(p)`` curve (DVFS
setting that maintains it at fixed n).

EE is monotone in n for every workload whose overheads grow no faster
than the base work (all the NPB models here: EEF falls as n amortises
communication), which makes n the bracketed-bisection axis; the f axis
is not monotone in general, so the f-solver demands a sign change over
the supplied frequency window and reports unbridgeable targets rather
than guessing.

:func:`repro.core.scaling.iso_workload` is the single-point ancestor of
this module; the solvers here add automatic bracket expansion (no
caller-supplied [n_lo, n_hi]), warm-started curve tracing across p, the
f(p) companion curve, and per-point convergence reporting instead of a
hard error when a target is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.obs.trace import span
from repro.optimize.engine import ee_pairs

#: smallest problem size the n-bracket will shrink to (NPB kernels reject
#: degenerate grids below a handful of points).
_N_FLOOR = 8.0
#: geometric bracket-expansion cap: 2**60 spans any realistic n range.
_MAX_EXPAND = 60
_MAX_BISECT = 200


@dataclass(frozen=True)
class ContourPoint:
    """One solved point on an iso-EE curve.

    ``value`` is the solved axis value (n or f, per the curve's axis);
    ``ee`` is the model's EE at the solved point — within the solver
    tolerance of the target when ``converged`` is True.
    """

    p: int
    value: float
    ee: float
    axis: str
    converged: bool


def _bisect(
    g: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    rel_tol: float,
) -> tuple[float, bool]:
    """Root of ``g`` on a sign-changing bracket [lo, hi] by bisection."""
    g_lo = g(lo)
    if g_lo == 0.0:
        return lo, True
    g_hi = g(hi)
    if g_hi == 0.0:
        return hi, True
    if g_lo * g_hi > 0:
        return hi, False
    for _ in range(_MAX_BISECT):
        mid = 0.5 * (lo + hi)
        g_mid = g(mid)
        if g_mid == 0.0 or (hi - lo) <= rel_tol * max(abs(mid), 1e-300):
            return mid, True
        if g_lo * g_mid < 0:
            hi = mid
        else:
            lo, g_lo = mid, g_mid
    return 0.5 * (lo + hi), True


def solve_n_for_ee(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p: int,
    f: float | None = None,
    n_seed: float = 1e6,
    rel_tol: float = 1e-6,
) -> ContourPoint:
    """The problem size holding EE at ``target_ee`` for one (p, f).

    Expands a geometric bracket around ``n_seed`` (EE rises with n, so
    too-low EE pushes the bracket up and vice versa), then bisects.
    Returns ``converged=False`` when the target is unreachable — e.g.
    asking a communication-bound code at high p for an EE its asymptote
    never attains.
    """
    _check_target(target_ee)
    if n_seed <= 0:
        raise ParameterError("n_seed must be positive")

    def g(n: float) -> float:
        return model.ee(n=n, p=p, f=f) - target_ee

    if p == 1:
        # EE ≡ 1 at p=1: any n satisfies any target below 1.
        return ContourPoint(
            p=1, value=n_seed, ee=1.0, axis="n", converged=True
        )
    lo = hi = float(n_seed)
    g_seed = g(lo)
    if g_seed < 0:
        for _ in range(_MAX_EXPAND):
            lo, hi = hi, hi * 2.0
            if g(hi) >= 0:
                break
        else:
            return ContourPoint(
                p=p, value=hi, ee=g(hi) + target_ee, axis="n", converged=False
            )
    elif g_seed > 0:
        for _ in range(_MAX_EXPAND):
            hi, lo = lo, max(lo / 2.0, _N_FLOOR)
            if g(lo) <= 0 or lo == _N_FLOOR:
                break
        if g(lo) > 0:
            # even the smallest valid problem exceeds the target
            return ContourPoint(
                p=p, value=lo, ee=g(lo) + target_ee, axis="n", converged=False
            )
    root, ok = _bisect(g, lo, hi, rel_tol=rel_tol)
    return ContourPoint(
        p=p, value=root, ee=model.ee(n=root, p=p, f=f), axis="n", converged=ok
    )


def solve_f_for_ee(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p: int,
    n: float,
    f_window: tuple[float, float],
    rel_tol: float = 1e-6,
) -> ContourPoint:
    """The DVFS frequency holding EE at ``target_ee`` for one (p, n).

    EE need not be monotone in f, so this demands the target be
    bracketed by the supplied window and flags it unconverged otherwise.
    """
    _check_target(target_ee)
    f_lo, f_hi = f_window
    if not (0 < f_lo < f_hi):
        raise ParameterError("f_window must satisfy 0 < lo < hi")

    def g(f: float) -> float:
        return model.ee(n=n, p=p, f=f) - target_ee

    if p == 1:
        return ContourPoint(p=1, value=f_lo, ee=1.0, axis="f", converged=True)
    root, ok = _bisect(g, f_lo, f_hi, rel_tol=rel_tol)
    return ContourPoint(
        p=p, value=root, ee=model.ee(n=n, p=p, f=root), axis="f", converged=ok
    )


def _solve_n_batched(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p_values: Sequence[int],
    f: float | None,
    n_seed: float,
    rel_tol: float,
) -> list[ContourPoint]:
    """All ``n(p)`` contour points solved by one bisection over every p.

    Mirrors :func:`solve_n_for_ee` lane by lane — the same geometric
    bracket expansion (up while EE is short of the target, down to the
    ``_N_FLOOR`` otherwise) and the same midpoint/termination rule — but
    every EE evaluation is one :func:`repro.optimize.engine.ee_pairs`
    call over all still-active p at once (the store-accounted funnel of
    :func:`repro.optimize.grid.ee_at_pairs`), so the whole curve costs a
    bisection's worth of vectorized passes instead of per-p scalar
    :meth:`IsoEnergyModel.ee` loops.
    """
    with span("contour.bisect"):
        return _solve_n_batched_inner(
            model, target_ee=target_ee, p_values=p_values, f=f,
            n_seed=n_seed, rel_tol=rel_tol,
        )


def _solve_n_batched_inner(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p_values: Sequence[int],
    f: float | None,
    n_seed: float,
    rel_tol: float,
) -> list[ContourPoint]:
    ps = np.asarray([int(p) for p in p_values], dtype=np.int64)
    par = ps > 1  # p=1 lanes short-circuit: EE ≡ 1 there

    def g_at(n_sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """g = EE − target on the lanes ``idx`` only (one vectorized pass)."""
        return ee_pairs(model, n_sub, ps[idx], f=f) - target_ee

    lo = np.full(ps.shape, float(n_seed))
    hi = lo.copy()
    root = lo.copy()
    failed = np.zeros(ps.shape, dtype=bool)
    converged = np.zeros(ps.shape, dtype=bool)

    all_par = np.flatnonzero(par)
    g_seed = np.zeros(ps.shape)
    if all_par.size:
        g_seed[all_par] = g_at(lo[all_par], all_par)

    # -- geometric bracket expansion; lanes drop out as they bracket ----------
    up = par & (g_seed < 0)
    idx = np.flatnonzero(up)
    for _ in range(_MAX_EXPAND):
        if not idx.size:
            break
        lo[idx] = hi[idx]
        hi[idx] *= 2.0
        idx = idx[g_at(hi[idx], idx) < 0]
    if idx.size:
        failed[idx] = True  # even 2**60× the seed falls short of the target
        root[idx] = hi[idx]
    idx = np.flatnonzero(par & (g_seed > 0))
    floored = [idx[:0]]  # lanes that ran into the _N_FLOOR clamp
    for _ in range(_MAX_EXPAND):
        if not idx.size:
            break
        hi[idx] = lo[idx]
        lo[idx] = np.maximum(lo[idx] / 2.0, _N_FLOOR)
        still = (g_at(lo[idx], idx) > 0) & (lo[idx] > _N_FLOOR)
        floored.append(idx[~still & (lo[idx] <= _N_FLOOR)])
        idx = idx[still]
    check = np.concatenate([idx, *floored])
    if check.size:
        # lanes stopped at the floor may still overshoot the target there
        over = check[g_at(lo[check], check) > 0]
        failed[over] = True  # the smallest valid n overshoots
        root[over] = lo[over]

    # -- bisection over every still-bracketed lane ----------------------------
    idx = np.flatnonzero(par & ~failed)
    g_lo = np.zeros(ps.shape)
    if idx.size:
        g_lo[idx] = g_at(lo[idx], idx)
        g_hi = g_at(hi[idx], idx)
        exact_lo = g_lo[idx] == 0.0
        exact_hi = (g_hi == 0.0) & ~exact_lo
        root[idx[exact_lo]] = lo[idx[exact_lo]]
        root[idx[exact_hi]] = hi[idx[exact_hi]]
        converged[idx[exact_lo | exact_hi]] = True
        # a bracket that lost its sign change reports hi unconverged, as
        # the scalar _bisect does
        bad = ~exact_lo & ~exact_hi & (g_lo[idx] * g_hi > 0)
        root[idx[bad]] = hi[idx[bad]]
        idx = idx[~exact_lo & ~exact_hi & ~bad]
    for _ in range(_MAX_BISECT):
        if not idx.size:
            break
        mid = 0.5 * (lo[idx] + hi[idx])
        g_mid = g_at(mid, idx)
        done = (g_mid == 0.0) | (
            (hi[idx] - lo[idx]) <= rel_tol * np.maximum(np.abs(mid), 1e-300)
        )
        root[idx[done]] = mid[done]
        converged[idx[done]] = True
        keep = ~done
        idx, mid, g_mid = idx[keep], mid[keep], g_mid[keep]
        shrink_hi = g_lo[idx] * g_mid < 0
        hi[idx[shrink_hi]] = mid[shrink_hi]
        lo[idx[~shrink_hi]] = mid[~shrink_hi]
        g_lo[idx[~shrink_hi]] = g_mid[~shrink_hi]
    if idx.size:  # _MAX_BISECT exhausted: report the midpoint, as _bisect does
        root[idx] = 0.5 * (lo[idx] + hi[idx])
        converged[idx] = True

    ee = ee_pairs(model, np.where(par, root, float(n_seed)), ps, f=f)
    return [
        ContourPoint(p=1, value=float(n_seed), ee=1.0, axis="n", converged=True)
        if not par[k]
        else ContourPoint(
            p=int(ps[k]),
            value=float(root[k]),
            ee=float(ee[k]),
            axis="n",
            converged=bool(converged[k]),
        )
        for k in range(len(ps))
    ]


def iso_ee_curve(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p_values: Sequence[int],
    axis: str = "n",
    f: float | None = None,
    n: float | None = None,
    n_seed: float = 1e6,
    f_window: tuple[float, float] | None = None,
    rel_tol: float = 1e-6,
) -> list[ContourPoint]:
    """Trace an iso-EE contour across processor counts.

    ``axis="n"`` solves ``n(p)`` at fixed ``f`` — one *batched* bisection
    over all p at once riding the vectorized pair evaluator (every lane
    starts from ``n_seed``; see :func:`iso_ee_curve_scalar` for the
    warm-started per-p reference it is benchmarked against).
    ``axis="f"`` solves ``f(p)`` at fixed ``n`` inside ``f_window``.
    """
    if not p_values:
        raise ParameterError("no p values supplied")
    _check_target(target_ee)
    points: list[ContourPoint] = []
    if axis == "n":
        if n_seed <= 0:
            raise ParameterError("n_seed must be positive")
        return _solve_n_batched(
            model, target_ee=target_ee, p_values=p_values, f=f,
            n_seed=float(n_seed), rel_tol=rel_tol,
        )
    elif axis == "f":
        if n is None:
            raise ParameterError("fix n when tracing the f(p) contour")
        if f_window is None:
            raise ParameterError(
                "tracing f(p) needs an f_window=(f_lo, f_hi) bracket"
            )
        for p in p_values:
            points.append(
                solve_f_for_ee(
                    model, target_ee=target_ee, p=int(p), n=n,
                    f_window=f_window, rel_tol=rel_tol,
                )
            )
    else:
        raise ParameterError(f"axis must be 'n' or 'f', got {axis!r}")
    return points


def iso_ee_curve_scalar(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p_values: Sequence[int],
    f: float | None = None,
    n_seed: float = 1e6,
    rel_tol: float = 1e-6,
) -> list[ContourPoint]:
    """The per-p scalar reference for the ``n(p)`` curve.

    One :func:`solve_n_for_ee` call per p, each warm-started from the
    previous solution.  Kept as the equivalence-and-performance baseline
    for the batched :func:`iso_ee_curve` (see
    ``benchmarks/bench_contour_batched.py``, which holds the batched path
    to a ≥5× speedup at matching roots).
    """
    if not p_values:
        raise ParameterError("no p values supplied")
    _check_target(target_ee)
    points: list[ContourPoint] = []
    seed = float(n_seed)
    for p in p_values:
        pt = solve_n_for_ee(
            model, target_ee=target_ee, p=int(p), f=f,
            n_seed=seed, rel_tol=rel_tol,
        )
        points.append(pt)
        if pt.converged and pt.p > 1:
            seed = pt.value
    return points


def _check_target(target_ee: float) -> None:
    if not (0.0 < target_ee < 1.0):
        raise ParameterError(
            f"target EE must lie in (0, 1) — EE=1 only at p=1 — got {target_ee}"
        )

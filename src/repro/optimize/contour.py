"""Iso-energy-efficiency contour tracing — the paper's question, inverted.

The iso-efficiency tradition asks: as the machine grows, how fast must
the problem grow to *hold* efficiency constant?  The paper poses the
energy analogue (EE held constant over (p, f, n)); this module answers
it numerically: given a target EE, trace the ``n(p)`` curve (problem
size that maintains the target at each p) or the ``f(p)`` curve (DVFS
setting that maintains it at fixed n).

EE is monotone in n for every workload whose overheads grow no faster
than the base work (all the NPB models here: EEF falls as n amortises
communication), which makes n the bracketed-bisection axis; the f axis
is not monotone in general, so the f-solver demands a sign change over
the supplied frequency window and reports unbridgeable targets rather
than guessing.

:func:`repro.core.scaling.iso_workload` is the single-point ancestor of
this module; the solvers here add automatic bracket expansion (no
caller-supplied [n_lo, n_hi]), warm-started curve tracing across p, the
f(p) companion curve, and per-point convergence reporting instead of a
hard error when a target is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError

#: smallest problem size the n-bracket will shrink to (NPB kernels reject
#: degenerate grids below a handful of points).
_N_FLOOR = 8.0
#: geometric bracket-expansion cap: 2**60 spans any realistic n range.
_MAX_EXPAND = 60
_MAX_BISECT = 200


@dataclass(frozen=True)
class ContourPoint:
    """One solved point on an iso-EE curve.

    ``value`` is the solved axis value (n or f, per the curve's axis);
    ``ee`` is the model's EE at the solved point — within the solver
    tolerance of the target when ``converged`` is True.
    """

    p: int
    value: float
    ee: float
    axis: str
    converged: bool


def _bisect(
    g: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    rel_tol: float,
) -> tuple[float, bool]:
    """Root of ``g`` on a sign-changing bracket [lo, hi] by bisection."""
    g_lo = g(lo)
    if g_lo == 0.0:
        return lo, True
    g_hi = g(hi)
    if g_hi == 0.0:
        return hi, True
    if g_lo * g_hi > 0:
        return hi, False
    for _ in range(_MAX_BISECT):
        mid = 0.5 * (lo + hi)
        g_mid = g(mid)
        if g_mid == 0.0 or (hi - lo) <= rel_tol * max(abs(mid), 1e-300):
            return mid, True
        if g_lo * g_mid < 0:
            hi = mid
        else:
            lo, g_lo = mid, g_mid
    return 0.5 * (lo + hi), True


def solve_n_for_ee(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p: int,
    f: float | None = None,
    n_seed: float = 1e6,
    rel_tol: float = 1e-6,
) -> ContourPoint:
    """The problem size holding EE at ``target_ee`` for one (p, f).

    Expands a geometric bracket around ``n_seed`` (EE rises with n, so
    too-low EE pushes the bracket up and vice versa), then bisects.
    Returns ``converged=False`` when the target is unreachable — e.g.
    asking a communication-bound code at high p for an EE its asymptote
    never attains.
    """
    _check_target(target_ee)
    if n_seed <= 0:
        raise ParameterError("n_seed must be positive")

    def g(n: float) -> float:
        return model.ee(n=n, p=p, f=f) - target_ee

    if p == 1:
        # EE ≡ 1 at p=1: any n satisfies any target below 1.
        return ContourPoint(
            p=1, value=n_seed, ee=1.0, axis="n", converged=True
        )
    lo = hi = float(n_seed)
    g_seed = g(lo)
    if g_seed < 0:
        for _ in range(_MAX_EXPAND):
            lo, hi = hi, hi * 2.0
            if g(hi) >= 0:
                break
        else:
            return ContourPoint(
                p=p, value=hi, ee=g(hi) + target_ee, axis="n", converged=False
            )
    elif g_seed > 0:
        for _ in range(_MAX_EXPAND):
            hi, lo = lo, max(lo / 2.0, _N_FLOOR)
            if g(lo) <= 0 or lo == _N_FLOOR:
                break
        if g(lo) > 0:
            # even the smallest valid problem exceeds the target
            return ContourPoint(
                p=p, value=lo, ee=g(lo) + target_ee, axis="n", converged=False
            )
    root, ok = _bisect(g, lo, hi, rel_tol=rel_tol)
    return ContourPoint(
        p=p, value=root, ee=model.ee(n=root, p=p, f=f), axis="n", converged=ok
    )


def solve_f_for_ee(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p: int,
    n: float,
    f_window: tuple[float, float],
    rel_tol: float = 1e-6,
) -> ContourPoint:
    """The DVFS frequency holding EE at ``target_ee`` for one (p, n).

    EE need not be monotone in f, so this demands the target be
    bracketed by the supplied window and flags it unconverged otherwise.
    """
    _check_target(target_ee)
    f_lo, f_hi = f_window
    if not (0 < f_lo < f_hi):
        raise ParameterError("f_window must satisfy 0 < lo < hi")

    def g(f: float) -> float:
        return model.ee(n=n, p=p, f=f) - target_ee

    if p == 1:
        return ContourPoint(p=1, value=f_lo, ee=1.0, axis="f", converged=True)
    root, ok = _bisect(g, f_lo, f_hi, rel_tol=rel_tol)
    return ContourPoint(
        p=p, value=root, ee=model.ee(n=n, p=p, f=root), axis="f", converged=ok
    )


def iso_ee_curve(
    model: IsoEnergyModel,
    *,
    target_ee: float,
    p_values: Sequence[int],
    axis: str = "n",
    f: float | None = None,
    n: float | None = None,
    n_seed: float = 1e6,
    f_window: tuple[float, float] | None = None,
    rel_tol: float = 1e-6,
) -> list[ContourPoint]:
    """Trace an iso-EE contour across processor counts.

    ``axis="n"`` solves ``n(p)`` at fixed ``f`` (the iso-efficiency
    scaling curve); ``axis="f"`` solves ``f(p)`` at fixed ``n`` inside
    ``f_window``.  Each solved point's ``n_seed`` warm-starts from the
    previous solution, so the curve is traced, not re-searched.
    """
    if not p_values:
        raise ParameterError("no p values supplied")
    _check_target(target_ee)
    points: list[ContourPoint] = []
    if axis == "n":
        seed = float(n_seed)
        for p in p_values:
            pt = solve_n_for_ee(
                model, target_ee=target_ee, p=int(p), f=f,
                n_seed=seed, rel_tol=rel_tol,
            )
            points.append(pt)
            if pt.converged and pt.p > 1:
                seed = pt.value
    elif axis == "f":
        if n is None:
            raise ParameterError("fix n when tracing the f(p) contour")
        if f_window is None:
            raise ParameterError(
                "tracing f(p) needs an f_window=(f_lo, f_hi) bracket"
            )
        for p in p_values:
            points.append(
                solve_f_for_ee(
                    model, target_ee=target_ee, p=int(p), n=n,
                    f_window=f_window, rel_tol=rel_tol,
                )
            )
    else:
        raise ParameterError(f"axis must be 'n' or 'f', got {axis!r}")
    return points


def _check_target(target_ee: float) -> None:
    if not (0.0 < target_ee < 1.0):
        raise ParameterError(
            f"target EE must lie in (0, 1) — EE=1 only at p=1 — got {target_ee}"
        )

"""Constrained configuration optimizers over the vectorized grid.

The paper's introduction frames the exascale contract — 1000× the
performance on 10× the power — as the binding constraint of parallel
computing.  These solvers make the contract operational for one
workload: evaluate the (p × f) grid in bulk (:mod:`repro.optimize.grid`)
and pick the configuration the operator wants:

* :func:`max_speedup_under_power` — the budget is fixed; run fastest.
* :func:`min_energy_under_deadline` — the SLA is fixed; run greenest.
* :func:`pareto_frontier` — the whole (Tp, Ep) trade-off, dominated
  configurations removed, for operators who want the menu.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import IsoEnergyModel, ModelPoint
from repro.errors import ParameterError
from repro.optimize.grid import GridResult, evaluate_grid


@dataclass(frozen=True)
class Recommendation:
    """One recommended (p, f) configuration plus its predicted outcome.

    ``objective`` names the solver that produced it; ``feasible_count``
    is how many grid cells satisfied the constraint (1 means the choice
    was forced, large means the budget is slack).
    """

    objective: str
    p: int
    f: float
    n: float
    tp: float
    ep: float
    ee: float
    avg_power: float
    speedup: float
    bottleneck: str
    feasible_count: int

    @classmethod
    def from_point(
        cls, objective: str, pt: ModelPoint, avg_power: float, feasible: int
    ) -> "Recommendation":
        return cls(
            objective=objective,
            p=pt.p,
            f=pt.f,
            n=pt.n,
            tp=pt.tp,
            ep=pt.ep,
            ee=pt.ee,
            avg_power=avg_power,
            speedup=pt.speedup,
            bottleneck=pt.bottleneck,
            feasible_count=feasible,
        )


def _pf_grid(
    model: IsoEnergyModel,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None,
) -> GridResult:
    return evaluate_grid(
        model, p_values=p_values, f_values=f_values, n_values=[n]
    )


def max_speedup_under_power(
    model: IsoEnergyModel,
    *,
    n: float,
    budget_w: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> Recommendation:
    """Fastest (p, f) whose average power ``Ep/Tp`` fits ``budget_w``.

    Raises :class:`ParameterError` when even the frugalest candidate
    exceeds the budget, reporting the smallest draw on the grid so the
    caller knows how far off the budget is.
    """
    if budget_w <= 0:
        raise ParameterError("power budget must be positive")
    grid = _pf_grid(model, n, p_values, f_values)
    feasible = grid.avg_power <= budget_w
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no (p, f) fits under {budget_w:.0f} W: the frugalest grid "
            f"configuration draws {float(grid.avg_power.min()):.0f} W"
        )
    ip, jf, kn = grid.argbest("tp", where=feasible)
    return Recommendation.from_point(
        "max_speedup_under_power",
        grid.point(ip, jf, kn),
        float(grid.avg_power[ip, jf, kn]),
        count,
    )


def min_energy_under_deadline(
    model: IsoEnergyModel,
    *,
    n: float,
    t_max: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> Recommendation:
    """Greenest (p, f) whose predicted Tp meets the ``t_max`` deadline."""
    if t_max <= 0:
        raise ParameterError("deadline must be positive")
    grid = _pf_grid(model, n, p_values, f_values)
    feasible = grid.tp <= t_max
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no (p, f) meets the {t_max:g} s deadline: the fastest grid "
            f"configuration needs {float(grid.tp.min()):.3g} s"
        )
    ip, jf, kn = grid.argbest("ep", where=feasible)
    return Recommendation.from_point(
        "min_energy_under_deadline",
        grid.point(ip, jf, kn),
        float(grid.avg_power[ip, jf, kn]),
        count,
    )


def pareto_frontier(
    model: IsoEnergyModel,
    *,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> list[Recommendation]:
    """Non-dominated (Tp, Ep) configurations, sorted fastest-first.

    A configuration is kept iff no other is both faster and greener;
    the returned list therefore ascends in Tp while strictly descending
    in Ep — the menu an operator trades along.
    """
    grid = _pf_grid(model, n, p_values, f_values)
    tp = grid.tp[:, :, 0].ravel()
    ep = grid.ep[:, :, 0].ravel()
    order = np.lexsort((ep, tp))
    shape = grid.tp[:, :, 0].shape
    winners: list[tuple[int, int]] = []
    best_ep = np.inf
    for flat in order:
        if ep[flat] < best_ep:
            best_ep = float(ep[flat])
            ip, jf = np.unravel_index(int(flat), shape)
            winners.append((int(ip), int(jf)))
    # feasible_count = frontier size: every listed config "satisfies the
    # constraint" of being non-dominated
    return [
        Recommendation.from_point(
            "pareto_frontier",
            grid.point(ip, jf, 0),
            float(grid.avg_power[ip, jf, 0]),
            len(winners),
        )
        for ip, jf in winners
    ]

"""Constrained configuration optimizers over the vectorized grid.

The paper's introduction frames the exascale contract — 1000× the
performance on 10× the power — as the binding constraint of parallel
computing.  These solvers make the contract operational for one
workload: evaluate the (p × f) grid in bulk (:mod:`repro.optimize.grid`)
and pick the configuration the operator wants:

* :func:`max_speedup_under_power` — the budget is fixed; run fastest.
* :func:`min_energy_under_deadline` — the SLA is fixed; run greenest.
* :func:`pareto_frontier` — the whole (Tp, Ep) trade-off, dominated
  configurations removed, for operators who want the menu.

Grids come from the shared :mod:`repro.optimize.engine` store, so
repeated and overlapping queries reuse one evaluation.  The ``*_many``
variants answer a whole *vector* of budgets/deadlines against that one
grid in a single sorted-prefix pass — the primitive the API's batch
executor fans heterogeneous query lists onto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import IsoEnergyModel, ModelPoint
from repro.errors import ParameterError, ReproError
from repro.optimize.engine import grid_for
from repro.optimize.grid import GridResult


@dataclass(frozen=True)
class Recommendation:
    """One recommended (p, f) configuration plus its predicted outcome.

    ``objective`` names the solver that produced it; ``feasible_count``
    is how many grid cells satisfied the constraint (1 means the choice
    was forced, large means the budget is slack).
    """

    objective: str
    p: int
    f: float
    n: float
    tp: float
    ep: float
    ee: float
    avg_power: float
    speedup: float
    bottleneck: str
    feasible_count: int

    @classmethod
    def from_point(
        cls, objective: str, pt: ModelPoint, avg_power: float, feasible: int
    ) -> "Recommendation":
        return cls(
            objective=objective,
            p=pt.p,
            f=pt.f,
            n=pt.n,
            tp=pt.tp,
            ep=pt.ep,
            ee=pt.ee,
            avg_power=avg_power,
            speedup=pt.speedup,
            bottleneck=pt.bottleneck,
            feasible_count=feasible,
        )


def _pf_grid(
    model: IsoEnergyModel,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None,
) -> GridResult:
    return grid_for(
        model, p_values=p_values, f_values=f_values, n_values=[n]
    )


def _running_first_feasible(
    objective: np.ndarray,
    constraint: np.ndarray,
    thresholds: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-threshold flat index minimising ``objective`` s.t.
    ``constraint <= threshold``, plus the per-threshold feasible count.

    One sorted-prefix pass answers every threshold at once: cells are
    ordered by (objective, flat index) — exactly ``argmin``'s tie rule —
    and the winner for a threshold is the *first* cell in that order
    whose constraint fits, found by ``searchsorted`` on the running
    constraint minimum (non-increasing along the order, so its negation
    is sorted).  Infeasible thresholds report index ``-1``.
    """
    order = np.argsort(objective, kind="stable")
    prefix_min = np.minimum.accumulate(constraint[order])
    pos = np.searchsorted(-prefix_min, -thresholds, side="left")
    feasible = pos < order.size
    winners = np.where(feasible, order[np.minimum(pos, order.size - 1)], -1)
    counts = np.searchsorted(
        np.sort(constraint), thresholds, side="right"
    )
    return winners, counts


def max_speedup_under_power(
    model: IsoEnergyModel,
    *,
    n: float,
    budget_w: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> Recommendation:
    """Fastest (p, f) whose average power ``Ep/Tp`` fits ``budget_w``.

    Raises :class:`ParameterError` when even the frugalest candidate
    exceeds the budget, reporting the smallest draw on the grid so the
    caller knows how far off the budget is.
    """
    if budget_w <= 0:
        raise ParameterError("power budget must be positive")
    grid = _pf_grid(model, n, p_values, f_values)
    feasible = grid.avg_power <= budget_w
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no (p, f) fits under {budget_w:.0f} W: the frugalest grid "
            f"configuration draws {float(grid.avg_power.min()):.0f} W"
        )
    ip, jf, kn = grid.argbest("tp", where=feasible)
    return Recommendation.from_point(
        "max_speedup_under_power",
        grid.point(ip, jf, kn),
        float(grid.avg_power[ip, jf, kn]),
        count,
    )


def min_energy_under_deadline(
    model: IsoEnergyModel,
    *,
    n: float,
    t_max: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> Recommendation:
    """Greenest (p, f) whose predicted Tp meets the ``t_max`` deadline."""
    if t_max <= 0:
        raise ParameterError("deadline must be positive")
    grid = _pf_grid(model, n, p_values, f_values)
    feasible = grid.tp <= t_max
    count = int(feasible.sum())
    if count == 0:
        raise ParameterError(
            f"no (p, f) meets the {t_max:g} s deadline: the fastest grid "
            f"configuration needs {float(grid.tp.min()):.3g} s"
        )
    ip, jf, kn = grid.argbest("ep", where=feasible)
    return Recommendation.from_point(
        "min_energy_under_deadline",
        grid.point(ip, jf, kn),
        float(grid.avg_power[ip, jf, kn]),
        count,
    )


def _solve_many(
    grid: GridResult,
    objective_name: str,
    objective: np.ndarray,
    constraint: np.ndarray,
    thresholds: Sequence[float],
    *,
    positive_error: str,
    infeasible_error,
) -> list[Recommendation | ReproError]:
    """Shared core of the ``*_many`` solvers (see their docstrings)."""
    values = np.asarray(list(thresholds), dtype=float)
    winners, counts = _running_first_feasible(
        objective.ravel(), constraint.ravel(), values
    )
    out: list[Recommendation | ReproError] = []
    for k, threshold in enumerate(values):
        if threshold <= 0:
            out.append(ParameterError(positive_error))
        elif winners[k] < 0:
            out.append(ParameterError(infeasible_error(threshold)))
        else:
            ip, jf, kn = np.unravel_index(int(winners[k]), grid.shape)
            out.append(
                Recommendation.from_point(
                    objective_name,
                    grid.point(ip, jf, kn),
                    float(grid.avg_power[ip, jf, kn]),
                    int(counts[k]),
                )
            )
    return out


def max_speedup_under_power_many(
    model: IsoEnergyModel,
    *,
    n: float,
    budgets: Sequence[float],
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> list[Recommendation | ReproError]:
    """:func:`max_speedup_under_power` for a whole vector of budgets.

    One shared grid (via the store) and one sorted-prefix pass answer
    every budget — tie-breaks, feasible counts, and error messages match
    the scalar solver element for element.  Per-budget failures come
    back as :class:`~repro.errors.ParameterError` *instances* in the
    result list rather than raising, so one hopeless budget cannot sink
    its batch-mates; callers re-raise or wrap as they see fit.
    """
    grid = _pf_grid(model, n, p_values, f_values)

    def infeasible(budget_w: float) -> str:
        return (
            f"no (p, f) fits under {budget_w:.0f} W: the frugalest grid "
            f"configuration draws {float(grid.avg_power.min()):.0f} W"
        )

    return _solve_many(
        grid,
        "max_speedup_under_power",
        grid.tp,
        grid.avg_power,
        budgets,
        positive_error="power budget must be positive",
        infeasible_error=infeasible,
    )


def min_energy_under_deadline_many(
    model: IsoEnergyModel,
    *,
    n: float,
    deadlines: Sequence[float],
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> list[Recommendation | ReproError]:
    """:func:`min_energy_under_deadline` for a whole vector of deadlines.

    Same contract as :func:`max_speedup_under_power_many`: one grid, one
    masked sorted-prefix pass, per-deadline errors returned in place.
    """
    grid = _pf_grid(model, n, p_values, f_values)

    def infeasible(t_max: float) -> str:
        return (
            f"no (p, f) meets the {t_max:g} s deadline: the fastest grid "
            f"configuration needs {float(grid.tp.min()):.3g} s"
        )

    return _solve_many(
        grid,
        "min_energy_under_deadline",
        grid.ep,
        grid.tp,
        deadlines,
        positive_error="deadline must be positive",
        infeasible_error=infeasible,
    )


def _frontier_flat(tp: np.ndarray, ep: np.ndarray) -> np.ndarray:
    """Flat indices of the non-dominated (tp, ep) cells, tp-ascending.

    Walking the ``lexsort((ep, tp))`` order, a cell survives iff its ep
    beats every earlier cell's — a running-minimum mask instead of the
    Python loop of :func:`_frontier_flat_scalar`.
    """
    order = np.lexsort((ep, tp))
    ep_sorted = ep[order]
    keep = np.empty(order.size, dtype=bool)
    keep[0] = True
    keep[1:] = ep_sorted[1:] < np.minimum.accumulate(ep_sorted)[:-1]
    return order[keep]


def _frontier_flat_scalar(tp: np.ndarray, ep: np.ndarray) -> np.ndarray:
    """The reference Python loop :func:`_frontier_flat` is tested against."""
    order = np.lexsort((ep, tp))
    winners: list[int] = []
    best_ep = np.inf
    for flat in order:
        if ep[flat] < best_ep:
            best_ep = float(ep[flat])
            winners.append(int(flat))
    return np.array(winners, dtype=np.intp)


def pareto_frontier(
    model: IsoEnergyModel,
    *,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float] | None = None,
) -> list[Recommendation]:
    """Non-dominated (Tp, Ep) configurations, sorted fastest-first.

    A configuration is kept iff no other is both faster and greener;
    the returned list therefore ascends in Tp while strictly descending
    in Ep — the menu an operator trades along.
    """
    grid = _pf_grid(model, n, p_values, f_values)
    tp = grid.tp[:, :, 0].ravel()
    ep = grid.ep[:, :, 0].ravel()
    shape = grid.tp[:, :, 0].shape
    winners = [
        (int(ip), int(jf))
        for ip, jf in zip(*np.unravel_index(_frontier_flat(tp, ep), shape))
    ]
    # feasible_count = frontier size: every listed config "satisfies the
    # constraint" of being non-dominated
    return [
        Recommendation.from_point(
            "pareto_frontier",
            grid.point(ip, jf, 0),
            float(grid.avg_power[ip, jf, 0]),
            len(winners),
        )
        for ip, jf in winners
    ]

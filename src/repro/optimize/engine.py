"""The shared grid store: one evaluation, many consumers.

Every solver in the library ultimately asks the same question — "what
does the model say over this (p × f × n) box?" — and before this module
each asked it from scratch: the budget/deadline/Pareto solvers, the EE
surface ops, the scheduler's power ladders, and the federation profiles
all called :func:`repro.optimize.grid.evaluate_grid` independently, so a
mixed query stream re-derived Θ1/Θ2 and re-ran the model broadcasts for
every request even when the grids overlapped cell for cell.

:class:`GridStore` is the process-wide fix.  Grids are cached under a
canonical signature — the owning model plus *interned* p/f/n axis
tuples, with every requested frequency resolved through
:meth:`~repro.core.model.IsoEnergyModel.machine_at` first so ``f=None``
and the spelled-out calibration frequency share one entry.  Lookups are
served three ways, cheapest first:

1. **exact hit** — the same signature was evaluated before;
2. **superset hit** — some cached grid *contains* the requested axes,
   and the sub-grid is sliced out of it.  Every grid quantity is
   elementwise in (p, f, n), so a slice of a superset is bit-identical
   to evaluating the sub-grid directly;
3. **miss** — evaluate, cache, serve.

Cached arrays are frozen (``writeable=False``): a shared grid that one
consumer could mutate would silently corrupt every other consumer's
answers.  The store is LRU-bounded and fully observable —
:meth:`GridStore.stats` feeds ``repro.api.service.cache_info()``, the
``/healthz`` payload, and the ``repro cache-stats`` CLI.

:func:`grid_for` is the drop-in replacement for ``evaluate_grid`` that
every grid consumer routes through; :func:`ee_pairs` is the matching
funnel for the contour tracer's pair batches (not cacheable — each
bisection step asks a fresh pairing — but counted, so operators see the
full evaluation traffic in one place).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError, ReproError
from repro.obs.trace import span
from repro.optimize.grid import GRID_METRICS, GridResult, ee_at_pairs, evaluate_grid

#: default bound on cached grids; LRU beyond it.
DEFAULT_MAX_ENTRIES = 256

#: arrays carried by every cached grid (the metric planes + bottleneck).
_GRID_ARRAYS = (*GRID_METRICS, "bottleneck")


def _freeze(grid: GridResult) -> GridResult:
    """Mark every array of ``grid`` read-only (shared-cache safety)."""
    for name in _GRID_ARRAYS:
        getattr(grid, name).flags.writeable = False
    return grid


def _grid_nbytes(grid: GridResult) -> int:
    return sum(getattr(grid, name).nbytes for name in _GRID_ARRAYS)


class GridStore:
    """A process-wide, LRU-bounded cache of :class:`GridResult` grids.

    Keys are ``(model, p axis, f axis, n axis)`` with the model compared
    by identity (entries hold a strong reference, so an id is never
    recycled while its entry lives) and the axes interned — repeated
    axis tuples collapse to one canonical object, making key comparison
    cheap for the common case of a few distinct sweeps asked thousands
    of times.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ParameterError("GridStore needs max_entries >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        # key -> (model, grid, local heap bytes); OrderedDict gives LRU
        # order.  Grids attached from the shared plane carry 0 local
        # bytes — their payload is resident in the shm segment, counted
        # once plane-wide under ``shared_bytes``.
        self._entries: OrderedDict[
            tuple, tuple[IsoEnergyModel, GridResult, int]
        ] = OrderedDict()
        # optional cross-process plane (repro.optimize.shm); attached by
        # the worker pool so forked workers serve each other's grids
        self._plane = None
        self._axes: dict[tuple, tuple] = {}
        # owner-keyed side table for heterogeneous-pool grids (the owner
        # is the HeteroSpace; entries hold a strong reference so its id
        # is never recycled while the entry lives, as for models above)
        self._hetero_entries: OrderedDict[tuple, tuple[object, Any]] = (
            OrderedDict()
        )
        self.hits = 0
        self.superset_hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        self.pair_batches = 0
        self.pair_points = 0
        self.hetero_hits = 0
        self.hetero_misses = 0
        self.hetero_evictions = 0
        self.hetero_bytes = 0
        self.shared_hits = 0
        self.shared_superset_hits = 0
        self.shared_misses = 0
        self.shared_published = 0

    # -- key construction ---------------------------------------------------------

    def _intern(self, axis: tuple) -> tuple:
        if len(self._axes) > 16 * self._max_entries:
            self._axes.clear()  # unbounded distinct axes: start over
        return self._axes.setdefault(axis, axis)

    def _signature(
        self,
        model: IsoEnergyModel,
        p_values: Sequence[int],
        f_values: Sequence[float | None] | None,
        n_values: Sequence[float],
    ) -> tuple:
        """The canonical store key (axes normalised exactly as the grid
        evaluator would: ints/floats, ``f`` resolved per machine)."""
        ps = self._intern(tuple(int(p) for p in p_values))
        fs_raw = [None] if f_values is None else list(f_values)
        fs = self._intern(tuple(model.machine_at(f).f for f in fs_raw))
        ns = self._intern(tuple(float(n) for n in n_values))
        return (id(model), ps, fs, ns)

    # -- cross-process plane ------------------------------------------------------

    def attach_plane(self, plane) -> None:
        """Join a :class:`~repro.optimize.shm.SharedGridPlane`.

        Once attached, grids published by *any* process on the plane are
        served here (exact attach or superset slice) before evaluating,
        and grids this store evaluates for fingerprinted models are
        published for the others.  Pass ``None`` to detach (the plane
        itself is not closed — its views may still be cached).
        """
        with self._lock:
            self._plane = plane

    def plane(self):
        """The attached shared plane, or None."""
        return self._plane

    @staticmethod
    def _shared_model_key(model: IsoEnergyModel) -> str | None:
        """The cross-process model fingerprint, or None to stay local.

        Object identity (the in-process key) means nothing across
        workers, so cross-process sharing is opt-in: models carrying a
        ``shared_key`` — a content fingerprint of Θ1 and the workload
        selector, set by deterministic factories like
        :func:`repro.paperdata.paper_model` — participate; anything
        else (ad-hoc calibration models, mutated registries) is served
        process-locally only.
        """
        shared = getattr(model, "shared_key", None)
        if shared is None:
            return None
        try:
            return json.dumps(shared, separators=(",", ":"))
        except (TypeError, ValueError):
            return None

    def _from_plane(self, plane, model_json: str, key: tuple):
        """(grid, kind) attached from the shared plane, or (None, '')."""
        _, ps, fs, ns = key
        with span("grid.shared_attach"):
            grid = plane.lookup(model_json, ps, fs, ns)
            if grid is not None:
                return grid, "exact"
            grid = plane.lookup_superset(model_json, ps, fs, ns)
        if grid is not None:
            return grid, "superset"
        return None, ""

    # -- lookup -------------------------------------------------------------------

    def get(
        self,
        model: IsoEnergyModel,
        *,
        p_values: Sequence[int],
        n_values: Sequence[float],
        f_values: Sequence[float | None] | None = None,
    ) -> GridResult:
        """The grid over the requested axes, cached/sliced/evaluated."""
        if (
            not len(p_values)
            or not len(n_values)
            or (f_values is not None and not len(f_values))
        ):
            # delegate empty-axis validation to the evaluator's own
            # errors (an empty axis must never reach the superset
            # matcher — it would match any cached grid vacuously)
            return evaluate_grid(
                model, p_values=p_values, f_values=f_values, n_values=n_values
            )
        key = self._signature(model, p_values, f_values, n_values)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            with span("grid.slice"):
                sliced = self._slice_from_superset(key)
            if sliced is not None:
                self.superset_hits += 1
                self._put_locked(key, model, sliced)
                return sliced
            plane = self._plane
        # consult the cross-process plane before evaluating: a sibling
        # worker may have published this grid already.  Plane reads are
        # lock-free (seqlock), so this happens outside the store lock.
        model_json = (
            self._shared_model_key(model) if plane is not None else None
        )
        if model_json is not None:
            try:
                grid, kind = self._from_plane(plane, model_json, key)
            except ReproError:  # wedged index: fall back to evaluating
                grid, kind = None, ""
            if grid is not None:
                with self._lock:
                    if kind == "exact":
                        self.shared_hits += 1
                        # payload is shm-resident: 0 local heap bytes
                        self._put_locked(key, model, grid, nbytes=0)
                    else:
                        self.shared_superset_hits += 1
                        self._put_locked(key, model, grid)
                return grid
            self.shared_misses += 1
        # evaluate outside the lock: concurrent identical misses may race,
        # but the evaluation is pure and the second put is a harmless no-op
        with span("grid.evaluate"):
            grid = _freeze(
                evaluate_grid(
                    model, p_values=key[1], f_values=key[2], n_values=key[3]
                )
            )
        if model_json is not None:
            with span("grid.shared_publish"):
                try:
                    if plane.publish(model_json, grid):
                        self.shared_published += 1
                except ReproError:  # index overflow/wedge: stay local
                    pass
        with self._lock:
            self.misses += 1
            self._put_locked(key, model, grid)
        return grid

    def _slice_from_superset(self, key: tuple) -> GridResult | None:
        """A sub-grid cut from a cached superset, or None (lock held)."""
        model_id, ps, fs, ns = key
        for other_key in reversed(self._entries):  # most recent first
            if other_key[0] != model_id:
                continue
            _, cps, cfs, cns = other_key
            pos_p = {v: i for i, v in enumerate(cps)}
            pos_f = {v: i for i, v in enumerate(cfs)}
            pos_n = {v: i for i, v in enumerate(cns)}
            if (
                all(v in pos_p for v in ps)
                and all(v in pos_f for v in fs)
                and all(v in pos_n for v in ns)
            ):
                _, cached, _ = self._entries[other_key]
                self._entries.move_to_end(other_key)
                ix = np.ix_(
                    [pos_p[v] for v in ps],
                    [pos_f[v] for v in fs],
                    [pos_n[v] for v in ns],
                )
                return _freeze(
                    GridResult(
                        label=cached.label,
                        p_values=ps,
                        f_values=fs,
                        n_values=ns,
                        **{
                            name: getattr(cached, name)[ix]
                            for name in _GRID_ARRAYS
                        },
                    )
                )
        return None

    def _put_locked(
        self,
        key: tuple,
        model: IsoEnergyModel,
        grid: GridResult,
        nbytes: int | None = None,
    ) -> None:
        """Insert one grid; ``nbytes`` overrides the local-heap charge
        (0 for shm-attached views whose payload lives plane-side)."""
        if key in self._entries:
            return
        charged = _grid_nbytes(grid) if nbytes is None else nbytes
        self._entries[key] = (model, grid, charged)
        self.bytes += charged
        while len(self._entries) > self._max_entries:
            _, (_, _, freed) = self._entries.popitem(last=False)
            self.bytes -= freed
            self.evictions += 1

    # -- heterogeneous-pool grids -------------------------------------------------

    def get_hetero(
        self, owner: object, key: tuple, build: Callable[[], Any]
    ) -> Any:
        """A mixed-pool grid cached under a group-aware signature.

        ``owner`` is the evaluated space (compared by identity, held
        strongly); ``key`` its value-level axes.  ``build`` runs outside
        the lock on a miss — evaluation is pure, so a racing identical
        miss costs a redundant build, never a wrong answer.  The result
        must expose ``nbytes`` and arrive frozen (read-only arrays); it
        is LRU-bounded by the same ``max_entries`` as homogeneous grids.
        """
        full_key = (id(owner), key)
        with self._lock:
            entry = self._hetero_entries.get(full_key)
            if entry is not None:
                self._hetero_entries.move_to_end(full_key)
                self.hetero_hits += 1
                return entry[1]
        result = build()
        with self._lock:
            self.hetero_misses += 1
            if full_key not in self._hetero_entries:
                self._hetero_entries[full_key] = (owner, result)
                self.hetero_bytes += int(getattr(result, "nbytes", 0))
                while len(self._hetero_entries) > self._max_entries:
                    _, (_, evicted) = self._hetero_entries.popitem(last=False)
                    self.hetero_bytes -= int(getattr(evicted, "nbytes", 0))
                    self.hetero_evictions += 1
        return result

    # -- observability / lifecycle ------------------------------------------------

    def count_pairs(self, n_points: int) -> None:
        """Record one contour pair batch (uncacheable, but visible)."""
        with self._lock:
            self.pair_batches += 1
            self.pair_points += int(n_points)

    def stats(self) -> dict[str, int | dict[str, int]]:
        """Hit/miss/size counters as a JSON-ready mapping.

        The ``shared`` block reports the cross-process plane: this
        store's attach/publish traffic plus the plane-wide segment
        census (``shared_bytes`` = bytes of segments this process has
        attached; ``attached_segments`` = how many).  Without a plane
        the block is all zeros with ``"plane": 0``.
        """
        with self._lock:
            plane = self._plane
            stats: dict[str, int | dict[str, int]] = {
                "hits": self.hits,
                "superset_hits": self.superset_hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "bytes": self.bytes,
                "evictions": self.evictions,
                "max_entries": self._max_entries,
                "pair_batches": self.pair_batches,
                "pair_points": self.pair_points,
                "hetero_hits": self.hetero_hits,
                "hetero_misses": self.hetero_misses,
                "hetero_entries": len(self._hetero_entries),
                "hetero_bytes": self.hetero_bytes,
                "hetero_evictions": self.hetero_evictions,
            }
            shared: dict[str, int] = {
                "plane": int(plane is not None),
                "hits": self.shared_hits,
                "superset_hits": self.shared_superset_hits,
                "misses": self.shared_misses,
                "published": self.shared_published,
                "segments": 0,
                "segment_bytes": 0,
                "attached_segments": 0,
                "shared_bytes": 0,
                "evicted": 0,
            }
        if plane is not None:
            ps = plane.stats()
            shared.update(
                segments=ps["segments"],
                segment_bytes=ps["segment_bytes"],
                attached_segments=ps["attached_segments"],
                shared_bytes=ps["attached_bytes"],
                evicted=ps["evicted"],
            )
        stats["shared"] = shared
        return stats

    def clear(self) -> None:
        """Drop every cached grid (counters survive; entries/bytes reset).

        With a plane attached, published segments are unlinked too — a
        cache clear must not leave stale shared state that other workers
        would keep serving after e.g. a registry mutation.
        """
        with self._lock:
            plane = self._plane
            self._entries.clear()
            self._axes.clear()
            self._hetero_entries.clear()
            self.bytes = 0
            self.hetero_bytes = 0
        if plane is not None:
            plane.clear()


_DEFAULT_STORE = GridStore()


def default_store() -> GridStore:
    """The process-wide store every library consumer shares."""
    return _DEFAULT_STORE


def grid_for(
    model: IsoEnergyModel,
    *,
    p_values: Sequence[int],
    n_values: Sequence[float],
    f_values: Sequence[float | None] | None = None,
    store: GridStore | None = None,
) -> GridResult:
    """:func:`~repro.optimize.grid.evaluate_grid` through the shared store.

    The drop-in entry point for every grid consumer — budget/deadline/
    Pareto solvers, EE surfaces, power ladders, federation profiles.
    Returned grids are shared and read-only; copy before mutating.
    """
    return (store or _DEFAULT_STORE).get(
        model, p_values=p_values, n_values=n_values, f_values=f_values
    )


def ee_pairs(
    model: IsoEnergyModel,
    n_values: Sequence[float] | np.ndarray,
    p_values: Sequence[int] | np.ndarray,
    *,
    f: float | None = None,
    store: GridStore | None = None,
) -> np.ndarray:
    """:func:`~repro.optimize.grid.ee_at_pairs` with store accounting.

    Pair batches are *not* cacheable — each bisection refinement asks a
    fresh (n, p) pairing — but funnelling them here keeps the store's
    counters an honest census of all model evaluation traffic.
    """
    (store or _DEFAULT_STORE).count_pairs(np.asarray(n_values).size)
    return ee_at_pairs(model, n_values, p_values, f=f)

"""Cluster-level DVFS scheduling under a site power budget.

The budget solvers in :mod:`repro.optimize.budget` configure one job;
real machine rooms run queues.  This module splits a cluster-level
power cap across a queue of NPB workloads on one of the paper's
testbeds (SystemG or Dori) and picks a per-job (p, f):

1. each job's (p × f) grid collapses to its *power ladder* — the
   power-vs-runtime Pareto rungs, cheapest first;
2. every job starts on its cheapest rung (anything less is infeasible);
3. the remaining watts are spent greedily on the job currently holding
   the makespan, climbing it one rung at a time, until no rung fits.

The greedy exchange is the classic power-aware list-scheduling
heuristic: every watt goes where it shortens the critical job *now*,
which monotonically improves makespan and never strands budget that
could still help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.presets import cluster_preset
from repro.core.model import IsoEnergyModel
from repro.errors import ParameterError
from repro.optimize.grid import evaluate_grid
from repro.paperdata import paper_model


@dataclass(frozen=True)
class Job:
    """One queued workload: an NPB benchmark at a problem class."""

    name: str
    benchmark: str = "FT"
    klass: str = "B"
    niter: int | None = None


@dataclass(frozen=True)
class Assignment:
    """The (p, f) one job received, plus its predicted outcome."""

    job: str
    benchmark: str
    p: int
    f: float
    tp: float
    ep: float
    ee: float
    avg_power: float
    rung: int
    rungs_available: int


@dataclass(frozen=True)
class ClusterSchedule:
    """A complete power-split over the queue."""

    cluster: str
    power_budget: float
    assignments: tuple[Assignment, ...]

    @property
    def total_power(self) -> float:
        return sum(a.avg_power for a in self.assignments)

    @property
    def headroom_w(self) -> float:
        return self.power_budget - self.total_power

    @property
    def makespan(self) -> float:
        return max(a.tp for a in self.assignments)

    @property
    def total_energy(self) -> float:
        return sum(a.ep for a in self.assignments)

    def rows(self) -> list[tuple]:
        """(job, benchmark, p, GHz, Tp, Ep, EE, draw) rows for printing."""
        return [
            (
                a.job,
                a.benchmark,
                a.p,
                round(a.f / 1e9, 2),
                round(a.tp, 2),
                round(a.ep, 1),
                round(a.ee, 4),
                round(a.avg_power, 0),
            )
            for a in self.assignments
        ]


@dataclass(frozen=True)
class _Rung:
    p: int
    f: float
    tp: float
    ep: float
    ee: float
    avg_power: float


def _power_ladder(
    model: IsoEnergyModel,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float],
) -> list[_Rung]:
    """Power-vs-runtime Pareto rungs of one job, cheapest watts first."""
    grid = evaluate_grid(
        model, p_values=p_values, f_values=f_values, n_values=[n]
    )
    cells = [
        _Rung(
            p=grid.p_values[ip],
            f=grid.f_values[jf],
            tp=float(grid.tp[ip, jf, 0]),
            ep=float(grid.ep[ip, jf, 0]),
            ee=float(grid.ee[ip, jf, 0]),
            avg_power=float(grid.avg_power[ip, jf, 0]),
        )
        for ip in range(len(grid.p_values))
        for jf in range(len(grid.f_values))
    ]
    cells.sort(key=lambda r: (r.avg_power, r.tp))
    ladder: list[_Rung] = []
    best_tp = float("inf")
    for rung in cells:
        if rung.tp < best_tp:
            best_tp = rung.tp
            ladder.append(rung)
    return ladder


def schedule_jobs(
    jobs: Sequence[Job],
    *,
    cluster: str | Cluster = "systemg",
    power_budget: float,
    nodes: int = 64,
    p_values: Sequence[int] | None = None,
    f_values: Sequence[float] | None = None,
    max_nodes: int | None = None,
) -> ClusterSchedule:
    """Assign every queued job a (p, f) under a shared power budget.

    ``p_values`` defaults to the powers of two up to ``nodes``;
    ``f_values`` to the preset's DVFS P-states.  ``max_nodes`` optionally
    also caps the summed node count of concurrent jobs.  Raises
    :class:`ParameterError` when the queue cannot run at all — even with
    every job on its cheapest rung — reporting the minimum workable
    budget.
    """
    if not jobs:
        raise ParameterError("the job queue is empty")
    if power_budget <= 0:
        raise ParameterError("power budget must be positive")
    machine_room = cluster_preset(cluster, nodes)
    if p_values is None:
        cap = min(nodes, len(machine_room))
        ps = [1]
        while ps[-1] * 2 <= cap:
            ps.append(ps[-1] * 2)
        p_values = ps
    if f_values is None:
        f_values = machine_room.available_frequencies

    ladders: list[list[_Rung]] = []
    for job in jobs:
        model, n = paper_model(
            job.benchmark,
            job.klass,
            cluster=machine_room,
            niter=job.niter,
            name=f"{job.benchmark.upper()}.{job.klass} on {machine_room.name}",
        )
        ladders.append(_power_ladder(model, n, p_values, f_values))

    levels = [0] * len(jobs)

    def total_power() -> float:
        return sum(lad[lvl].avg_power for lad, lvl in zip(ladders, levels))

    def total_p() -> int:
        return sum(lad[lvl].p for lad, lvl in zip(ladders, levels))

    floor = total_power()
    if floor > power_budget:
        raise ParameterError(
            f"queue infeasible under {power_budget:.0f} W: even the "
            f"cheapest rungs draw {floor:.0f} W together"
        )

    # climb: spend headroom on whoever holds the makespan.
    while True:
        order = sorted(
            range(len(jobs)),
            key=lambda i: ladders[i][levels[i]].tp,
            reverse=True,
        )
        advanced = False
        for i in order:
            if levels[i] + 1 >= len(ladders[i]):
                continue
            cur, nxt = ladders[i][levels[i]], ladders[i][levels[i] + 1]
            if total_power() - cur.avg_power + nxt.avg_power > power_budget:
                continue
            if (
                max_nodes is not None
                and total_p() - cur.p + nxt.p > max_nodes
            ):
                continue
            levels[i] += 1
            advanced = True
            break
        if not advanced:
            break

    assignments = tuple(
        Assignment(
            job=job.name,
            benchmark=job.benchmark.upper(),
            p=lad[lvl].p,
            f=lad[lvl].f,
            tp=lad[lvl].tp,
            ep=lad[lvl].ep,
            ee=lad[lvl].ee,
            avg_power=lad[lvl].avg_power,
            rung=lvl,
            rungs_available=len(lad),
        )
        for job, lad, lvl in zip(jobs, ladders, levels)
    )
    return ClusterSchedule(
        cluster=machine_room.name,
        power_budget=power_budget,
        assignments=assignments,
    )

"""Cluster-level DVFS scheduling under a site power budget.

The budget solvers in :mod:`repro.optimize.budget` configure one job;
real machine rooms run queues.  This module splits a cluster-level
power cap across a queue of NPB workloads on one of the paper's
testbeds (SystemG or Dori) and picks a per-job (p, f):

1. each job's (p × f) grid collapses to its *power ladder* — the
   power-vs-runtime Pareto rungs, cheapest first;
2. every job starts on its cheapest rung (anything less is infeasible);
3. the remaining watts are spent according to the scheduling *policy*.

Three policies ship:

* ``"makespan"`` (default) — the classic power-aware list-scheduling
  heuristic: every watt goes where it shortens the critical job *now*,
  which monotonically improves makespan and never strands budget that
  could still help.
* ``"energy"`` — spend watts only where they *reduce* total energy,
  best joules-saved-per-extra-watt first.  On these models a faster
  rung often finishes early enough to cut the idle-energy integral, so
  the minimum-energy operating point is usually above the floor.
* ``"ee_floor"`` — reject any placement whose energy efficiency falls
  below ``ee_floor`` (rungs are filtered before the makespan climb);
  jobs that cannot meet the floor at all raise
  :class:`~repro.errors.InfeasibleJobsError`.

The federation router (:mod:`repro.federation.router`) selects a policy
per shard and delegates the per-shard placement here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.presets import cluster_preset
from repro.core.model import IsoEnergyModel
from repro.errors import InfeasibleJobsError, ParameterError
from repro.optimize.engine import grid_for
from repro.paperdata import paper_model

#: scheduling policies understood by :func:`schedule_jobs`.
SCHEDULE_POLICIES = ("makespan", "energy", "ee_floor")


@dataclass(frozen=True)
class Job:
    """One queued workload: an NPB benchmark at a problem class."""

    name: str
    benchmark: str = "FT"
    klass: str = "B"
    niter: int | None = None


@dataclass(frozen=True)
class Assignment:
    """The (p, f) one job received, plus its predicted outcome."""

    job: str
    benchmark: str
    p: int
    f: float
    tp: float
    ep: float
    ee: float
    avg_power: float
    rung: int
    rungs_available: int


@dataclass(frozen=True)
class ClusterSchedule:
    """A complete power-split over the queue."""

    cluster: str
    power_budget: float
    assignments: tuple[Assignment, ...]
    policy: str = "makespan"

    @property
    def total_power(self) -> float:
        return sum(a.avg_power for a in self.assignments)

    @property
    def headroom_w(self) -> float:
        return self.power_budget - self.total_power

    @property
    def makespan(self) -> float:
        return max(a.tp for a in self.assignments)

    @property
    def total_energy(self) -> float:
        return sum(a.ep for a in self.assignments)

    def rows(self) -> list[tuple]:
        """(job, benchmark, p, GHz, Tp, Ep, EE, draw) rows for printing."""
        return [
            (
                a.job,
                a.benchmark,
                a.p,
                round(a.f / 1e9, 2),
                round(a.tp, 2),
                round(a.ep, 1),
                round(a.ee, 4),
                round(a.avg_power, 0),
            )
            for a in self.assignments
        ]


@dataclass(frozen=True)
class Rung:
    """One Pareto rung of a job's power ladder."""

    p: int
    f: float
    tp: float
    ep: float
    ee: float
    avg_power: float


def ladder_from_cells(cells: Sequence[Rung]) -> list[Rung]:
    """The power-vs-runtime Pareto rungs of a candidate set, cheapest first.

    A cell survives iff no other cell is both cheaper and faster, so the
    returned ladder ascends in average power while strictly descending
    in runtime.  The one pruning rule both homogeneous (p, f) grids and
    heterogeneous pool-mix grids reduce to ladders by.
    """
    cells = sorted(cells, key=lambda r: (r.avg_power, r.tp))
    ladder: list[Rung] = []
    best_tp = float("inf")
    for rung in cells:
        if rung.tp < best_tp:
            best_tp = rung.tp
            ladder.append(rung)
    return ladder


def power_ladder(
    model: IsoEnergyModel,
    n: float,
    p_values: Sequence[int],
    f_values: Sequence[float],
) -> list[Rung]:
    """Power-vs-runtime Pareto rungs of one job, cheapest watts first.

    Every (p, f) grid cell is a candidate for :func:`ladder_from_cells`.
    This is the primitive the cluster scheduler and the federation
    partitioner both climb.  The grid rides the shared store, so
    repeated schedules over the same (machine, workload) reuse one
    evaluation.
    """
    grid = grid_for(
        model, p_values=p_values, f_values=f_values, n_values=[n]
    )
    cells = [
        Rung(
            p=grid.p_values[ip],
            f=grid.f_values[jf],
            tp=float(grid.tp[ip, jf, 0]),
            ep=float(grid.ep[ip, jf, 0]),
            ee=float(grid.ee[ip, jf, 0]),
            avg_power=float(grid.avg_power[ip, jf, 0]),
        )
        for ip in range(len(grid.p_values))
        for jf in range(len(grid.f_values))
    ]
    return ladder_from_cells(cells)


def eligible_rungs(
    ladder: Sequence[Rung], ee_floor: float | None
) -> list[Rung]:
    """The rungs an EE floor admits (all of them when no floor applies).

    The single definition of floor eligibility: the scheduler's placement
    filter, the federation router's routing filter, and the partitioner's
    capability curves must agree exactly, or a job deemed routable could
    be rejected at scheduling time.
    """
    if ee_floor is None:
        return list(ladder)
    return [r for r in ladder if r.ee >= ee_floor]


def select_rung(
    ladder: Sequence[Rung], headroom_w: float, *, policy: str = "makespan"
) -> int | None:
    """The rung index ``policy`` picks for one job under a power headroom.

    ``ladder`` must already be floor-filtered (:func:`eligible_rungs`)
    for an ``ee_floor`` policy.  Because ladders ascend in power and
    descend in runtime, the affordable rungs are a prefix:
    ``makespan``/``ee_floor`` take the fastest affordable rung (the
    prefix's last), ``energy`` the affordable rung with the lowest Ep
    (earliest on ties).  Returns ``None`` when even the cheapest rung
    exceeds ``headroom_w``.  This is the one-job specialisation of the
    scheduler's climbs — the online simulator places each arriving job
    by it, so a lone job lands on the same rung the batch scheduler
    would give it.
    """
    if policy not in SCHEDULE_POLICIES:
        raise ParameterError(
            f"unknown scheduling policy {policy!r}; "
            f"choose from {SCHEDULE_POLICIES}"
        )
    fit = 0
    while fit < len(ladder) and ladder[fit].avg_power <= headroom_w:
        fit += 1
    if fit == 0:
        return None
    if policy == "energy":
        return min(range(fit), key=lambda i: (ladder[i].ep, i))
    return fit - 1


def default_p_values(machine_room: Cluster, nodes: int) -> list[int]:
    """Powers of two up to ``min(nodes, len(cluster))`` — the ladder axis."""
    cap = min(nodes, len(machine_room))
    ps = [1]
    while ps[-1] * 2 <= cap:
        ps.append(ps[-1] * 2)
    return ps


def _check_job_floors(
    jobs: Sequence[Job], ladders: list[list[Rung]], power_budget: float
) -> None:
    """Reject jobs whose *cheapest* rung alone exceeds the envelope."""
    hopeless = tuple(
        (job.name, lad[0].avg_power)
        for job, lad in zip(jobs, ladders)
        if lad[0].avg_power > power_budget
    )
    if hopeless:
        detail = ", ".join(
            f"{name} needs {floor:.0f} W" for name, floor in hopeless
        )
        raise InfeasibleJobsError(
            f"{len(hopeless)} job(s) individually infeasible under "
            f"{power_budget:.0f} W (cheapest rung already over the "
            f"envelope): {detail}",
            jobs=hopeless,
        )


def climb_makespan(
    ladders: Sequence[Sequence[Rung]],
    levels: list[int],
    power_budget: float,
    max_nodes: int | None = None,
    on_step=None,
) -> None:
    """Spend headroom on whoever holds the makespan, one rung at a time.

    Mutates ``levels`` in place.  ``on_step(levels)`` is called after
    every accepted upgrade — the federation partitioner uses it to record
    the (power, utility) trajectory, so capability curves and real
    schedules always climb by the same rule.
    """

    def total_power() -> float:
        return sum(lad[lvl].avg_power for lad, lvl in zip(ladders, levels))

    def total_p() -> int:
        return sum(lad[lvl].p for lad, lvl in zip(ladders, levels))

    while True:
        order = sorted(
            range(len(ladders)),
            key=lambda i: ladders[i][levels[i]].tp,
            reverse=True,
        )
        advanced = False
        for i in order:
            if levels[i] + 1 >= len(ladders[i]):
                continue
            cur, nxt = ladders[i][levels[i]], ladders[i][levels[i] + 1]
            if total_power() - cur.avg_power + nxt.avg_power > power_budget:
                continue
            if (
                max_nodes is not None
                and total_p() - cur.p + nxt.p > max_nodes
            ):
                continue
            levels[i] += 1
            advanced = True
            break
        if not advanced:
            break
        if on_step is not None:
            on_step(levels)


def _climb_energy(
    ladders: list[list[Rung]],
    levels: list[int],
    power_budget: float,
    max_nodes: int | None,
) -> None:
    """Take only energy-reducing upgrades, best joules-per-watt first.

    Candidates may jump several rungs at once — the ladder's Ep is not
    monotone in power, so restricting moves to adjacent rungs could
    strand a lower-energy configuration behind an energy bump.
    """
    while True:
        # levels are fixed for the whole scan: sum the state once per
        # round and evaluate each candidate as a delta against it
        base_power = sum(
            lad[lvl].avg_power for lad, lvl in zip(ladders, levels)
        )
        base_p = sum(lad[lvl].p for lad, lvl in zip(ladders, levels))
        best: tuple[float, int, int] | None = None  # (density, job, level)
        for i, lad in enumerate(ladders):
            cur = lad[levels[i]]
            for k in range(levels[i] + 1, len(lad)):
                nxt = lad[k]
                saved = cur.ep - nxt.ep
                if saved <= 0:
                    continue
                if base_power - cur.avg_power + nxt.avg_power > power_budget:
                    continue
                if (
                    max_nodes is not None
                    and base_p - cur.p + nxt.p > max_nodes
                ):
                    continue
                extra_w = max(nxt.avg_power - cur.avg_power, 1e-12)
                density = saved / extra_w
                if best is None or density > best[0]:
                    best = (density, i, k)
        if best is None:
            break
        _, i, k = best
        levels[i] = k


def schedule_jobs(
    jobs: Sequence[Job],
    *,
    cluster: str | Cluster = "systemg",
    power_budget: float,
    nodes: int = 64,
    p_values: Sequence[int] | None = None,
    f_values: Sequence[float] | None = None,
    max_nodes: int | None = None,
    policy: str = "makespan",
    ee_floor: float | None = None,
    ladders: Sequence[list[Rung]] | None = None,
) -> ClusterSchedule:
    """Assign every queued job a (p, f) under a shared power budget.

    ``p_values`` defaults to the powers of two up to ``nodes``;
    ``f_values`` to the preset's DVFS P-states.  ``max_nodes`` optionally
    also caps the summed node count of concurrent jobs.  ``policy``
    selects how headroom is spent (see the module docstring);
    ``policy="ee_floor"`` additionally requires ``ee_floor``, the minimum
    acceptable energy efficiency per placement.  ``ladders`` (one
    pre-built :func:`power_ladder` per job, same order) skips the model
    derivation entirely — the federation router passes the ladders it
    already built, so one federate call evaluates each (shard, workload)
    grid exactly once.

    Raises :class:`~repro.errors.InfeasibleJobsError` naming the jobs
    whose cheapest rung alone exceeds the envelope (or, under
    ``ee_floor``, that cannot meet the EE floor at any rung), and
    :class:`ParameterError` when the queue as a whole cannot run even
    with every job on its cheapest remaining rung.
    """
    if not jobs:
        raise ParameterError("the job queue is empty")
    if power_budget <= 0:
        raise ParameterError("power budget must be positive")
    if policy not in SCHEDULE_POLICIES:
        raise ParameterError(
            f"unknown scheduling policy {policy!r}; "
            f"choose from {SCHEDULE_POLICIES}"
        )
    if policy == "ee_floor" and ee_floor is None:
        raise ParameterError("policy='ee_floor' requires an ee_floor value")
    machine_room = cluster_preset(cluster, nodes)
    if p_values is None:
        p_values = default_p_values(machine_room, nodes)
    if f_values is None:
        f_values = machine_room.available_frequencies

    if ladders is not None:
        if len(ladders) != len(jobs):
            raise ParameterError(
                f"{len(ladders)} pre-built ladders for {len(jobs)} jobs"
            )
        ladders = [list(lad) for lad in ladders]
        if any(not lad for lad in ladders):
            raise ParameterError("pre-built ladders must be non-empty")
    else:
        ladders = []
        for job in jobs:
            model, n = paper_model(
                job.benchmark,
                job.klass,
                cluster=machine_room,
                niter=job.niter,
                name=f"{job.benchmark.upper()}.{job.klass} "
                     f"on {machine_room.name}",
            )
            ladders.append(power_ladder(model, n, p_values, f_values))

    if policy == "ee_floor":
        filtered: list[list[Rung]] = [
            eligible_rungs(lad, ee_floor) for lad in ladders
        ]
        below = tuple(
            (job.name, lad[0].avg_power)
            for job, lad, kept in zip(jobs, ladders, filtered)
            if not kept
        )
        if below:
            names = ", ".join(name for name, _ in below)
            raise InfeasibleJobsError(
                f"{len(below)} job(s) infeasible under the EE floor "
                f"{ee_floor:g}: no (p, f) reaches it for {names}",
                jobs=below,
            )
        ladders = filtered

    _check_job_floors(jobs, ladders, power_budget)

    levels = [0] * len(jobs)
    floor = sum(lad[0].avg_power for lad in ladders)
    if floor > power_budget:
        raise ParameterError(
            f"queue infeasible under {power_budget:.0f} W: even the "
            f"cheapest rungs draw {floor:.0f} W together"
        )

    if policy == "energy":
        _climb_energy(ladders, levels, power_budget, max_nodes)
    else:
        climb_makespan(ladders, levels, power_budget, max_nodes)

    assignments = tuple(
        Assignment(
            job=job.name,
            benchmark=job.benchmark.upper(),
            p=lad[lvl].p,
            f=lad[lvl].f,
            tp=lad[lvl].tp,
            ep=lad[lvl].ep,
            ee=lad[lvl].ee,
            avg_power=lad[lvl].avg_power,
            rung=lvl,
            rungs_available=len(lad),
        )
        for job, lad, lvl in zip(jobs, ladders, levels)
    )
    return ClusterSchedule(
        cluster=machine_room.name,
        power_budget=power_budget,
        assignments=assignments,
        policy=policy,
    )

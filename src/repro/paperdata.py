"""The paper's concrete numbers: expected results and parameterizations.

Everything a bench needs to print "paper vs. measured" comes from here:
the published error rates (Fig. 4), the testbed descriptions, and the
reconstructed Section-V parameterizations (several printed coefficients
are OCR-garbled in the available text; reconstructions follow the stated
functional forms — see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import astuple, dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.presets import dori, system_g
from repro.core.model import IsoEnergyModel
from repro.core.parameters import MachineParams
from repro.npb.base import ProblemClass
from repro.npb.workloads import benchmark_for
from repro.units import GHZ
from repro.validation.calibration import derive_machine_params

# ---------------------------------------------------------------------------
# Published results (the reproduction targets)
# ---------------------------------------------------------------------------

#: Fig. 4: mean |prediction error| (%) on SystemG, p = 1..128, class B.
PAPER_MEAN_ERROR_PCT = {"EP": 6.64, "FT": 4.99, "CG": 8.31}

#: Abstract / §IV-B: overall average prediction error.
PAPER_OVERALL_ERROR_PCT = 5.0

#: §IV-B: model accuracy on Dori for every suite member (Fig. 3).
PAPER_DORI_MIN_ACCURACY = 0.95  # i.e. error < 5% per benchmark

#: §V-B: measured overlap factors.
PAPER_ALPHA = {"FT": 0.86, "EP": 0.93, "CG": 0.85}

#: §V-B-4: γ used for SystemG ("for simplicity, we set γ=2").
PAPER_GAMMA = 2.0

#: Fig. 9's fixed problem size for the CG frequency study.
PAPER_CG_N = 75_000

#: Fig. 5/6's frequency anchor.
PAPER_SYSTEM_G_FREQ = 2.8 * GHZ

#: Validation sweep of Fig. 4.
PAPER_P_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)

#: EP coefficient printed intact in §V-B-2: instructions per random pair.
PAPER_EP_WC_PER_PAIR = 109.4

#: Fig. 2 sweep (CPU counts on the x axis).
PAPER_FIG2_P = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ExpectedShape:
    """A qualitative claim from the paper that benches assert."""

    figure: str
    claim: str


EXPECTED_SHAPES = (
    ExpectedShape("fig2a", "FT efficiency decays smoothly; energy eff below perf eff"),
    ExpectedShape("fig2b", "CG efficiency dips mid-scale and recovers relative to trend"),
    ExpectedShape("fig3", "every suite member predicted within ~5% on Dori"),
    ExpectedShape("fig4", "CG worst (memory model), FT best, EP between"),
    ExpectedShape("fig5", "FT: EE falls with p; f has little impact"),
    ExpectedShape("fig6", "FT: EE improves as n grows, most at high p"),
    ExpectedShape("fig7", "EP: EE ≈ 1 everywhere"),
    ExpectedShape("fig8", "CG: EE falls with p, improves with n (EP companion flat in n)"),
    ExpectedShape("fig9", "CG: EE increases with CPU frequency"),
    ExpectedShape("fig10", "component power fluctuates above the idle line per phase"),
)


# ---------------------------------------------------------------------------
# Ready-made models for the Section-V case studies
# ---------------------------------------------------------------------------


def paper_machine(
    benchmark: str, cluster: Cluster | None = None
) -> MachineParams:
    """Θ1 for a benchmark on SystemG (per-application CPI, §IV-B)."""
    from repro.npb.workloads import benchmark_class

    cluster = cluster or system_g(1)
    bench_cls = benchmark_class(benchmark)
    return derive_machine_params(cluster, cpi_factor=bench_cls.cpi_factor)


def paper_model(
    benchmark: str,
    klass: ProblemClass | str = ProblemClass.B,
    cluster: Cluster | None = None,
    niter: int | None = None,
    name: str | None = None,
) -> tuple[IsoEnergyModel, float]:
    """(model, n): the §V parameterization of a benchmark on SystemG.

    ``name`` overrides the default ``"FT.B"``-style label (the CLI and
    scheduler append the cluster: ``"FT.B on SystemG"``).
    """
    cluster = cluster or system_g(1)
    bench, n = benchmark_for(benchmark, klass, niter)
    machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
    model = IsoEnergyModel(
        machine,
        bench.workload,
        name=name or f"{bench.name}.{ProblemClass(klass).value}",
    )
    # Cross-process grid identity: forked serving workers cannot compare
    # models by object id, so paper models carry a *content* fingerprint
    # — the workload selector plus the full Θ1 value vector — that the
    # shared GridStore plane (repro.optimize.shm) keys published grids
    # on.  Same fingerprint ⇒ bit-identical grids by construction.
    model.shared_key = (
        "paper",
        bench.name,
        ProblemClass(klass).value,
        niter,
        astuple(machine),
    )
    return model, n


def paper_clusters() -> dict[str, Cluster]:
    """Both testbeds at validation scale."""
    return {"SystemG": system_g(128), "Dori": dori(8)}

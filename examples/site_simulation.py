#!/usr/bin/env python
"""Site simulation: seeded demand, online placement, queueing KPIs.

The static layers answer "what is the best placement for this fixed
queue?".  This example asks the dynamic question a site operator
actually faces: jobs *arrive over time* — what happens to waits, queue
depths, and energy when a Poisson stream hits a federated site running
under one power budget?

1. describe the site and the demand as one wire-expressible
   :class:`ScenarioSpec` (three shards, a seeded Poisson arrival
   process over two workload templates, a sojourn-time SLO),
2. run it in-process with :func:`repro.sim.run_scenario` and read the
   KPI report (percentile waits/sojourns, energy per job, per-shard
   utilization) computed purely from the event log,
3. replay the *same* scenario through :class:`SimulateRequest` — the
   payload ``POST /v1/simulate`` and ``repro simulate`` serve — and
   check the report is identical,
4. tighten the budget and watch queues form, then overflow into
   structured rejections (the run never aborts), and
5. export the arrival stream as a JSON-lines trace and replay it.

Run:  python examples/site_simulation.py
"""

from repro.analysis.report import ascii_table
from repro.api import dispatch
from repro.api.types import SimulateRequest
from repro.federation import ShardSpec
from repro.optimize.schedule import Job
from repro.sim import (
    DemandSpec,
    ScenarioSpec,
    SloSpec,
    format_trace,
    generate_arrivals,
    run_scenario,
)

SCENARIO = ScenarioSpec(
    shards=(
        ShardSpec("alpha", "systemg", 16, 4000.0),
        ShardSpec("beta", "systemg", 8, 2500.0, policy="energy"),
        ShardSpec("gamma", "dori", 8, 2000.0),
    ),
    budget_w=7000.0,
    demand=DemandSpec(
        kind="poisson",
        rate_per_s=0.05,
        jobs=(Job("fourier", "FT", "B"), Job("montecarlo", "EP", "B")),
    ),
    slo=SloSpec(deadline_s=300.0),
    horizon_s=600.0,
    seed=42,
)


def report_table(rep) -> str:
    return ascii_table(
        ["quantity", "value"],
        [
            ("arrivals", rep.arrivals),
            ("started / finished", f"{rep.started} / {rep.finished}"),
            ("rejected", rep.rejected),
            ("SLO violations", rep.slo_violations),
            ("wait p50 / p95 (s)",
             f"{rep.wait_p50_s:.2f} / {rep.wait_p95_s:.2f}"),
            ("sojourn p50 / p95 (s)",
             f"{rep.sojourn_p50_s:.2f} / {rep.sojourn_p95_s:.2f}"),
            ("energy per job (J)", f"{rep.energy_per_job_j:.0f}"),
        ],
    )


def main() -> None:
    # -- 1-2. one in-process run ------------------------------------------------
    result = run_scenario(SCENARIO)
    print(f"scenario: {len(SCENARIO.shards)} shards under "
          f"{SCENARIO.budget_w:,.0f} W, poisson demand, seed {SCENARIO.seed}")
    print(report_table(result.report))
    print()
    print(ascii_table(
        ["shard", "alloc (W)", "jobs", "utilization"],
        [(s.shard, round(s.allocation_w, 0), s.jobs,
          round(s.utilization, 3)) for s in result.report.shards],
    ))

    # -- 3. the same scenario over the serving surface ----------------------------
    resp = dispatch(SimulateRequest(scenario=SCENARIO))
    assert resp.report == result.report, "wire run must match in-process run"
    print("\nPOST /v1/simulate reproduces the in-process report exactly.")

    # -- 4. a starved site: queues form, then overflow into rejections -----------
    starved = ScenarioSpec(
        shards=(ShardSpec("solo", "systemg", 4, 1000.0),),
        budget_w=200.0,
        demand=DemandSpec(kind="burst", burst_size=4, burst_every_s=300.0,
                          jobs=(Job("fourier", "FT", "B"),)),
        horizon_s=600.0,
        max_queue_depth=2,
    )
    lean = run_scenario(starved)
    rejects = [e for e in lean.events if e.kind == "reject"]
    print(f"\nstarved site: {lean.report.finished} finished, "
          f"{len(rejects)} rejected — first reason: {rejects[0].detail!r}")
    assert lean.report.arrivals == lean.report.started + lean.report.rejected

    # -- 5. trace export / replay -------------------------------------------------
    arrivals = generate_arrivals(SCENARIO.demand, horizon_s=120.0, seed=42)
    trace = format_trace(arrivals)
    replay = ScenarioSpec(
        shards=SCENARIO.shards,
        budget_w=SCENARIO.budget_w,
        demand=DemandSpec(kind="trace", trace=trace),
        horizon_s=120.0,
    )
    replayed = run_scenario(replay)
    assert replayed.report.arrivals == len(arrivals)
    print(f"trace replay: {len(arrivals)} recorded arrivals re-simulated "
          f"({len(trace.splitlines())} JSON lines).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cluster-design study: what does the interconnect buy you?

The machine-dependent vector is a function of frequency *and bandwidth*
(Θ1 = f(f, B/W), §III).  This example compares FT's energy efficiency on
a SystemG-class machine with InfiniBand against the same nodes on
Gigabit Ethernet, then sweeps hypothetical bandwidth multipliers to find
the point of diminishing returns — the procurement question the model
answers without building either cluster.

Run:  python examples/cluster_design.py
"""

from repro.analysis.report import ascii_table
from repro.cluster import dori, system_g
from repro.core.model import IsoEnergyModel
from repro.npb.workloads import benchmark_for
from repro.validation.calibration import derive_machine_params

P_SWEEP = (8, 32, 128)

def main() -> None:
    bench, n = benchmark_for("FT", "B")

    # -- fabric face-off: same code, both testbeds -----------------------------
    print("FT class B: iso-energy-efficiency by fabric\n")
    rows = []
    for cluster in (system_g(1), dori(1)):
        machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
        model = IsoEnergyModel(machine, bench.workload, name=cluster.name)
        ee = [round(model.ee(n=n, p=p), 3) for p in P_SWEEP]
        rows.append((cluster.name, cluster.interconnect.name, *ee))
    print(ascii_table(
        ["cluster", "fabric"] + [f"EE @ p={p}" for p in P_SWEEP], rows))

    # -- bandwidth sweep: where do extra GB/s stop paying? -----------------------
    print("\nBandwidth sweep on SystemG (scaling tw; ts fixed), FT @ p=128:\n")
    base = derive_machine_params(system_g(1), cpi_factor=bench.cpi_factor)
    rows = []
    prev_ee = None
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        machine = base.scaled_network(factor)
        model = IsoEnergyModel(machine, bench.workload)
        ee = model.ee(n=n, p=128)
        gain = "" if prev_ee is None else f"+{ee - prev_ee:.4f}"
        rows.append((f"{factor:g}x", round(1 / machine.tw / 1e9, 2), round(ee, 4), gain))
        prev_ee = ee
    print(ascii_table(["bandwidth", "GB/s", "EE @ p=128", "gain vs prev"], rows))

    print("\nReading: once transfers are startup-dominated (ts fixed), more")
    print("bandwidth stops improving EE — scaling p further needs lower-latency")
    print("fabrics or larger n, not fatter pipes.")

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Federated scheduling: one site budget, three shards, one router.

The ROADMAP's multi-cluster milestone made executable: a site operator
holds a single power budget over a federation of clusters — a big
SystemG partition, the little Dori testbed, and a *hypothetical* future
machine registered on the fly — and asks :mod:`repro.federation` for the
whole decision:

1. register a hypothetical machine (SystemG with a 4× faster fabric)
   next to the built-in presets,
2. build the site from wire-expressible :class:`ShardSpec` records,
   each with its own power envelope and scheduling policy,
3. compare the three budget-partitioning strategies (proportional /
   water-filling / exhaustive) on capability curves,
4. route the job queue by EE-per-watt through :class:`FederateRequest`
   — the same payload ``POST /v1/federate`` and ``repro federate``
   serve — and print the per-shard schedules, and
5. round-trip the request through its JSON wire form.

Run:  python examples/federated_site.py
"""

import json

from repro.analysis.report import ascii_table
from repro.api import FederateRequest, dispatch, request_from_dict
from repro.federation import (
    ShardSpec,
    default_registry,
    partition_budget,
    shard_profiles,
)
from repro.optimize.schedule import Job
from repro.units import GHZ

BUDGET_W = 9_000.0

JOBS = (
    Job("fourier-1", "FT", "W"),
    Job("fourier-2", "FT", "W"),
    Job("conjgrad", "CG", "W"),
    Job("montecarlo", "EP", "W"),
)


def main() -> None:
    # -- 1. a hypothetical machine next to the paper's testbeds ---------------------
    registry = default_registry()
    registry.register_hypothetical(
        "systemg-fastnet",
        base="systemg",
        net_startup_scale=0.25,   # 4x cheaper message startup
        net_per_byte_scale=0.25,  # 4x the payload bandwidth
        exist_ok=True,
    )
    print("registered machines:", ", ".join(registry.names()))

    # -- 2. the site: three shards, three envelopes, two policies -------------------
    specs = (
        ShardSpec("bulk", "systemg", nodes=64, power_envelope_w=6_000.0),
        ShardSpec("green", "dori", nodes=8, power_envelope_w=1_500.0,
                  policy="energy"),
        ShardSpec("nextgen", "systemg-fastnet", nodes=32,
                  power_envelope_w=3_000.0),
    )
    shards = registry.build_site(specs)

    # -- 3. strategy shoot-out on the capability curves -----------------------------
    profiles = shard_profiles(shards, JOBS)
    print(f"\nsplitting {BUDGET_W:,.0f} W across the site "
          "(capability-model utility, higher is better):\n")
    rows = []
    for strategy in ("proportional", "waterfill", "exhaustive"):
        part = partition_budget(
            shards, BUDGET_W, jobs=JOBS, strategy=strategy, profiles=profiles
        )
        rows.append((
            strategy,
            *(f"{a.allocation_w:,.0f}" for a in part.allocations),
            f"{part.total_allocated_w:,.0f}",
            round(part.utility, 2),
        ))
    print(ascii_table(
        ["strategy", *(s.name for s in specs), "total (W)", "utility"], rows
    ))

    # -- 4. the real routing decision, via the API facade ---------------------------
    request = FederateRequest(
        budget_w=BUDGET_W, strategy="waterfill", metric="ee_per_watt",
        shards=specs, jobs=JOBS,
    )
    resp = dispatch(request)
    for plan in resp.plans:
        print(f"\n{plan.shard} ({plan.cluster}, policy={plan.policy}) — "
              f"{plan.total_power_w:,.0f} W of {plan.allocation_w:,.0f} W:")
        if not plan.assignments:
            print("  (idle)")
            continue
        print(ascii_table(
            ["job", "bench", "p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
            [(a.job, a.benchmark, a.p, round(a.f / GHZ, 2), round(a.tp, 2),
              round(a.ep, 1), round(a.ee, 4), round(a.avg_power, 0))
             for a in plan.assignments],
        ))
    print(f"\nsite draw {resp.total_power_w:,.0f} W "
          f"(headroom {resp.site_headroom_w:,.0f} W), "
          f"makespan {resp.makespan_s:.2f} s, "
          f"total energy {resp.total_energy_j / 1000:.2f} kJ")

    # -- 5. the JSON wire format: what curl would POST to /v1/federate --------------
    wire = json.dumps(request.to_dict())
    parsed = request_from_dict(json.loads(wire))
    assert parsed == request
    assert dispatch(parsed) is resp  # served straight from the response cache
    print(f"\nwire round-trip OK ({len(wire)} bytes on the wire, "
          "identical payload over POST /v1/federate)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Batch queries through the shared grid engine.

An operator console rarely asks one question: it sweeps budgets, probes
deadlines, and pulls the Pareto menu for several workloads in one
refresh.  This example drives that shape through :class:`BatchRequest` —
one payload, many heterogeneous sub-queries — and then opens the hood:

1. build a mixed batch (budget ladder × three benchmarks, a deadline
   probe, a Pareto menu, and one deliberately broken item),
2. dispatch it once and read the item-wise answers — note the broken
   item comes back as a structured error slot instead of sinking the
   other replies,
3. check the amortization in :func:`repro.api.cache_info`: the batch
   executor groups same-grid budget/deadline items into single
   vectorized solves, and everything else shares the process-wide
   :class:`~repro.optimize.engine.GridStore` (exact hits + sub-grids
   sliced from cached supersets),
4. round-trip the batch through its JSON wire form — exactly the bytes
   ``POST /v1/batch`` carries (``repro batch --json`` prints the same).

Run:  python examples/batch_queries.py
"""

import json

from repro.analysis.report import ascii_table
from repro.api import (
    BatchRequest,
    BudgetQuery,
    DeadlineQuery,
    ParetoQuery,
    cache_info,
    clear_caches,
    dispatch,
    request_from_dict,
)
from repro.units import GHZ


def main() -> None:
    # -- 1. one payload, many questions -------------------------------------------
    items = []
    for benchmark in ("FT", "CG", "EP"):
        for budget_w in (1_500.0, 2_000.0, 3_000.0, 4_500.0):
            items.append(BudgetQuery(benchmark=benchmark, budget_w=budget_w))
    items.append(DeadlineQuery(benchmark="FT", deadline_s=10.0))
    items.append(ParetoQuery(benchmark="FT"))
    items.append(BudgetQuery(benchmark="FT", budget_w=-1.0))  # broken on purpose
    batch = BatchRequest(items=tuple(items))

    # -- 2. dispatch once, read item-wise ------------------------------------------
    clear_caches()
    response = dispatch(batch)
    rows = []
    for request, slot in zip(batch.items, response.items):
        if not slot.ok:
            rows.append(("error", "-", "-", "-", slot.error.message))
            continue
        rec = getattr(slot.response, "recommendation", None)
        if rec is None:  # the Pareto menu
            rows.append((slot.response.op, "-", "-", "-",
                         f"{len(slot.response.points)} frontier points"))
            continue
        constraint = (
            f"{request.budget_w:.0f} W"
            if isinstance(request, BudgetQuery)
            else f"{request.deadline_s:g} s"
        )
        rows.append((
            slot.response.op + f" {request.benchmark}", constraint,
            f"p={rec.p}", f"{rec.f / GHZ:.2f} GHz",
            f"Tp={rec.tp:.2f} s @ {rec.avg_power:.0f} W",
        ))
    print(ascii_table(["query", "constraint", "p", "f", "answer"], rows))

    # -- 3. the amortization, in numbers --------------------------------------------
    store = cache_info()["grid_store"]
    print(
        f"\ngrid store: {store['misses']} evaluations served "
        f"{store['hits']} exact hits + {store['superset_hits']} superset "
        f"slices ({store['entries']} grids, {store['bytes']} bytes resident)"
    )
    ok = sum(1 for slot in response.items if slot.ok)
    print(f"batch: {ok}/{len(response.items)} items ok "
          f"(the broken one failed alone, as it should)")

    # -- 4. the wire form -------------------------------------------------------------
    payload = batch.to_dict()
    assert request_from_dict(json.loads(json.dumps(payload))) == batch
    print(f"\nwire payload: op={payload['op']} v={payload['v']}, "
          f"{len(payload['items'])} op-tagged items — POST /v1/batch ready")


if __name__ == "__main__":
    main()

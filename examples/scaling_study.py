#!/usr/bin/env python
"""Section-V scalability study: FT vs EP vs CG on SystemG.

Recreates the paper's analysis workflow: build all three models, sweep
(p, f, n), and print the per-benchmark guidance the paper derives —
which knob (parallelism, problem size, DVFS) moves each code's energy
efficiency, and in which direction.

Run:  python examples/scaling_study.py
"""

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.surface import ee_surface
from repro.core.scaling import ee_frequency_sensitivity, frequency_for_best_ee
from repro.paperdata import PAPER_CG_N, paper_model
from repro.units import GHZ

P_VALUES = [1, 4, 16, 64, 256, 1024]
FREQS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]

def study(name: str) -> None:
    model, n = paper_model(name, klass="B")
    if name == "CG":
        n = PAPER_CG_N
    print(f"\n{'=' * 60}\n{name} (class B, n = {format_si(n)})\n{'=' * 60}")

    # EE over (p, f): the Fig. 5/7/9 view
    surf = ee_surface(model, p_values=P_VALUES, f_values=FREQS, n=n)
    print(ascii_heatmap(
        surf.values,
        [int(p) for p in surf.x],
        [f"{f / GHZ:.1f}" for f in surf.y],
        title=f"EE(p, f) for {name}  (rows: p, cols: GHz)",
        lo=0.0, hi=1.0,
    ))

    # knob sensitivities at p=64
    f_best, ee_best = frequency_for_best_ee(model, n=n, p=64, frequencies=FREQS)
    f_sens = ee_frequency_sensitivity(model, n=n, p=64, frequencies=FREQS)
    n_low, n_high = model.ee(n=n / 4, p=64), model.ee(n=4 * n, p=64)
    print(f"\nknob analysis at p=64:")
    print(f"  best DVFS state: {f_best / GHZ:.1f} GHz (EE {ee_best:.4f}); "
          f"EE spread across DVFS range: {f_sens:.4f}")
    print(f"  problem-size lever: EE {n_low:.3f} (n/4) -> {n_high:.3f} (4n)")

def main() -> None:
    for name in ("FT", "EP", "CG"):
        study(name)

    print("\nPaper's conclusions, reproduced:")
    rows = [
        ("FT", "p (comm startup+memory)", "grows EE (esp. large p)", "negligible"),
        ("EP", "none (near-ideal)", "no effect (dE tracks E1)", "negligible"),
        ("CG", "p (comm + memory)", "grows EE", "higher f helps"),
    ]
    print(ascii_table(["code", "EE limited by", "scaling n", "DVFS"], rows))

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Calibration tour: derive every model parameter from measurement.

Walks the paper's full §IV-B toolchain against the simulated Dori
cluster, printing each instrument's raw output and the Θ1/Θ2 vectors it
yields, then validates the calibrated model end to end on an FT run —
the complete practitioner workflow, no spec sheets consulted.

Run:  python examples/calibration_tour.py
"""

from repro.analysis.report import ascii_table, format_si
from repro.cluster import dori
from repro.core.model import IsoEnergyModel
from repro.microbench import lat_mem_rd, mpptest
from repro.microbench.perfmon import measure_cpi
from repro.npb.workloads import benchmark_for
from repro.powerpack import PowerProfiler
from repro.simmpi import SimConfig, SimEngine
from repro.validation import calibrate_machine_params, measure_app_params
from repro.validation.calibration import split_overheads

def main() -> None:
    cluster = dori(8)
    bench, n = benchmark_for("FT", "W", niter=3)

    # -- 1. Perfmon: CPI ---------------------------------------------------------
    cpi, tc = measure_cpi(cluster, cpi_factor=bench.cpi_factor)
    print(f"[perfmon]   CPI = {cpi:.3f}  ->  tc = {format_si(tc, 's')}")

    # -- 2. lat_mem_rd: the latency staircase -------------------------------------
    sizes, lats = lat_mem_rd(cluster.head, seed=1)
    picks = list(range(0, len(sizes), max(1, len(sizes) // 8)))
    print("[lat_mem_rd] working set -> latency:")
    for i in picks:
        print(f"             {format_si(sizes[i], 'B'):>8}  {format_si(lats[i], 's')}")

    # -- 3. MPPTest: the Hockney line ----------------------------------------------
    sweep = mpptest(cluster)
    print(f"[mpptest]   ts = {format_si(sweep.ts, 's')}, "
          f"tw = {format_si(sweep.tw, 's/B')} (r^2 = {sweep.fit.r_squared:.5f})")

    # -- 4. PowerPack: power levels --------------------------------------------------
    cal = calibrate_machine_params(cluster, cpi_factor=bench.cpi_factor, seed=1)
    rows = [(k, f"{v:.1f} W") for k, v in cal.idle_power.items()]
    rows += [("delta_Pc", f"{cal.delta_pc:.1f} W"), ("delta_Pm", f"{cal.delta_pm:.1f} W")]
    print("[powerpack] measured power levels:")
    print(ascii_table(["quantity", "value"], rows))

    # -- 5. counters + PMPI trace: Θ2 -------------------------------------------------
    config = SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
    seq = measure_app_params(
        SimEngine(cluster, config).run(bench.make_program(n, 1), 1), bench.alpha)
    par = measure_app_params(
        SimEngine(cluster, config).run(bench.make_program(n, 4), 4), bench.alpha)
    theta2 = split_overheads(seq, par)
    print(f"[pmpi/tau]  Theta2 at (n={format_si(n)}, p=4): "
          f"Wc={format_si(theta2.wc)}, Wm={format_si(theta2.wm)}, "
          f"Wco={format_si(theta2.wco)}, Wmo={format_si(theta2.wmo)}, "
          f"M={int(theta2.m_messages)}, B={format_si(theta2.b_bytes, 'B')}")

    # -- 6. the calibrated model against a fresh measured run ----------------------------
    model = IsoEnergyModel(cal.params, bench.workload, name="FT.W calibrated")
    predicted = model.predict_energy(n=n, p=4)
    from repro.validation.harness import run_benchmark
    run = run_benchmark(cluster, bench, n, 4, seed=42)
    measured = PowerProfiler(cluster).measure_energy(run)
    err = abs(predicted - measured) / measured * 100
    print(f"\n[validate]  predicted {predicted:.0f} J vs measured {measured:.0f} J "
          f"-> error {err:.2f}%")

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build an iso-energy-efficiency model and ask it questions.

Five minutes with the public API:

1. grab a paper-parameterized model (FT, class B, on SystemG),
2. evaluate energy efficiency at a point,
3. find the efficiency bottleneck,
4. sweep parallelism to see the EE decay,
5. ask the scaling tools how to hold EE at a target.

Run:  python examples/quickstart.py
"""

from repro import paper_model
from repro.analysis.report import ascii_table, format_si
from repro.analysis.sweep import parallelism_sweep
from repro.core.scaling import iso_workload, max_parallelism

def main() -> None:
    model, n = paper_model("FT", klass="B")
    print(f"Model: {model.name}   problem size n = {format_si(n)} grid points\n")

    # -- 2. one point ---------------------------------------------------------
    point = model.evaluate(n=n, p=64)
    print(f"At p=64:  EE = {point.ee:.3f}   EEF = {point.eef:.3f}   "
          f"speedup = {point.speedup:.1f}   Ep = {point.ep / 1000:.1f} kJ")

    # -- 3. why is it inefficient? ----------------------------------------------
    print(f"Dominant energy overhead at p=64: {point.bottleneck}\n")

    # -- 4. the EE decay curve ----------------------------------------------------
    points = parallelism_sweep(model, n=n, p_values=[1, 4, 16, 64, 256, 1024])
    rows = [
        (pt.p, round(pt.ee, 3), round(pt.perf_efficiency, 3),
         round(pt.tp, 2), round(pt.ep / 1000, 1), pt.bottleneck)
        for pt in points
    ]
    print(ascii_table(
        ["p", "EE", "perf-eff", "Tp (s)", "Ep (kJ)", "bottleneck"], rows))

    # -- 5. decision support --------------------------------------------------------
    p_max = max_parallelism(model, n=n, min_ee=0.8)
    print(f"\nLargest power-of-two p keeping EE >= 0.8 at this n: {p_max}")

    n_needed = iso_workload(model, p=1024, target_ee=0.7, n_lo=1e5, n_hi=1e13)
    print(f"Problem size needed to hold EE = 0.7 at p=1024: "
          f"{format_si(n_needed)} points ({n_needed / n:.1f}x class B)")

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Power-constrained operation: scheduling under a site power budget.

The exascale framing of the paper's introduction: performance must grow
1000x on 10x the power.  This example plays a site operator with a hard
power cap and a mixed machine:

1. find the fastest legal (p, f) configuration under the cap,
2. find the greenest configuration meeting a deadline,
3. track "speedup per watt" as the machine scales (the 100x metric), and
4. extend to a heterogeneous pool (the paper's stated future work) to
   see when adding slower-but-efficient nodes helps.

Run:  python examples/power_budgeting.py
"""

from repro.analysis.report import ascii_table
from repro.core.hetero import HeteroIsoEnergyModel, ProcessorGroup
from repro.core.powercap import (
    fastest_under_cap,
    greenest_under_deadline,
    scaling_report,
)
from repro.paperdata import paper_machine, paper_model
from repro.units import GHZ

FREQS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]
PS = [1, 2, 4, 8, 16, 32, 64, 128, 256]

def main() -> None:
    model, n = paper_model("FT", klass="B")

    # -- 1. fastest under the cap ------------------------------------------------
    print("FT class B under a site power budget\n")
    rows = []
    for cap in (500.0, 2_000.0, 8_000.0, 32_000.0):
        cfg = fastest_under_cap(
            model, n=n, power_cap=cap, p_values=PS, frequencies=FREQS)
        rows.append((f"{cap:,.0f} W", cfg.p, f"{cfg.f / GHZ:.1f}",
                     round(cfg.tp, 2), round(cfg.avg_power, 0), round(cfg.ee, 3)))
    print(ascii_table(
        ["power cap", "p", "GHz", "Tp (s)", "draw (W)", "EE"], rows))

    # -- 2. greenest under a deadline ----------------------------------------------
    t_serial = model.evaluate(n=n, p=1).t1
    print(f"\nGreenest configuration meeting a deadline (T1 = {t_serial:.0f} s):\n")
    rows = []
    for deadline_frac in (0.5, 0.1, 0.02):
        deadline = t_serial * deadline_frac
        cfg = greenest_under_deadline(
            model, n=n, deadline=deadline, p_values=PS, frequencies=FREQS)
        rows.append((f"{deadline:.1f} s", cfg.p, f"{cfg.f / GHZ:.1f}",
                     round(cfg.ep / 1000, 2), round(cfg.ee, 3)))
    print(ascii_table(["deadline", "p", "GHz", "Ep (kJ)", "EE"], rows))

    # -- 3. the exascale metric -------------------------------------------------------
    print("\nSpeedup per power-multiplier (1.0 = iso-energy-efficient scaling):\n")
    report = scaling_report(model, n=n, p_values=[1, 8, 64, 256, 1024])
    print(ascii_table(
        ["p", "speedup", "power x", "speedup/power"],
        [(p, round(s, 1), round(m, 1), round(spp, 3)) for p, s, m, spp in report]))

    # -- 4. heterogeneous pool ------------------------------------------------------------
    print("\nHeterogeneous pool: 8 full-clock nodes + 8 down-clocked nodes:\n")
    fast = paper_machine("FT")
    slow = fast.at_frequency(1.6 * GHZ)
    pool = HeteroIsoEnergyModel([
        ProcessorGroup(name="2.8GHz", machine=fast, count=8),
        ProcessorGroup(name="1.6GHz", machine=slow, count=8),
    ])
    app = model.app_params(n, 16)
    rows = []
    for policy in ("balanced", "uniform"):
        pt = pool.evaluate(app, policy=policy)
        rows.append((policy,
                     round(pt.group_shares["2.8GHz"], 3),
                     round(pt.tp, 2), round(pt.ep / 1000, 2), round(pt.ee, 3)))
    print(ascii_table(
        ["split policy", "share to fast", "Tp (s)", "Ep (kJ)", "EE"], rows))
    gap = pool.policy_gap(app)
    print(f"\nnaive uniform splitting wastes {gap * 100:.1f}% extra energy on this pool")

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""PowerPack-style power profiling of a simulated FT run (Figure 10).

Runs the FT kernel on two SystemG nodes, attaches the PowerPack profiler,
and prints the component power timeline with phase annotations — the
terminal version of the paper's Figure 10 — then decomposes each
component's energy into its idle and active areas (Eq. 9) and exports
the profile to CSV/JSON for external plotting.

Run:  python examples/powerpack_profiling.py
"""

from pathlib import Path

from repro.analysis.report import ascii_table
from repro.cluster import system_g
from repro.npb import FtBenchmark
from repro.powerpack import (
    PowerProfiler,
    figure10_decomposition,
    profile_to_csv,
    profile_to_json,
)
from repro.simmpi import SimConfig, SimEngine
from repro.validation.harness import default_noise

def main() -> None:
    cluster = system_g(2)
    bench, _ = FtBenchmark.for_class("W", niter=6)
    n = bench.n_for_class("W")

    config = SimConfig(
        alpha=bench.alpha, cpi_factor=bench.cpi_factor, noise=default_noise(7)
    )
    result = SimEngine(cluster, config).run(bench.make_program(n, 2), size=2)

    profiler = PowerProfiler(cluster, sample_period=result.total_time / 150)
    profile = profiler.profile(result, label="FT.W on 2 nodes")

    print(f"run time {result.total_time:.3f} s, "
          f"measured energy {profile.exact_energy:.1f} J "
          f"({profile.exact_energy / result.total_time:.1f} W average)\n")

    # -- the Figure-10 trace, one row per sample bucket ------------------------
    cpu = profile.node_series(0, "cpu")
    mem = profile.node_series(0, "memory")
    step = max(1, len(cpu.times) // 30)
    rows = [
        (f"{cpu.times[i]:.3f}", round(float(cpu.watts[i]), 1),
         round(float(mem.watts[i]), 1))
        for i in range(0, len(cpu.times), step)
    ]
    print(ascii_table(["t (s)", "cpu W", "memory W"], rows))
    print(f"\nphase entries (rank 0): "
          f"{[(round(t, 4), name) for t, name in profile.phase_marks]}")

    # -- Eq. (9)'s idle/active decomposition ------------------------------------
    decomp = figure10_decomposition(profile, cluster, result)
    rows = [(c, round(i, 1), round(a, 1)) for c, i, a in decomp.rows()]
    print("\nidle vs active energy areas (J):")
    print(ascii_table(["component", "idle (below line)", "active (shaded)"], rows))

    # -- export -----------------------------------------------------------------
    out = Path("profile_ft")
    profile_to_csv(profile, out.with_suffix(".csv"))
    profile_to_json(profile, out.with_suffix(".json"))
    print(f"\nwrote {out}.csv and {out}.json")

if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Power-constrained scaling with the optimize subsystem.

The paper's title promises *power-constrained parallel computation*;
this example runs the full decision loop the `repro.optimize` package
provides on top of the iso-energy-efficiency model:

1. batch-evaluate a dense (p × f × n) grid in one vectorized call and
   render it as a heatmap,
2. ask the budget solvers for the fastest configuration under a site
   power cap and the greenest under a deadline,
3. trace the iso-EE contour n(p) — how the problem must grow to *hold*
   energy efficiency while scaling out,
4. walk the (Tp, Ep) Pareto frontier, and
5. schedule a whole queue of NPB jobs under one shared cluster budget.

Run:  python examples/power_constrained_scaling.py
"""

import time

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.analysis.surface import surface_from_grid
from repro.optimize import (
    evaluate_grid,
    iso_ee_curve,
    max_speedup_under_power,
    min_energy_under_deadline,
    pareto_frontier,
    schedule_jobs,
)
from repro.optimize.grid import scalar_grid
from repro.optimize.schedule import Job
from repro.paperdata import paper_model
from repro.units import GHZ

PS = [1, 2, 4, 8, 16, 32, 64, 128]
FS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]


def main() -> None:
    model, n = paper_model("FT", klass="B")

    # -- 1. one vectorized grid call -----------------------------------------------
    n_axis = [n / 4, n, 4 * n]
    t0 = time.perf_counter()
    grid = evaluate_grid(model, p_values=PS, f_values=FS, n_values=n_axis)
    t_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar_grid(model, p_values=PS, f_values=FS, n_values=n_axis)
    t_scalar = time.perf_counter() - t0
    print(
        f"evaluated {grid.size} (p, f, n) points in {t_vec * 1e3:.1f} ms "
        f"vectorized vs {t_scalar * 1e3:.1f} ms scalar "
        f"({t_scalar / max(t_vec, 1e-9):.0f}x)\n"
    )
    surf = surface_from_grid(grid, metric="ee", axis="f", index=1)
    print(ascii_heatmap(
        surf.values, [int(p) for p in surf.x],
        [f"{f / GHZ:.1f}" for f in surf.y],
        title=f"EE over (p x f) at n = {format_si(n)} — {model.name}",
        lo=0.0, hi=1.0,
    ))

    # -- 2. budget solvers ------------------------------------------------------------
    print("\nFastest configuration under a site power cap:\n")
    rows = []
    for cap in (1_000.0, 3_000.0, 10_000.0):
        rec = max_speedup_under_power(
            model, n=n, budget_w=cap, p_values=PS, f_values=FS)
        rows.append((f"{cap:,.0f} W", rec.p, f"{rec.f / GHZ:.1f}",
                     round(rec.tp, 2), round(rec.avg_power, 0),
                     round(rec.ee, 3), rec.feasible_count))
    print(ascii_table(
        ["budget", "p", "GHz", "Tp (s)", "draw (W)", "EE", "feasible"], rows))

    t1 = model.evaluate(n=n, p=1).t1
    rows = []
    for frac in (0.25, 0.05):
        rec = min_energy_under_deadline(
            model, n=n, t_max=t1 * frac, p_values=PS, f_values=FS)
        rows.append((f"{t1 * frac:.1f} s", rec.p, f"{rec.f / GHZ:.1f}",
                     round(rec.ep / 1000, 2), round(rec.ee, 3)))
    print("\nGreenest configuration meeting a deadline:\n")
    print(ascii_table(["deadline", "p", "GHz", "Ep (kJ)", "EE"], rows))

    # -- 3. the iso-EE contour ----------------------------------------------------------
    target = 0.8
    curve = iso_ee_curve(model, target_ee=target, p_values=PS, n_seed=n)
    print(f"\nProblem size n(p) holding EE = {target} (iso-EE scaling):\n")
    print(ascii_table(
        ["p", "n", "vs class B", "EE"],
        [(c.p, format_si(c.value), f"{c.value / n:.2f}x", round(c.ee, 4))
         for c in curve if c.converged]))

    # -- 4. the Pareto menu ---------------------------------------------------------------
    frontier = pareto_frontier(model, n=n, p_values=PS, f_values=FS)
    print(f"\n(Tp, Ep) Pareto frontier ({len(frontier)} of "
          f"{len(PS) * len(FS)} configurations survive):\n")
    step = max(len(frontier) // 8, 1)
    print(ascii_table(
        ["p", "GHz", "Tp (s)", "Ep (kJ)", "EE"],
        [(r.p, round(r.f / GHZ, 1), round(r.tp, 2), round(r.ep / 1000, 2),
          round(r.ee, 3)) for r in frontier[::step]]))

    # -- 5. queue scheduling under one budget -----------------------------------------------
    queue = [
        Job("fourier", "FT", "B"),
        Job("conjgrad", "CG", "B"),
        Job("montecarlo", "EP", "B"),
    ]
    budget = 8_000.0
    sched = schedule_jobs(queue, cluster="systemg", power_budget=budget, nodes=64)
    print(f"\nQueue of 3 NPB jobs under a shared {budget:,.0f} W budget "
          f"on {sched.cluster}:\n")
    print(ascii_table(
        ["job", "bench", "p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
        sched.rows()))
    print(f"\ntotal draw {sched.total_power:,.0f} W "
          f"(headroom {sched.headroom_w:,.0f} W), "
          f"makespan {sched.makespan:.1f} s, "
          f"total energy {sched.total_energy / 1000:.1f} kJ")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Power-constrained scaling through the typed query API.

The paper's title promises *power-constrained parallel computation*;
this example runs the full decision loop against :mod:`repro.api` — the
same facade the CLI and the HTTP server (``repro serve``) answer from:

1. fetch the EE surface over (p × f) as a :class:`SurfaceRequest` and
   render it as a heatmap,
2. ask :class:`BudgetQuery` for the fastest configuration under a site
   power cap and :class:`DeadlineQuery` for the greenest under an SLA,
3. trace the iso-EE contour n(p) with :class:`IsoEEQuery` — how the
   problem must grow to *hold* energy efficiency while scaling out,
4. walk the (Tp, Ep) Pareto frontier via :class:`ParetoQuery`,
5. schedule a whole queue of NPB jobs under one shared cluster budget
   with :class:`ScheduleRequest`, and
6. round-trip a query through its JSON wire form — exactly the bytes a
   ``curl`` against ``POST /v1/budget`` would carry.

Run:  python examples/power_constrained_scaling.py
"""

import json

import numpy as np

from repro.analysis.report import ascii_heatmap, ascii_table, format_si
from repro.api import (
    BudgetQuery,
    DeadlineQuery,
    EvaluateRequest,
    IsoEEQuery,
    ParetoQuery,
    ScheduleRequest,
    SurfaceRequest,
    dispatch,
    request_from_dict,
)
from repro.optimize.schedule import Job
from repro.units import GHZ

PS = (1, 2, 4, 8, 16, 32, 64, 128)
FS = (1.6, 2.0, 2.4, 2.8)  # GHz


def main() -> None:
    # -- 1. the EE surface over (p x f), one typed query ---------------------------
    surface = dispatch(
        SurfaceRequest(benchmark="FT", klass="B", p_values=PS, f_values_ghz=FS)
    )
    n = dispatch(EvaluateRequest(benchmark="FT", klass="B", p=1)).point.n
    print(ascii_heatmap(
        np.array(surface.values), list(surface.x),
        [f"{f / GHZ:.1f}" for f in surface.y],
        title=f"EE over (p x f) at n = {format_si(n)} — {surface.model}",
        lo=0.0, hi=1.0,
    ))

    # -- 2. budget and deadline queries ---------------------------------------------
    print("\nFastest configuration under a site power cap:\n")
    rows = []
    for cap in (1_000.0, 3_000.0, 10_000.0):
        rec = dispatch(BudgetQuery(
            benchmark="FT", budget_w=cap, p_values=PS, f_values_ghz=FS,
        )).recommendation
        rows.append((f"{cap:,.0f} W", rec.p, f"{rec.f / GHZ:.1f}",
                     round(rec.tp, 2), round(rec.avg_power, 0),
                     round(rec.ee, 3), rec.feasible_count))
    print(ascii_table(
        ["budget", "p", "GHz", "Tp (s)", "draw (W)", "EE", "feasible"], rows))

    t1 = dispatch(EvaluateRequest(benchmark="FT", p=1)).point.t1
    rows = []
    for frac in (0.25, 0.05):
        rec = dispatch(DeadlineQuery(
            benchmark="FT", deadline_s=t1 * frac, p_values=PS,
            f_values_ghz=FS,
        )).recommendation
        rows.append((f"{t1 * frac:.1f} s", rec.p, f"{rec.f / GHZ:.1f}",
                     round(rec.ep / 1000, 2), round(rec.ee, 3)))
    print("\nGreenest configuration meeting a deadline:\n")
    print(ascii_table(["deadline", "p", "GHz", "Ep (kJ)", "EE"], rows))

    # -- 3. the iso-EE contour --------------------------------------------------------
    target = 0.8
    contour = dispatch(IsoEEQuery(benchmark="FT", target_ee=target, p_values=PS))
    print(f"\nProblem size n(p) holding EE = {target} (iso-EE scaling):\n")
    print(ascii_table(
        ["p", "n", "vs class B", "EE"],
        [(c.p, format_si(c.value), f"{c.value / n:.2f}x", round(c.ee, 4))
         for c in contour.points if c.converged]))

    # -- 4. the Pareto menu -------------------------------------------------------------
    frontier = dispatch(
        ParetoQuery(benchmark="FT", p_values=PS, f_values_ghz=FS)
    ).points
    print(f"\n(Tp, Ep) Pareto frontier ({len(frontier)} of "
          f"{len(PS) * len(FS)} configurations survive):\n")
    step = max(len(frontier) // 8, 1)
    print(ascii_table(
        ["p", "GHz", "Tp (s)", "Ep (kJ)", "EE"],
        [(r.p, round(r.f / GHZ, 1), round(r.tp, 2), round(r.ep / 1000, 2),
          round(r.ee, 3)) for r in frontier[::step]]))

    # -- 5. queue scheduling under one budget ---------------------------------------------
    budget = 8_000.0
    sched = dispatch(ScheduleRequest(
        cluster="systemg",
        power_budget_w=budget,
        nodes=64,
        jobs=(
            Job("fourier", "FT", "B"),
            Job("conjgrad", "CG", "B"),
            Job("montecarlo", "EP", "B"),
        ),
    ))
    print(f"\nQueue of 3 NPB jobs under a shared {budget:,.0f} W budget "
          f"on {sched.cluster}:\n")
    print(ascii_table(
        ["job", "bench", "p", "GHz", "Tp (s)", "Ep (J)", "EE", "draw (W)"],
        [(a.job, a.benchmark, a.p, round(a.f / GHZ, 2), round(a.tp, 2),
          round(a.ep, 1), round(a.ee, 4), round(a.avg_power, 0))
         for a in sched.assignments]))
    print(f"\ntotal draw {sched.total_power_w:,.0f} W "
          f"(headroom {sched.headroom_w:,.0f} W), "
          f"makespan {sched.makespan_s:.1f} s, "
          f"total energy {sched.total_energy_j / 1000:.1f} kJ")

    # -- 6. the JSON wire format: what curl would POST to /v1/budget ----------------------
    query = BudgetQuery(benchmark="FT", budget_w=3_000.0, p_values=PS,
                        f_values_ghz=FS)
    wire = json.dumps(query.to_dict())
    parsed = request_from_dict(json.loads(wire))
    assert parsed == query
    answer = dispatch(parsed)  # served from the response cache by now
    print("\nJSON wire round-trip of the 3 kW budget query "
          f"({len(wire)} bytes on the wire):")
    print(f"  {wire}")
    print(f"  -> p={answer.recommendation.p}, "
          f"f={answer.recommendation.f / GHZ:.1f} GHz, "
          f"EE={answer.recommendation.ee:.3f}")


if __name__ == "__main__":
    main()

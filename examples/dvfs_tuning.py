#!/usr/bin/env python
"""DVFS policy from the model: bound the impact before touching the knob.

The paper's motivation (§I) is replacing trial-and-error DVFS policies
with quantitative bounds.  This example plays the operator: for each
workload, it uses the model to (a) pick the frequency that maximizes EE,
(b) quantify the energy and runtime consequences of every P-state, and
(c) decide whether DVFS is even worth it — producing the kind of policy
table a scheduler could consume.

Run:  python examples/dvfs_tuning.py
"""

from repro.analysis.report import ascii_table
from repro.core.baselines import power_aware_speedup
from repro.paperdata import PAPER_CG_N, paper_machine, paper_model
from repro.units import GHZ

FREQS = [1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ, 2.8 * GHZ]
P = 64

def policy_for(name: str) -> tuple:
    model, n = paper_model(name, klass="B")
    if name == "CG":
        n = PAPER_CG_N
    machine = paper_machine(name)

    print(f"\n=== {name} at p={P} ===")
    rows = []
    for f in FREQS:
        pt = model.evaluate(n=n, p=P, f=f)
        s = power_aware_speedup(machine, model.app_params(n, P), P, f=f)
        rows.append((
            f"{f / GHZ:.1f}",
            round(pt.ee, 4),
            round(pt.ep / 1000, 2),
            round(pt.tp, 2),
            round(s, 1),
        ))
    print(ascii_table(
        ["GHz", "EE", "Ep (kJ)", "Tp (s)", "power-aware speedup"], rows))

    best = max(rows, key=lambda r: r[1])
    worst = min(rows, key=lambda r: r[1])
    swing = best[1] - worst[1]
    verdict = "worth scheduling" if swing > 0.005 else "leave at default"
    print(f"policy: run at {best[0]} GHz; EE swing across P-states = "
          f"{swing:.4f} -> {verdict}")
    return name, best[0], swing, verdict

def main() -> None:
    print("DVFS policy table (class B workloads, SystemG, p=64)")
    policies = [policy_for(name) for name in ("FT", "EP", "CG")]

    print("\nsummary:")
    print(ascii_table(
        ["code", "best GHz", "EE swing", "verdict"],
        [(n, f, round(s, 4), v) for n, f, s, v in policies],
    ))
    print("\nMatches §V-B-7: only CG rewards frequency scheduling; FT and EP")
    print("see no parallel-efficiency gain from changing f.")

if __name__ == "__main__":
    main()

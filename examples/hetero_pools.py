#!/usr/bin/env python
"""Heterogeneous pools: optimize a workload across mixed silicon.

The paper closes (§VII) by naming heterogeneous systems as the model's
next frontier: mixed-voltage/mixed-clock pools are exactly where
energy-optimal configurations diverge from performance-optimal ones.
This example drives that question end to end through the API:

1. describe two candidate pools — SystemG-class "fast" nodes and
   Dori-class "slow" nodes — plus a *hypothetical* low-power variant
   registered on the fly,
2. ask one :class:`~repro.api.HeteroRequest` for the fastest mix under
   a power budget, the greenest mix under a deadline, the (Tp, Ep)
   Pareto frontier of mixes, and the balanced-vs-uniform split penalty,
3. check the amortization: all four objectives answered from **one**
   vectorized allocation grid, visible in the store's hetero counters,
4. round-trip the payload through its JSON wire form — exactly the
   bytes ``POST /v1/hetero`` carries (``repro hetero --json`` prints
   the same),
5. route a job queue across a federated site whose first shard is
   heterogeneous (mixed-pool rungs scored like any other ladder).

Run:  python examples/hetero_pools.py
"""

import json

from repro.analysis.report import ascii_table
from repro.api import (
    FederateRequest,
    HeteroRequest,
    cache_info,
    clear_caches,
    dispatch,
    request_from_dict,
)
from repro.federation.registry import ShardSpec, default_registry
from repro.hetero import PoolSpec
from repro.optimize.schedule import Job
from repro.units import GHZ


def _mix(pools) -> str:
    return " + ".join(f"{c.pool}x{c.count}@{c.f / GHZ:.2f}GHz" for c in pools)


def main() -> None:
    # -- 1. the candidate pools, one of them hypothetical ---------------------------
    default_registry().register_hypothetical(
        "lowpower", base="systemg", cpu_power_scale=0.6, exist_ok=True,
    )
    pools = (
        PoolSpec("fast", "systemg", (1, 2, 4, 8, 16), (2.0, 2.4, 2.8)),
        PoolSpec("slow", "dori", (1, 2, 4), (1.8, 2.0)),
        PoolSpec("eco", "lowpower", (2, 4, 8), (2.0,)),
    )

    # -- 2. one request, four objectives -------------------------------------------
    clear_caches()
    request = HeteroRequest(
        benchmark="FT",
        klass="B",
        pools=pools,
        policies=("balanced", "uniform"),
        budget_w=2500.0,
        deadline_s=60.0,
        pareto=True,
        policy_gap=True,
    )
    response = dispatch(request)
    print(f"{response.model}: {response.allocations} candidate allocations\n")

    rows = []
    for rec in (response.budget, response.deadline):
        rows.append((
            rec.objective, rec.policy, _mix(rec.pools), rec.total_p,
            round(rec.tp, 2), round(rec.ep, 1), round(rec.avg_power),
        ))
    print(ascii_table(
        ["objective", "policy", "mix", "p", "Tp (s)", "Ep (J)", "W"], rows,
    ))

    print("\n(Tp, Ep) Pareto frontier of pool mixes (first 6):")
    print(ascii_table(
        ["mix", "policy", "Tp (s)", "Ep (J)", "EE"],
        [(_mix(r.pools), r.policy, round(r.tp, 2), round(r.ep, 1),
          round(r.ee, 4)) for r in response.pareto[:6]],
    ))

    gap = response.policy_gap
    print(
        f"\nsplit-policy gap over {gap.mixes} mixes: a naive uniform split "
        f"wastes up to {gap.max_gap:.1%} energy (mean {gap.mean_gap:.1%}); "
        f"worst on {_mix(gap.worst)}"
    )

    # -- 3. one grid served every objective ----------------------------------------
    store = cache_info()["grid_store"]
    print(
        f"\ngrid store: {store['hetero_misses']} hetero evaluation(s), "
        f"{store['hetero_hits']} cache hit(s) "
        f"({store['hetero_bytes']} bytes resident)"
    )

    # -- 4. the wire form ------------------------------------------------------------
    payload = json.dumps(request.to_dict())
    assert request_from_dict(json.loads(payload)) == request
    print(f"wire payload: {len(payload)} bytes of JSON (POST /v1/hetero)")

    # -- 5. a federated site with a heterogeneous shard ----------------------------
    fed = dispatch(FederateRequest(
        budget_w=5000.0,
        shards=(
            ShardSpec(
                name="mixed", cluster="systemg", power_envelope_w=3500.0,
                pools=(
                    PoolSpec("fast", "systemg", (1, 2, 4, 8), (2.4, 2.8)),
                    PoolSpec("slow", "dori", (1, 2), (1.8,)),
                ),
            ),
            ShardSpec(
                name="plain", cluster="dori", nodes=2,
                power_envelope_w=250.0,
            ),
        ),
        jobs=(
            Job("fft", "FT", "W"),
            Job("monte", "EP", "W"),
            Job("fft2", "FT", "A"),
        ),
    ))
    print("\nfederated site with a heterogeneous shard:")
    for plan in fed.plans:
        placed = ", ".join(
            f"{a.job}(p={a.p}, {a.avg_power:.0f} W)"
            for a in plan.assignments
        ) or "idle"
        print(f"  {plan.shard:>6}: {placed}")
    print(
        f"  site draw {fed.total_power_w:,.0f} W of {fed.budget_w:,.0f} W "
        f"budget, makespan {fed.makespan_s:.2f} s"
    )


if __name__ == "__main__":
    main()

"""Package definition: ``pip install -e .`` gives the library + CLI."""

from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).resolve().parent
_readme = _here / "README.md"

setup(
    name="repro-isoee",
    version="1.0.0",
    description=(
        "Reproduction of 'Iso-Energy-Efficiency: An Approach to "
        "Power-Constrained Parallel Computation' (IPDPS 2011)"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "dev": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)

"""The discrete-event core: heap order, tie-breaks, and the event log."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventLog, SimEvent, Simulator


class TestSimulatorOrdering:
    def test_handlers_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, seen.append, "late")
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(3.0, seen.append, "middle")
        dispatched = sim.run()
        assert seen == ["early", "middle", "late"]
        assert dispatched == 3
        assert sim.now == 5.0

    def test_simultaneous_events_break_ties_by_schedule_order(self):
        sim = Simulator()
        seen = []
        for tag in ("a", "b", "c", "d"):
            sim.schedule(2.0, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c", "d"]

    def test_handlers_can_schedule_followups(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append((sim.now, n))
            if n:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert seen == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="past"):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="clock is at 10"):
            sim.schedule_at(5.0, lambda: None)

    def test_two_identical_runs_dispatch_identically(self):
        def build():
            sim = Simulator()
            for k in range(20):
                sim.schedule(
                    (k * 7) % 5 + 0.5,
                    sim.log.append,
                    float((k * 7) % 5),
                    "tick",
                )
            sim.run()
            return sim.log.events

        assert build() == build()


class TestEventLog:
    def test_append_assigns_monotone_seq(self):
        log = EventLog()
        a = log.append(0.0, "arrival", job="j0")
        b = log.append(1.0, "start", job="j0", shard="s", watts=80.0)
        assert (a.seq, b.seq) == (0, 1)
        assert len(log) == 2
        assert list(log) == [a, b]
        assert log.events == (a, b)

    def test_events_are_frozen_with_fixed_schema(self):
        log = EventLog()
        event = log.append(2.5, "finish", job="j", shard="s",
                           watts=100.0, seconds=4.0, joules=400.0)
        assert event == SimEvent(time=2.5, seq=0, kind="finish", job="j",
                                 shard="s", detail="", watts=100.0,
                                 seconds=4.0, joules=400.0)
        with pytest.raises(AttributeError):
            event.kind = "other"

    def test_counts_by_kind(self):
        log = EventLog()
        for kind in ("arrival", "start", "finish", "arrival", "reject"):
            log.append(0.0, kind)
        assert log.counts() == {"arrival": 2, "start": 1, "finish": 1,
                                "reject": 1}

    def test_events_counter_increments(self):
        from repro.obs.metrics import registry

        before = registry().value("repro_sim_events_total")
        EventLog().append(0.0, "arrival")
        assert registry().value("repro_sim_events_total") == before + 1

"""Wire round-trips for the simulate operation and its nested records."""

import json

import pytest

from repro.api.schemas import request_from_dict, response_from_dict
from repro.api.service import clear_caches, dispatch
from repro.api.types import SimulateRequest, SimulateResponse
from repro.errors import WireError
from repro.federation.registry import ShardSpec
from repro.optimize.schedule import Job
from repro.sim import DemandSpec, ScenarioSpec, SloSpec

SCENARIO = ScenarioSpec(
    shards=(
        ShardSpec("alpha", "systemg", 16, 4000.0),
        ShardSpec("beta", "dori", 8, 2000.0, policy="energy"),
    ),
    budget_w=5000.0,
    strategy="proportional",
    metric="ee",
    demand=DemandSpec(kind="burst", burst_size=2, burst_every_s=200.0,
                      jobs=(Job("ft", "FT", "B"), Job("cg", "CG", "A", 30))),
    slo=SloSpec(deadline_s=500.0, max_wait_s=60.0),
    horizon_s=450.0,
    seed=9,
    queue="priority",
    max_queue_depth=4,
)

REQUEST = SimulateRequest(scenario=SCENARIO, include_events=True)


class TestRequestWire:
    def test_json_round_trip_identity(self):
        payload = json.loads(json.dumps(REQUEST.to_dict()))
        assert request_from_dict(payload) == REQUEST

    def test_default_request_round_trips(self):
        payload = json.loads(json.dumps(SimulateRequest().to_dict()))
        assert request_from_dict(payload) == SimulateRequest()

    def test_scenario_needs_only_shards_on_the_wire(self):
        req = request_from_dict({
            "op": "simulate",
            "scenario": {"shards": [{"name": "m", "power_envelope_w": 900.0}]},
        })
        assert req.scenario.shards == (ShardSpec("m", power_envelope_w=900.0),)
        # everything else falls back to the dataclass defaults
        assert req.scenario.demand == DemandSpec()
        assert req.scenario.slo == SloSpec()
        assert req.scenario.queue == "fifo"
        assert req.include_events is False

    def test_nested_demand_and_slo_defaults_apply(self):
        req = request_from_dict({
            "op": "simulate",
            "scenario": {
                "shards": [],
                "demand": {"kind": "burst", "burst_size": 5},
                "slo": {"deadline_s": 100.0},
            },
        })
        assert req.scenario.demand.burst_size == 5
        assert req.scenario.demand.rate_per_s == DemandSpec().rate_per_s
        assert req.scenario.slo == SloSpec(deadline_s=100.0)

    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(WireError, match="unknown ScenarioSpec"):
            request_from_dict({
                "op": "simulate",
                "scenario": {"shards": [], "weather": "sunny"},
            })

    def test_mistyped_seed_rejected(self):
        with pytest.raises(WireError, match="expected an integer"):
            request_from_dict({
                "op": "simulate",
                "scenario": {"shards": [], "seed": "lucky"},
            })


class TestResponseWire:
    def _response(self) -> SimulateResponse:
        clear_caches()
        resp = dispatch(REQUEST)
        assert isinstance(resp, SimulateResponse)
        return resp

    def test_json_round_trip_identity(self):
        resp = self._response()
        payload = json.loads(json.dumps(resp.to_dict()))
        assert response_from_dict(payload) == resp

    def test_events_carried_only_on_request(self):
        resp = self._response()
        assert resp.events  # include_events=True above
        lean = dispatch(SimulateRequest(scenario=SCENARIO))
        assert lean.events == ()
        assert lean.report == resp.report

    def test_missing_report_field_rejected(self):
        payload = self._response().to_dict()
        del payload["report"]["energy_per_job_j"]
        with pytest.raises(WireError, match="missing SimReport"):
            response_from_dict(payload)

    def test_unknown_event_field_rejected(self):
        payload = self._response().to_dict()
        payload["events"][0]["speed"] = 1
        with pytest.raises(WireError, match="unknown SimEvent"):
            response_from_dict(payload)


class TestDispatch:
    def test_dispatch_is_deterministic_across_cache_clears(self):
        clear_caches()
        one = dispatch(REQUEST)
        clear_caches()
        two = dispatch(REQUEST)
        assert one == two
        assert json.dumps(one.to_dict()) == json.dumps(two.to_dict())

    def test_repeat_dispatch_hits_the_response_cache(self):
        from repro.api.service import cache_info

        clear_caches()
        dispatch(REQUEST)
        hits_before = cache_info()["responses"].hits
        dispatch(REQUEST)
        assert cache_info()["responses"].hits == hits_before + 1

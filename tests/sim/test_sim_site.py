"""The online site scheduler: placement, queueing, rejection, KPIs."""

import pytest

from repro.api.service import clear_caches
from repro.errors import ParameterError
from repro.federation.registry import ShardSpec
from repro.optimize.schedule import Job
from repro.sim import (
    DemandSpec,
    ScenarioSpec,
    SloSpec,
    format_trace,
    run_scenario,
)
from repro.sim.demand import Arrival

# one 4-node SystemG shard: with a 200 W budget the FT.B + EP.B mix
# gets a 199 W allocation, which admits exactly one job at a time —
# queueing dynamics become deterministic and hand-checkable
SOLO = ShardSpec("solo", "systemg", 4, 1000.0)


def _trace_scenario(arrivals, budget_w=200.0, **kwargs):
    return ScenarioSpec(
        shards=(SOLO,),
        budget_w=budget_w,
        demand=DemandSpec(kind="trace", trace=format_trace(arrivals)),
        **kwargs,
    )


def _kinds(events, kind):
    return [e for e in events if e.kind == kind]


class TestEndToEndDeterminism:
    SCENARIO = ScenarioSpec(
        shards=(
            ShardSpec("alpha", "systemg", 16, 4000.0),
            ShardSpec("beta", "systemg", 8, 2500.0, policy="energy"),
            ShardSpec("gamma", "dori", 8, 2000.0),
        ),
        budget_w=7000.0,
        demand=DemandSpec(kind="poisson", rate_per_s=0.05,
                          jobs=(Job("ft", "FT", "B"), Job("ep", "EP", "B"))),
        horizon_s=600.0,
        seed=42,
    )

    def test_two_runs_are_identical(self):
        one = run_scenario(self.SCENARIO)
        clear_caches()
        two = run_scenario(self.SCENARIO)
        assert one.events == two.events
        assert one.report == two.report

    def test_report_accounts_for_every_arrival(self):
        result = run_scenario(self.SCENARIO)
        rep = result.report
        assert rep.arrivals == len(_kinds(result.events, "arrival"))
        assert rep.arrivals == rep.started + rep.rejected
        assert rep.started == rep.finished  # the run drains fully
        assert rep.total_energy_j == pytest.approx(
            sum(e.joules for e in _kinds(result.events, "finish"))
        )
        assert {s.shard for s in rep.shards} == {"alpha", "beta", "gamma"}


class TestQueueDynamics:
    ARRIVALS = [
        Arrival(0.0, Job("first", "FT", "B")),
        Arrival(1.0, Job("slow", "FT", "B")),
        Arrival(2.0, Job("quick", "EP", "B")),
    ]

    def test_fifo_preserves_arrival_order(self):
        result = run_scenario(_trace_scenario(self.ARRIVALS, queue="fifo"))
        starts = [e.job for e in _kinds(result.events, "start")]
        assert starts == ["first", "slow", "quick"]
        assert len(_kinds(result.events, "enqueue")) == 2

    def test_priority_runs_shortest_job_first(self):
        result = run_scenario(_trace_scenario(self.ARRIVALS, queue="priority"))
        starts = [e.job for e in _kinds(result.events, "start")]
        # EP.B's cheapest rung is ~3.6x faster than FT.B's: SJF jumps it
        assert starts == ["first", "quick", "slow"]

    def test_waits_show_up_in_the_report(self):
        result = run_scenario(_trace_scenario(self.ARRIVALS))
        rep = result.report
        assert rep.wait_p99_s > 0.0
        assert rep.mean_wait_s > 0.0
        assert max(s.max_queue_depth for s in rep.shards) == 2

    def test_queue_depth_cap_rejects_overflow(self):
        result = run_scenario(
            _trace_scenario(self.ARRIVALS, max_queue_depth=1)
        )
        rejects = _kinds(result.events, "reject")
        assert [e.job for e in rejects] == ["quick"]
        assert "queue full on shard solo" in rejects[0].detail
        assert result.report.rejected == 1
        assert result.report.finished == 2


class TestRejection:
    def test_power_floor_above_every_allocation(self):
        result = run_scenario(
            _trace_scenario([Arrival(0.0, Job("big", "FT", "B"))],
                            budget_w=60.0)
        )
        rejects = _kinds(result.events, "reject")
        assert len(rejects) == 1
        assert rejects[0].detail == (
            "needs 83 W on its cheapest eligible shard"
        )
        assert result.report.rejected == 1
        assert result.report.started == 0

    def test_no_shard_admits_the_workload(self):
        scenario = ScenarioSpec(
            shards=(ShardSpec("strict", "systemg", 4, 1000.0,
                              policy="ee_floor", ee_floor=1e9),),
            budget_w=500.0,
            demand=DemandSpec(kind="trace",
                              trace='{"t": 0.0, "name": "j"}\n'),
        )
        result = run_scenario(scenario)
        rejects = _kinds(result.events, "reject")
        assert len(rejects) == 1
        assert rejects[0].detail == "meets no shard's placement rules"

    def test_rejection_never_aborts_the_run(self):
        # offline, this site raises InfeasibleJobsError; online, every
        # arrival becomes a reject event and the run still completes
        arrivals = [
            Arrival(0.0, Job("a", "EP", "B")),
            Arrival(1.0, Job("b", "FT", "B")),
        ]
        result = run_scenario(_trace_scenario(arrivals, budget_w=60.0))
        assert result.report.rejected == 2
        assert result.report.finished == 0
        assert result.report.arrivals == 2


class TestSlo:
    def test_deadline_violations_counted(self):
        result = run_scenario(
            _trace_scenario([Arrival(0.0, Job("j", "FT", "B"))],
                            slo=SloSpec(deadline_s=1.0))
        )
        assert result.report.slo_violations == 1

    def test_max_wait_violations_counted(self):
        result = run_scenario(
            _trace_scenario(TestQueueDynamics.ARRIVALS,
                            slo=SloSpec(max_wait_s=5.0))
        )
        assert result.report.slo_violations == 2  # both queued jobs waited

    def test_loose_slo_is_clean(self):
        result = run_scenario(
            _trace_scenario([Arrival(0.0, Job("j", "EP", "B"))],
                            slo=SloSpec(deadline_s=1e6, max_wait_s=1e6))
        )
        assert result.report.slo_violations == 0


class TestScenarioValidation:
    @pytest.mark.parametrize("kwargs,match", [
        ({"metric": "bogus"}, "routing metric"),
        ({"queue": "lifo"}, "queue discipline"),
        ({"max_queue_depth": 0}, "max queue depth"),
        ({"slo": SloSpec(deadline_s=-1.0)}, "deadline"),
        ({"slo": SloSpec(max_wait_s=0.0)}, "wait"),
    ])
    def test_bad_scenarios_rejected(self, kwargs, match):
        scenario = ScenarioSpec(shards=(SOLO,), budget_w=500.0, **kwargs)
        with pytest.raises(ParameterError, match=match):
            run_scenario(scenario)


class TestObservability:
    def test_gauges_reflect_the_last_run(self):
        from repro.obs.metrics import registry

        result = run_scenario(
            _trace_scenario([Arrival(0.0, Job("j", "EP", "B"))])
        )
        assert registry().value("repro_sim_active_runs") == 0.0
        assert registry().value("repro_sim_last_run_events") == float(
            len(result.events)
        )

    def test_placement_outcomes_counted(self):
        from repro.obs.metrics import registry

        before = registry().value("repro_sim_placements_total")
        run_scenario(_trace_scenario(TestQueueDynamics.ARRIVALS))
        assert registry().value("repro_sim_placements_total") == before + 3

"""Demand processes: seeded reproducibility, statistics, trace replay."""

import math

import pytest

from repro.errors import ParameterError
from repro.optimize.schedule import Job
from repro.sim import DemandSpec, format_trace, generate_arrivals, parse_trace
from repro.sim.demand import diurnal_rate, validate_demand


class TestSeededReproducibility:
    @pytest.mark.parametrize("kind", ["poisson", "burst", "diurnal"])
    def test_same_seed_identical_arrivals(self, kind):
        spec = DemandSpec(kind=kind, rate_per_s=0.5, burst_size=3,
                          burst_every_s=40.0, period_s=300.0, amplitude=0.8,
                          jobs=(Job("ft", "FT", "B"), Job("ep", "EP", "A")))
        one = generate_arrivals(spec, horizon_s=600.0, seed=7)
        two = generate_arrivals(spec, horizon_s=600.0, seed=7)
        assert one == two

    def test_different_seeds_differ(self):
        spec = DemandSpec(kind="poisson", rate_per_s=0.5)
        one = generate_arrivals(spec, horizon_s=600.0, seed=1)
        two = generate_arrivals(spec, horizon_s=600.0, seed=2)
        assert one != two

    def test_arrivals_sorted_named_and_inside_horizon(self):
        spec = DemandSpec(kind="poisson", rate_per_s=1.0,
                          jobs=(Job("ft", "FT", "B"),))
        arrivals = generate_arrivals(spec, horizon_s=100.0, seed=3)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)
        assert [a.job.name for a in arrivals] == [
            f"ft-{i:05d}" for i in range(len(arrivals))
        ]

    def test_templates_sampled_from_spec(self):
        spec = DemandSpec(kind="poisson", rate_per_s=1.0,
                          jobs=(Job("ft", "FT", "B"), Job("cg", "CG", "A")))
        arrivals = generate_arrivals(spec, horizon_s=200.0, seed=0)
        benches = {a.job.benchmark for a in arrivals}
        assert benches == {"FT", "CG"}


class TestPoissonStatistics:
    def test_interarrival_mean_near_one_over_rate(self):
        rate = 1.0
        arrivals = generate_arrivals(
            DemandSpec(kind="poisson", rate_per_s=rate),
            horizon_s=4000.0, seed=11,
        )
        times = [a.time for a in arrivals]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        # ~4000 samples: the sample mean sits well within 10% of 1/rate
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.10)

    def test_count_scales_with_rate(self):
        lo = generate_arrivals(DemandSpec(kind="poisson", rate_per_s=0.5),
                               horizon_s=2000.0, seed=5)
        hi = generate_arrivals(DemandSpec(kind="poisson", rate_per_s=2.0),
                               horizon_s=2000.0, seed=5)
        assert len(hi) == pytest.approx(4 * len(lo), rel=0.2)


class TestBurst:
    def test_bursts_land_on_the_period_grid(self):
        spec = DemandSpec(kind="burst", burst_size=3, burst_every_s=50.0)
        arrivals = generate_arrivals(spec, horizon_s=160.0, seed=0)
        assert [a.time for a in arrivals] == [0.0] * 3 + [50.0] * 3 + [100.0] * 3 + [150.0] * 3


class TestDiurnal:
    def test_rate_curve_bounds(self):
        spec = DemandSpec(kind="diurnal", rate_per_s=0.2, period_s=86400.0,
                          amplitude=0.5)
        rates = [diurnal_rate(spec, t) for t in range(0, 86400, 600)]
        assert min(rates) >= 0.2 * 0.5 - 1e-12
        assert max(rates) <= 0.2 * 1.5 + 1e-12
        assert math.isclose(diurnal_rate(spec, 86400.0 / 4), 0.3)

    def test_count_tracks_rate_integral(self):
        # over whole periods the sinusoid integrates away: expected
        # arrivals = rate * horizon, independent of amplitude
        spec = DemandSpec(kind="diurnal", rate_per_s=1.0, period_s=500.0,
                          amplitude=0.9)
        arrivals = generate_arrivals(spec, horizon_s=4000.0, seed=13)
        assert len(arrivals) == pytest.approx(4000, rel=0.10)

    def test_zero_amplitude_is_homogeneous_poisson_count(self):
        flat = generate_arrivals(
            DemandSpec(kind="diurnal", rate_per_s=1.0, amplitude=0.0,
                       period_s=1000.0),
            horizon_s=3000.0, seed=17,
        )
        assert len(flat) == pytest.approx(3000, rel=0.10)


class TestTrace:
    def test_round_trip_through_format_and_parse(self):
        arrivals = generate_arrivals(
            DemandSpec(kind="poisson", rate_per_s=0.3,
                       jobs=(Job("ft", "FT", "B", 20), Job("ep", "EP", "A"))),
            horizon_s=300.0, seed=9,
        )
        text = format_trace(arrivals)
        assert parse_trace(text) == arrivals

    def test_replay_through_generate_arrivals(self):
        text = '{"t": 5.0, "name": "a", "benchmark": "EP", "klass": "A"}\n' \
               '{"t": 1.0, "name": "b"}\n'
        arrivals = generate_arrivals(DemandSpec(kind="trace", trace=text),
                                     horizon_s=10.0, seed=0)
        assert [a.job.name for a in arrivals] == ["b", "a"]  # sorted by time
        assert arrivals[0].job.benchmark == "FT"  # defaults fill in
        assert arrivals[1].job.klass == "A"

    def test_replay_clips_to_horizon(self):
        text = '{"t": 1.0}\n{"t": 99.0}\n'
        arrivals = generate_arrivals(DemandSpec(kind="trace", trace=text),
                                     horizon_s=50.0, seed=0)
        assert len(arrivals) == 1

    @pytest.mark.parametrize("line,match", [
        ("not json", "not valid JSON"),
        ('["t", 1]', "must be an object with a 't' field"),
        ('{"when": 1}', "must be an object"),
        ('{"t": -1}', "non-negative"),
        ('{"t": true}', "non-negative number"),
        ('{"t": 1, "color": "red"}', "unknown field"),
        ('{"t": 1, "niter": 2.5}', "'niter' must be an integer"),
    ])
    def test_malformed_lines_name_the_line(self, line, match):
        with pytest.raises(ParameterError, match=match):
            parse_trace(line)
        # the reported line number tracks the offending line
        with pytest.raises(ParameterError, match="line 2"):
            parse_trace('{"t": 0}\n' + line)


class TestValidation:
    @pytest.mark.parametrize("spec,match", [
        (DemandSpec(kind="lunar"), "unknown demand kind"),
        (DemandSpec(kind="poisson", rate_per_s=0.0), "rate must be positive"),
        (DemandSpec(kind="diurnal", rate_per_s=-1.0), "rate must be positive"),
        (DemandSpec(kind="burst", burst_size=0), "burst size"),
        (DemandSpec(kind="burst", burst_every_s=0.0), "burst period"),
        (DemandSpec(kind="diurnal", period_s=0.0), "diurnal period"),
        (DemandSpec(kind="diurnal", amplitude=1.5), "amplitude"),
        (DemandSpec(kind="trace", trace="  "), "non-empty trace"),
    ])
    def test_bad_specs_rejected(self, spec, match):
        with pytest.raises(ParameterError, match=match):
            validate_demand(spec)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ParameterError, match="horizon"):
            generate_arrivals(DemandSpec(), horizon_s=0.0, seed=0)

"""Units and conversion helpers."""

import pytest

from repro import units


def test_ghz_scale():
    assert units.GHZ == 1e9
    assert 2.8 * units.GHZ == pytest.approx(2.8e9)


def test_time_prefixes():
    assert units.NS == 1e-9
    assert units.US == 1e-6
    assert units.MS == 1e-3


def test_binary_capacities():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3


def test_gbit_per_s_roundtrip():
    rate = units.gbit_per_s(40)
    assert rate == pytest.approx(5e9)  # 40 Gbit/s = 5 GB/s raw
    assert units.bytes_per_s_to_gbit(rate) == pytest.approx(40)


def test_seconds_ns_roundtrip():
    assert units.seconds_to_ns(1e-6) == pytest.approx(1000.0)
    assert units.ns_to_seconds(units.seconds_to_ns(0.5)) == pytest.approx(0.5)


def test_joules_to_kwh():
    assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)


def test_watts_identity():
    assert units.watts(42) == 42.0
    assert isinstance(units.watts(42), float)

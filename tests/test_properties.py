"""Property-based tests (hypothesis) on core invariants.

These pin down the model's mathematical structure over wide, randomly
explored parameter ranges rather than hand-picked examples:

* EE ∈ (0, 1] and EEF ≥ 0 for any valid Θ1/Θ2.
* ΔE closed form ≡ Ep − E1 (Eq. 16 vs Eq. 1).
* Energy/time monotonicity in workload and overheads.
* Hockney cost monotone in message size; collective closed forms
  consistent under composition.
* DVFS projection round-trips.
* The simulator's measured energy equals the closed form on noiseless
  runs, for arbitrary compute programs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.efficiency import eef, energy_efficiency
from repro.core.energy import delta_energy, parallel_energy, sequential_energy
from repro.core.parameters import AppParams, MachineParams
from repro.core.performance import parallel_time, sequential_time, speedup
from repro.simmpi import collectives
from repro.units import GHZ, NS, US

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

machines = st.builds(
    MachineParams,
    tc=st.floats(0.05e-9, 5e-9),
    tm=st.floats(20e-9, 500e-9),
    ts=st.floats(0.5e-6, 100e-6),
    tw=st.floats(0.05e-9, 20e-9),
    delta_pc=st.floats(5.0, 300.0),
    delta_pm=st.floats(1.0, 60.0),
    pc_idle=st.floats(1.0, 80.0),
    pm_idle=st.floats(0.5, 30.0),
    p_others=st.floats(5.0, 120.0),
    f=st.floats(0.8 * GHZ, 4.0 * GHZ),
    gamma=st.floats(1.0, 3.0),
)

apps = st.builds(
    AppParams,
    alpha=st.floats(0.5, 1.0),
    wc=st.floats(1e6, 1e13),
    wm=st.floats(0.0, 1e11),
    wco=st.floats(0.0, 1e11),
    wmo=st.floats(0.0, 1e9),
    m_messages=st.floats(0.0, 1e7),
    b_bytes=st.floats(0.0, 1e12),
)

procs = st.integers(min_value=2, max_value=4096)


# ---------------------------------------------------------------------------
# Model invariants
# ---------------------------------------------------------------------------


@given(machines, apps, procs)
def test_ee_in_unit_interval(machine, app, p):
    ee = energy_efficiency(machine, app, p)
    assert 0.0 < ee <= 1.0


@given(machines, apps, procs)
def test_eef_nonnegative(machine, app, p):
    assert eef(machine, app, p) >= 0.0


@given(machines, apps, procs)
def test_delta_energy_identity(machine, app, p):
    """Closed-form ΔE (Eq. 16) equals Ep − E1 (Eq. 1) always.

    The subtraction loses bits to cancellation when ΔE ≪ Ep (huge wc with
    tiny overheads), so the tolerance scales with the energies actually
    subtracted rather than with ΔE itself.
    """
    de = delta_energy(machine, app, p)
    ep = parallel_energy(machine, app, p)
    e1 = sequential_energy(machine, app)
    cancellation = 1e-12 * max(abs(ep), abs(e1))
    assert math.isclose(
        de, ep - e1, rel_tol=1e-9, abs_tol=max(1e-9, cancellation)
    )


@given(machines, apps, procs)
def test_parallel_energy_dominates_sequential(machine, app, p):
    assert parallel_energy(machine, app, p) >= sequential_energy(machine, app) - 1e-9


@given(machines, apps, procs)
def test_speedup_positive_and_bounded_by_p(machine, app, p):
    s = speedup(machine, app, p)
    assert 0.0 < s <= p + 1e-9


@given(machines, apps, procs, st.floats(1.05, 4.0))
def test_more_compute_overhead_never_helps(machine, app, p, factor):
    import dataclasses

    worse = dataclasses.replace(app, wco=app.wco * factor + 1.0)
    assert energy_efficiency(machine, worse, p) <= energy_efficiency(
        machine, app, p
    ) + 1e-12


@given(machines, apps, procs, st.floats(1.05, 4.0))
def test_more_bytes_never_help(machine, app, p, factor):
    import dataclasses

    worse = dataclasses.replace(app, b_bytes=app.b_bytes * factor + 1.0)
    assert energy_efficiency(machine, worse, p) <= energy_efficiency(
        machine, app, p
    ) + 1e-12


@given(machines, apps)
def test_sequential_time_scales_with_alpha(machine, app):
    import dataclasses

    tighter = dataclasses.replace(app, alpha=app.alpha / 2)
    assert sequential_time(machine, tighter) < sequential_time(machine, app)


@given(machines, apps, procs)
def test_wall_time_decreases_with_p(machine, app, p):
    """Under homogeneous split, Tp strictly divides total busy time."""
    tp = parallel_time(machine, app, p)
    t2p = parallel_time(machine, app, 2 * p)
    assert t2p < tp


# ---------------------------------------------------------------------------
# DVFS projection
# ---------------------------------------------------------------------------


@given(machines, st.floats(0.5 * GHZ, 5.0 * GHZ))
def test_frequency_projection_roundtrip(machine, f_new):
    projected = machine.at_frequency(f_new)
    back = projected.at_frequency(machine.f)
    assert math.isclose(back.tc, machine.tc, rel_tol=1e-9)
    assert math.isclose(back.delta_pc, machine.delta_pc, rel_tol=1e-9)


@given(machines, st.floats(1.1, 4.0))
def test_higher_frequency_shrinks_tc_grows_power(machine, up):
    faster = machine.at_frequency(machine.f * up)
    assert faster.tc < machine.tc
    assert faster.delta_pc >= machine.delta_pc


# ---------------------------------------------------------------------------
# Communication closed forms
# ---------------------------------------------------------------------------


@given(st.integers(2, 256), st.integers(0, 1 << 20), st.integers(1, 1 << 20))
def test_hockney_monotone_in_size(p, small, extra):
    ts, tw = 4 * US, 0.3 * NS
    t1 = collectives.pairwise_alltoall_time(p, small, ts, tw)
    t2 = collectives.pairwise_alltoall_time(p, small + extra, ts, tw)
    assert t2 > t1


@given(st.integers(2, 512))
def test_alltoall_counts_consistent(p):
    m = collectives.alltoall_message_count(p, "pairwise")
    assert m == p * (p - 1)
    b = collectives.alltoall_byte_count(p, 7, "pairwise")
    assert b == 7 * m


@given(st.integers(1, 1024))
def test_collective_counts_nonnegative_and_zero_at_p1(p):
    for fn in (
        collectives.allreduce_message_count,
        collectives.barrier_message_count,
        collectives.allgather_message_count,
    ):
        count = fn(p)
        assert count >= 0
        if p == 1:
            assert count == 0


@given(st.integers(2, 1024))
def test_bcast_reduce_symmetric(p):
    assert collectives.bcast_message_count(p) == collectives.reduce_message_count(p)


# ---------------------------------------------------------------------------
# Simulator closed-form agreement (noiseless)
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(1e4, 1e8), st.floats(0.0, 1e6)),
        min_size=1,
        max_size=5,
    ),
    st.floats(0.5, 1.0),
)
def test_simulated_energy_matches_closed_form(blocks, alpha):
    """For arbitrary compute programs, measured energy is exactly Eq. (9)."""
    from repro.cluster import system_g
    from repro.powerpack.profiler import PowerProfiler
    from repro.simmpi.engine import SimConfig, SimEngine

    cluster = system_g(1)

    def prog(ctx):
        for instr, mem in blocks:
            yield from ctx.compute(instructions=instr, mem_accesses=mem)

    res = SimEngine(cluster, SimConfig(alpha=alpha)).run(prog, size=1)
    node = cluster.nodes[0]
    wc = sum(b[0] for b in blocks)
    wm = sum(b[1] for b in blocks)
    expected = (
        res.total_time * node.power.p_system_idle
        + wc * node.cpu.tc() * node.power.cpu.delta_p
        + wm * node.memory.tm * node.power.memory.delta_p
    )
    measured = PowerProfiler(cluster).measure_energy(res)
    assert math.isclose(measured, expected, rel_tol=1e-9)
    # and the wall clock is the α-scaled theoretical time (Eq. 6)
    theory = wc * node.cpu.tc() + wm * node.memory.tm
    assert math.isclose(res.total_time, alpha * theory, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------


@settings(max_examples=50)
@given(
    st.sampled_from(["EP", "FT", "CG", "IS", "MG", "LU", "BT", "SP"]),
    st.sampled_from([1, 2, 4, 8, 16, 64, 256]),
)
def test_all_workload_models_produce_valid_theta2(name, p):
    from repro.npb.workloads import workload_for

    wl, n = workload_for(name, "A")
    ap = wl.params(n, p)  # AppParams validates on construction
    assert ap.wc > 0
    if p == 1:
        assert ap.wco == 0 and ap.m_messages == 0


@settings(max_examples=30)
@given(st.sampled_from(["FT", "CG", "IS", "MG", "LU", "BT", "SP"]), procs)
def test_workload_overheads_grow_with_p(name, p):
    from repro.npb.workloads import workload_for

    if name == "CG":
        p = 1 << min(p.bit_length(), 10)  # power of two for CG
    wl, n = workload_for(name, "A")
    small = wl.params(n, 2)
    large = wl.params(n, max(p, 4))
    assert large.m_messages >= small.m_messages


# ---------------------------------------------------------------------------
# Power-cap and heterogeneous-model invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(machines, st.floats(100.0, 1e6))
def test_fastest_under_cap_respects_cap(machine, cap):
    from repro.core.model import IsoEnergyModel
    from repro.core.powercap import fastest_under_cap
    from repro.npb.ft import FtWorkload

    model = IsoEnergyModel(machine, FtWorkload(niter=2))
    try:
        cfg = fastest_under_cap(
            model,
            n=float(2**22),
            power_cap=cap,
            p_values=[1, 4, 16, 64],
            frequencies=[machine.f],
        )
    except Exception:
        return  # cap below the smallest config: refusal is correct
    assert cfg.avg_power <= cap + 1e-9


@settings(max_examples=40)
@given(machines, apps, st.integers(2, 64))
def test_hetero_single_group_matches_core(machine, app, count):
    # count >= 2: at p=1 the core model strips parallel terms (sequential
    # path) while a one-group pool legitimately keeps whatever Θ2 says.
    from repro.core.energy import parallel_energy
    from repro.core.hetero import HeteroIsoEnergyModel, ProcessorGroup

    hetero = HeteroIsoEnergyModel(
        [ProcessorGroup(name="g", machine=machine, count=count)]
    )
    point = hetero.evaluate(app)
    assert math.isclose(
        point.ep, parallel_energy(machine, app, count), rel_tol=1e-9
    )
    assert 0.0 < point.ee <= 1.0


@settings(max_examples=40)
@given(machines, apps, st.integers(1, 16), st.floats(1.2, 4.0))
def test_hetero_balanced_never_slower_than_uniform(machine, app, count, slowdown):
    """The speed-proportional split equalizes makespans for pure work.

    (With comm/overhead terms the split is a heuristic based on the base
    work mix, so the guarantee is exact only for overhead-free apps.)
    """
    import dataclasses

    from repro.core.hetero import HeteroIsoEnergyModel, ProcessorGroup

    pure = dataclasses.replace(
        app, wco=0.0, wmo=0.0, m_messages=0.0, b_bytes=0.0
    )
    slow = dataclasses.replace(machine, tc=machine.tc * slowdown)
    hetero = HeteroIsoEnergyModel(
        [
            ProcessorGroup(name="fast", machine=machine, count=count),
            ProcessorGroup(name="slow", machine=slow, count=count),
        ]
    )
    balanced = hetero.evaluate(pure, policy="balanced")
    uniform = hetero.evaluate(pure, policy="uniform")
    assert balanced.tp <= uniform.tp * (1 + 1e-9)


@settings(max_examples=40)
@given(
    st.floats(1e3, 1e10),
    st.integers(1, 500),
    st.floats(1e6, 1e9),
    st.floats(0.0, 10.0),
)
def test_io_composite_preserves_energy(nbytes, ops, bandwidth, delta_p):
    from repro.core.iomodel import IoComponent, IoPattern, composite_io

    comp = IoComponent(
        name="dev", delta_p=delta_p, bandwidth=bandwidth, access_latency=1e-3
    )
    pattern = IoPattern(component=comp, bytes_total=nbytes, operations=ops)
    t_io, dp = composite_io([pattern])
    assert math.isclose(t_io * dp, pattern.energy, rel_tol=1e-12, abs_tol=1e-12)

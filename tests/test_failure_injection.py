"""Failure injection: the stack must stay sane under adverse conditions.

Heterogeneous node speeds, congestion spikes, meter dropouts, staggered
rank arrival, and powered-off PDU outlets — each exercises an error path
or a robustness property the clean-path tests never touch.
"""

import numpy as np
import pytest

from repro.cluster import system_g
from repro.errors import DeadlockError, MeasurementError
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi import collectives
from repro.simmpi.engine import SimConfig, SimEngine
from repro.simmpi.noise import NoiseModel


class TestHeterogeneousNodes:
    def test_slow_node_stretches_collective_wall_time(self, systemg8):
        """A 10%-slow node drags every barrier participant with it."""
        slow = NoiseModel(seed=0, cpu_sigma=0.0)
        # poke a large static factor into one node's cache
        slow._node_factor_cache[3] = 1.5

        def prog(ctx):
            yield from ctx.compute(instructions=1e8)
            yield from collectives.barrier(ctx)

        uniform = SimEngine(systemg8, SimConfig()).run(prog, size=8)
        skewed = SimEngine(systemg8, SimConfig(noise=slow)).run(prog, size=8)
        assert skewed.total_time > uniform.total_time * 1.3

    def test_skew_shows_up_as_wait_energy(self, systemg8):
        slow = NoiseModel(seed=0, cpu_sigma=0.0)
        slow._node_factor_cache[0] = 2.0

        def prog(ctx):
            yield from ctx.compute(instructions=1e8)
            yield from collectives.barrier(ctx)

        res = SimEngine(systemg8, SimConfig(noise=slow)).run(prog, size=4)
        # fast ranks idle-wait inside their comm segments
        comm = [s for s in res.segments if s.kind == "comm" and s.rank != 0]
        assert any(s.duration > 10 * s.net_active for s in comm)


class TestCongestionSpikes:
    def test_heavy_congestion_slows_but_preserves_traffic_counts(self, systemg8):
        def prog(ctx):
            yield from collectives.alltoall(ctx, nbytes_per_pair=1 << 16)

        calm = SimEngine(systemg8, SimConfig(congestion_beta=0.0)).run(prog, 8)
        jam = SimEngine(systemg8, SimConfig(congestion_beta=0.5)).run(prog, 8)
        assert jam.total_time > calm.total_time
        assert jam.trace.m_total == calm.trace.m_total
        assert jam.trace.b_total == calm.trace.b_total


class TestMeterFailures:
    def test_zero_duration_run_rejected(self, systemg8):
        def prog(ctx):
            if False:
                yield  # pragma: no cover

        res = SimEngine(systemg8, SimConfig()).run(prog, size=1)
        with pytest.raises(MeasurementError):
            PowerProfiler(systemg8).measure_energy(res)

    def test_extreme_meter_noise_never_negative(self, systemg8):
        def prog(ctx):
            yield from ctx.compute(instructions=1e9)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=1)
        profile = PowerProfiler(systemg8, meter_sigma=1.0, seed=1).profile(res)
        for s in profile.series:
            assert (s.watts >= 0.0).all()


class TestPduFailures:
    def test_powered_off_node_reads_zero_during_run(self, systemg8):
        pdu = systemg8.pdu
        pdu.power_off(2)
        samples = pdu.sample_timeline(2, lambda t: 150.0, duration=3.0)
        assert all(s.watts == 0.0 for s in samples)
        pdu.power_on(2)
        samples = pdu.sample_timeline(2, lambda t: 150.0, duration=3.0)
        assert all(s.watts > 0.0 for s in samples)


class TestProtocolFailures:
    def test_partial_collective_deadlocks_cleanly(self, systemg8):
        """One rank skipping a barrier must raise DeadlockError, not hang."""

        def prog(ctx):
            if ctx.rank != 3:
                yield from collectives.barrier(ctx)

        with pytest.raises(DeadlockError):
            SimEngine(systemg8, SimConfig()).run(prog, size=4)

    def test_staggered_arrival_still_completes(self, systemg8):
        def prog(ctx):
            yield from ctx.sleep(0.01 * ctx.rank)
            yield from collectives.allreduce(ctx, nbytes=64)
            yield from collectives.barrier(ctx)

        res = SimEngine(systemg8, SimConfig()).run(prog, size=8)
        assert res.total_time >= 0.07  # the latest sleeper gates completion


class TestValidationUnderStress:
    def test_validation_error_degrades_gracefully_with_noise(self):
        """10× noise should widen errors but not break the pipeline."""
        from repro.npb.workloads import benchmark_for
        from repro.validation.calibration import derive_machine_params
        from repro.core.model import IsoEnergyModel

        cluster = system_g(4)
        bench, n = benchmark_for("FT", "S", niter=2)
        noisy = NoiseModel(seed=5, cpu_sigma=0.15, mem_sigma=0.3, net_sigma=0.5)
        config = SimConfig(
            alpha=bench.alpha, cpi_factor=bench.cpi_factor, noise=noisy
        )
        res = SimEngine(cluster, config).run(bench.make_program(n, 4), size=4)
        measured = PowerProfiler(cluster).measure_energy(res)
        machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
        predicted = IsoEnergyModel(machine, bench.workload).predict_energy(n=n, p=4)
        assert measured > 0 and predicted > 0
        assert abs(predicted - measured) / measured < 0.6

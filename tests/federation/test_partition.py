"""Budget partitioning: capability curves, bulk scoring, strategies."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.federation.partition import (
    PARTITION_STRATEGIES,
    ShardProfile,
    partition_budget,
    score_split_scalar,
    score_splits,
    shard_profiles,
)
from repro.federation.registry import ShardRegistry, ShardSpec
from repro.optimize.schedule import Job

JOBS = [Job("a", "FT", "W"), Job("b", "EP", "W")]


@pytest.fixture(scope="module")
def shards():
    registry = ShardRegistry()
    return registry.build_site([
        ShardSpec("big", "systemg", 32, 5000.0),
        ShardSpec("small", "dori", 8, 1500.0),
    ])


@pytest.fixture(scope="module")
def profiles(shards):
    return shard_profiles(shards, JOBS)


class TestProfiles:
    def test_curves_are_monotone(self, profiles):
        for prof in profiles:
            assert np.all(np.diff(prof.powers) > 0)
            assert np.all(np.diff(prof.utilities) >= 0)

    def test_floor_is_first_power(self, profiles):
        for prof in profiles:
            assert prof.floor_w == prof.powers[0]
            assert prof.value_at(prof.floor_w - 1.0) == 0.0
            assert prof.value_at(prof.floor_w) == prof.utilities[0]

    def test_curve_respects_the_envelope(self, profiles, shards):
        for prof, shard in zip(profiles, shards):
            assert prof.powers[-1] <= shard.power_envelope_w

    def test_profile_needs_jobs(self, shards):
        with pytest.raises(ParameterError, match="at least one job"):
            shard_profiles(shards, [])


class TestBulkScoring:
    def test_matches_the_scalar_reference(self, profiles):
        rng = np.random.default_rng(7)
        splits = rng.uniform(0.0, 6000.0, size=(200, len(profiles)))
        bulk = score_splits(profiles, splits)
        ref = np.array([score_split_scalar(profiles, s) for s in splits])
        np.testing.assert_allclose(bulk, ref)

    def test_zero_split_scores_zero(self, profiles):
        assert score_splits(profiles, np.zeros((1, len(profiles))))[0] == 0.0

    def test_shape_mismatch_rejected(self, profiles):
        with pytest.raises(ParameterError, match="splits"):
            score_splits(profiles, np.zeros((3, len(profiles) + 1)))
        with pytest.raises(ParameterError):
            score_split_scalar(profiles, [1.0])


class TestStrategies:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_budget_conservation_and_envelopes(self, shards, strategy):
        for budget in (900.0, 2500.0, 8000.0, 20000.0):
            part = partition_budget(
                shards, budget, jobs=JOBS, strategy=strategy
            )
            assert part.total_allocated_w <= budget + 1e-6
            for alloc, shard in zip(part.allocations, shards):
                assert 0.0 <= alloc.allocation_w
                assert alloc.allocation_w <= shard.power_envelope_w + 1e-6

    def test_proportional_follows_envelopes(self, shards):
        part = partition_budget(
            shards, 1300.0, jobs=JOBS, strategy="proportional"
        )
        big, small = part.allocations
        assert big.allocation_w == pytest.approx(1000.0)
        assert small.allocation_w == pytest.approx(300.0)

    def test_waterfill_never_beats_exhaustive(self, shards, profiles):
        for budget in (1200.0, 3000.0, 6000.0):
            wf = partition_budget(
                shards, budget, jobs=JOBS, strategy="waterfill",
                profiles=profiles,
            )
            ex = partition_budget(
                shards, budget, jobs=JOBS, strategy="exhaustive",
                profiles=profiles,
            )
            assert wf.utility <= ex.utility + 1e-9

    def test_exhaustive_is_optimal_on_a_hand_checkable_case(self):
        """Two synthetic curves with a known best split.

        Shard A: 100 W -> 1.0, 300 W -> 1.5.  Shard B: 150 W -> 2.0,
        400 W -> 2.4.  Budget 450 W.  Enumerating by hand: the best
        combination is A@300 + B@150 = 3.5 (A@100 + B@150 = 3.0,
        0 + B@400 = 2.4, A@100+0 = 1.0, ...).
        """
        profs = [
            ShardProfile("A", 1000.0, np.array([100.0, 300.0]),
                         np.array([1.0, 1.5])),
            ShardProfile("B", 1000.0, np.array([150.0, 400.0]),
                         np.array([2.0, 2.4])),
        ]
        # partition_budget needs shards only to build profiles; pass
        # profiles directly and shards as placeholders of equal length.
        part = partition_budget(
            [object(), object()], 450.0, jobs=JOBS,
            strategy="exhaustive", profiles=profs,
        )
        assert [a.allocation_w for a in part.allocations] == [300.0, 150.0]
        assert part.utility == pytest.approx(3.5)

    def test_waterfill_matches_marginal_density_on_synthetic_curves(self):
        """Water-filling takes the densest rung first: B@150 (2/150),
        then A@100 (1/100), then A->300 (0.5/200) if budget remains."""
        profs = [
            ShardProfile("A", 1000.0, np.array([100.0, 300.0]),
                         np.array([1.0, 1.5])),
            ShardProfile("B", 1000.0, np.array([150.0, 400.0]),
                         np.array([2.0, 2.4])),
        ]
        part = partition_budget(
            [object(), object()], 260.0, jobs=JOBS,
            strategy="waterfill", profiles=profs,
        )
        assert [a.allocation_w for a in part.allocations] == [100.0, 150.0]
        assert part.utility == pytest.approx(3.0)

    def test_waterfill_skips_flat_steps(self):
        """A zero-gain rung must not wall off the gains beyond it."""
        profs = [
            ShardProfile("A", 1000.0,
                         np.array([100.0, 200.0, 300.0]),
                         np.array([1.0, 1.0, 5.0])),  # flat step at 200 W
        ]
        part = partition_budget(
            [object()], 300.0, jobs=JOBS, strategy="waterfill",
            profiles=profs,
        )
        assert part.allocations[0].allocation_w == 300.0
        assert part.utility == pytest.approx(5.0)

    def test_ee_floor_shard_profiles_only_qualifying_rungs(self):
        """Capability curves must not price in rungs the scheduler rejects."""
        registry = ShardRegistry()
        lax = registry.build(ShardSpec("lax", "systemg", 16, 5000.0))
        strict = registry.build(ShardSpec(
            "strict", "systemg", 16, 5000.0, policy="ee_floor", ee_floor=0.9,
        ))
        jobs = [Job("f", "FT", "W")]
        lax_prof = shard_profiles([lax], jobs)[0]
        strict_prof = shard_profiles([strict], jobs)[0]
        # the EE floor prunes configurations, so the strict curve can
        # never promise more than the unconstrained one
        assert len(strict_prof.powers) <= len(lax_prof.powers)
        assert strict_prof.utilities[-1] <= lax_prof.utilities[-1] + 1e-12

    def test_unreachable_ee_floor_profiles_as_useless(self):
        registry = ShardRegistry()
        hopeless = registry.build(ShardSpec(
            "h", "systemg", 16, 5000.0, policy="ee_floor", ee_floor=1.5,
        ))
        prof = shard_profiles([hopeless], [Job("f", "FT", "W")])[0]
        assert prof.value_at(5000.0) == 0.0
        assert prof.floor_w > hopeless.power_envelope_w

    def test_allocation_utilities_match_value_at(self, shards, profiles):
        part = partition_budget(
            shards, 4000.0, jobs=JOBS, strategy="waterfill",
            profiles=profiles,
        )
        for alloc, prof in zip(part.allocations, profiles):
            assert alloc.utility == pytest.approx(
                prof.value_at(alloc.allocation_w)
            )
            assert alloc.floor_w == prof.floor_w

    def test_exhaustive_explosion_guard(self):
        huge = [
            ShardProfile(
                str(i), 1e9,
                np.arange(1.0, 600.0), np.arange(1.0, 600.0),
            )
            for i in range(3)
        ]
        with pytest.raises(ParameterError, match="exhaustive"):
            partition_budget(
                [object()] * 3, 1e9, jobs=JOBS, strategy="exhaustive",
                profiles=huge,
            )


class TestValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ParameterError, match="zero shards"):
            partition_budget([], 100.0, jobs=JOBS)

    def test_nonpositive_budget_rejected(self, shards):
        with pytest.raises(ParameterError, match="positive"):
            partition_budget(shards, 0.0, jobs=JOBS)

    def test_unknown_strategy_rejected(self, shards):
        with pytest.raises(ParameterError, match="strategy"):
            partition_budget(shards, 100.0, jobs=JOBS, strategy="magic")

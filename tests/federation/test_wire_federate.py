"""Wire round-trips for the federate operation and its nested records."""

import json

import pytest

from repro.api.schemas import request_from_dict, response_from_dict
from repro.api.types import FederateRequest, FederateResponse
from repro.errors import WireError
from repro.federation.partition import ShardAllocation
from repro.federation.registry import ShardSpec
from repro.federation.router import ShardPlan
from repro.optimize.schedule import Assignment, Job

REQUEST = FederateRequest(
    budget_w=9000.0,
    strategy="exhaustive",
    metric="ee",
    shards=(
        ShardSpec("big", "systemg", 64, 6000.0),
        ShardSpec("strict", "dori", 8, 1500.0, policy="ee_floor", ee_floor=0.9),
    ),
    jobs=(Job("a", "FT", "B"), Job("b", "EP", "B", 5)),
)

_ASSIGNMENT = Assignment(
    job="a", benchmark="FT", p=16, f=2.8e9, tp=3.0, ep=900.0, ee=0.82,
    avg_power=300.0, rung=2, rungs_available=9,
)

RESPONSE = FederateResponse(
    budget_w=9000.0,
    strategy="exhaustive",
    metric="ee",
    allocations=(
        ShardAllocation(shard="big", allocation_w=5500.0, utility=12.5,
                        floor_w=300.0),
        ShardAllocation(shard="strict", allocation_w=900.0, utility=3.5,
                        floor_w=250.0),
    ),
    plans=(
        ShardPlan(
            shard="big", cluster="SystemG", policy="makespan",
            allocation_w=5500.0, assignments=(_ASSIGNMENT,),
            total_power_w=300.0, makespan_s=3.0, total_energy_j=900.0,
        ),
        ShardPlan(
            shard="strict", cluster="Dori", policy="ee_floor",
            allocation_w=900.0, assignments=(),
            total_power_w=0.0, makespan_s=0.0, total_energy_j=0.0,
        ),
    ),
    total_allocated_w=6400.0,
    total_power_w=300.0,
    site_headroom_w=8700.0,
    makespan_s=3.0,
    total_energy_j=900.0,
)


class TestRequestWire:
    def test_json_round_trip_identity(self):
        payload = json.loads(json.dumps(REQUEST.to_dict()))
        assert request_from_dict(payload) == REQUEST

    def test_nested_shard_defaults_apply(self):
        req = request_from_dict({
            "op": "federate",
            "budget_w": 100.0,
            "shards": [{"name": "m", "power_envelope_w": 90.0}],
        })
        assert req.shards == (ShardSpec("m", power_envelope_w=90.0),)

    def test_nested_job_defaults_apply(self):
        """A curl body may omit niter (and benchmark/klass) per job."""
        req = request_from_dict({
            "op": "federate",
            "jobs": [{"name": "j", "benchmark": "EP", "klass": "W"},
                     {"name": "k"}],
        })
        assert req.jobs == (Job("j", "EP", "W"), Job("k"))

    def test_nested_shard_requires_name_and_envelope(self):
        with pytest.raises(WireError, match="missing ShardSpec"):
            request_from_dict({
                "op": "federate",
                "shards": [{"cluster": "systemg"}],
            })

    def test_unknown_nested_shard_field_rejected(self):
        with pytest.raises(WireError, match="unknown ShardSpec"):
            request_from_dict({
                "op": "federate",
                "shards": [{"name": "m", "power_envelope_w": 1.0, "gpu": 8}],
            })

    def test_mistyped_budget_rejected(self):
        with pytest.raises(WireError, match="budget_w"):
            request_from_dict({"op": "federate", "budget_w": "lots"})


class TestResponseWire:
    def test_json_round_trip_identity(self):
        payload = json.loads(json.dumps(RESPONSE.to_dict()))
        assert response_from_dict(payload) == RESPONSE

    def test_missing_plan_field_rejected(self):
        payload = RESPONSE.to_dict()
        del payload["plans"][0]["makespan_s"]
        with pytest.raises(WireError, match="missing ShardPlan"):
            response_from_dict(payload)

    def test_missing_top_level_field_rejected(self):
        payload = RESPONSE.to_dict()
        del payload["site_headroom_w"]
        with pytest.raises(WireError, match="missing"):
            response_from_dict(payload)

"""Dispatch-cache behavior for federation requests (satellite coverage).

Distinct site specs must never share a response (no cross-request
leakage through the LRU), while identical payloads — whether built in
Python or decoded from the wire — must hit the cache.
"""

import json

import pytest

from repro.api.schemas import request_from_dict
from repro.api.service import cache_info, clear_caches, dispatch
from repro.api.types import FederateRequest
from repro.federation.registry import ShardSpec
from repro.optimize.schedule import Job

SHARDS = (
    ShardSpec("big", "systemg", 32, 5000.0),
    ShardSpec("small", "dori", 8, 1500.0),
)
JOBS = (Job("a", "FT", "W"), Job("b", "EP", "W"))


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _request(**overrides) -> FederateRequest:
    base = dict(budget_w=6000.0, shards=SHARDS, jobs=JOBS)
    base.update(overrides)
    return FederateRequest(**base)


class TestCacheHits:
    def test_identical_requests_share_one_response(self):
        first = dispatch(_request())
        again = dispatch(_request())
        assert again is first
        assert cache_info()["responses"].hits >= 1

    def test_wire_decoded_payload_hits_the_same_entry(self):
        """curl-equivalent bytes and Python construction are one key."""
        first = dispatch(_request())
        wire = json.loads(json.dumps(_request().to_dict()))
        assert dispatch(request_from_dict(wire)) is first


class TestNoCrossRequestLeakage:
    def test_distinct_budgets_get_distinct_responses(self):
        a = dispatch(_request(budget_w=6000.0))
        b = dispatch(_request(budget_w=3000.0))
        assert a is not b
        assert a.total_allocated_w != pytest.approx(b.total_allocated_w)

    def test_distinct_strategies_get_distinct_responses(self):
        a = dispatch(_request(strategy="waterfill"))
        b = dispatch(_request(strategy="proportional"))
        assert a is not b
        assert a.strategy == "waterfill" and b.strategy == "proportional"

    def test_distinct_site_specs_get_distinct_responses(self):
        a = dispatch(_request())
        b = dispatch(_request(shards=(
            ShardSpec("big", "systemg", 32, 4000.0),  # envelope differs
            ShardSpec("small", "dori", 8, 1500.0),
        )))
        assert a is not b
        assert a.allocations != b.allocations

    def test_distinct_queues_get_distinct_responses(self):
        a = dispatch(_request())
        b = dispatch(_request(jobs=(Job("a", "FT", "W"),)))
        assert a is not b
        placed_a = [x.job for p in a.plans for x in p.assignments]
        placed_b = [x.job for p in b.plans for x in p.assignments]
        assert placed_a != placed_b

    def test_responses_echo_their_own_request(self):
        """Each cached entry reports the inputs that produced it."""
        for budget in (3000.0, 4500.0, 6000.0):
            resp = dispatch(_request(budget_w=budget))
            assert resp.budget_w == budget
            assert resp.total_allocated_w <= budget + 1e-6

    def test_registry_mutation_invalidates_cached_responses(self):
        """Rebinding a machine must not serve schedules for the old one."""
        from repro.federation.registry import default_registry

        registry = default_registry()
        registry.register_hypothetical(
            "cachetest", base="systemg", exist_ok=True,
        )
        req_kwargs = dict(shards=(
            ShardSpec("big", "systemg", 32, 5000.0),
            ShardSpec("vary", "cachetest", 8, 2000.0),
        ))
        before = dispatch(_request(**req_kwargs))
        # same wire payload, radically worse machine behind the name
        registry.register_hypothetical(
            "cachetest", base="systemg",
            net_startup_scale=100.0, net_per_byte_scale=100.0,
            cpu_power_scale=3.0, exist_ok=True,
        )
        after = dispatch(_request(**req_kwargs))
        assert after is not before

    def test_federate_and_schedule_caches_do_not_collide(self):
        from repro.api.types import ScheduleRequest

        fed = dispatch(_request())
        sched = dispatch(ScheduleRequest(
            power_budget_w=6000.0, nodes=32, jobs=JOBS,
        ))
        assert fed.op == "federate" and sched.op == "schedule"
        assert type(fed) is not type(sched)

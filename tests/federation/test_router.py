"""The shard router: placement, conservation invariants, policies."""

import pytest

from repro.errors import InfeasibleJobsError, ParameterError
from repro.federation.registry import ShardRegistry, ShardSpec
from repro.federation.router import ROUTING_METRICS, route_jobs
from repro.optimize.schedule import Job

JOBS = [
    Job("fourier", "FT", "W"),
    Job("conjgrad", "CG", "W"),
    Job("montecarlo", "EP", "W"),
]


@pytest.fixture(scope="module")
def registry():
    return ShardRegistry()


@pytest.fixture(scope="module")
def shards(registry):
    return registry.build_site([
        ShardSpec("big", "systemg", 32, 6000.0),
        ShardSpec("small", "dori", 8, 1500.0),
    ])


@pytest.fixture(scope="module")
def federated(shards):
    return route_jobs(shards, JOBS, budget_w=7000.0)


class TestPlacement:
    def test_every_job_placed_exactly_once(self, federated):
        placed = [a.job for plan in federated.plans for a in plan.assignments]
        assert sorted(placed) == sorted(j.name for j in JOBS)

    def test_plans_cover_every_shard(self, federated, shards):
        assert [p.shard for p in federated.plans] == [s.name for s in shards]
        assert [p.cluster for p in federated.plans] == ["SystemG", "Dori"]

    def test_plan_lookup(self, federated):
        assert federated.plan_for("big").shard == "big"
        with pytest.raises(ParameterError, match="no plan"):
            federated.plan_for("ghost")


class TestBudgetConservation:
    """The acceptance invariants, over a sweep of site budgets."""

    @pytest.mark.parametrize("budget", [800.0, 1500.0, 4000.0, 9000.0, 25000.0])
    @pytest.mark.parametrize("strategy", ["proportional", "waterfill"])
    def test_allocations_and_draws_conserve_the_budget(
        self, shards, budget, strategy
    ):
        try:
            fed = route_jobs(
                shards, JOBS, budget_w=budget, strategy=strategy
            )
        except InfeasibleJobsError:
            pytest.skip("budget too small for the queue at all")
        assert fed.total_allocated_w <= budget + 1e-6
        assert fed.total_power_w <= fed.total_allocated_w + 1e-6
        for plan, shard in zip(fed.plans, shards):
            assert plan.total_power_w <= plan.allocation_w + 1e-6
            assert plan.allocation_w <= shard.power_envelope_w + 1e-6
            assert plan.headroom_w >= -1e-6

    def test_aggregates_sum_over_plans(self, federated):
        assert federated.total_power_w == pytest.approx(
            sum(p.total_power_w for p in federated.plans)
        )
        assert federated.total_energy_j == pytest.approx(
            sum(p.total_energy_j for p in federated.plans)
        )
        assert federated.makespan_s == pytest.approx(
            max(p.makespan_s for p in federated.plans)
        )
        assert federated.site_headroom_w == pytest.approx(
            federated.budget_w - federated.total_power_w
        )


class TestMetricsAndPolicies:
    @pytest.mark.parametrize("metric", ROUTING_METRICS)
    def test_metrics_both_route_cleanly(self, shards, metric):
        fed = route_jobs(shards, JOBS, budget_w=7000.0, metric=metric)
        placed = [a.job for plan in fed.plans for a in plan.assignments]
        assert len(placed) == len(JOBS)

    def test_unknown_metric_rejected(self, shards):
        with pytest.raises(ParameterError, match="metric"):
            route_jobs(shards, JOBS, budget_w=7000.0, metric="vibes")

    def test_per_shard_policy_reaches_the_scheduler(self, registry):
        shards = registry.build_site([
            ShardSpec("mk", "systemg", 16, 4000.0, policy="makespan"),
            ShardSpec("en", "dori", 8, 1500.0, policy="energy"),
        ])
        fed = route_jobs(shards, JOBS, budget_w=5000.0)
        assert fed.plan_for("mk").policy == "makespan"
        assert fed.plan_for("en").policy == "energy"

    def test_ee_floor_shard_only_takes_qualifying_placements(self, registry):
        """A strict EE floor on one shard pushes low-EE jobs elsewhere."""
        shards = registry.build_site([
            ShardSpec("strict", "systemg", 32, 6000.0,
                      policy="ee_floor", ee_floor=0.95),
            ShardSpec("lax", "dori", 8, 1500.0),
        ])
        fed = route_jobs(shards, JOBS, budget_w=7000.0)
        for a in fed.plan_for("strict").assignments:
            assert a.ee >= 0.95


class TestInfeasibility:
    def test_empty_queue_rejected(self, shards):
        with pytest.raises(ParameterError, match="empty"):
            route_jobs(shards, [], budget_w=7000.0)

    def test_stranded_jobs_raise_structured_error(self, shards):
        with pytest.raises(InfeasibleJobsError) as err:
            route_jobs(shards, JOBS, budget_w=120.0)
        assert err.value.jobs  # the structured listing
        names = [name for name, _ in err.value.jobs]
        assert set(names) <= {j.name for j in JOBS}

    def test_idle_shard_gets_an_empty_plan(self, registry):
        """A shard the router never picks still reports its allocation."""
        registry2 = ShardRegistry()
        registry2.register_hypothetical(
            "sluggish", base="systemg",
            net_startup_scale=50.0, net_per_byte_scale=50.0,
            cpu_power_scale=2.0,
        )
        shards = registry2.build_site([
            ShardSpec("good", "systemg", 32, 6000.0),
            ShardSpec("bad", "sluggish", 4, 400.0),
        ])
        fed = route_jobs(shards, [Job("solo", "EP", "W")], budget_w=5000.0)
        total = sum(len(p.assignments) for p in fed.plans)
        assert total == 1
        for plan in fed.plans:
            if not plan.assignments:
                assert plan.total_power_w == 0.0
                assert plan.makespan_s == 0.0

"""Shard registry: presets, hypothetical machines, spec validation."""

import pytest

from repro.errors import ConfigurationError, ParameterError
from repro.federation.registry import Shard, ShardRegistry, ShardSpec, default_registry


@pytest.fixture()
def registry():
    return ShardRegistry()


class TestMachines:
    def test_presets_are_preregistered(self, registry):
        assert set(registry.names()) >= {"systemg", "dori"}

    def test_build_resolves_presets(self, registry):
        shard = registry.build(ShardSpec("a", "systemg", 16, 2000.0))
        assert isinstance(shard, Shard)
        assert shard.cluster.name == "SystemG"
        assert len(shard.cluster) == 16
        assert shard.power_envelope_w == 2000.0

    def test_p_values_are_powers_of_two_up_to_size(self, registry):
        shard = registry.build(ShardSpec("a", "systemg", 16, 2000.0))
        assert shard.p_values == [1, 2, 4, 8, 16]

    def test_custom_builder_registration(self, registry):
        from repro.cluster.presets import dori

        registry.register("tiny", lambda nodes: dori(min(nodes, 2)))
        shard = registry.build(ShardSpec("t", "tiny", 8, 500.0))
        assert len(shard.cluster) == 2

    def test_duplicate_registration_rejected_unless_exist_ok(self, registry):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("systemg", lambda n: None)
        registry.register("systemg", lambda n: None, exist_ok=True)

    def test_unknown_machine_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            registry.build(ShardSpec("a", "summit", 16, 2000.0))


class TestHypothetical:
    def test_scales_shift_the_model(self, registry):
        """A 10x slower fabric must hurt EE at scale — Θ1 really changed."""
        registry.register_hypothetical(
            "slow", base="systemg", net_startup_scale=10.0,
            net_per_byte_scale=10.0,
        )
        base = registry.build(ShardSpec("b", "systemg", 16, 4000.0))
        slow = registry.build(ShardSpec("s", "slow", 16, 4000.0))
        model_b, n = base.model_for("FT", "W")
        model_s, _ = slow.model_for("FT", "W")
        assert model_s.ee(n=n, p=16) < model_b.ee(n=n, p=16)

    def test_identity_scales_reproduce_the_base(self, registry):
        registry.register_hypothetical("same", base="systemg")
        base = registry.build(ShardSpec("b", "systemg", 8, 4000.0))
        same = registry.build(ShardSpec("s", "same", 8, 4000.0))
        model_b, n = base.model_for("CG", "W")
        model_s, _ = same.model_for("CG", "W")
        assert model_s.ee(n=n, p=8) == pytest.approx(model_b.ee(n=n, p=8))

    def test_idle_scale_changes_system_idle_power(self, registry):
        registry.register_hypothetical("lean", base="dori", idle_power_scale=0.5)
        base = registry.build(ShardSpec("b", "dori", 4, 2000.0))
        lean = registry.build(ShardSpec("l", "lean", 4, 2000.0))
        assert lean.cluster.p_system_idle == pytest.approx(
            0.5 * base.cluster.p_system_idle
        )

    def test_nonpositive_scale_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="positive"):
            registry.register_hypothetical("bad", cpu_power_scale=0.0)

    def test_unknown_base_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            registry.register_hypothetical("x", base="summit")


class TestSpecValidation:
    def test_empty_name_rejected(self, registry):
        with pytest.raises(ParameterError, match="name"):
            registry.build(ShardSpec("", "systemg", 8, 100.0))

    def test_nonpositive_envelope_rejected(self, registry):
        with pytest.raises(ParameterError, match="envelope"):
            registry.build(ShardSpec("a", "systemg", 8, 0.0))

    def test_nonpositive_nodes_rejected(self, registry):
        with pytest.raises(ParameterError, match="node"):
            registry.build(ShardSpec("a", "systemg", 0, 100.0))

    def test_unknown_policy_rejected(self, registry):
        with pytest.raises(ParameterError, match="policy"):
            registry.build(ShardSpec("a", "systemg", 8, 100.0, policy="fifo"))

    def test_ee_floor_policy_needs_value(self, registry):
        with pytest.raises(ParameterError, match="ee_floor"):
            registry.build(ShardSpec("a", "systemg", 8, 100.0, policy="ee_floor"))

    def test_duplicate_site_names_rejected(self, registry):
        with pytest.raises(ParameterError, match="duplicate"):
            registry.build_site([
                ShardSpec("a", "systemg", 8, 100.0),
                ShardSpec("a", "dori", 4, 100.0),
            ])

    def test_empty_site_rejected(self, registry):
        with pytest.raises(ParameterError, match="at least one shard"):
            registry.build_site([])


class TestCachingAndModels:
    def test_build_is_cached_per_spec(self, registry):
        spec = ShardSpec("a", "systemg", 8, 1000.0)
        assert registry.build(spec) is registry.build(ShardSpec("a", "systemg", 8, 1000.0))

    def test_model_for_is_memoised(self, registry):
        shard = registry.build(ShardSpec("a", "dori", 4, 1000.0))
        first = shard.model_for("EP", "W")
        assert shard.model_for("ep", "w") is first  # case-insensitive key

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()

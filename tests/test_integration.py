"""End-to-end pipelines: calibrate → run → measure → predict → compare.

These are the full §IV/§V workflows wired together, asserting both that
the plumbing composes and that the headline quantitative claims hold in
the reproduction (error bands, Section-V shape claims).
"""

import pytest

from repro.analysis.surface import ee_surface
from repro.cluster import dori, system_g
from repro.core.model import IsoEnergyModel
from repro.core.scaling import ee_frequency_sensitivity
from repro.npb.workloads import benchmark_for
from repro.paperdata import PAPER_MEAN_ERROR_PCT, paper_model
from repro.powerpack.profiler import PowerProfiler
from repro.units import GHZ
from repro.validation import (
    calibrate_machine_params,
    validate,
    validate_suite,
)
from repro.validation.harness import run_benchmark
from repro.validation.study import efficiency_study

FREQS = tuple(f * GHZ for f in (1.6, 2.0, 2.4, 2.8))


@pytest.fixture(scope="module")
def g16():
    return system_g(16)


class TestCalibratedPipeline:
    """The paper's full methodology with *measured* (not spec-sheet) Θ1."""

    def test_calibrated_model_predicts_within_band(self, g16):
        bench, n = benchmark_for("FT", "W", niter=3)
        cal = calibrate_machine_params(g16, cpi_factor=bench.cpi_factor, seed=9)
        model = IsoEnergyModel(cal.params, bench.workload)
        predicted = model.predict_energy(n=n, p=8)

        result = run_benchmark(g16, bench, n, 8, seed=9)
        measured = PowerProfiler(g16).measure_energy(result)
        err = abs(predicted - measured) / measured
        assert err < 0.15  # measured Θ1 adds noise on top of kernel bias


class TestValidationBands:
    """Reproduction of the paper's accuracy numbers (±2.5pp tolerance)."""

    @pytest.mark.parametrize(
        "name,niter", [("EP", None), ("FT", 5), ("CG", 75)]
    )
    def test_mean_error_near_paper_value(self, name, niter):
        cluster = system_g(32)
        errors = []
        for p in (1, 2, 4, 8, 16, 32):
            r = validate(cluster, name, klass="B", p=p, niter=niter, seed=p)
            errors.append(r.abs_error_pct)
        mean = sum(errors) / len(errors)
        assert abs(mean - PAPER_MEAN_ERROR_PCT[name]) < 2.5

    def test_dori_suite_mean_under_five_percent(self, dori4):
        results = validate_suite(
            dori4,
            ("EP", "IS", "LU", "BT"),
            klass="W",
            p=4,
            niter_overrides={"LU": 20, "BT": 20},
        )
        mean = sum(r.abs_error_pct for r in results) / len(results)
        assert mean < 6.0


class TestSectionVShapes:
    """The paper's qualitative scalability claims, end to end."""

    def test_ft_ee_declines_with_p_and_is_frequency_flat(self):
        model, n = paper_model("FT", klass="B")
        surface = ee_surface(
            model, p_values=[1, 4, 16, 64, 256, 1024], f_values=FREQS, n=n
        )
        assert surface.monotone_along_x(increasing=False)
        assert surface.spread_along_y() < 0.02  # "f has little impact"

    def test_ep_is_nearly_iso_energy_efficient(self):
        model, n = paper_model("EP", klass="B")
        surface = ee_surface(
            model, p_values=[1, 16, 256, 1024], f_values=FREQS, n=n
        )
        assert float(surface.values.min()) > 0.98
        assert surface.spread_along_y() < 0.005

    def test_ep_flat_in_problem_size(self):
        model, n = paper_model("EP", klass="B")
        surface = ee_surface(
            model, p_values=[64], n_values=[n / 4, n, 4 * n], f=2.8 * GHZ
        )
        assert surface.spread_along_y() < 1e-6

    def test_cg_prefers_high_frequency(self):
        model, _ = paper_model("CG", klass="B")
        for p in (16, 64, 256):
            ees = [model.ee(n=75000, p=p, f=f) for f in FREQS[1:]]  # ≥ 2.0 GHz
            assert ees == sorted(ees), f"CG EE not rising with f at p={p}"

    def test_cg_more_frequency_sensitive_than_ft(self):
        cg, _ = paper_model("CG", klass="B")
        ft, n_ft = paper_model("FT", klass="B")
        s_cg = ee_frequency_sensitivity(cg, n=75000, p=64, frequencies=FREQS)
        s_ft = ee_frequency_sensitivity(ft, n=n_ft, p=64, frequencies=FREQS)
        assert s_cg > 1.8 * s_ft

    def test_cg_and_ft_recover_with_problem_size(self):
        for name, n in (("CG", 75000.0), ("FT", float(2**25))):
            model, _ = paper_model(name, klass="B")
            low = model.ee(n=n / 4, p=256)
            high = model.ee(n=4 * n, p=256)
            assert high > low + 0.02, name


class TestMeasuredEfficiencyCurves:
    """Figure-2 style: measured efficiency tracks the model's."""

    def test_ft_curves_track_model(self, g16):
        points = efficiency_study(
            g16, "FT", p_values=(1, 2, 4, 8, 16), klass="A", niter=3, seed=4
        )
        for pt in points:
            assert pt.measured_energy_eff == pytest.approx(
                pt.model_energy_eff, abs=0.12
            )
        # both decline overall
        assert points[-1].measured_energy_eff < points[0].measured_energy_eff

    def test_energy_efficiency_below_perf_efficiency_at_scale(self, g16):
        """Figure 2's visual: the energy curve sits below the perf curve."""
        points = efficiency_study(
            g16, "FT", p_values=(1, 4, 16), klass="A", niter=3, seed=4
        )
        last = points[-1]
        assert last.model_energy_eff < 1.0
        assert last.measured_energy_eff < 1.0


class TestCrossClusterContrast:
    def test_same_code_less_efficient_on_slower_fabric(self):
        """FT's EE at p=8 should be worse on Dori (GigE) than SystemG (IB)."""
        from repro.validation.calibration import derive_machine_params

        bench, n = benchmark_for("FT", "A", niter=3)
        ee = {}
        for cluster in (system_g(8), dori(8)):
            machine = derive_machine_params(cluster, cpi_factor=bench.cpi_factor)
            model = IsoEnergyModel(machine, bench.workload)
            ee[cluster.name] = model.ee(n=n, p=8)
        assert ee["Dori"] < ee["SystemG"]

"""PowerProfile container and persistence round-trips."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.powerpack.io import profile_from_json, profile_to_csv, profile_to_json
from repro.powerpack.profile import ComponentSeries, PowerProfile
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine


@pytest.fixture()
def profile(systemg8):
    def prog(ctx):
        yield from ctx.phase("phase-a")
        yield from ctx.compute(instructions=1e9, mem_accesses=1e6)

    res = SimEngine(systemg8, SimConfig()).run(prog, size=2)
    return PowerProfiler(systemg8, sample_period=res.total_time / 50).profile(
        res, label="test-run"
    )


class TestComponentSeries:
    def test_rejects_unknown_component(self):
        with pytest.raises(MeasurementError, match="unknown component"):
            ComponentSeries(
                node=0,
                component="gpu",
                times=np.array([0.0, 1.0]),
                watts=np.array([1.0, 1.0]),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(MeasurementError):
            ComponentSeries(
                node=0,
                component="cpu",
                times=np.array([0.0, 1.0]),
                watts=np.array([1.0]),
            )

    def test_energy_integration(self):
        s = ComponentSeries(
            node=0,
            component="cpu",
            times=np.array([0.0, 1.0, 2.0]),
            watts=np.array([10.0, 10.0, 30.0]),
        )
        assert s.energy() == pytest.approx(10.0 + 20.0)

    def test_energy_needs_samples(self):
        s = ComponentSeries(
            node=0, component="cpu", times=np.array([0.0]), watts=np.array([1.0])
        )
        with pytest.raises(MeasurementError):
            s.energy()


class TestPowerProfile:
    def test_nodes_listed(self, profile):
        assert profile.nodes() == [0, 1]

    def test_node_series_lookup(self, profile):
        s = profile.node_series(0, "cpu")
        assert s.node == 0 and s.component == "cpu"
        with pytest.raises(MeasurementError):
            profile.node_series(7, "cpu")

    def test_system_series_sums_nodes(self, profile):
        sys_cpu = profile.system_series("cpu")
        per_node = [profile.node_series(n, "cpu").watts for n in profile.nodes()]
        assert np.allclose(sys_cpu.watts, np.sum(per_node, axis=0))

    def test_total_power_series_is_all_components(self, profile):
        _, total = profile.total_power_series()
        per_comp = sum(
            profile.system_series(c).watts
            for c in ("cpu", "memory", "io", "motherboard")
        )
        assert np.allclose(total, per_comp)

    def test_sampled_energy_unknown_component(self, profile):
        with pytest.raises(MeasurementError):
            profile.sampled_energy("gpu")


class TestPersistence:
    def test_json_roundtrip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        profile_to_json(profile, path)
        back = profile_from_json(path)
        assert back.label == "test-run"
        assert back.duration == pytest.approx(profile.duration)
        assert back.exact_energy == pytest.approx(profile.exact_energy)
        assert len(back.series) == len(profile.series)
        assert np.allclose(back.series[0].watts, profile.series[0].watts)
        assert back.phase_marks == profile.phase_marks

    def test_csv_export_structure(self, profile, tmp_path):
        path = tmp_path / "profile.csv"
        profile_to_csv(profile, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time_s,node,component,watts"
        n_samples = len(profile.series[0].times)
        assert len(lines) == 1 + len(profile.series) * n_samples

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(MeasurementError):
            profile_from_json(tmp_path / "missing.json")

"""Peak-power statistics on profiles."""

import pytest

from repro.errors import MeasurementError
from repro.npb.ft import FtBenchmark
from repro.powerpack.analysis import (
    average_power,
    peak_power,
    power_headroom_ratio,
    sustained_power_above,
)
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine


@pytest.fixture()
def ft_profile(systemg8):
    bench, _ = FtBenchmark.for_class("S", niter=3)
    n = bench.n_for_class("S")
    config = SimConfig(alpha=bench.alpha, cpi_factor=bench.cpi_factor)
    res = SimEngine(systemg8, config).run(bench.make_program(n, 2), size=2)
    return PowerProfiler(systemg8, sample_period=res.total_time / 200).profile(res)


def test_peak_at_least_average(ft_profile):
    assert peak_power(ft_profile) >= average_power(ft_profile)


def test_headroom_ratio_above_one_for_bursty_code(ft_profile):
    # FT's phase structure makes its draw bursty
    assert power_headroom_ratio(ft_profile) > 1.02


def test_peak_bounded_by_hardware(ft_profile, systemg8):
    ceiling = 2 * systemg8.nodes[0].power.p_system_peak
    assert peak_power(ft_profile) <= ceiling


def test_sustained_time_above_thresholds(ft_profile):
    duration = ft_profile.duration
    always = sustained_power_above(ft_profile, 0.0)
    never = sustained_power_above(ft_profile, 1e9)
    assert never == 0.0
    assert always == pytest.approx(duration, rel=0.05)
    mid = sustained_power_above(ft_profile, average_power(ft_profile))
    assert 0.0 < mid < duration


def test_threshold_validation(ft_profile):
    with pytest.raises(MeasurementError):
        sustained_power_above(ft_profile, -1.0)

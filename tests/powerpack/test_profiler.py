"""PowerPack profiler: attribution rules and energy integration."""

import pytest

from repro.powerpack.analysis import (
    average_power,
    component_energy_breakdown,
    energy_delay_product,
    figure10_decomposition,
)
from repro.powerpack.profiler import PowerProfiler
from repro.simmpi.engine import SimConfig, SimEngine


def run_simple(cluster, *, alpha=1.0, size=1, instructions=1e8, mem=1e5):
    def prog(ctx):
        yield from ctx.phase("work")
        yield from ctx.compute(instructions=instructions, mem_accesses=mem)

    return SimEngine(cluster, SimConfig(alpha=alpha)).run(prog, size=size)


def test_exact_energy_matches_closed_form(systemg8):
    res = run_simple(systemg8)
    node = systemg8.nodes[0]
    t = res.total_time
    expected = (
        node.power.p_system_idle * t
        + 1e8 * node.cpu.tc() * node.power.cpu.delta_p
        + 1e5 * node.memory.tm * node.power.memory.delta_p
    )
    measured = PowerProfiler(systemg8).measure_energy(res)
    assert measured == pytest.approx(expected)


def test_sampled_energy_approximates_exact(systemg8):
    res = run_simple(systemg8, instructions=5e9)
    profile = PowerProfiler(systemg8, sample_period=res.total_time / 500).profile(res)
    assert profile.sampled_energy() == pytest.approx(profile.exact_energy, rel=0.02)


def test_idle_only_run_draws_idle_power(systemg8):
    def prog(ctx):
        yield from ctx.sleep(5.0)

    res = SimEngine(systemg8, SimConfig()).run(prog, size=1)
    e = PowerProfiler(systemg8).measure_energy(res)
    assert e == pytest.approx(systemg8.nodes[0].power.p_system_idle * 5.0)


def test_multi_node_idle_power_counted_per_node(systemg8):
    res = run_simple(systemg8, size=4)
    e4 = PowerProfiler(systemg8).exact_component_energies(res)
    # motherboard (always-on) energy must scale with the 4 used nodes
    expected = 4 * systemg8.nodes[0].power.others * res.total_time
    assert e4["motherboard"] == pytest.approx(expected)


def test_colocated_ranks_share_component_delta(systemg8):
    """Two ranks on one node cannot double-count the package ΔP."""

    def prog(ctx):
        yield from ctx.compute(instructions=1e8)

    res1 = SimEngine(systemg8, SimConfig(procs_per_node=1)).run(prog, 1)
    res2 = SimEngine(systemg8, SimConfig(procs_per_node=2)).run(prog, 2)
    p = PowerProfiler(systemg8)
    cpu1 = p.exact_component_energies(res1)["cpu"]
    cpu2 = p.exact_component_energies(res2)["cpu"]
    # same active CPU energy: 2 ranks × half the per-rank ΔP share
    assert cpu2 == pytest.approx(cpu1, rel=1e-9)


def test_overlap_cuts_idle_energy_not_active(systemg8):
    e_full = PowerProfiler(systemg8).exact_component_energies(
        run_simple(systemg8, alpha=1.0, instructions=1e9, mem=1e7)
    )
    e_tight = PowerProfiler(systemg8).exact_component_energies(
        run_simple(systemg8, alpha=0.8, instructions=1e9, mem=1e7)
    )
    # the active portion is identical; only the idle floor shrinks
    node = systemg8.nodes[0]
    active_cpu = 1e9 * node.cpu.tc() * node.power.cpu.delta_p
    assert e_full["cpu"] - active_cpu > e_tight["cpu"] - active_cpu


def test_meter_noise_perturbs_samples_not_exact(systemg8):
    res = run_simple(systemg8, instructions=1e9)
    noisy = PowerProfiler(systemg8, meter_sigma=0.05, seed=2).profile(res)
    clean = PowerProfiler(systemg8).profile(res)
    assert noisy.exact_energy == pytest.approx(clean.exact_energy)
    assert noisy.sampled_energy() != pytest.approx(clean.sampled_energy(), rel=1e-6)


def test_phase_marks_recorded(systemg8):
    res = run_simple(systemg8)
    profile = PowerProfiler(systemg8).profile(res)
    assert ("work" in dict((name, t) for t, name in profile.phase_marks))


class TestAnalysis:
    def test_figure10_decomposition_sums_to_total(self, systemg8):
        res = run_simple(systemg8, instructions=1e9, mem=1e6)
        profile = PowerProfiler(systemg8).profile(res)
        decomp = figure10_decomposition(profile, systemg8, res)
        assert decomp.total == pytest.approx(profile.exact_energy, rel=1e-9)

    def test_figure10_active_cpu_area(self, systemg8):
        res = run_simple(systemg8, instructions=1e9, mem=0.0)
        profile = PowerProfiler(systemg8).profile(res)
        decomp = figure10_decomposition(profile, systemg8, res)
        node = systemg8.nodes[0]
        assert decomp.active["cpu"] == pytest.approx(
            1e9 * node.cpu.tc() * node.power.cpu.delta_p
        )
        assert decomp.active["memory"] == pytest.approx(0.0)

    def test_breakdown_totals(self, systemg8):
        res = run_simple(systemg8)
        profile = PowerProfiler(systemg8).profile(res)
        bd = component_energy_breakdown(profile)
        assert bd["total"] == pytest.approx(
            bd["cpu"] + bd["memory"] + bd["io"] + bd["motherboard"]
        )

    def test_average_power_and_edp(self, systemg8):
        res = run_simple(systemg8)
        profile = PowerProfiler(systemg8).profile(res)
        assert average_power(profile) == pytest.approx(
            profile.exact_energy / profile.duration
        )
        assert energy_delay_product(profile) == pytest.approx(
            profile.exact_energy * profile.duration
        )

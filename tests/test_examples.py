"""Every shipped example must run clean end to end.

Executed as subprocesses so import-time failures, stale APIs, and
output-file handling are all exercised exactly as a user would hit them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"

#: examples import `repro` from the source tree, which the subprocess
#: (unlike the test session) does not inherit — prepend it explicitly.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(SRC_DIR)]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
}


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples that write artifacts do so in a sandbox
        capture_output=True,
        text=True,
        timeout=300,
        env=ENV,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_mentions_key_quantities(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=300,
        env=ENV,
    )
    out = result.stdout
    assert "EE" in out and "bottleneck" in out
    assert "EE >= 0.8" in out or "0.8" in out

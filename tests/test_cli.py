"""Command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def test_evaluate_basic(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--benchmark", "FT", "--p", "16", "--klass", "B"
    )
    assert code == 0
    assert "EE" in out and "bottleneck" in out
    assert "FT.B on SystemG" in out


def test_evaluate_with_frequency(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--benchmark", "CG", "--p", "16", "--freq", "2.0"
    )
    assert code == 0
    assert "2.00 GHz" in out


def test_sweep(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "--benchmark", "EP", "--p-values", "1,4,16"
    )
    assert code == 0
    lines = [l for l in out.splitlines() if l.strip()]
    assert len(lines) == 5  # header + separator + 3 rows


def test_surface_frequency_axis(capsys):
    code, out, _ = run_cli(
        capsys, "surface", "--benchmark", "FT", "--axis", "f",
        "--p-values", "1,16,256",
    )
    assert code == 0
    assert "scale:" in out


def test_surface_problem_size_axis(capsys):
    code, out, _ = run_cli(
        capsys, "surface", "--benchmark", "CG", "--axis", "n",
        "--p-values", "1,16", "--n-factors", "0.5,1,2",
    )
    assert code == 0
    assert "EE surface" in out


def test_validate_runs_simulation(capsys):
    code, out, _ = run_cli(
        capsys, "validate", "--benchmark", "EP", "--cluster", "dori",
        "--klass", "S", "--p", "4",
    )
    assert code == 0
    assert "|error|" in out


def test_optimize_power_budget(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "ft", "--klass", "B",
        "--cluster", "systemg", "--power-budget", "3000",
    )
    assert code == 0
    assert "max_speedup_under_power" in out
    assert "EE" in out and "avg power" in out


def test_optimize_benchmark_is_case_insensitive(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "cg", "--power-budget", "5000",
        "--p-values", "1,4,16",
    )
    assert code == 0
    assert "CG.B on SystemG" in out


def test_optimize_contour_and_pareto(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--target-ee", "0.8",
        "--pareto", "--p-values", "1,4,16",
    )
    assert code == 0
    assert "iso-EE contour" in out
    assert "Pareto frontier" in out


def test_optimize_show_grid_heatmap(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--show-grid",
        "--p-values", "1,16",
    )
    assert code == 0
    assert "scale:" in out


def test_optimize_without_mode_is_clean_error(capsys):
    code, _, err = run_cli(capsys, "optimize", "--benchmark", "FT")
    assert code == 2
    assert "nothing to optimize" in err


def test_optimize_infeasible_budget_is_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--power-budget", "1",
    )
    assert code == 2
    assert "no (p, f) fits" in err


def test_unknown_cluster_is_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "evaluate", "--cluster", "summit", "--p", "4"
    )
    assert code == 2
    assert "unknown cluster" in err


def test_unknown_benchmark_rejected_by_argparse(capsys):
    with pytest.raises(SystemExit):
        main(["evaluate", "--benchmark", "XX"])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import must not execute main)


# -- the API facade behind the CLI -------------------------------------------


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert any(ch.isdigit() for ch in out)


def test_json_flag_emits_the_server_payload(capsys):
    """Acceptance: --json equals the HTTP payload for the same request."""
    import json

    from repro.api import BudgetQuery, dispatch

    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--power-budget", "3000",
        "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload == dispatch(BudgetQuery(
        benchmark="FT", budget_w=3000.0,
        p_values=(1, 2, 4, 8, 16, 32, 64, 128),
        f_values_ghz=(1.6, 2.0, 2.4, 2.8),
    )).to_dict()


def test_json_flag_on_evaluate_round_trips(capsys):
    import json

    from repro.api import response_from_dict

    code, out, _ = run_cli(
        capsys, "evaluate", "--benchmark", "CG", "--p", "16", "--json"
    )
    assert code == 0
    resp = response_from_dict(json.loads(out))
    assert resp.point.p == 16
    assert resp.model == "CG.B on SystemG"


def test_json_flag_with_multiple_optimize_sections_is_a_list(capsys):
    import json

    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--power-budget", "3000",
        "--pareto", "--p-values", "1,4", "--json",
    )
    assert code == 0
    payloads = json.loads(out)
    assert [p["op"] for p in payloads] == ["budget", "pareto"]


def test_sweep_preset_sized_from_max_p(capsys):
    """The cluster-sizing fix: huge p sweeps resolve instead of lying."""
    code, out, _ = run_cli(
        capsys, "sweep", "--benchmark", "FT", "--p-values", "1,1024"
    )
    assert code == 0
    assert "1024" in out


def test_serve_exits_cleanly_when_port_is_busy():
    import socket
    import subprocess
    import sys
    from pathlib import Path

    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    src = Path(__file__).resolve().parent.parent / "src"
    try:
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--port", str(port)],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
    finally:
        blocker.close()
    assert result.returncode == 2
    assert "cannot listen" in result.stderr
    assert "Traceback" not in result.stderr


@pytest.mark.parametrize("workers", ["0", "-1", "99"])
def test_serve_rejects_out_of_range_workers(capsys, workers):
    """--workers 0 must be a clean error, not a silent single worker."""
    code, _, err = run_cli(capsys, "serve", "--workers", workers)
    assert code == 2
    assert "--workers must be between" in err


def test_federate_text_output(capsys):
    code, out, _ = run_cli(
        capsys, "federate", "--budget", "7000",
        "--shard", "main:systemg:32:5000",
        "--shard", "edge:dori:8:1500:energy",
        "--job", "fourier:FT:W", "--job", "montecarlo:EP:W",
    )
    assert code == 0
    assert "site budget 7,000 W" in out
    assert "main" in out and "edge" in out
    assert "site draw" in out


def test_federate_json_matches_dispatch(capsys):
    """--json must be byte-identical to the POST /v1/federate payload."""
    import json

    from repro.api import FederateRequest, dispatch
    from repro.federation import ShardSpec
    from repro.optimize.schedule import Job

    code, out, _ = run_cli(
        capsys, "federate", "--budget", "7000",
        "--shard", "main:systemg:32:5000",
        "--job", "fourier:FT:W", "--json",
    )
    assert code == 0
    want = dispatch(FederateRequest(
        budget_w=7000.0,
        shards=(ShardSpec("main", "systemg", 32, 5000.0),),
        jobs=(Job("fourier", "FT", "W"),),
    )).to_dict()
    assert json.loads(out) == want


def test_federate_shard_with_ee_floor_policy(capsys):
    code, out, _ = run_cli(
        capsys, "federate", "--budget", "7000",
        "--shard", "strict:systemg:32:5000:ee_floor:0.7",
        "--job", "fourier:FT:W",
    )
    assert code == 0
    assert "ee_floor" in out


def test_federate_bad_shard_spec_is_a_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "federate", "--budget", "7000",
        "--shard", "justaname", "--job", "a:FT:W",
    )
    assert code == 2
    assert "name:cluster:nodes:envelope" in err


def test_federate_requires_shards_and_jobs(capsys):
    code, _, err = run_cli(capsys, "federate", "--budget", "7000")
    assert code == 2
    assert "--shard" in err


# -- batch ------------------------------------------------------------------


def _write_batch_file(tmp_path, items):
    import json

    path = tmp_path / "batch.json"
    path.write_text(json.dumps(items))
    return str(path)


def test_batch_text_output(capsys, tmp_path):
    path = _write_batch_file(tmp_path, [
        {"op": "budget", "benchmark": "FT", "budget_w": 3000.0},
        {"op": "budget", "benchmark": "FT", "budget_w": -1.0},
        {"op": "sweep", "p_values": [1, 4, 16]},
    ])
    code, out, _ = run_cli(capsys, "batch", "--file", path)
    assert code == 0
    assert "2/3 items ok" in out
    assert "ParameterError" in out
    assert "power budget must be positive" in out


def test_batch_accepts_the_full_envelope(capsys, tmp_path):
    path = _write_batch_file(tmp_path, {
        "op": "batch",
        "items": [{"op": "evaluate", "p": 16}],
    })
    code, out, _ = run_cli(capsys, "batch", "--file", path)
    assert code == 0
    assert "1/1 items ok" in out


def test_batch_json_matches_dispatch(capsys, tmp_path):
    import json

    from repro.api.service import dispatch
    from repro.api.types import BatchRequest, BudgetQuery, SweepRequest

    path = _write_batch_file(tmp_path, [
        {"op": "budget", "benchmark": "FT", "budget_w": 3000.0},
        {"op": "sweep", "p_values": [1, 4]},
    ])
    code, out, _ = run_cli(capsys, "batch", "--file", path, "--json")
    assert code == 0
    expected = dispatch(BatchRequest(items=(
        BudgetQuery(benchmark="FT", budget_w=3000.0),
        SweepRequest(p_values=(1, 4)),
    ))).to_dict()
    assert json.loads(out) == expected


def test_batch_reads_stdin_by_default(capsys, monkeypatch):
    import io
    import json
    import sys

    monkeypatch.setattr(sys, "stdin", io.StringIO(json.dumps(
        [{"op": "evaluate", "p": 4}]
    )))
    code, out, _ = run_cli(capsys, "batch")
    assert code == 0
    assert "1/1 items ok" in out


def test_batch_bad_json_is_a_clean_error(capsys, tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    code, _, err = run_cli(capsys, "batch", "--file", str(path))
    assert code == 2
    assert "not valid JSON" in err


def test_batch_missing_file_is_a_clean_error(capsys):
    code, _, err = run_cli(capsys, "batch", "--file", "/nonexistent.json")
    assert code == 2
    assert "cannot read" in err


# -- cache-stats ------------------------------------------------------------


def test_cache_stats_text(capsys):
    code, out, _ = run_cli(capsys, "cache-stats")
    assert code == 0
    assert "grid store" in out
    assert "contour pairs" in out
    assert "trace store" in out
    assert "timeseries" in out


def test_cache_stats_json_shape(capsys):
    import json

    code, out, _ = run_cli(capsys, "cache-stats", "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {
        "responses", "models", "spaces", "grid_store",
        "trace_store", "timeseries",
    }
    assert "superset_hits" in payload["grid_store"]
    assert "hetero_hits" in payload["grid_store"]
    assert "recent_traces" in payload["trace_store"]
    assert "capacity" in payload["timeseries"]


# -- simulate ---------------------------------------------------------------


SIM_ARGS = [
    "simulate", "--budget", "7000",
    "--shard", "alpha:systemg:16:4000",
    "--shard", "beta:dori:8:2000:energy",
    "--job", "ft:FT:B", "--rate", "0.05",
    "--horizon", "600", "--seed", "42",
]


def test_simulate_text_report(capsys):
    code, out, _ = run_cli(capsys, *SIM_ARGS)
    assert code == 0
    assert "simulated" in out and "arrivals" in out
    assert "started / finished" in out
    assert "alpha" in out and "beta" in out


def test_simulate_json_is_reproducible_and_matches_dispatch(capsys):
    import json

    from repro.api.service import clear_caches, dispatch
    from repro.api.types import SimulateRequest
    from repro.federation.registry import ShardSpec
    from repro.optimize.schedule import Job
    from repro.sim import DemandSpec, ScenarioSpec

    code, one, _ = run_cli(capsys, *SIM_ARGS, "--json")
    assert code == 0
    clear_caches()
    code, two, _ = run_cli(capsys, *SIM_ARGS, "--json")
    assert code == 0
    assert one == two  # byte-identical across runs
    expected = dispatch(SimulateRequest(scenario=ScenarioSpec(
        shards=(ShardSpec("alpha", "systemg", 16, 4000.0),
                ShardSpec("beta", "dori", 8, 2000.0, policy="energy")),
        budget_w=7000.0,
        demand=DemandSpec(kind="poisson", rate_per_s=0.05,
                          jobs=(Job("ft", "FT", "B"),)),
        horizon_s=600.0,
        seed=42,
    ))).to_dict()
    assert json.loads(one) == expected


def test_simulate_scenario_file(capsys, tmp_path):
    import json

    path = tmp_path / "scenario.json"
    path.write_text(json.dumps({
        "shards": [{"name": "solo", "cluster": "systemg", "nodes": 4,
                    "power_envelope_w": 1000.0}],
        "budget_w": 500.0,
        "demand": {"kind": "burst", "burst_size": 2, "burst_every_s": 300.0},
        "horizon_s": 400.0,
    }))
    code, out, _ = run_cli(capsys, "simulate", "--file", str(path))
    assert code == 0
    assert "simulated" in out


def test_simulate_needs_shards_or_file(capsys):
    code, _, err = run_cli(capsys, "simulate", "--budget", "100")
    assert code == 2
    assert "error:" in err


def test_simulate_bad_json_file_is_a_clean_error(capsys, tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    code, _, err = run_cli(capsys, "simulate", "--file", str(path))
    assert code == 2
    assert err.startswith("error:")
    assert "not valid JSON" in err


def test_simulate_wire_invalid_scenario_is_a_clean_error(capsys, tmp_path):
    import json

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"shards": [], "weather": "sunny"}))
    code, _, err = run_cli(capsys, "simulate", "--file", str(path))
    assert code == 2
    assert err.startswith("error:")
    assert "unknown ScenarioSpec" in err


def test_unexpected_exception_is_structured_not_a_traceback(capsys,
                                                            monkeypatch):
    import repro.cli as cli

    def boom(_req):
        raise RuntimeError("wires crossed")

    monkeypatch.setattr(cli, "dispatch", boom)
    code, _, err = run_cli(capsys, "metrics")
    assert code == 3
    assert err == "error [RuntimeError]: wires crossed\n"


# -- retained telemetry: metrics --filter, trace, timeseries, alerts --------


def test_metrics_filter_prefix(capsys):
    code, out, _ = run_cli(
        capsys, "metrics", "--filter", "repro_build_info"
    )
    assert code == 0
    assert 'repro_build_info{' in out
    payload_lines = [
        l for l in out.splitlines() if l and not l.startswith("#")
    ]
    assert payload_lines
    assert all(l.startswith("repro_build_info") for l in payload_lines)


def test_metrics_filter_json_matches_dispatch(capsys):
    import json

    from repro.api.service import dispatch
    from repro.api.types import MetricsRequest

    code, out, _ = run_cli(
        capsys, "metrics", "--filter", "repro_build_info", "--json"
    )
    assert code == 0
    expected = dispatch(MetricsRequest(filter="repro_build_info")).to_dict()
    assert json.dumps(expected, indent=2) + "\n" == out


def _retain_trace(trace_id: str):
    from repro.api.service import dispatch
    from repro.api.types import BudgetQuery
    from repro.obs import trace_context

    with trace_context(trace_id):
        dispatch(BudgetQuery(budget_w=3000.0))


def test_trace_text_waterfall(capsys):
    _retain_trace("cli-trace-text")
    code, out, _ = run_cli(capsys, "trace", "cli-trace-text")
    assert code == 0
    lines = out.splitlines()
    assert lines[0].startswith("trace cli-trace-text")
    assert "dispatch.budget" in out
    assert "█" in out and " ms" in out


def test_trace_json_is_byte_identical_to_dispatch(capsys):
    import json

    from repro.api.service import dispatch
    from repro.api.types import TraceRequest

    _retain_trace("cli-trace-json")
    code, out, _ = run_cli(capsys, "trace", "cli-trace-json", "--json")
    assert code == 0
    expected = dispatch(TraceRequest(trace_id="cli-trace-json")).to_dict()
    assert json.dumps(expected, indent=2) + "\n" == out


def test_trace_unknown_id_is_clean_error(capsys):
    code, _, err = run_cli(capsys, "trace", "never-recorded-here")
    assert code == 2
    assert "not retained" in err


def test_timeseries_text_table(capsys):
    from repro.api.service import dispatch
    from repro.api.types import BudgetQuery

    dispatch(BudgetQuery(budget_w=3000.0))
    code, out, _ = run_cli(
        capsys, "timeseries", "--window", "600", "--prefix", "repro_dispatch"
    )
    assert code == 0
    assert out.startswith("rollup over the last 600 s")
    assert "repro_dispatch_total" in out
    assert "rate/s" in out and "p99" in out


def test_timeseries_json_round_trips(capsys):
    import json

    from repro.api import response_from_dict

    code, out, _ = run_cli(capsys, "timeseries", "--json")
    assert code == 0
    resp = response_from_dict(json.loads(out))
    assert resp.op == "timeseries"
    assert resp.samples >= 1


def test_timeseries_bad_window_is_clean_error(capsys):
    code, _, err = run_cli(capsys, "timeseries", "--window", "0")
    assert code == 2
    assert "window_s" in err


def test_alerts_text_summary(capsys):
    code, out, _ = run_cli(capsys, "alerts")
    assert code == 0
    first = out.splitlines()[0]
    assert "firing" in first and "pending" in first and "ok" in first
    assert "http-latency-p99" in out
    assert "sim-slo-violations" in out


def test_alerts_json_matches_dispatch_shape(capsys):
    import json

    code, out, _ = run_cli(capsys, "alerts", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["op"] == "alerts"
    assert {a["rule"] for a in payload["alerts"]} >= {
        "http-latency-p99", "http-error-rate",
        "http-availability-burn", "sim-slo-violations",
    }
    for alert in payload["alerts"]:
        assert alert["state"] in ("ok", "pending", "firing")

"""Command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def test_evaluate_basic(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--benchmark", "FT", "--p", "16", "--klass", "B"
    )
    assert code == 0
    assert "EE" in out and "bottleneck" in out
    assert "FT.B on SystemG" in out


def test_evaluate_with_frequency(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--benchmark", "CG", "--p", "16", "--freq", "2.0"
    )
    assert code == 0
    assert "2.00 GHz" in out


def test_sweep(capsys):
    code, out, _ = run_cli(
        capsys, "sweep", "--benchmark", "EP", "--p-values", "1,4,16"
    )
    assert code == 0
    lines = [l for l in out.splitlines() if l.strip()]
    assert len(lines) == 5  # header + separator + 3 rows


def test_surface_frequency_axis(capsys):
    code, out, _ = run_cli(
        capsys, "surface", "--benchmark", "FT", "--axis", "f",
        "--p-values", "1,16,256",
    )
    assert code == 0
    assert "scale:" in out


def test_surface_problem_size_axis(capsys):
    code, out, _ = run_cli(
        capsys, "surface", "--benchmark", "CG", "--axis", "n",
        "--p-values", "1,16", "--n-factors", "0.5,1,2",
    )
    assert code == 0
    assert "EE surface" in out


def test_validate_runs_simulation(capsys):
    code, out, _ = run_cli(
        capsys, "validate", "--benchmark", "EP", "--cluster", "dori",
        "--klass", "S", "--p", "4",
    )
    assert code == 0
    assert "|error|" in out


def test_optimize_power_budget(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "ft", "--klass", "B",
        "--cluster", "systemg", "--power-budget", "3000",
    )
    assert code == 0
    assert "max_speedup_under_power" in out
    assert "EE" in out and "avg power" in out


def test_optimize_benchmark_is_case_insensitive(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "cg", "--power-budget", "5000",
        "--p-values", "1,4,16",
    )
    assert code == 0
    assert "CG.B on SystemG" in out


def test_optimize_contour_and_pareto(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--target-ee", "0.8",
        "--pareto", "--p-values", "1,4,16",
    )
    assert code == 0
    assert "iso-EE contour" in out
    assert "Pareto frontier" in out


def test_optimize_show_grid_heatmap(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--show-grid",
        "--p-values", "1,16",
    )
    assert code == 0
    assert "scale:" in out


def test_optimize_without_mode_is_clean_error(capsys):
    code, _, err = run_cli(capsys, "optimize", "--benchmark", "FT")
    assert code == 2
    assert "nothing to optimize" in err


def test_optimize_infeasible_budget_is_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "optimize", "--benchmark", "FT", "--power-budget", "1",
    )
    assert code == 2
    assert "no (p, f) fits" in err


def test_unknown_cluster_is_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "evaluate", "--cluster", "summit", "--p", "4"
    )
    assert code == 2
    assert "unknown cluster" in err


def test_unknown_benchmark_rejected_by_argparse(capsys):
    with pytest.raises(SystemExit):
        main(["evaluate", "--benchmark", "XX"])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import must not execute main)

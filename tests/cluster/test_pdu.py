"""Power distribution unit: switching and sampling."""

import math

import pytest

from repro.cluster.pdu import OutletSample, PowerDistributionUnit
from repro.errors import ConfigurationError, MeasurementError


def test_outlets_default_on():
    pdu = PowerDistributionUnit(outlets=4)
    assert all(pdu.is_on(i) for i in range(4))


def test_power_off_on_cycle():
    pdu = PowerDistributionUnit(outlets=2)
    pdu.power_off(1)
    assert not pdu.is_on(1)
    assert pdu.is_on(0)
    pdu.power_on(1)
    assert pdu.is_on(1)


def test_out_of_range_outlet_rejected():
    pdu = PowerDistributionUnit(outlets=2)
    with pytest.raises(ConfigurationError):
        pdu.is_on(2)
    with pytest.raises(ConfigurationError):
        pdu.power_off(-1)


def test_sampling_constant_power():
    pdu = PowerDistributionUnit(outlets=1, sample_period=0.5, quantum=0.0)
    samples = pdu.sample_timeline(0, lambda t: 100.0, duration=2.0)
    assert len(samples) == 5  # t = 0, 0.5, 1.0, 1.5, 2.0
    assert all(s.watts == pytest.approx(100.0) for s in samples)


def test_sampling_quantizes_to_whole_watts():
    pdu = PowerDistributionUnit(outlets=1, sample_period=1.0, quantum=1.0)
    samples = pdu.sample_timeline(0, lambda t: 99.6, duration=1.0)
    assert all(s.watts == pytest.approx(100.0) for s in samples)


def test_powered_off_outlet_reads_zero():
    pdu = PowerDistributionUnit(outlets=1, sample_period=1.0)
    pdu.power_off(0)
    samples = pdu.sample_timeline(0, lambda t: 100.0, duration=2.0)
    assert all(s.watts == 0.0 for s in samples)


def test_negative_reading_rejected():
    pdu = PowerDistributionUnit(outlets=1)
    with pytest.raises(MeasurementError, match="negative power"):
        pdu.sample_timeline(0, lambda t: -1.0, duration=2.0)


def test_energy_trapezoidal():
    samples = [
        OutletSample(time=0.0, watts=100.0),
        OutletSample(time=1.0, watts=100.0),
        OutletSample(time=2.0, watts=200.0),
    ]
    # 100 J over [0,1] + 150 J over [1,2]
    assert PowerDistributionUnit.energy(samples) == pytest.approx(250.0)


def test_energy_needs_two_samples():
    with pytest.raises(MeasurementError):
        PowerDistributionUnit.energy([OutletSample(time=0.0, watts=1.0)])


def test_energy_rejects_unordered_samples():
    samples = [
        OutletSample(time=1.0, watts=1.0),
        OutletSample(time=0.0, watts=1.0),
    ]
    with pytest.raises(MeasurementError, match="time-ordered"):
        PowerDistributionUnit.energy(samples)


def test_sampling_ramp_integrates_close_to_analytic():
    pdu = PowerDistributionUnit(outlets=1, sample_period=0.01, quantum=0.0)
    samples = pdu.sample_timeline(0, lambda t: 10.0 * t, duration=10.0)
    energy = PowerDistributionUnit.energy(samples)
    assert math.isclose(energy, 500.0, rel_tol=1e-3)

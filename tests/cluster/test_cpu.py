"""CPU model: DVFS states, tc = CPI/f, the power law."""

import pytest

from repro.cluster.cpu import Cpu, DvfsState, PowerLaw
from repro.errors import ConfigurationError
from repro.units import GHZ


def make_cpu(**kw) -> Cpu:
    defaults = dict(
        name="test",
        base_cpi=1.0,
        pstates=(
            DvfsState(frequency=1.0 * GHZ, voltage=0.9),
            DvfsState(frequency=2.0 * GHZ, voltage=1.1),
        ),
        power=PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ, gamma=2.0),
        cores=4,
    )
    defaults.update(kw)
    return Cpu(**defaults)


class TestPowerLaw:
    def test_delta_p_at_reference(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ)
        assert law.delta_p(2.0 * GHZ) == pytest.approx(100.0)

    def test_delta_p_scales_quadratically(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ, gamma=2.0)
        assert law.delta_p(1.0 * GHZ) == pytest.approx(25.0)

    def test_gamma_one_is_linear(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ, gamma=1.0)
        assert law.delta_p(1.0 * GHZ) == pytest.approx(50.0)

    def test_idle_constant_by_default(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ)
        assert law.p_idle(1.0 * GHZ) == pytest.approx(20.0)

    def test_idle_scales_with_gamma_idle(self):
        law = PowerLaw(
            delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ, gamma_idle=1.0
        )
        assert law.p_idle(1.0 * GHZ) == pytest.approx(10.0)

    def test_running_is_idle_plus_delta(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ)
        assert law.p_running(2.0 * GHZ) == pytest.approx(120.0)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ConfigurationError):
            PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ, gamma=0.5)

    def test_rejects_nonpositive_frequency(self):
        law = PowerLaw(delta_p_ref=100.0, p_idle_ref=20.0, f_ref=2.0 * GHZ)
        with pytest.raises(ConfigurationError):
            law.delta_p(0.0)


class TestCpu:
    def test_defaults_to_highest_pstate(self):
        assert make_cpu().frequency == pytest.approx(2.0 * GHZ)

    def test_tc_is_cpi_over_f(self):
        cpu = make_cpu(base_cpi=0.8)
        assert cpu.tc() == pytest.approx(0.8 / (2.0 * GHZ))
        assert cpu.tc(1.0 * GHZ) == pytest.approx(0.8 / (1.0 * GHZ))

    def test_instructions_per_second_inverse_of_tc(self):
        cpu = make_cpu()
        assert cpu.instructions_per_second() == pytest.approx(1.0 / cpu.tc())

    def test_set_frequency_switches_pstate(self):
        cpu = make_cpu()
        cpu.set_frequency(1.0 * GHZ)
        assert cpu.frequency == pytest.approx(1.0 * GHZ)

    def test_set_frequency_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="no P-state"):
            make_cpu().set_frequency(1.5 * GHZ)

    def test_nearest_pstate(self):
        cpu = make_cpu()
        assert cpu.nearest_pstate(1.2 * GHZ).frequency == pytest.approx(1.0 * GHZ)

    def test_pstates_must_be_sorted(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            make_cpu(
                pstates=(
                    DvfsState(frequency=2.0 * GHZ, voltage=1.1),
                    DvfsState(frequency=1.0 * GHZ, voltage=0.9),
                )
            )

    def test_duplicate_pstates_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            make_cpu(
                pstates=(
                    DvfsState(frequency=1.0 * GHZ, voltage=0.9),
                    DvfsState(frequency=1.0 * GHZ, voltage=1.0),
                )
            )

    def test_min_max_frequency(self):
        cpu = make_cpu()
        assert cpu.min_frequency == pytest.approx(1.0 * GHZ)
        assert cpu.max_frequency == pytest.approx(2.0 * GHZ)

    def test_delta_p_tracks_current_pstate(self):
        cpu = make_cpu()
        at_max = cpu.delta_p()
        cpu.set_frequency(1.0 * GHZ)
        assert cpu.delta_p() == pytest.approx(at_max / 4.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            make_cpu(cores=0)

    def test_rejects_nonpositive_cpi(self):
        with pytest.raises(ConfigurationError):
            make_cpu(base_cpi=0.0)

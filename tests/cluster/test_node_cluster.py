"""Node DVFS behaviour and cluster assembly/homogeneity."""

import pytest

from repro.cluster import Cluster, dori, system_g
from repro.cluster.presets import _dori_node, _system_g_node
from repro.errors import ConfigurationError
from repro.units import GHZ


class TestNode:
    def test_core_count(self):
        node = _system_g_node(0)
        assert node.cores == 8  # 2 sockets × 4 cores

    def test_machine_parameter_accessors(self):
        node = _system_g_node(0)
        assert node.tc() == pytest.approx(0.781 / (2.8 * GHZ))
        assert node.tm() == pytest.approx(96e-9)
        assert node.ts() > 0
        assert node.tw() > 0

    def test_set_frequency_rescales_power(self):
        node = _system_g_node(0)
        before = node.delta_pc
        node.set_frequency(1.6 * GHZ)
        assert node.frequency == pytest.approx(1.6 * GHZ)
        assert node.delta_pc == pytest.approx(before * (1.6 / 2.8) ** 2)

    def test_frequency_roundtrip_restores_power(self):
        node = _system_g_node(0)
        before = node.delta_pc
        node.set_frequency(1.6 * GHZ)
        node.set_frequency(2.8 * GHZ)
        assert node.delta_pc == pytest.approx(before)

    def test_at_frequency_leaves_original(self):
        node = _system_g_node(0)
        clone = node.at_frequency(2.0 * GHZ)
        assert clone.frequency == pytest.approx(2.0 * GHZ)
        assert node.frequency == pytest.approx(2.8 * GHZ)

    def test_cpu_component_at_projects_without_mutation(self):
        node = _system_g_node(0)
        comp = node.cpu_component_at(1.6 * GHZ)
        assert comp.delta_p == pytest.approx(node.delta_pc * (1.6 / 2.8) ** 2)
        assert node.frequency == pytest.approx(2.8 * GHZ)


class TestCluster:
    def test_len_and_cores(self, systemg8):
        assert len(systemg8) == 8
        assert systemg8.total_cores == 64

    def test_homogeneity_enforced(self):
        nodes = [_system_g_node(0), _dori_node(1)]
        with pytest.raises(ConfigurationError):
            Cluster(name="mixed", nodes=nodes, interconnect=nodes[0].nic)

    def test_cluster_wide_dvfs(self):
        cl = system_g(3)
        cl.set_frequency(2.0 * GHZ)
        assert all(n.frequency == pytest.approx(2.0 * GHZ) for n in cl.nodes)
        assert cl.frequency == pytest.approx(2.0 * GHZ)

    def test_available_frequencies_sorted(self, systemg8):
        freqs = systemg8.available_frequencies
        assert list(freqs) == sorted(freqs)
        assert 2.8 * GHZ in freqs

    def test_p_system_idle_scales_with_nodes(self):
        one = system_g(1).p_system_idle
        four = system_g(4).p_system_idle
        assert four == pytest.approx(4 * one)

    def test_subcluster(self, systemg8):
        sub = systemg8.subcluster(3)
        assert len(sub) == 3
        assert sub.head.cpu.name == systemg8.head.cpu.name

    def test_subcluster_bounds(self, systemg8):
        with pytest.raises(ConfigurationError):
            systemg8.subcluster(9)
        with pytest.raises(ConfigurationError):
            systemg8.subcluster(0)

    def test_pdu_autoprovisioned(self, systemg8):
        assert systemg8.pdu.outlets == len(systemg8)


class TestPresets:
    def test_system_g_bounds(self):
        with pytest.raises(ValueError):
            system_g(0)
        with pytest.raises(ValueError):
            system_g(326)

    def test_dori_bounds(self):
        with pytest.raises(ValueError):
            dori(9)

    def test_system_g_is_infiniband(self, systemg8):
        assert "InfiniBand" in systemg8.interconnect.name

    def test_dori_is_ethernet(self, dori4):
        assert "Ethernet" in dori4.interconnect.name

    def test_paper_constraint_delta_pc_exceeds_alpha_psys(self, systemg8, dori4):
        # §V-B-3 observes E1 increasing with f, which requires
        # ΔPc > α·P_system_idle (see presets docstring); both testbeds
        # must satisfy it for the CG frequency study to reproduce.
        for cl in (systemg8, dori4):
            node = cl.head
            assert node.power.cpu.delta_p > 0.93 * node.power.p_system_idle

    def test_dori_smaller_cache_than_system_g(self, systemg8, dori4):
        assert (
            dori4.head.memory.levels[-1].capacity
            < systemg8.head.memory.levels[-1].capacity
        )

"""Memory hierarchy: latency staircase and validation."""

import pytest

from repro.cluster.memory import CacheLevel, MemoryHierarchy
from repro.errors import ConfigurationError
from repro.units import GIB, KIB, MIB, NS


@pytest.fixture()
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=(
            CacheLevel(name="L1", capacity=32 * KIB, latency=1.0 * NS),
            CacheLevel(name="L2", capacity=4 * MIB, latency=5.0 * NS),
        ),
        dram_latency=90.0 * NS,
        dram_capacity=8 * GIB,
    )


def test_tm_is_dram_latency(hierarchy):
    assert hierarchy.tm == pytest.approx(90.0 * NS)


def test_working_set_hits_l1(hierarchy):
    assert hierarchy.latency_for_working_set(16 * KIB) == pytest.approx(1.0 * NS)


def test_working_set_boundary_is_inclusive(hierarchy):
    assert hierarchy.latency_for_working_set(32 * KIB) == pytest.approx(1.0 * NS)


def test_working_set_hits_l2(hierarchy):
    assert hierarchy.latency_for_working_set(1 * MIB) == pytest.approx(5.0 * NS)


def test_working_set_falls_to_dram(hierarchy):
    assert hierarchy.latency_for_working_set(64 * MIB) == pytest.approx(90.0 * NS)


def test_miss_chain_adds_tag_checks(hierarchy):
    # DRAM access pays 10% of each missed level's latency on the way down
    expected = 90.0 * NS + 0.1 * (1.0 * NS + 5.0 * NS)
    assert hierarchy.miss_chain_latency(64 * MIB) == pytest.approx(expected)


def test_miss_chain_equals_hit_for_l1(hierarchy):
    assert hierarchy.miss_chain_latency(1 * KIB) == pytest.approx(1.0 * NS)


def test_effective_latency_weighted(hierarchy):
    eff = hierarchy.effective_latency({"L1": 0.9, "L2": 0.08, "DRAM": 0.02})
    expected = 0.9 * 1.0 * NS + 0.08 * 5.0 * NS + 0.02 * 90.0 * NS
    assert eff == pytest.approx(expected)


def test_effective_latency_requires_unit_sum(hierarchy):
    with pytest.raises(ConfigurationError, match="sum to 1"):
        hierarchy.effective_latency({"L1": 0.5})


def test_effective_latency_rejects_unknown_level(hierarchy):
    with pytest.raises(ConfigurationError, match="unknown level"):
        hierarchy.effective_latency({"L3": 1.0})


def test_rejects_zero_working_set(hierarchy):
    with pytest.raises(ConfigurationError):
        hierarchy.latency_for_working_set(0)


def test_levels_must_grow_in_capacity():
    with pytest.raises(ConfigurationError, match="grow in capacity"):
        MemoryHierarchy(
            levels=(
                CacheLevel(name="L1", capacity=4 * MIB, latency=1.0 * NS),
                CacheLevel(name="L2", capacity=32 * KIB, latency=5.0 * NS),
            ),
            dram_latency=90.0 * NS,
            dram_capacity=GIB,
        )


def test_latency_must_grow_with_level():
    with pytest.raises(ConfigurationError, match="latency must grow"):
        MemoryHierarchy(
            levels=(
                CacheLevel(name="L1", capacity=32 * KIB, latency=5.0 * NS),
                CacheLevel(name="L2", capacity=4 * MIB, latency=1.0 * NS),
            ),
            dram_latency=90.0 * NS,
            dram_capacity=GIB,
        )


def test_llc_must_beat_dram():
    with pytest.raises(ConfigurationError, match="below DRAM"):
        MemoryHierarchy(
            levels=(CacheLevel(name="L1", capacity=32 * KIB, latency=100.0 * NS),),
            dram_latency=90.0 * NS,
            dram_capacity=GIB,
        )


def test_cacheless_hierarchy_is_valid():
    flat = MemoryHierarchy(levels=(), dram_latency=90.0 * NS, dram_capacity=GIB)
    assert flat.latency_for_working_set(1) == pytest.approx(90.0 * NS)

"""Component power states and node power models."""

import pytest

from repro.cluster.power import ComponentPower, NodePowerModel
from repro.errors import ConfigurationError
from repro.units import GHZ


@pytest.fixture()
def node_power() -> NodePowerModel:
    return NodePowerModel(
        cpu=ComponentPower(name="cpu", p_idle=20.0, p_running=120.0),
        memory=ComponentPower(name="memory", p_idle=8.0, p_running=24.0),
        io=ComponentPower(name="io", p_idle=4.0, p_running=8.0),
        others=40.0,
    )


def test_delta_p(node_power):
    assert node_power.cpu.delta_p == pytest.approx(100.0)
    assert node_power.memory.delta_p == pytest.approx(16.0)


def test_p_system_idle_sums_components(node_power):
    assert node_power.p_system_idle == pytest.approx(20 + 8 + 4 + 40)


def test_p_system_peak(node_power):
    assert node_power.p_system_peak == pytest.approx(120 + 24 + 8 + 40)


def test_running_below_idle_rejected():
    with pytest.raises(ConfigurationError, match="below idle"):
        ComponentPower(name="cpu", p_idle=50.0, p_running=40.0)


def test_negative_idle_rejected():
    with pytest.raises(ConfigurationError):
        ComponentPower(name="cpu", p_idle=-1.0, p_running=40.0)


def test_components_accessor(node_power):
    comps = node_power.components()
    assert set(comps) == {"cpu", "memory", "io"}
    assert comps["cpu"].delta_p == pytest.approx(100.0)


def test_scaled_to_frequency_applies_gamma(node_power):
    scaled = node_power.scaled_to_frequency(
        f=1.4 * GHZ, f_ref=2.8 * GHZ, gamma=2.0
    )
    assert scaled.cpu.delta_p == pytest.approx(100.0 * 0.25)
    assert scaled.cpu.p_idle == pytest.approx(20.0)  # idle constant


def test_scaled_to_frequency_leaves_other_components(node_power):
    scaled = node_power.scaled_to_frequency(f=1.4 * GHZ, f_ref=2.8 * GHZ, gamma=2.0)
    assert scaled.memory == node_power.memory
    assert scaled.io == node_power.io
    assert scaled.others == node_power.others


def test_scaled_idle_with_gamma_idle(node_power):
    scaled = node_power.scaled_to_frequency(
        f=1.4 * GHZ, f_ref=2.8 * GHZ, gamma=2.0, gamma_idle=1.0
    )
    assert scaled.cpu.p_idle == pytest.approx(10.0)


def test_scaling_roundtrip_is_identity(node_power):
    down = node_power.scaled_to_frequency(f=1.4 * GHZ, f_ref=2.8 * GHZ, gamma=2.0)
    back = down.scaled_to_frequency(f=2.8 * GHZ, f_ref=1.4 * GHZ, gamma=2.0)
    assert back.cpu.delta_p == pytest.approx(node_power.cpu.delta_p)


def test_scaling_rejects_bad_gamma(node_power):
    with pytest.raises(ConfigurationError):
        node_power.scaled_to_frequency(f=1.0 * GHZ, f_ref=2.0 * GHZ, gamma=0.3)

"""Interconnect models and Hockney costs."""

import pytest

from repro.cluster.network import Interconnect, ethernet_1g, infiniband_qdr
from repro.errors import ConfigurationError
from repro.units import MICRO


def test_ptp_time_is_hockney():
    net = Interconnect(
        name="x", startup_latency=1e-6, per_byte_time=1e-9, link_rate=2e9
    )
    assert net.ptp_time(1000) == pytest.approx(1e-6 + 1000 * 1e-9)


def test_ptp_zero_bytes_costs_startup():
    net = Interconnect(
        name="x", startup_latency=1e-6, per_byte_time=1e-9, link_rate=2e9
    )
    assert net.ptp_time(0) == pytest.approx(1e-6)


def test_extra_hops_add_latency():
    net = Interconnect(
        name="x",
        startup_latency=1e-6,
        per_byte_time=1e-9,
        link_rate=2e9,
        switch_hop_latency=100e-9,
    )
    assert net.ptp_time(0, hops=3) == pytest.approx(1e-6 + 2 * 100e-9)


def test_effective_bandwidth_inverse_of_tw():
    net = Interconnect(
        name="x", startup_latency=1e-6, per_byte_time=0.5e-9, link_rate=4e9
    )
    assert net.effective_bandwidth == pytest.approx(2e9)


def test_half_bandwidth_point():
    net = Interconnect(
        name="x", startup_latency=1e-6, per_byte_time=1e-9, link_rate=2e9
    )
    assert net.half_bandwidth_point() == pytest.approx(1000.0)


def test_effective_bandwidth_cannot_exceed_link_rate():
    with pytest.raises(ConfigurationError, match="exceeds raw link rate"):
        Interconnect(
            name="x", startup_latency=1e-6, per_byte_time=1e-10, link_rate=1e9
        )


def test_negative_message_size_rejected():
    net = ethernet_1g()
    with pytest.raises(ConfigurationError):
        net.ptp_time(-1)


def test_infiniband_beats_ethernet():
    ib, eth = infiniband_qdr(), ethernet_1g()
    assert ib.ts < eth.ts
    assert ib.tw < eth.tw
    # the gap is what makes SystemG and Dori behave differently
    assert eth.ts / ib.ts > 10
    assert eth.tw / ib.tw > 10


def test_ethernet_latency_order_of_magnitude():
    assert 10 * MICRO < ethernet_1g().ts < 100 * MICRO


def test_zero_hops_rejected():
    with pytest.raises(ConfigurationError):
        infiniband_qdr().ptp_time(10, hops=0)

"""Public API surface and error hierarchy contracts."""

import inspect

import pytest

import repro
from repro import errors


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_workflow_via_top_level_only(self):
        """README's quickstart must work from the root namespace alone."""
        model, n = repro.paper_model("FT", klass="B")
        point = model.evaluate(n=n, p=64)
        assert 0 < point.ee < 1

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cluster
        import repro.core
        import repro.microbench
        import repro.npb
        import repro.powerpack
        import repro.simmpi
        import repro.validation  # noqa: F401

    def test_public_functions_documented(self):
        """Every public callable in the core package carries a docstring."""
        import repro.core as core

        for name in core.__all__:
            obj = getattr(core, name)
            if callable(obj):
                assert inspect.getdoc(obj), f"{name} lacks a docstring"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_single_except_catches_everything(self):
        from repro.core.parameters import AppParams

        with pytest.raises(errors.ReproError):
            AppParams(alpha=2.0, wc=1.0)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.RankError, errors.SimulationError)

    def test_specific_types_raised(self):
        from repro.cluster.cpu import PowerLaw
        from repro.core.parameters import MachineParams

        with pytest.raises(errors.ConfigurationError):
            PowerLaw(delta_p_ref=1.0, p_idle_ref=1.0, f_ref=-1.0)
        with pytest.raises(errors.ParameterError):
            MachineParams(
                tc=1e-9, tm=1e-7, ts=1e-6, tw=1e-10,
                delta_pc=1, delta_pm=1, pc_idle=1, pm_idle=1,
                p_others=1, f=-1.0,
            )

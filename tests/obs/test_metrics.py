"""The metrics registry: families, labels, exposition, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ParameterError
from repro.obs import metrics
from repro.obs.metrics import CONTENT_TYPE, LATENCY_BUCKETS_S, Registry


class TestCounter:
    def test_unlabelled_counter_counts(self):
        registry = Registry()
        c = registry.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.total() == 3.5

    def test_labelled_children_are_independent_and_interned(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("op",))
        c.labels("a").inc()
        c.labels("a").inc()
        c.labels("b").inc(5)
        assert c.labels("a") is c.labels("a")
        assert c.labels("a").value == 2
        assert c.labels("b").value == 5
        assert c.total() == 7

    def test_keyword_labels_match_positional(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("op", "kind"))
        c.labels("eval", "x").inc()
        assert c.labels(op="eval", kind="x").value == 1

    def test_counters_only_go_up(self):
        registry = Registry()
        c = registry.counter("t_total", "help")
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_wrong_label_arity_rejected(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("op",))
        with pytest.raises(ParameterError):
            c.labels("a", "b")
        with pytest.raises(ParameterError):
            c.labels(nope="a")


class TestGauge:
    def test_set_inc_dec(self):
        registry = Registry()
        g = registry.gauge("t_level", "help")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.total() == 7


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        """``le`` is inclusive: an observation equal to a bound counts."""
        registry = Registry()
        h = registry.histogram("t_s", "help", buckets=(0.5, 2.0))
        h.observe(0.5)
        child = h.labels()
        assert child.counts == [1, 0]

    def test_overflow_lands_only_in_inf(self):
        registry = Registry()
        h = registry.histogram("t_s", "help", buckets=(0.5, 2.0))
        h.observe(100.0)
        child = h.labels()
        assert child.counts == [0, 0]
        assert child.count == 1
        assert child.sum == 100.0

    def test_buckets_sorted_and_distinct(self):
        registry = Registry()
        h = registry.histogram("t_s", "help", buckets=(2.0, 0.5))
        assert h.buckets == (0.5, 2.0)
        with pytest.raises(ParameterError):
            registry.histogram("t_dup", "help", buckets=(1.0, 1.0))
        with pytest.raises(ParameterError):
            registry.histogram("t_empty", "help", buckets=())

    def test_default_buckets_are_the_latency_ladder(self):
        registry = Registry()
        h = registry.histogram("t_s", "help")
        assert h.buckets == LATENCY_BUCKETS_S


class TestRegistry:
    def test_reregistration_returns_the_same_family(self):
        registry = Registry()
        a = registry.counter("t_total", "help", labelnames=("op",))
        b = registry.counter("t_total", "help", labelnames=("op",))
        assert a is b

    def test_reregistration_with_different_shape_rejected(self):
        registry = Registry()
        registry.counter("t_total", "help", labelnames=("op",))
        with pytest.raises(ParameterError):
            registry.counter("t_total", "help", labelnames=("other",))
        with pytest.raises(ParameterError):
            registry.gauge("t_total", "help", labelnames=("op",))

    def test_value_reads_totals_and_children(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("op",))
        c.labels("a").inc(3)
        c.labels("b").inc(4)
        assert registry.value("t_total") == 7
        assert registry.value("t_total", {"op": "a"}) == 3
        assert registry.value("t_total", {"op": "zzz"}) == 0.0
        assert registry.value("never_registered") == 0.0

    def test_collectors_run_at_render_time(self):
        registry = Registry()
        g = registry.gauge("t_level", "help")
        registry.register_collector(lambda: g.set(42))
        registry.register_collector(lambda: None)
        assert "t_level 42" in registry.render()

    def test_content_type_is_prometheus_v004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestExposition:
    def test_golden_render(self):
        """The exact text a scraper sees for a tiny known registry."""
        registry = Registry()
        c = registry.counter("t_requests_total", "Requests.",
                             labelnames=("op",))
        c.labels("a").inc()
        c.labels("a").inc()
        c.labels("b").inc(2.5)
        registry.gauge("t_level", "Level.").set(3)
        h = registry.histogram("t_lat_seconds", "Latency.",
                               buckets=(0.5, 2.0))
        for v in (0.25, 0.5, 1.0, 4.0):
            h.observe(v)
        assert registry.render() == (
            "# HELP t_lat_seconds Latency.\n"
            "# TYPE t_lat_seconds histogram\n"
            't_lat_seconds_bucket{le="0.5"} 2\n'
            't_lat_seconds_bucket{le="2"} 3\n'
            't_lat_seconds_bucket{le="+Inf"} 4\n'
            "t_lat_seconds_sum 5.75\n"
            "t_lat_seconds_count 4\n"
            "# HELP t_level Level.\n"
            "# TYPE t_level gauge\n"
            "t_level 3\n"
            "# HELP t_requests_total Requests.\n"
            "# TYPE t_requests_total counter\n"
            't_requests_total{op="a"} 2\n'
            't_requests_total{op="b"} 2.5\n'
        )

    def test_label_values_are_escaped(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("msg",))
        c.labels('a"b\\c\nd').inc()
        assert r't_total{msg="a\"b\\c\nd"} 1' in registry.render()

    def test_labelled_histogram_renders_per_child_series(self):
        registry = Registry()
        h = registry.histogram("t_s", "help", labelnames=("op",),
                               buckets=(1.0,))
        h.labels("a").observe(0.5)
        h.labels("b").observe(2.0)
        text = registry.render()
        assert 't_s_bucket{op="a",le="1"} 1' in text
        assert 't_s_bucket{op="b",le="1"} 0' in text
        assert 't_s_bucket{op="b",le="+Inf"} 1' in text
        assert 't_s_sum{op="a"} 0.5' in text
        assert 't_s_count{op="b"} 1' in text


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("op",))
        h = registry.histogram("t_s", "help", buckets=(0.5,))
        threads, per_thread = 8, 5_000

        def work():
            for _ in range(per_thread):
                c.labels("x").inc()
                h.observe(0.1)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.labels("x").value == threads * per_thread
        child = h.labels()
        assert child.count == threads * per_thread
        assert child.counts[0] == threads * per_thread

    def test_concurrent_child_creation_single_winner(self):
        registry = Registry()
        c = registry.counter("t_total", "help", labelnames=("k",))
        seen = []
        barrier = threading.Barrier(8)

        def work(k):
            barrier.wait()
            seen.append(c.labels(str(k % 2)))

        pool = [threading.Thread(target=work, args=(k,)) for k in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len({id(child) for child in seen}) == 2


class TestProcessRegistry:
    def test_module_singleton(self):
        assert metrics.registry() is metrics.registry()

    def test_serving_families_registered_on_import(self):
        """Importing the serving stack populates the shared registry."""
        import repro.api.server  # noqa: F401
        import repro.api.service  # noqa: F401

        registry = metrics.registry()
        for name in (
            "repro_dispatch_total",
            "repro_dispatch_latency_seconds",
            "repro_http_requests_total",
            "repro_span_duration_seconds",
        ):
            assert registry.get(name) is not None, name


class TestSnapshot:
    def test_snapshot_captures_every_kind(self):
        registry = Registry()
        registry.counter("jobs_total", "x", labelnames=("op",)).labels(
            "a"
        ).inc(3)
        registry.gauge("level", "x").labels().set(7)
        h = registry.histogram("latency_seconds", "x").labels()
        h.observe(0.002)
        h.observe(0.002)
        snap = registry.snapshot()
        counter = snap[("jobs_total", ("a",))]
        assert (counter.kind, counter.value) == ("counter", 3.0)
        assert counter.labelnames == ("op",)
        gauge = snap[("level", ())]
        assert (gauge.kind, gauge.value) == ("gauge", 7.0)
        hist = snap[("latency_seconds", ())]
        assert hist.kind == "histogram"
        assert hist.value == 2.0  # observation count
        assert hist.sum == pytest.approx(0.004)
        assert sum(hist.counts) == 2
        assert len(hist.counts) == len(hist.buckets)

    def test_snapshot_runs_collectors_by_default(self):
        registry = Registry()
        gauge = registry.gauge("derived", "x")
        registry.register_collector(lambda: gauge.labels().set(42))
        assert registry.snapshot()[("derived", ())].value == 42.0
        gauge.labels().set(0)
        snap = registry.snapshot(run_collectors=False)
        assert snap[("derived", ())].value == 0.0

    def test_snapshots_are_independent_of_later_mutation(self):
        registry = Registry()
        counter = registry.counter("jobs_total", "x").labels()
        counter.inc()
        snap = registry.snapshot()
        counter.inc(10)
        assert snap[("jobs_total", ())].value == 1.0


class TestRenderPrefix:
    def test_prefix_filters_families_not_collectors(self):
        registry = Registry()
        registry.counter("aaa_total", "x").labels().inc()
        registry.counter("bbb_total", "x").labels().inc()
        gauge = registry.gauge("aaa_derived", "x")
        registry.register_collector(lambda: gauge.labels().set(5))
        text = registry.render(prefix="aaa")
        assert "aaa_total 1" in text
        assert "aaa_derived 5" in text
        assert "bbb_total" not in text

    def test_no_prefix_renders_everything(self):
        registry = Registry()
        registry.counter("aaa_total", "x").labels().inc()
        registry.counter("bbb_total", "x").labels().inc()
        text = registry.render()
        assert "aaa_total 1" in text and "bbb_total 1" in text


class TestHistogramQuantile:
    BUCKETS = (0.1, 0.2, 0.4, 0.8)

    def test_interpolates_inside_the_target_bucket(self):
        # 10 obs in (0.1, 0.2]: the median interpolates to the middle
        counts = (0, 10, 0, 0)
        value = metrics.histogram_quantile(self.BUCKETS, counts, 10, 0.5)
        assert value == pytest.approx(0.15)

    def test_spans_buckets_by_rank(self):
        counts = (5, 5, 5, 5)
        assert metrics.histogram_quantile(
            self.BUCKETS, counts, 20, 0.25
        ) == pytest.approx(0.1)
        assert metrics.histogram_quantile(
            self.BUCKETS, counts, 20, 0.75
        ) == pytest.approx(0.4)

    def test_overflow_clamps_to_top_finite_bucket(self):
        counts = (0, 0, 0, 0)
        # all 10 observations overflowed past the top finite bucket
        value = metrics.histogram_quantile(self.BUCKETS, counts, 10, 0.99)
        assert value == 0.8

    def test_no_observations_is_zero(self):
        assert metrics.histogram_quantile(self.BUCKETS, (0,) * 4, 0, 0.5) == 0.0

    def test_quantile_outside_open_interval_rejected(self):
        for q in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ParameterError):
                metrics.histogram_quantile(self.BUCKETS, (1,) * 4, 4, q)


class TestLabelString:
    def test_empty_labels_render_empty(self):
        assert metrics.label_string((), ()) == ""

    def test_pairs_render_exposition_style(self):
        assert metrics.label_string(("op", "kind"), ("eval", "x")) == (
            '{op="eval",kind="x"}'
        )

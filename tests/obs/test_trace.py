"""Trace IDs, context propagation, and profiling spans."""

from __future__ import annotations

import contextvars
import threading

from repro.obs import metrics, trace
from repro.obs.trace import (
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    set_slow_threshold_ms,
    slow_threshold_ms,
    span,
    trace_context,
)


class TestTraceIds:
    def test_ids_are_short_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)  # parses as hex

    def test_ensure_mints_once_then_sticks(self):
        def probe():
            assert current_trace_id() is None
            tid = ensure_trace_id()
            assert ensure_trace_id() == tid
            assert current_trace_id() == tid

        # fresh context: the surrounding test run may carry an ID
        contextvars.copy_context().run(probe)

    def test_trace_context_scopes_and_restores(self):
        def probe():
            with trace_context("aaaa") as tid:
                assert tid == "aaaa"
                assert current_trace_id() == "aaaa"
                with trace_context() as inner:
                    assert len(inner) == 16
                    assert current_trace_id() == inner
                assert current_trace_id() == "aaaa"
            assert current_trace_id() is None

        contextvars.copy_context().run(probe)

    def test_copy_context_carries_the_id_into_a_thread(self):
        """The executor-dispatch pattern: ctx.run in a worker thread."""
        seen = []

        def probe():
            with trace_context("feedbeefcafe0000"):
                ctx = contextvars.copy_context()
                t = threading.Thread(
                    target=ctx.run, args=(lambda: seen.append(
                        current_trace_id()
                    ),)
                )
                t.start()
                t.join()

        contextvars.copy_context().run(probe)
        assert seen == ["feedbeefcafe0000"]

    def test_bare_thread_does_not_inherit(self):
        """Without copy_context the ID stays behind — the failure the
        server's explicit propagation guards against."""
        seen = []

        def probe():
            with trace_context("feedbeefcafe0000"):
                t = threading.Thread(
                    target=lambda: seen.append(current_trace_id())
                )
                t.start()
                t.join()

        contextvars.copy_context().run(probe)
        assert seen == [None]


class TestSpan:
    def test_span_feeds_the_duration_histogram(self):
        assert metrics.registry().get("repro_span_duration_seconds") is not None
        child = trace.SPAN_HISTOGRAM.labels("test.span")
        count0 = child.count
        with span("test.span"):
            pass
        assert child.count == count0 + 1

    def test_span_records_on_exception(self):
        child = trace.SPAN_HISTOGRAM.labels("test.raises")
        count0 = child.count
        try:
            with span("test.raises"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert child.count == count0 + 1

    def test_span_is_reusable(self):
        probe = span("test.reuse")
        child = trace.SPAN_HISTOGRAM.labels("test.reuse")
        count0 = child.count
        for _ in range(3):
            with probe:
                pass
        assert child.count == count0 + 3


class TestSlowLog:
    def test_threshold_round_trips(self):
        set_slow_threshold_ms(250.0)
        try:
            assert slow_threshold_ms() == 250.0
        finally:
            set_slow_threshold_ms(None)
        assert slow_threshold_ms() is None

    def test_slow_span_emits_one_warning(self, caplog):
        set_slow_threshold_ms(0.0)  # everything is slow
        try:
            with caplog.at_level("WARNING", logger="repro.slow"):
                with span("test.slow"):
                    pass
        finally:
            set_slow_threshold_ms(None)
        records = [r for r in caplog.records if r.getMessage() == "slow span"]
        assert len(records) == 1
        assert records[0].span == "test.slow"
        assert records[0].duration_ms >= 0

    def test_fast_span_stays_silent(self, caplog):
        set_slow_threshold_ms(10_000.0)
        try:
            with caplog.at_level("WARNING", logger="repro.slow"):
                with span("test.fast"):
                    pass
        finally:
            set_slow_threshold_ms(None)
        assert not [r for r in caplog.records
                    if r.getMessage() == "slow span"]


class TestEngineSpans:
    def test_grid_evaluation_is_spanned(self):
        """A cold grid_for pays one grid.evaluate span."""
        from repro.optimize.engine import GridStore, grid_for
        from repro.paperdata import paper_model
        from repro.units import GHZ

        child = trace.SPAN_HISTOGRAM.labels("grid.evaluate")
        count0 = child.count
        model, n = paper_model("FT", klass="B")
        grid_for(
            model, p_values=(1, 2, 4), f_values=(2.8 * GHZ,),
            n_values=(n,), store=GridStore(),
        )
        assert child.count == count0 + 1

    def test_hetero_enumeration_is_spanned(self):
        from repro.hetero.solve import space_for
        from repro.hetero.space import PoolSpec, hetero_grid
        from repro.optimize.engine import GridStore

        child = trace.SPAN_HISTOGRAM.labels("hetero.enumerate")
        count0 = child.count
        space = space_for(
            "FT", "A", pools=(PoolSpec("a", "systemg", (1, 2)),),
        )
        hetero_grid(space, store=GridStore())
        assert child.count == count0 + 1

"""Structured logging: formatters, configure, and the event helpers."""

from __future__ import annotations

import json
import logging

from repro.obs import log as obs_log
from repro.obs.trace import trace_context


def _record(formatter, **extra) -> str:
    logger = logging.getLogger("repro.test")
    record = logger.makeRecord(
        "repro.test", logging.INFO, __file__, 1, "the event", (), None,
    )
    record.__dict__.update(extra)
    return formatter.format(record)


class TestJsonFormatter:
    def test_one_json_object_per_line(self):
        line = _record(
            obs_log.JsonFormatter(),
            trace_id="abc", op="budget", status=200, duration_ms=1.25,
        )
        payload = json.loads(line)
        assert payload["event"] == "the event"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["trace_id"] == "abc"
        assert payload["op"] == "budget"
        assert payload["status"] == 200
        assert payload["duration_ms"] == 1.25
        assert "\n" not in line

    def test_absent_fields_are_omitted(self):
        payload = json.loads(_record(obs_log.JsonFormatter()))
        for field in ("trace_id", "op", "status", "span"):
            assert field not in payload

    def test_traceback_included_on_exc_info(self):
        logger = logging.getLogger("repro.test")
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = logger.makeRecord(
                "repro.test", logging.ERROR, __file__, 1, "bad", (),
                sys.exc_info(),
            )
        payload = json.loads(obs_log.JsonFormatter().format(record))
        assert "ValueError: boom" in payload["traceback"]


class TestTextFormatter:
    def test_key_value_line(self):
        line = _record(
            obs_log.TextFormatter(), trace_id="abc", status=200,
        )
        assert "the event" in line
        assert "trace_id=abc" in line
        assert "status=200" in line


class TestConfigure:
    def test_configure_is_idempotent(self):
        logger = obs_log.configure()
        obs_log.configure()
        obs_log.configure(json_lines=True)
        assert len(logger.handlers) == 1
        assert isinstance(logger.handlers[0].formatter, obs_log.JsonFormatter)
        assert logger.propagate is False
        # leave the shared logger unconfigured for the rest of the suite
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.propagate = True


class TestEventHelpers:
    def test_request_log_carries_the_context_trace_id(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.http"):
            with trace_context("cafecafecafecafe"):
                obs_log.request_log(
                    method="POST", path="/v1/budget", status=200,
                    duration_s=0.0042, op="budget",
                )
        (record,) = caplog.records
        assert record.getMessage() == "request"
        assert record.trace_id == "cafecafecafecafe"
        assert record.op == "budget"
        assert record.status == 200
        assert record.duration_ms == 4.2

    def test_server_error_logs_traceback_at_error(self, caplog):
        with caplog.at_level(logging.ERROR, logger="repro.http"):
            try:
                raise RuntimeError("exploded")
            except RuntimeError as exc:
                obs_log.server_error(
                    method="POST", path="/v1/budget", exc=exc, op="budget",
                )
        (record,) = caplog.records
        assert record.levelno == logging.ERROR
        assert record.error_type == "RuntimeError"
        assert record.exc_info[0] is RuntimeError
        assert "RuntimeError: exploded" in json.loads(
            obs_log.JsonFormatter().format(record)
        )["traceback"]
